#!/usr/bin/env python3
"""Quickstart: build both planes of the paper's machine, route them,
and race one collective across the five evaluated configurations.

Run:  python examples/quickstart.py  [--scale 2]

This walks the library's whole public API in ~40 lines of actual code:
topology generation, subnet management + routing, placement, the MPI
layer, and the flow simulator.
"""

from __future__ import annotations

import argparse

from repro.core.units import MIB, format_time
from repro.experiments import THE_FIVE, build_fabric, make_job
from repro.sim import FlowSimulator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale", type=int, default=2,
        help="machine scale divisor: 1 = full 672 nodes, 2 = 168 nodes",
    )
    parser.add_argument("--nodes", type=int, default=28)
    parser.add_argument("--size-mib", type=float, default=1.0)
    args = parser.parse_args()

    print(f"Racing a {args.size_mib:g} MiB Alltoall on {args.nodes} nodes\n")
    print(f"{'configuration':32s} {'fabric':>34s} {'time':>12s}")
    baseline = None
    for combo in THE_FIVE:
        fabric = build_fabric(combo, scale=args.scale)
        job = make_job(combo, fabric, args.nodes, seed=0)
        sim = FlowSimulator(fabric.net, mode="static")
        t = sim.run(job.alltoall(args.size_mib * MIB)).total_time
        if baseline is None:
            baseline = t
        gain = baseline / t - 1
        print(
            f"{combo.label:32s} {str(fabric):>34s} {format_time(t):>12s}"
            f"  ({gain:+.0%} vs baseline)"
        )

    print(
        "\nThe HyperX with minimal routing loses on this adversarial "
        "pattern (shared cables);\nPARX's non-minimal multi-pathing and "
        "random placement both claw bandwidth back\n— Figures 1 and 4f "
        "of the paper, in one screen."
    )


if __name__ == "__main__":
    main()
