#!/usr/bin/env python3
"""PARX under the microscope: quadrants, rules R1-R4, Table 1, VLs.

Run:  python examples/parx_routing_demo.py

For one node pair of the 12x8 HyperX this shows everything section 3.2
of the paper describes:

* the quadrant LID encoding (q = lid // 1000),
* the four paths installed for the pair's four destination LIDs —
  which halves were masked, which paths are minimal, which detour,
* Table 1's small/large choices for the pair,
* the virtual lanes the deadlock layering assigned,
* and a demand file's effect on path balance.
"""

from __future__ import annotations

from repro.core.units import format_bytes
from repro.ib.subnet_manager import OpenSM
from repro.routing.parx import (
    HALF_REMOVED_BY_LID,
    LARGE_LID_CHOICE,
    SMALL_LID_CHOICE,
    ParxRouting,
)
from repro.topology.hyperx import hyperx, hyperx_quadrant
from repro.topology.t2hx import T2HX_HYPERX_SHAPE, t2hx_hyperx


def main() -> None:
    net = t2hx_hyperx()
    print(f"fabric: {net}")
    sm = OpenSM(net, lmc=2, lid_policy="quadrant")
    fabric = sm.run(ParxRouting())
    print(f"routed: {fabric}  (DFSSSP needed 3 VLs in the paper, PARX 5-8)\n")

    # A same-quadrant pair: the interesting case where minimal and
    # detour paths coexist.
    shape = T2HX_HYPERX_SHAPE
    src = net.terminals[0]
    dst = None
    src_sw = net.attached_switch(src)
    sq = hyperx_quadrant(net.node_meta(src_sw)["coord"], shape)
    for t in reversed(net.terminals):
        sw = net.attached_switch(t)
        if (
            hyperx_quadrant(net.node_meta(sw)["coord"], shape) == sq
            and sw != src_sw
        ):
            dst = t
            break
    assert dst is not None
    dsw = net.attached_switch(dst)
    print(
        f"pair: node {src} (switch {net.node_meta(src_sw)['coord']}, Q{sq})"
        f" -> node {dst} (switch {net.node_meta(dsw)['coord']}, Q{sq})"
    )
    print(f"destination LIDs: {fabric.lidmap.lids_of(dst)}\n")

    for i in range(4):
        path = fabric.path(src, dst, i)
        coords = [
            net.node_meta(n)["coord"]
            for n in net.path_nodes(path)
            if net.is_switch(n)
        ]
        lid = fabric.lidmap.lid(dst, i)
        print(
            f"LID{i} (lid {lid}, rule: remove {HALF_REMOVED_BY_LID[i]:6s} "
            f"half)  VL{fabric.vl(lid)}  "
            f"{net.path_hops(path)} hops via {coords}"
        )

    print(
        f"\nTable 1 for Q{sq}->Q{sq}: small messages use LIDs "
        f"{SMALL_LID_CHOICE[(sq, sq)]}, large (>= 512 B) use "
        f"{LARGE_LID_CHOICE[(sq, sq)]}"
    )

    # Demand-aware re-routing: declare this pair hot and re-route.
    print("\n--- re-routing with a communication profile ---")
    hot = {src: {dst: 255}}
    fabric2 = OpenSM(net, lmc=2, lid_policy="quadrant").run(ParxRouting(hot))
    for i in range(4):
        a = tuple(fabric.path(src, dst, i))
        b = tuple(fabric2.path(src, dst, i))
        status = "unchanged" if a == b else "re-balanced"
        print(f"LID{i}: {status}")
    print(
        "\n(The profile biases the weighted Dijkstra so the hot pair's "
        "paths avoid links other traffic needs — Algorithm 1's inner "
        "edge update with +w instead of +1.)"
    )


if __name__ == "__main__":
    main()
