#!/usr/bin/env python3
"""Topology trade-off explorer: the paper's section 1-2 argument in numbers.

Run:  python examples/topology_explorer.py

For a ~672-node machine, compares Fat-Tree, HyperX, Dragonfly, torus
and hypercube on the axes that drive procurement: switch count, cable
count (the AOC cost proxy), diameter, average path length, and
relative bisection bandwidth — the "HyperX buys low diameter and low
cable count at the price of worst-case throughput" trade-off.
"""

from __future__ import annotations

from repro.topology import (
    average_shortest_path,
    cable_count,
    diameter,
    dragonfly,
    hyperx,
    hyperx_bisection_fraction,
    three_level_fattree,
    torus,
)
from repro.topology.slimfly import slimfly
from repro.topology.torus import hypercube


def describe(name, net, bisection=None):
    return {
        "name": name,
        "nodes": net.num_terminals,
        "switches": net.num_switches,
        "cables": cable_count(net, switches_only=True),
        "diameter": diameter(net),
        "avg path": average_shortest_path(net),
        "bisection": bisection,
    }


def main() -> None:
    systems = [
        describe(
            "3-level Fat-Tree (48x14)", three_level_fattree(), 18 / 14
        ),
        describe(
            "12x8 HyperX, T=7",
            hyperx((12, 8), 7),
            hyperx_bisection_fraction((12, 8), 7),
        ),
        describe("Dragonfly a=12 p=6 h=5", dragonfly(12, 6, 5, num_groups=10)),
        describe("Slim Fly q=13, T=2", slimfly(13, terminals_per_switch=2)),
        describe("4x4x6 torus, T=7", torus((4, 4, 6), 7)),
        describe("hypercube 2^7, T=5", hypercube(7, 5)),
    ]
    hdr = (
        f"{'topology':28s} {'nodes':>6s} {'switch':>7s} {'cables':>7s} "
        f"{'diam':>5s} {'avg':>6s} {'bisect':>7s}"
    )
    print(hdr)
    print("-" * len(hdr))
    for s in systems:
        b = f"{s['bisection']:.0%}" if s["bisection"] else "  n/a"
        print(
            f"{s['name']:28s} {s['nodes']:6d} {s['switches']:7d} "
            f"{s['cables']:7d} {s['diameter']:5d} {s['avg path']:6.2f} {b:>7s}"
        )
    print(
        "\nReading: the HyperX connects a comparable machine with far "
        "fewer switches and\ncables than the Fat-Tree at diameter 2 — "
        "the cost argument of the paper's\nintroduction — while giving "
        "up guaranteed worst-case throughput (57% bisection)."
    )


if __name__ == "__main__":
    main()
