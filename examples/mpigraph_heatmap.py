#!/usr/bin/env python3
"""Figure 1 end-to-end: mpiGraph bandwidth heatmaps as ASCII art.

Run:  python examples/mpigraph_heatmap.py  [--nodes 28]

Regenerates the paper's opening figure — the observable bandwidth
matrix for 28 nodes under (a) Fat-Tree/ftree, (b) HyperX/DFSSSP and
(c) HyperX/PARX — and prints each panel as a character heatmap plus
the average the paper quotes (2.26 / 0.84 / 1.39 GiB/s).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.units import GIB, MIB
from repro.experiments import build_fabric, get_combination
from repro.experiments.configs import make_pml
from repro.mpi.collectives import pairwise_alltoall
from repro.mpi.job import Job
from repro.mpi.profiler import CommunicationProfiler
from repro.sim.engine import FlowSimulator
from repro.workloads.netbench import mpigraph, mpigraph_average

#: Darker character = more bandwidth, like the paper's colour scale.
RAMP = " .:-=+*#%@"


def ascii_heatmap(bw: np.ndarray, vmax: float) -> str:
    rows = []
    for r in bw:
        chars = [
            RAMP[min(len(RAMP) - 1, int(v / vmax * (len(RAMP) - 1)))]
            for v in r
        ]
        rows.append("".join(chars))
    return "\n".join(rows)


def panel(combo_key: str, nodes: int) -> np.ndarray:
    combo = get_combination(combo_key)
    fabric = build_fabric(combo, scale=1)
    alloc = fabric.net.terminals[:nodes]
    if combo.uses_parx:
        prof = CommunicationProfiler()
        prof.record(pairwise_alltoall(nodes, 1 * MIB))
        fabric = build_fabric(
            combo, scale=1, demands=prof.demands_for_nodes(alloc)
        )
    job = Job(fabric, alloc, pml=make_pml(combo))
    return mpigraph(job, FlowSimulator(fabric.net, mode="static"), size=1 * MIB)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=28)
    args = parser.parse_args()

    panels = {
        "Fat-Tree with ftree routing": "ft-ftree-linear",
        "HyperX with DFSSSP routing": "hx-dfsssp-linear",
        "HyperX with PARX routing": "hx-parx-clustered",
    }
    vmax = 3.4 * GIB
    for title, key in panels.items():
        bw = panel(key, args.nodes)
        avg = mpigraph_average(bw)
        print(f"\n=== {title} — avg {avg / GIB:.2f} GiB/s ===")
        print(ascii_heatmap(bw, vmax))
    print(f"\nscale: '{RAMP[0]}' = 0 GiB/s ... '{RAMP[-1]}' = 3.4 GiB/s")
    print("paper averages: 2.26 (Fat-Tree), 0.84 (DFSSSP), 1.39 (PARX) GiB/s")


if __name__ == "__main__":
    main()
