#!/usr/bin/env python3
"""Figure 7 in miniature: the 3-hour multi-application capacity mix.

Run:  python examples/capacity_scheduler.py [--scale 1] [--hours 3]

Fourteen applications (twelve proxy/x500 codes plus Multi-PingPong and
the deep-learning-style EmDL) each get a dedicated allocation covering
98.8% of the machine; the scheduler counts how many runs each completes
within the window for every one of the paper's five configurations.
"""

from __future__ import annotations

import argparse

from repro.experiments import THE_FIVE, run_capacity
from repro.experiments.capacity import CAPACITY_APPS
from repro.experiments.reporting import capacity_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--hours", type=float, default=3.0)
    args = parser.parse_args()

    runs = {}
    for combo in THE_FIVE:
        result = run_capacity(
            combo,
            scale=args.scale,
            window_seconds=args.hours * 3600.0,
            sim_mode="static",
        )
        runs[combo.label] = result.runs
        slowed = [
            f"{name} ({result.interfered_seconds[name] / result.solo_seconds[name]:.2f}x)"
            for name in result.runs
            if result.interfered_seconds[name] > result.solo_seconds[name] * 1.02
        ]
        note = f"  interference felt by: {', '.join(slowed)}" if slowed else ""
        print(f"{combo.label}: {result.total_runs} total runs{note}")

    print()
    print(
        capacity_table(
            f"Completed runs per application in {args.hours:g} h",
            runs,
            [a for a, _ in CAPACITY_APPS],
        )
    )
    print(
        "\npaper totals: 1202 / 980 / 1355 / 1017 / 1233 "
        "(baseline / SSSP / HX-linear / HX-random / PARX)"
    )


if __name__ == "__main__":
    main()
