#!/usr/bin/env python3
"""Figure 7 in miniature: the 3-hour multi-application capacity mix.

Run:  python examples/capacity_scheduler.py [--scale 1] [--hours 3]
      [--workers 2] [--dir DIR]

Fourteen applications (twelve proxy/x500 codes plus Multi-PingPong and
the deep-learning-style EmDL) each get a dedicated allocation covering
98.8% of the machine; the scheduler counts how many runs each completes
within the window for every one of the paper's five configurations.

The five panels run as a *campaign* (see ``repro campaign --help``):
one capacity cell per combination, fanned out over ``--workers`` and
resumable from ``--dir``.  Run counts for any ``--hours`` window are
recomputed from the ledger's per-app interfered runtimes, so changing
the window does not re-simulate anything.
"""

from __future__ import annotations

import argparse
import tempfile

from repro.campaign import (
    CampaignSpec,
    Ledger,
    campaign_paths,
    capacity_sweep,
    run_campaign,
)
from repro.experiments import THE_FIVE
from repro.experiments.capacity import CAPACITY_APPS, STARTUP_SECONDS
from repro.experiments.reporting import capacity_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--hours", type=float, default=3.0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--dir", default=None,
                        help="campaign directory (temp dir when omitted)")
    args = parser.parse_args()

    campaign_dir = args.dir or tempfile.mkdtemp(prefix="repro-capacity-")
    spec = CampaignSpec(
        "capacity-example",
        capacity_sweep([c.key for c in THE_FIVE], scale=args.scale),
    )
    status = run_campaign(spec, campaign_dir, workers=args.workers)
    if not status.all_completed:
        raise SystemExit(f"campaign incomplete: {status.to_dict()}")

    latest = Ledger(campaign_paths(campaign_dir)["ledger"]).latest()
    window = args.hours * 3600.0
    runs: dict[str, dict[str, int]] = {}
    for combo in THE_FIVE:
        rec = latest[f"{combo.key}/capacity/n0/s{args.scale}"]
        cap = rec["capacity"]
        runs[combo.label] = {
            name: int(window // (t + STARTUP_SECONDS))
            for name, t in cap["interfered_seconds"].items()
        }
        slowed = [
            f"{name} ({cap['interfered_seconds'][name] / cap['solo_seconds'][name]:.2f}x)"
            for name in cap["runs"]
            if cap["interfered_seconds"][name] > cap["solo_seconds"][name] * 1.02
        ]
        note = f"  interference felt by: {', '.join(slowed)}" if slowed else ""
        total = sum(runs[combo.label].values())
        print(f"{combo.label}: {total} total runs{note}")

    print()
    print(
        capacity_table(
            f"Completed runs per application in {args.hours:g} h",
            runs,
            [a for a, _ in CAPACITY_APPS],
        )
    )
    print(
        "\npaper totals: 1202 / 980 / 1355 / 1017 / 1233 "
        "(baseline / SSSP / HX-linear / HX-random / PARX)"
    )


if __name__ == "__main__":
    main()
