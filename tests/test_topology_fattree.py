"""Unit tests for the Fat-Tree generators."""

import pytest

from repro.core.errors import TopologyError
from repro.topology.fattree import (
    k_ary_n_tree,
    three_level_fattree,
    tree_level,
)


class TestKaryNTree:
    def test_fig2a_four_ary_two_tree(self):
        """Figure 2a: 4-ary 2-tree with 16 compute nodes."""
        net = k_ary_n_tree(4, 2)
        assert net.num_terminals == 16
        assert net.num_switches == 2 * 4  # n levels x k^(n-1)
        net.validate()

    def test_levels_annotated(self):
        net = k_ary_n_tree(3, 2)
        levels = {tree_level(net, sw) for sw in net.switches}
        assert levels == {0, 1}

    def test_leaf_uplink_count(self):
        net = k_ary_n_tree(4, 3)
        leaves = [sw for sw in net.switches if tree_level(net, sw) == 0]
        for leaf in leaves:
            ups = [
                l for l in net.out_links(leaf)
                if net.is_switch(l.dst) and tree_level(net, l.dst) == 1
            ]
            assert len(ups) == 4

    def test_undersubscription(self):
        net = k_ary_n_tree(4, 2, terminals_per_leaf=3)
        assert net.num_terminals == 12
        leaves = [sw for sw in net.switches if tree_level(net, sw) == 0]
        assert all(len(net.attached_terminals(l)) == 3 for l in leaves)

    def test_pruned_leaves(self):
        net = k_ary_n_tree(4, 2, num_leaves=2)
        leaves = [sw for sw in net.switches if tree_level(net, sw) == 0]
        assert len(leaves) == 2
        assert net.num_terminals == 8

    def test_too_many_leaves_rejected(self):
        with pytest.raises(TopologyError):
            k_ary_n_tree(4, 2, num_leaves=5)

    def test_full_tree_switch_count_3_levels(self):
        net = k_ary_n_tree(2, 3)
        assert net.num_switches == 3 * 4
        assert net.num_terminals == 8

    def test_bad_terminals_per_leaf(self):
        with pytest.raises(TopologyError):
            k_ary_n_tree(4, 2, terminals_per_leaf=5)


class TestThreeLevelFattree:
    def test_paper_defaults(self):
        """48 edges x 14 nodes = the rewired TSUBAME2 Fat-Tree plane."""
        net = three_level_fattree()
        assert net.num_terminals == 672
        edges = [sw for sw in net.switches if net.node_meta(sw)["role"] == "edge"]
        assert len(edges) == 48
        for e in edges:
            assert len(net.attached_terminals(e)) == 14
            ups = [l for l in net.out_links(e) if net.is_switch(l.dst)]
            assert len(ups) == 18
        net.validate()

    def test_three_levels_present(self):
        net = three_level_fattree()
        levels = {tree_level(net, sw) for sw in net.switches}
        assert levels == {0, 1, 2}

    def test_director_internal_balance(self):
        """Each line chip splits its radix half down, half up."""
        net = three_level_fattree(director_chip_radix=36)
        lines = [sw for sw in net.switches if net.node_meta(sw)["role"] == "line"]
        for line in lines:
            down = [
                l for l in net.out_links(line)
                if net.is_switch(l.dst) and tree_level(net, l.dst) == 0
            ]
            up = [
                l for l in net.out_links(line)
                if net.is_switch(l.dst) and tree_level(net, l.dst) == 2
            ]
            assert len(down) <= 18
            assert len(up) == 18

    def test_small_configuration(self):
        net = three_level_fattree(
            num_edge_switches=4,
            terminals_per_edge=2,
            uplinks_per_edge=4,
            num_directors=2,
            director_chip_radix=8,
        )
        assert net.num_terminals == 8
        net.validate()

    def test_odd_radix_rejected(self):
        with pytest.raises(TopologyError):
            three_level_fattree(director_chip_radix=7)

    def test_zero_directors_rejected(self):
        with pytest.raises(TopologyError):
            three_level_fattree(num_directors=0)


class TestTreeLevel:
    def test_missing_level_raises(self):
        from repro.topology.hyperx import hyperx

        net = hyperx((2, 2), 1)
        with pytest.raises(TopologyError):
            tree_level(net, net.switches[0])
