"""Tests for the resilience sweep and its CLI / campaign wiring."""

import json

import pytest

from repro.cli import main
from repro.experiments import run_resilience
from repro.experiments.reporting import resilience_table
from repro.topology import t2hx_fattree, t2hx_hyperx
from repro.topology.t2hx import paper_fault_count


class TestPaperFaultCount:
    def test_full_scale_matches_section_23(self):
        """15/864 HyperX switch cables; the Fat-Tree keeps the paper's
        197/2662 fault fraction (its 2662 counts terminal links too, our
        switch-cable model has 1728)."""
        assert paper_fault_count("hyperx", t2hx_hyperx()) == 15
        ft = t2hx_fattree()
        assert paper_fault_count("fattree", ft) == round(
            197 * len(ft.switch_cables()) / 2662
        )

    def test_scaled_planes_keep_the_ratio(self):
        hx = t2hx_hyperx(scale=2)
        count = paper_fault_count("hyperx", hx)
        total = len(hx.switch_cables())
        assert count == max(1, round(15 * total / 864))

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            paper_fault_count("slimfly", t2hx_hyperx(scale=2))


class TestRunResilience:
    @pytest.fixture(scope="class")
    def result(self):
        return run_resilience(
            combo_keys=["hx-dfsssp-linear"],
            levels=(0.0, 1.0),
            scale=2,
            num_nodes=8,
            msg_bytes=256 * 1024,
        )

    def test_one_cell_per_level(self, result):
        assert [c.level for c in result.cells] == [0.0, 1.0]
        assert result.cells[0].faults_injected == 0
        assert result.cells[1].faults_injected == result.cells[1].paper_faults

    def test_no_pair_lost_while_connected(self, result):
        assert result.total_unreachable == 0
        for cell in result.cells:
            assert cell.unreachable_pairs == 0
            assert cell.resweep_unreachable == 0

    def test_midrun_failure_recovery_recorded(self, result):
        for cell in result.cells:
            assert cell.events_applied == 1
            assert cell.reroutes  # at least one RerouteReport dict
            assert cell.reroutes[0]["engine"] == "dfsssp"

    def test_faults_never_speed_things_up(self, result):
        for cell in result.cells:
            assert cell.slowdown >= 1.0 - 1e-9

    def test_to_dict_and_table(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["total_unreachable"] == 0
        assert len(payload["cells"]) == 2
        text = resilience_table(result)
        assert "hx-dfsssp-linear" in text
        assert "0 unreachable pair(s)" in text

    def test_midrun_failure_can_be_disabled(self):
        result = run_resilience(
            combo_keys=["hx-dfsssp-linear"],
            levels=(0.0,),
            scale=2,
            num_nodes=6,
            msg_bytes=64 * 1024,
            midrun_failure=False,
        )
        cell = result.cells[0]
        assert cell.events_applied == 0
        assert cell.reroutes == []
        assert cell.midrun_cable is None
        assert cell.midrun_rank is None

    def test_midrun_criticality_recorded(self, result):
        """Every mid-run failed cable carries its static what-if rank,
        and the re-sweep's measured damage equals the static prediction."""
        for cell in result.cells:
            assert cell.midrun_cable is not None
            assert 1 <= cell.midrun_rank <= cell.midrun_of
            crit = cell.reroutes[0]["cable_criticality"]
            assert crit["cable"] == cell.midrun_cable
            assert crit["rank"] == cell.midrun_rank
            assert crit["affected_pairs"] == cell.midrun_affected_pairs
            # The static certificate agrees with the measured re-sweep.
            assert cell.reroutes[0]["pairs_affected"] == crit["affected_pairs"]
            assert cell.reroutes[0]["dests_affected"] == crit["dests_affected"]


class TestAdversarialMode:
    @pytest.fixture(scope="class")
    def pair(self):
        kwargs = dict(
            combo_keys=["hx-dfsssp-linear"],
            levels=(1.0,),
            scale=2,
            seed=3,
            num_nodes=8,
            msg_bytes=256 * 1024,
        )
        random = run_resilience(failure_mode="random", **kwargs)
        adversarial = run_resilience(failure_mode="adversarial", **kwargs)
        return random, adversarial

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_resilience(
                combo_keys=["hx-dfsssp-linear"], levels=(0.0,),
                scale=2, failure_mode="pessimal",
            )

    def test_adversarial_fails_worst_ranked_cable(self, pair):
        _, adversarial = pair
        cell = adversarial.cells[0]
        assert cell.failure_mode == "adversarial"
        assert cell.midrun_rank == 1

    def test_adversarial_equal_failure_counts(self, pair):
        random, adversarial = pair
        assert (
            adversarial.cells[0].faults_injected
            == random.cells[0].faults_injected
        )

    def test_adversarial_strictly_worse_midrun_damage(self, pair):
        """The certified worst case beats seeded-random at equal counts:
        strictly more pairs black-hole before the re-sweep repairs them."""
        random, adversarial = pair
        assert (
            adversarial.cells[0].midrun_affected_pairs
            > random.cells[0].midrun_affected_pairs
        )
        assert (
            adversarial.cells[0].reroutes[0]["pairs_affected"]
            > random.cells[0].reroutes[0]["pairs_affected"]
        )

    def test_both_modes_recover_every_pair(self, pair):
        for result in pair:
            assert result.total_unreachable == 0


class TestResilienceCli:
    def test_json_output_and_exit_code(self, capsys):
        rc = main([
            "resilience", "--combos", "hx-dfsssp-linear",
            "--levels", "0,1", "--nodes", "6", "--size-kib", "64",
            "--format", "json",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        payload = json.loads(out)
        assert payload["total_unreachable"] == 0
        assert len(payload["cells"]) == 2

    def test_text_output(self, capsys):
        rc = main([
            "resilience", "--combos", "ft-ftree-linear",
            "--levels", "1", "--nodes", "6", "--size-kib", "64",
            "--no-midrun-failure",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "unreachable pair(s)" in out


class TestCampaignRerouteCounters:
    def test_ledger_records_reroutes(self, tmp_path):
        from repro.campaign import (
            CampaignSpec,
            Ledger,
            campaign_paths,
            capability_grid,
            run_campaign,
            summarize,
        )
        from repro.topology.faults import FabricEvent

        cells = capability_grid(
            ["hx-dfsssp-linear"], ["imb:Alltoall:65536"], [8],
            reps=1, scale=2,
            fault_timeline=(
                FabricEvent("fail_cable", phase=1, cable=None, seed=0),
            ),
        )
        assert cells[0].cell_id.endswith("/evt1")
        spec = CampaignSpec("faulted", cells)
        status = run_campaign(spec, tmp_path)
        assert status.all_completed
        assert status.reroute_events >= 1
        assert status.reroute_unreachable == 0
        assert status.to_dict()["reroutes"]["events_applied"] >= 1

        record = Ledger(campaign_paths(tmp_path)["ledger"]).latest()[
            cells[0].cell_id
        ]
        assert record["reroutes"]["events_applied"] == 1
        assert record["reroutes"]["reports"][0]["resweep_ran"] in (
            True, False,
        )
        # summarize() rebuilds the same counters from the ledger.
        assert summarize(spec, Ledger(
            campaign_paths(tmp_path)["ledger"]
        )).reroute_events == status.reroute_events

    def test_cli_fail_cable_at(self, tmp_path, capsys):
        rc = main([
            "campaign", "run", "--dir", str(tmp_path),
            "--combos", "hx-dfsssp-linear",
            "--benchmarks", "imb:Alltoall:65536",
            "--nodes", "8", "--reps", "1", "--fail-cable-at", "1",
            "--format", "json",
        ])
        out = capsys.readouterr().out
        assert rc == 0, out
        payload = json.loads(out)
        assert payload["reroutes"]["events_applied"] >= 1
        assert payload["reroutes"]["unreachable_pairs"] == 0
