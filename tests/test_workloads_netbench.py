"""Unit tests for the pure network benchmarks (paper section 4.1)."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.units import GIB, KIB, MIB
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing.dfsssp import DfssspRouting
from repro.sim.engine import FlowSimulator
from repro.topology.hyperx import hyperx
from repro.workloads.netbench import (
    IMB_COLLECTIVES,
    baidu_allreduce,
    effective_bisection_bandwidth,
    emdl,
    imb_collective,
    imb_latency,
    mpigraph,
    mpigraph_average,
    multi_pingpong,
)


@pytest.fixture(scope="module")
def env():
    net = hyperx((4, 4), 2)
    fabric = OpenSM(net).run(DfssspRouting())
    job = Job(fabric, net.terminals[:14])
    sim = FlowSimulator(net, mode="static")
    return net, job, sim


class TestImb:
    def test_all_collectives_build(self, env):
        _, job, sim = env
        for op in IMB_COLLECTIVES:
            prog = imb_collective(job, op, 1 * KIB)
            assert len(prog) > 0

    def test_unknown_op(self, env):
        _, job, _ = env
        with pytest.raises(ConfigurationError):
            imb_collective(job, "Allgatherv", 8)

    def test_latency_monotone_in_size(self, env):
        _, job, sim = env
        small = imb_latency(job, sim, "Bcast", 8)
        large = imb_latency(job, sim, "Bcast", 4 * MIB)
        assert large > small

    def test_barrier_ignores_size(self, env):
        _, job, sim = env
        assert imb_latency(job, sim, "Barrier", 8) == imb_latency(
            job, sim, "Barrier", 4 * MIB
        )


class TestMpigraph:
    def test_matrix_shape_and_diagonal(self, env):
        _, job, sim = env
        bw = mpigraph(job, sim, size=256 * KIB)
        assert bw.shape == (14, 14)
        assert np.all(np.diag(bw) == 0)
        off = bw[~np.eye(14, dtype=bool)]
        assert np.all(off > 0)

    def test_average_below_line_rate(self, env):
        _, job, sim = env
        bw = mpigraph(job, sim, size=256 * KIB)
        assert 0 < mpigraph_average(bw) < 3.4 * GIB

    def test_single_cable_bottleneck_visible(self, env):
        """Ranks on two directly-cabled switches (7 linear nodes each in
        a T=2 fabric -> spans 7 switches... use 4 nodes on 2 switches):
        shift patterns crossing the single cable must show depressed
        bandwidth relative to intra-switch pairs."""
        net, _, sim = env
        fabric = OpenSM(net).run(DfssspRouting())
        s0 = net.attached_terminals(net.switches[0])
        s1 = net.attached_terminals(net.switches[1])
        job = Job(fabric, s0 + s1)  # 2+2 nodes on two switches
        bw = mpigraph(job, sim, size=1 * MIB)
        intra = bw[0, 1]
        cross = bw[0, 2]
        assert cross < intra


class TestEbb:
    def test_positive_below_line_rate(self, env):
        _, job, sim = env
        v = effective_bisection_bandwidth(job, sim, samples=5, seed=0)
        assert 0 < v < 3.4 * GIB

    def test_deterministic(self, env):
        _, job, sim = env
        a = effective_bisection_bandwidth(job, sim, samples=3, seed=1)
        b = effective_bisection_bandwidth(job, sim, samples=3, seed=1)
        assert a == b

    def test_needs_two_ranks(self, env):
        net, _, sim = env
        fabric = OpenSM(net).run(DfssspRouting())
        solo = Job(fabric, net.terminals[:1])
        with pytest.raises(ConfigurationError):
            effective_bisection_bandwidth(solo, sim)


class TestBaiduAndFriends:
    def test_baidu_zero_floats_is_barrier(self, env):
        _, job, sim = env
        assert baidu_allreduce(job, sim, 0) == pytest.approx(
            sim.run(job.barrier()).total_time
        )

    def test_baidu_monotone(self, env):
        _, job, sim = env
        small = baidu_allreduce(job, sim, 1024)
        large = baidu_allreduce(job, sim, 2**24)
        assert large > small

    def test_multi_pingpong_round_time(self, env):
        _, job, sim = env
        t = multi_pingpong(job, sim, 4 * KIB)
        assert 1e-6 < t < 1e-3

    def test_multi_pingpong_needs_even(self, env):
        net, _, sim = env
        fabric = OpenSM(net).run(DfssspRouting())
        odd = Job(fabric, net.terminals[:5])
        with pytest.raises(ConfigurationError):
            multi_pingpong(odd, sim, 8)

    def test_emdl_includes_compute(self, env):
        _, job, sim = env
        t = emdl(job, sim, 1 * MIB, steps=3, compute_seconds=0.1)
        assert t > 0.3  # at least the three compute phases
