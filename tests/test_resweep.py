"""Tests for the SM re-sweep: incremental LFT recomputation after faults."""

import pytest

from repro.core.errors import SimulationError
from repro.core.units import MIB
from repro.experiments import RunSpec, run_capability
from repro.ib.subnet_manager import OpenSM, RerouteReport, resweep
from repro.mpi.job import Job
from repro.routing.dfsssp import DfssspRouting
from repro.sim.engine import FlowSimulator
from repro.topology.faults import FabricEvent
from repro.topology.hyperx import hyperx


@pytest.fixture()
def fabric():
    net = hyperx((3, 3), 2)
    return OpenSM(net).run(DfssspRouting())


def _used_cable(fabric):
    """A switch-to-switch link some terminal pair actually routes over."""
    net = fabric.net
    src = net.attached_terminals(net.switches[0])[0]
    dst = net.attached_terminals(net.switches[-1])[0]
    path = fabric.path(src, dst)
    return net.link(path[1])


class TestResweep:
    def test_recovers_every_pair_after_failure(self, fabric):
        net = fabric.net
        cable = _used_cable(fabric)
        net.disable_cable(cable.id)
        report = resweep(
            fabric, DfssspRouting(),
            events=[FabricEvent("fail_cable", phase=0, cable=cable.id)],
        )
        assert report.resweep_ran
        assert report.engine == "dfsssp"
        assert report.dests_affected > 0
        assert report.entries_changed > 0
        assert report.paths_changed > 0
        assert report.num_unreachable == 0
        assert report.pairs_total == len(net.terminals) * (
            len(net.terminals) - 1
        )
        # The rerouted fabric detours: surviving pairs pay >= the hops
        # they paid before.
        assert report.hops_delta >= 0
        assert report.events[0]["action"] == "fail_cable"
        # Resolving any pair on the new tables must avoid the dead cable.
        for src in net.terminals[:4]:
            for dst in net.terminals[-4:]:
                if src == dst:
                    continue
                assert cable.id not in fabric.path(src, dst)

    def test_incremental_skip_when_nothing_stale(self, fabric):
        """Degrades change capacity, not reachability: no engine run."""
        net = fabric.net
        cable = _used_cable(fabric)
        net.set_capacity(cable.id, cable.capacity / 2)
        report = resweep(fabric, DfssspRouting())
        assert not report.resweep_ran
        assert report.entries_changed == 0
        assert "skipped" in str(report)

    def test_restore_forces_a_resweep(self, fabric):
        """A restored cable can open better paths, so the skip is off."""
        net = fabric.net
        cable = _used_cable(fabric)
        net.disable_cable(cable.id)
        resweep(fabric, DfssspRouting())
        net.enable_cable(cable.id)
        report = resweep(
            fabric, DfssspRouting(),
            events=[FabricEvent("restore_cable", phase=0, cable=cable.id)],
        )
        assert report.resweep_ran
        assert report.hops_delta <= 0  # restoring never lengthens paths

    def test_opensm_method_and_notes(self, fabric):
        net = fabric.net
        cable = _used_cable(fabric)
        net.disable_cable(cable.id)
        sm = OpenSM(net)
        report = sm.resweep(fabric, DfssspRouting())
        assert isinstance(report, RerouteReport)
        assert any("resweep" in note for note in fabric.notes)

    def test_to_dict_is_complete(self, fabric):
        net = fabric.net
        cable = _used_cable(fabric)
        net.disable_cable(cable.id)
        payload = resweep(fabric, DfssspRouting()).to_dict()
        for key in ("engine", "events", "dests_affected", "entries_changed",
                    "paths_changed", "pairs_total", "hops_before",
                    "hops_after", "hops_delta", "unreachable_pairs",
                    "resweep_ran"):
            assert key in payload


class TestAcceptanceScenario:
    """The issue's scripted scenario: route, run with a mid-phase cable
    failure and SM re-sweep, compare against the pristine run, and check
    that skipping the re-sweep is refused."""

    def test_fail_resweep_reroute_end_to_end(self, fabric):
        net = fabric.net
        job = Job(fabric, net.terminals[:8])
        prog = job.alltoall(1 * MIB)
        assert len(prog.phases) > 1
        pristine = FlowSimulator(net, mode="static").run(prog).total_time

        cable = _used_cable(fabric)
        engine = DfssspRouting()
        reports = []

        def on_event(events, phase_index):
            report = resweep(fabric, engine, events=events)
            job.invalidate_paths()
            reports.append(report)
            return report

        sim = FlowSimulator(
            net, mode="static",
            timeline=[FabricEvent("fail_cable", phase=1, cable=cable.id)],
            on_fabric_event=on_event,
            reroute=lambda m: tuple(fabric.path(m.src, m.dst)),
        )
        res = sim.run(prog)
        assert res.events_applied == 1
        assert reports and reports[0].paths_changed > 0
        assert reports[0].num_unreachable == 0
        assert res.total_time >= pristine

    def test_stale_run_without_resweep_raises(self, fabric):
        net = fabric.net
        job = Job(fabric, net.terminals[:8])
        prog = job.alltoall(1 * MIB)
        # Kill a switch cable a phase-1 message actually crosses.
        victim = next(
            m.path[1] for m in prog.phases[1].messages if len(m.path) >= 3
        )
        sim = FlowSimulator(
            net, mode="static",
            timeline=[FabricEvent("fail_cable", phase=1, cable=victim)],
        )
        with pytest.raises(SimulationError, match="stale"):
            sim.run(prog)

    def test_runspec_timeline_round_trips_and_runs(self):
        spec = RunSpec(
            combo_key="hx-dfsssp-linear",
            benchmark="imb:Alltoall:65536",
            num_nodes=8,
            reps=1,
            scale=2,
            fault_timeline=(
                FabricEvent("fail_cable", phase=1, cable=None, seed=3),
            ),
        )
        assert spec.cell_id.endswith("/evt1")
        back = RunSpec.from_dict(spec.to_dict())
        assert back.fault_timeline == spec.fault_timeline
        from repro.campaign.engine import resolve_measure

        measure, profile, hib = resolve_measure(back)
        result = run_capability(
            back, measure,
            rank_phases_for_profile=profile, higher_is_better=hib,
        )
        assert result.events_applied == 1
        assert result.unreachable_pairs == 0
        assert result.best > 0
