"""Unit tests for the proxy applications and x500 benchmarks."""

import pytest

from repro.mpi.collectives import rank_phase_bytes
from repro.workloads.proxyapps import PROXY_APPS, get_app
from repro.workloads.x500 import X500_APPS, Graph500, Hpcg, Hpl

ALL_APPS = dict(PROXY_APPS) | dict(X500_APPS)


class TestRegistry:
    def test_nine_proxy_apps(self):
        assert set(PROXY_APPS) == {
            "AMG", "CoMD", "MiFE", "FFT", "FFVC", "mVMC", "NTCh", "MILC",
            "Qbox",
        }

    def test_three_x500(self):
        assert set(X500_APPS) == {"HPL", "HPCG", "GraD"}

    def test_get_app_covers_both(self):
        assert get_app("AMG").name == "AMG"
        assert get_app("HPL").name == "HPL"
        with pytest.raises(KeyError):
            get_app("DOOM")


class TestAppStructure:
    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    @pytest.mark.parametrize("p", [4, 7, 16, 56])
    def test_phases_well_formed(self, name, p):
        app = ALL_APPS[name]
        phases = app.rank_phases(p)
        assert phases, f"{name} generates no traffic at p={p}"
        for phase in phases:
            for s, d, sz in phase:
                assert 0 <= s < p and 0 <= d < p
                assert s != d
                assert sz >= 0

    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_compute_positive(self, name):
        app = ALL_APPS[name]
        for p in (4, 56, 672):
            assert app.compute_time(p) > 0

    @pytest.mark.parametrize("name", sorted(ALL_APPS))
    def test_comm_rounds_positive(self, name):
        assert ALL_APPS[name].comm_rounds >= 1

    def test_scaling_declarations(self):
        assert PROXY_APPS["NTCh"].scaling == "strong"
        assert PROXY_APPS["AMG"].scaling == "weak"
        assert PROXY_APPS["FFVC"].scaling == "weak*"


class TestScalingRules:
    def test_weak_scaling_constant_compute(self):
        app = PROXY_APPS["AMG"]
        assert app.compute_time(7) == app.compute_time(672)

    def test_strong_scaling_shrinks_compute(self):
        app = PROXY_APPS["NTCh"]
        assert app.compute_time(672) < app.compute_time(7) / 50

    def test_ffvc_input_reduction_above_64(self):
        """Paper section 5.2: FFVC's cuboid halves above 64 nodes."""
        app = PROXY_APPS["FFVC"]
        assert app.cuboid(64) == 128
        assert app.cuboid(128) == 64
        assert app.compute_time(128) < app.compute_time(64) / 4

    def test_qbox_input_reduction_at_672(self):
        app = PROXY_APPS["Qbox"]
        assert app.compute_time(672) == pytest.approx(
            app.compute_time(448) / 2
        )
        small = rank_phase_bytes(app.rank_phases(448))
        # Byte volume also halves (per-rank), modulo the grid reshape.
        big_pairless = rank_phase_bytes(app.rank_phases(672))
        assert big_pairless < small * (672 / 448)

    def test_hpl_matrix_shrink_at_224(self):
        app = X500_APPS["HPL"]
        assert app.matrix_bytes_per_process(112) == pytest.approx(2**30)
        assert app.matrix_bytes_per_process(224) == pytest.approx(2**28)

    def test_hpl_flops_grow_with_scale(self):
        app = X500_APPS["HPL"]
        assert app.total_flops(112) > app.total_flops(56)


class TestMetrics:
    def test_proxy_metric_is_runtime(self):
        app = PROXY_APPS["CoMD"]
        assert app.metric(8, 123.0) == 123.0
        assert not app.higher_is_better

    def test_hpl_metric_gflops(self):
        app = Hpl()
        flops = app.total_flops(56)
        assert app.metric(56, 100.0) == pytest.approx(flops / 100.0 / 1e9)
        assert app.higher_is_better

    def test_hpcg_metric_gflops(self):
        app = Hpcg()
        assert app.metric(8, 50.0) == pytest.approx(
            app.total_flops(8) / 50.0 / 1e9
        )

    def test_graph500_metric_teps(self):
        app = Graph500()
        edges = app.edges_per_process() * 8 * app.iterations
        assert app.metric(8, 10.0) == pytest.approx(edges / 10.0 / 1e9)


class TestEndToEnd:
    def test_kernel_runtime_runs_on_simulator(self):
        from repro.ib.subnet_manager import OpenSM
        from repro.mpi.job import Job
        from repro.routing.dfsssp import DfssspRouting
        from repro.sim.engine import FlowSimulator
        from repro.topology.hyperx import hyperx

        net = hyperx((4, 4), 2)
        fabric = OpenSM(net).run(DfssspRouting())
        job = Job(fabric, net.terminals[:8])
        sim = FlowSimulator(net, mode="static")
        for name in ("CoMD", "MILC", "HPCG"):
            app = ALL_APPS[name]
            rt = app.kernel_runtime(job, sim)
            assert rt > 0
            # Comm is a minority share but not negligible for MILC.
            compute_only = app.iterations * app.compute_time(8)
            assert rt > compute_only
            assert rt < compute_only * 3

    def test_comm_time_scales_with_rounds(self):
        from repro.ib.subnet_manager import OpenSM
        from repro.mpi.job import Job
        from repro.routing.dfsssp import DfssspRouting
        from repro.sim.engine import FlowSimulator
        from repro.topology.hyperx import hyperx

        net = hyperx((4, 4), 2)
        fabric = OpenSM(net).run(DfssspRouting())
        job = Job(fabric, net.terminals[:8])
        sim = FlowSimulator(net, mode="static")
        app = PROXY_APPS["MILC"]
        full = app.comm_time(job, sim)
        one_round = sim.run(
            job.materialize(app.rank_phases(8))
        ).total_time
        assert full == pytest.approx(app.comm_rounds * one_round, rel=1e-6)
