"""Unit + property tests for generic traffic patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.workloads.patterns import (
    bisection_pairs,
    incast,
    nd_halo_exchange,
    rank_grid,
    shift_pattern,
    transpose_alltoall,
    uniform_random_pairs,
)


class TestRankGrid:
    @given(st.integers(1, 512), st.integers(1, 4))
    @settings(max_examples=80, deadline=None)
    def test_product_equals_p(self, p, dims):
        shape = rank_grid(p, dims)
        assert len(shape) == dims
        assert int(np.prod(shape)) == p

    def test_near_cubic(self):
        assert rank_grid(12, 3) == (3, 2, 2)
        assert rank_grid(64, 3) == (4, 4, 4)
        assert rank_grid(8, 2) == (4, 2)

    def test_prime(self):
        assert rank_grid(7, 3) == (7, 1, 1)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            rank_grid(0, 3)


class TestHaloExchange:
    def test_face_neighbor_count_3d(self):
        phases = nd_halo_exchange(27, 100.0, dims=3)
        assert len(phases) == 6  # one phase per face direction
        for phase in phases:
            assert len(phase) == 27  # periodic: everyone has a neighbour

    def test_27_point_stencil(self):
        phases = nd_halo_exchange(
            27, 100.0, dims=3, corners=True, corner_bytes=10.0
        )
        assert len(phases) == 26  # 3^3 - 1 directions

    def test_corner_sizes(self):
        phases = nd_halo_exchange(
            8, 100.0, dims=3, corners=True, corner_bytes=7.0
        )
        sizes = {sz for ph in phases for _, _, sz in ph}
        assert sizes == {100.0, 7.0}

    def test_non_periodic_boundary(self):
        phases = nd_halo_exchange(4, 1.0, dims=1, periodic=False)
        # Line of 4: only 3 interior sends each way.
        assert all(len(ph) == 3 for ph in phases)

    def test_no_self_sends(self):
        for phases in (
            nd_halo_exchange(2, 1.0, dims=3),
            nd_halo_exchange(5, 1.0, dims=2),
        ):
            for ph in phases:
                assert all(s != d for s, d, _ in ph)

    def test_each_phase_is_injective(self):
        """Each direction's sends form a partial permutation: no rank
        sends or receives twice within one phase."""
        for ph in nd_halo_exchange(12, 1.0, dims=2):
            srcs = [s for s, _, _ in ph]
            dsts = [d for _, d, _ in ph]
            assert len(set(srcs)) == len(srcs)
            assert len(set(dsts)) == len(dsts)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            nd_halo_exchange(8, -1.0)


class TestTranspose:
    def test_volume_conserved(self):
        group = [3, 5, 7, 9]
        phase = transpose_alltoall(group, 1200.0)
        sent = {}
        for s, d, sz in phase:
            sent[s] = sent.get(s, 0.0) + sz
        assert all(v == pytest.approx(1200.0 * 3 / 4) for v in sent.values())

    def test_all_pairs(self):
        phase = transpose_alltoall([0, 1, 2], 30.0)
        assert len(phase) == 6

    def test_singleton_group_empty(self):
        assert transpose_alltoall([5], 100.0) == []


class TestShiftAndFriends:
    @given(st.integers(2, 64), st.integers(1, 63))
    @settings(max_examples=60, deadline=None)
    def test_shift_is_permutation(self, p, shift):
        if shift % p == 0:
            return
        phase = shift_pattern(p, 1.0, shift)
        assert sorted(s for s, _, _ in phase) == list(range(p))
        assert sorted(d for _, d, _ in phase) == list(range(p))

    def test_zero_shift_rejected(self):
        with pytest.raises(ConfigurationError):
            shift_pattern(4, 1.0, 4)

    def test_bisection_pairs_match_halves(self):
        phase = bisection_pairs(10, 1.0, seed=0)
        assert len(phase) == 10  # 5 pairs, both directions
        touched = {s for s, _, _ in phase} | {d for _, d, _ in phase}
        assert len(touched) == 10

    def test_bisection_deterministic(self):
        assert bisection_pairs(8, 1.0, seed=3) == bisection_pairs(8, 1.0, seed=3)

    def test_incast(self):
        phase = incast(5, 2.0, root=1)
        assert all(d == 1 for _, d, _ in phase)
        assert len(phase) == 4

    def test_uniform_random_no_self(self):
        phase = uniform_random_pairs(6, 1.0, 50, seed=0)
        assert len(phase) == 50
        assert all(s != d for s, d, _ in phase)
