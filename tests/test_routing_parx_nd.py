"""Tests for the N-dimensional PARX generalisation.

The key correctness anchor: the generalised selection rule must derive
the paper's 2-D Table 1 *exactly*, and the 3-D engine must satisfy the
same four criteria of section 3.2 (minimal small paths, detouring large
paths, choice for every pair, loop/deadlock freedom).
"""

import itertools

import pytest

from repro.core.errors import ConfigurationError
from repro.ib.subnet_manager import OpenSM
from repro.routing import audit_fabric
from repro.routing.parx import LARGE_LID_CHOICE, SMALL_LID_CHOICE
from repro.routing.parx_nd import (
    NdParxPml,
    NdParxRouting,
    half_of,
    nd_lid_choices,
)
from repro.topology.hyperx import hyperx, hyperx_quadrant


def _quadrant_rep(shape, q):
    """A coordinate in quadrant q of a 2-D shape."""
    sx, sy = shape
    return {
        0: (0, 0),
        1: (0, sy - 1),
        2: (sx - 1, sy - 1),
        3: (sx - 1, 0),
    }[q]


class TestReducesToTable1:
    """Exhaustive check: N-D rule == the paper's printed Table 1 in 2-D."""

    @pytest.mark.parametrize("sq,dq", itertools.product(range(4), range(4)))
    def test_small(self, sq, dq):
        shape = (12, 8)
        got = nd_lid_choices(
            _quadrant_rep(shape, sq), _quadrant_rep(shape, dq), shape,
            large=False,
        )
        assert sorted(got) == sorted(SMALL_LID_CHOICE[(sq, dq)])

    @pytest.mark.parametrize("sq,dq", itertools.product(range(4), range(4)))
    def test_large(self, sq, dq):
        shape = (12, 8)
        got = nd_lid_choices(
            _quadrant_rep(shape, sq), _quadrant_rep(shape, dq), shape,
            large=True,
        )
        assert sorted(got) == sorted(LARGE_LID_CHOICE[(sq, dq)])

    def test_quadrant_reps_are_consistent(self):
        shape = (12, 8)
        for q in range(4):
            assert hyperx_quadrant(_quadrant_rep(shape, q), shape) == q


class TestHalfOf:
    def test_values(self):
        assert half_of((0, 5), (4, 12), 0) == 0
        assert half_of((2, 5), (4, 12), 0) == 1
        assert half_of((2, 5), (4, 12), 1) == 0
        assert half_of((2, 6), (4, 12), 1) == 1


@pytest.fixture(scope="module")
def fabric3d():
    net = hyperx((4, 4, 4), 1)
    # 3-D needs 6 rules -> lmc=3 gives 8 LIDs (the surplus two route
    # minimally).  Footnote 8 of the paper in action: 3-D PARX exceeds
    # QDR's 8 virtual lanes, so this "future deployment" runs with the
    # 16 lanes of newer hardware.
    sm = OpenSM(net, lmc=3, max_vls=16)
    return net, sm.run(NdParxRouting())


class Test3dEngine:
    def test_clean_audit(self, fabric3d):
        net, fabric = fabric3d
        audit = audit_fabric(fabric, sample_pairs=2500)
        assert audit.clean
        assert audit.minimal_pairs > 0
        assert audit.non_minimal_pairs > 0

    def test_vl_budget(self, fabric3d):
        _, fabric = fabric3d
        assert 1 <= fabric.num_vls <= 16

    def test_qdr_vl_budget_exceeded_in_3d(self):
        """Paper footnote 8: 'PARX may exceed a VL hardware limit for
        larger HPC systems' — reproduced: 3-D PARX does not fit QDR's
        8 lanes."""
        from repro.core.errors import DeadlockError

        net = hyperx((4, 4, 4), 1)
        with pytest.raises(DeadlockError):
            OpenSM(net, lmc=3, max_vls=8).run(NdParxRouting())

    def test_small_choices_minimal(self, fabric3d):
        net, fabric = fabric3d
        shape = (4, 4, 4)
        src = net.terminals[0]
        for dst in (net.terminals[21], net.terminals[-1]):
            sc = tuple(net.node_meta(net.attached_switch(src))["coord"])
            dc = tuple(net.node_meta(net.attached_switch(dst))["coord"])
            hops = {
                i: net.path_hops(fabric.path(src, dst, i)) for i in range(8)
            }
            minimal = min(hops.values())
            for x in nd_lid_choices(sc, dc, shape, large=False):
                assert hops[x] == minimal

    def test_large_choices_detour_same_orthant(self, fabric3d):
        net, fabric = fabric3d
        shape = (4, 4, 4)
        # Two terminals whose switches share every dimension's half but
        # differ in all coordinates: (0,0,0) and (1,1,1).
        by_coord = {
            tuple(net.node_meta(net.attached_switch(t))["coord"]): t
            for t in net.terminals
        }
        src, dst = by_coord[(0, 0, 0)], by_coord[(1, 1, 1)]
        hops = {i: net.path_hops(fabric.path(src, dst, i)) for i in range(8)}
        small = min(
            hops[x] for x in nd_lid_choices((0,) * 3, (1,) * 3, shape, False)
        )
        for x in nd_lid_choices((0,) * 3, (1,) * 3, shape, True):
            assert hops[x] > small

    def test_pml_selects_from_rule(self, fabric3d):
        net, fabric = fabric3d
        pml = NdParxPml(seed=0)
        src, dst = net.terminals[0], net.terminals[-1]
        shape = (4, 4, 4)
        sc = tuple(net.node_meta(net.attached_switch(src))["coord"])
        dc = tuple(net.node_meta(net.attached_switch(dst))["coord"])
        for size, large in ((8, False), (4096, True)):
            for _ in range(6):
                idx = pml.lid_index(fabric, src, dst, size)
                assert idx in nd_lid_choices(sc, dc, shape, large)

    def test_requires_enough_lids(self):
        net = hyperx((4, 4, 4), 1)
        with pytest.raises(ConfigurationError):
            OpenSM(net, lmc=2).run(NdParxRouting())  # 4 < 6 rules

    def test_requires_even_dims(self):
        net = hyperx((3, 4), 1)
        with pytest.raises(ConfigurationError):
            OpenSM(net, lmc=2).run(NdParxRouting())

    def test_demand_validation(self):
        with pytest.raises(ConfigurationError):
            NdParxRouting({0: {1: 999}})


class Test2dCompatibility:
    def test_2d_engine_matches_parx_choice_semantics(self):
        """Running the N-D engine on a 2-D lattice with lmc=2 yields a
        fabric whose minimal/detour structure matches the 2-D PARX."""
        net = hyperx((4, 4), 1)
        nd = OpenSM(net, lmc=2).run(NdParxRouting())
        audit = audit_fabric(nd)
        assert audit.clean
        assert audit.non_minimal_pairs > 0
