"""Tests for the extended collectives: pipeline, reduce-scatter, Bruck
allgather, alltoallv, and their Job facades."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.mpi import collectives as coll
from repro.mpi.job import Job

RANKS = st.integers(1, 33)
SIZES = st.floats(1.0, 1e7, allow_nan=False)


class TestPipelineBcast:
    @given(st.integers(2, 33), SIZES)
    @settings(max_examples=40, deadline=None)
    def test_byte_conservation(self, p, size):
        """Every non-root rank receives exactly ``size`` bytes in total."""
        received: dict[int, float] = {}
        for phase in coll.pipeline_bcast(p, size):
            for _, dst, sz in phase:
                received[dst] = received.get(dst, 0.0) + sz
        assert set(received) == set(range(1, p))
        for v in received.values():
            assert v == pytest.approx(size)

    def test_chain_traffic_is_shift_one(self):
        for phase in coll.pipeline_bcast(9, 900.0, segments=4):
            for src, dst, _ in phase:
                assert dst == src + 1

    def test_phase_count(self):
        assert len(coll.pipeline_bcast(5, 100.0, segments=4)) == 4 + 5 - 2

    def test_causality(self):
        """A rank never forwards a segment before receiving it."""
        p, segments = 7, 5
        have = {0: set(range(segments))}
        for phase in coll.pipeline_bcast(p, 500.0, segments=segments):
            sent_now = []
            for src, dst, _ in phase:
                assert have.get(src), f"rank {src} forwarded with nothing"
                sent_now.append((src, dst))
            for src, dst in sent_now:
                # The chain forwards its oldest unforwarded segment.
                have.setdefault(dst, set()).update({min(have[src])})
                have[src] = have[src] - {min(have[src])} or have[src]

    def test_pipeline_reduce_mirrors(self):
        b = coll.rank_phase_bytes(coll.pipeline_bcast(6, 1000.0))
        r = coll.rank_phase_bytes(coll.pipeline_reduce(6, 1000.0))
        assert b == pytest.approx(r)

    def test_single_rank_empty(self):
        assert coll.pipeline_bcast(1, 100.0) == []


class TestReduceScatter:
    @given(st.sampled_from([2, 4, 8, 16, 32]), SIZES)
    @settings(max_examples=30, deadline=None)
    def test_power_of_two_volume(self, p, size):
        """Recursive halving moves size * (1 - 1/p) bytes per rank."""
        total = coll.rank_phase_bytes(coll.reduce_scatter(p, size))
        assert total == pytest.approx(p * size * (1 - 1 / p))

    def test_non_power_of_two_folds_first(self):
        phases = coll.reduce_scatter(6, 96.0)
        assert len(phases[0]) == 2  # two folded pairs
        assert all(sz == 96.0 for _, _, sz in phases[0])

    def test_single_rank(self):
        assert coll.reduce_scatter(1, 10.0) == []


class TestBruckAllgather:
    @given(st.integers(2, 33), SIZES)
    @settings(max_examples=40, deadline=None)
    def test_log_rounds(self, p, size):
        assert len(coll.bruck_allgather(p, size)) == math.ceil(math.log2(p))

    @given(st.integers(2, 33), SIZES)
    @settings(max_examples=40, deadline=None)
    def test_everyone_collects_all_blocks(self, p, size):
        received: dict[int, float] = {}
        for phase in coll.bruck_allgather(p, size):
            for _, dst, sz in phase:
                received[dst] = received.get(dst, 0.0) + sz
        for r in range(p):
            assert received[r] == pytest.approx((p - 1) * size)

    def test_fewer_phases_than_ring(self):
        assert len(coll.bruck_allgather(16, 1.0)) < len(
            coll.ring_allgather(16, 1.0)
        )


class TestAlltoallv:
    def test_respects_matrix(self):
        sizes = [[0.0, 10.0], [20.0, 0.0]]
        phases = coll.alltoallv(2, sizes)
        moved = {(s, d): sz for ph in phases for s, d, sz in ph}
        assert moved == {(0, 1): 10.0, (1, 0): 20.0}

    def test_zero_blocks_skipped(self):
        sizes = [[0.0] * 3 for _ in range(3)]
        sizes[0][1] = 5.0
        phases = coll.alltoallv(3, sizes)
        assert sum(len(ph) for ph in phases) == 1

    def test_bad_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            coll.alltoallv(3, [[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ConfigurationError):
            coll.alltoallv(2, [[0.0, -1.0], [0.0, 0.0]])


class TestJobFacades:
    @pytest.fixture(scope="class")
    def job(self):
        from repro.ib.subnet_manager import OpenSM
        from repro.routing.dfsssp import DfssspRouting
        from repro.topology.hyperx import hyperx

        net = hyperx((4, 4), 1)
        fabric = OpenSM(net).run(DfssspRouting())
        return Job(fabric, net.terminals[:8])

    def test_allgather_algorithm_switch(self, job):
        small = job.allgather(1024)
        large = job.allgather(1 << 20)
        assert "bruck" in small.label
        assert "ring" in large.label
        with pytest.raises(ConfigurationError):
            job.allgather(8, algorithm="quantum")

    def test_reduce_scatter(self, job):
        prog = job.reduce_scatter(800.0)
        assert len(prog) == 3  # 8 ranks -> 3 halving rounds

    def test_alltoallv(self, job):
        sizes = [[0.0] * 8 for _ in range(8)]
        sizes[0][7] = 100.0
        prog = job.alltoallv(sizes)
        msgs = [m for ph in prog for m in ph]
        assert len(msgs) == 1
        assert msgs[0].size == 100.0

    def test_bcast_pipeline_switch(self, job):
        small = job.bcast(1024)
        large = job.bcast(1 << 20)
        # Pipeline chain has more phases than the binomial tree.
        assert len(large) > len(small)


class TestLftRoundTrip:
    def test_dump_and_load(self):
        from repro.ib.subnet_manager import OpenSM
        from repro.routing.dfsssp import DfssspRouting
        from repro.topology.hyperx import hyperx

        net = hyperx((3, 3), 1)
        fabric = OpenSM(net).run(DfssspRouting())
        text = fabric.dump_lft()
        assert "Switch" in text

        t0, t1 = net.terminals[0], net.terminals[-1]
        before = fabric.path(t0, t1)
        vls_before = fabric.num_vls
        fabric.load_lft(text)
        assert fabric.path(t0, t1) == before
        assert fabric.num_vls == vls_before

    def test_load_rejects_foreign_link(self):
        from repro.core.errors import RoutingError
        from repro.ib.addressing import assign_lids_sequential
        from repro.ib.fabric import Fabric
        from repro.topology.hyperx import hyperx

        net = hyperx((3,), 1)
        fabric = Fabric(net, assign_lids_sequential(net))
        foreign = net.out_links(net.switches[1])[0].id
        bad = f"Switch {net.switches[0]} lid 0\n1 {foreign} 0\n"
        with pytest.raises(RoutingError):
            fabric.load_lft(bad)

    def test_load_rejects_headerless_entry(self):
        from repro.core.errors import RoutingError
        from repro.ib.addressing import assign_lids_sequential
        from repro.ib.fabric import Fabric
        from repro.topology.hyperx import hyperx

        net = hyperx((3,), 1)
        fabric = Fabric(net, assign_lids_sequential(net))
        with pytest.raises(RoutingError):
            fabric.load_lft("1 2 0\n")
