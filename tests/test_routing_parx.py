"""Tests for the PARX routing engine — the paper's contribution.

These encode the claims of sections 3.2.1-3.2.3: Table 1's selection
matrices, rules R1-R4, minimal/non-minimal path coexistence, demand
ingestion, fault fallback, and deadlock freedom within 8 VLs.
"""

import itertools

import pytest

from repro.core.errors import ConfigurationError
from repro.ib.subnet_manager import OpenSM
from repro.routing import audit_fabric
from repro.routing.parx import (
    HALF_REMOVED_BY_LID,
    LARGE_LID_CHOICE,
    SMALL_LID_CHOICE,
    ParxRouting,
    lid_choices,
)
from repro.topology.faults import inject_cable_faults
from repro.topology.hyperx import hyperx, hyperx_quadrant
from repro.topology.t2hx import t2hx_hyperx


@pytest.fixture(scope="module")
def fabric44():
    net = hyperx((4, 4), 2)
    return net, OpenSM(net, lmc=2, lid_policy="quadrant").run(ParxRouting())


def _terminal_in_quadrant(net, shape, q):
    for t in net.terminals:
        sw = net.attached_switch(t)
        if hyperx_quadrant(net.node_meta(sw)["coord"], shape) == q:
            return t
    raise AssertionError(f"no terminal in quadrant {q}")


class TestTable1Structure:
    def test_complete(self):
        keys = set(itertools.product(range(4), range(4)))
        assert set(SMALL_LID_CHOICE) == keys
        assert set(LARGE_LID_CHOICE) == keys

    def test_indices_in_range(self):
        for table in (SMALL_LID_CHOICE, LARGE_LID_CHOICE):
            for choices in table.values():
                assert choices
                assert all(0 <= x <= 3 for x in choices)

    def test_same_quadrant_diagonal_has_two_choices(self):
        for q in range(4):
            assert len(SMALL_LID_CHOICE[(q, q)]) == 2
            assert len(LARGE_LID_CHOICE[(q, q)]) == 2

    def test_small_and_large_disjoint_for_same_quadrant(self):
        """For same-quadrant pairs the minimal and detour LIDs differ —
        criterion (3): the choice between (1) and (2) always exists."""
        for q in range(4):
            assert not set(SMALL_LID_CHOICE[(q, q)]) & set(LARGE_LID_CHOICE[(q, q)])

    def test_diagonal_quadrants_share_choices(self):
        """Opposite-corner pairs already have maximal path diversity;
        Table 1a and 1b agree there (no detour is possible/needed)."""
        assert SMALL_LID_CHOICE[(0, 2)] == LARGE_LID_CHOICE[(0, 2)]
        assert SMALL_LID_CHOICE[(2, 0)] == LARGE_LID_CHOICE[(2, 0)]
        assert SMALL_LID_CHOICE[(1, 3)] == LARGE_LID_CHOICE[(1, 3)]
        assert SMALL_LID_CHOICE[(3, 1)] == LARGE_LID_CHOICE[(3, 1)]

    def test_lid_choices_dispatch(self):
        assert lid_choices(0, 1, large=False) == (1,)
        assert lid_choices(0, 1, large=True) == (0,)


class TestRuleSemantics:
    """The defining properties that pin Table 1 to the geometry."""

    @pytest.mark.parametrize("sq,dq", itertools.product(range(4), range(4)))
    def test_small_choices_preserve_minimal_paths(self, fabric44, sq, dq):
        net, fabric = fabric44
        shape = (4, 4)
        src = _terminal_in_quadrant(net, shape, sq)
        dst = _terminal_in_quadrant(net, shape, dq)
        if src == dst:
            return
        base_hops = min(
            net.path_hops(fabric.path(src, dst, i)) for i in range(4)
        )
        for x in SMALL_LID_CHOICE[(sq, dq)]:
            assert net.path_hops(fabric.path(src, dst, x)) == base_hops

    @pytest.mark.parametrize("q", range(4))
    def test_large_choices_force_detour_within_quadrant(self, fabric44, q):
        """Same-quadrant pairs: Table 1b LIDs must take strictly longer
        paths than the minimal distance (the forced detour of Fig. 3b)."""
        net, fabric = fabric44
        shape = (4, 4)
        terms = [
            t for t in net.terminals
            if hyperx_quadrant(
                net.node_meta(net.attached_switch(t))["coord"], shape
            ) == q
        ]
        src, dst = terms[0], terms[-1]
        assert net.attached_switch(src) != net.attached_switch(dst)
        small = min(
            net.path_hops(fabric.path(src, dst, x))
            for x in SMALL_LID_CHOICE[(q, q)]
        )
        for x in LARGE_LID_CHOICE[(q, q)]:
            assert net.path_hops(fabric.path(src, dst, x)) > small

    def test_rules_cover_all_four_halves(self):
        assert sorted(HALF_REMOVED_BY_LID.values()) == [
            "bottom", "left", "right", "top",
        ]


class TestEngineOutput:
    def test_clean_audit(self, fabric44):
        _, fabric = fabric44
        audit = audit_fabric(fabric)
        assert audit.clean
        assert audit.minimal_pairs > 0
        assert audit.non_minimal_pairs > 0  # both path kinds exist

    def test_vl_budget(self, fabric44):
        _, fabric = fabric44
        assert 1 <= fabric.num_vls <= 8

    def test_requires_lmc2(self):
        net = hyperx((4, 4), 1)
        with pytest.raises(ConfigurationError):
            OpenSM(net, lmc=0).run(ParxRouting())

    def test_requires_even_2d(self):
        net = hyperx((3, 4), 1)
        with pytest.raises(ConfigurationError):
            OpenSM(net, lmc=2).run(ParxRouting())

    def test_rejects_bad_demand_values(self):
        with pytest.raises(ConfigurationError):
            ParxRouting({0: {1: 300}})


class TestDemandIngestion:
    def test_demand_separates_hot_paths(self):
        """Two hot source-destination pairs in the same quadrant row
        should end up on disjoint links where possible."""
        net = hyperx((4, 4), 2)
        terms = net.terminals
        hot = {terms[0]: {terms[2]: 255}, terms[1]: {terms[3]: 255}}
        fabric = OpenSM(net, lmc=2, lid_policy="quadrant").run(ParxRouting(hot))
        audit = audit_fabric(fabric)
        assert audit.clean

    def test_empty_demand_equals_uniform(self):
        net = hyperx((4, 4), 1)
        fa = OpenSM(net, lmc=2, lid_policy="quadrant").run(ParxRouting())
        fb = OpenSM(net, lmc=2, lid_policy="quadrant").run(ParxRouting({}))
        t0, t1 = net.terminals[0], net.terminals[-1]
        for i in range(4):
            assert fa.path(t0, t1, i) == fb.path(t0, t1, i)

    def test_profiled_destinations_processed_first(self):
        """Order matters for balancing: a profiled destination is routed
        before unprofiled ones and therefore sees lighter weights."""
        net = hyperx((4, 4), 1)
        terms = net.terminals
        demands = {terms[-1]: {terms[0]: 200}}
        fabric = OpenSM(net, lmc=2, lid_policy="quadrant").run(
            ParxRouting(demands)
        )
        assert audit_fabric(fabric).clean


class TestFaultFallback:
    def test_fallback_notes_recorded_when_masking_isolates(self):
        """Cut a switch's crossing links so a masked tree cannot reach
        it; PARX must fall back (footnote 7) instead of failing."""
        net = hyperx((4, 4), 1)
        # Isolate-ish the top-left corner switch within its half: kill
        # its links to the right half (dim-0 links crossing the split)
        # so the "remove left half" rule leaves it unreachable.
        corner = net.switches[0]
        coord = net.node_meta(corner)["coord"]
        assert coord == (0, 0)
        for link in list(net.out_links(corner)):
            if not net.is_switch(link.dst):
                continue
            other = net.node_meta(link.dst)["coord"]
            if link.meta.get("dim") == 0 and other[0] >= 2:
                net.disable_cable(link.id)
        fabric = OpenSM(net, lmc=2, lid_policy="quadrant").run(ParxRouting())
        assert any("fallback" in n for n in fabric.notes)
        assert audit_fabric(fabric).clean

    def test_paper_fault_count_routable(self):
        net = t2hx_hyperx(with_faults=True)
        fabric = OpenSM(net, lmc=2, lid_policy="quadrant").run(ParxRouting())
        audit = audit_fabric(fabric, sample_pairs=1500)
        assert audit.unreachable == 0
        assert audit.loops == 0
        assert fabric.num_vls <= 8
