"""Contract tests for the campaign subsystem (spec, ledger, engine)
and the serialization layers it rests on (RunSpec, Fabric payloads)."""

import json

import pytest

import repro.campaign as campaign_pkg
import repro.experiments as experiments_pkg
from repro.campaign import (
    CampaignSpec,
    Ledger,
    campaign_paths,
    capability_grid,
    run_campaign,
    summarize,
)
from repro.core.errors import ConfigurationError, RoutingError
from repro.experiments import (
    BASELINE,
    RunSpec,
    build_fabric,
    clear_fabric_cache,
    get_combination,
)
from repro.ib.fabric import FABRIC_FORMAT_VERSION, Fabric


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Campaign cache counters are asserted below; isolate from the
    in-memory fabrics other tests may have left behind."""
    clear_fabric_cache()
    yield
    clear_fabric_cache()


def _tiny_spec(benchmarks=("CoMD",), nodes=(8,), name="t"):
    return CampaignSpec(
        name,
        capability_grid(
            ["ft-ftree-linear", "hx-dfsssp-linear"],
            list(benchmarks),
            list(nodes),
            reps=1,
            scale=2,
            sim_mode="static",
        ),
    )


class TestRunSpecRoundTrip:
    def test_json_round_trip(self):
        spec = RunSpec("hx-parx-clustered", "imb:Alltoall:4194304",
                       num_nodes=28, reps=5, scale=2, seed=3,
                       sim_mode="static", faults=False, preflight=False)
        assert RunSpec.from_json(spec.to_json()) == spec
        assert RunSpec.from_dict(json.loads(spec.to_json())) == spec

    def test_defaults_survive(self):
        spec = RunSpec("ft-ftree-linear", "CoMD", num_nodes=8)
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_unknown_fields_rejected(self):
        spec = RunSpec("ft-ftree-linear", "CoMD", num_nodes=8)
        d = spec.to_dict()
        d["surprise"] = 1
        with pytest.raises(ConfigurationError):
            RunSpec.from_dict(d)

    def test_cell_id(self):
        spec = RunSpec("ft-ftree-linear", "CoMD", num_nodes=8, scale=2)
        assert spec.cell_id == "ft-ftree-linear/CoMD/n8/s2"

    def test_combo_resolution(self):
        assert RunSpec("hx-parx-clustered", "x", num_nodes=1).combo.uses_parx
        with pytest.raises(ConfigurationError):
            _ = RunSpec("no-such-combo", "x", num_nodes=1).combo


class TestFabricSerialization:
    def test_round_trip_is_byte_identical(self, tmp_path):
        fabric = build_fabric(BASELINE, scale=2)
        path = tmp_path / "fab.json"
        fabric.save(path)
        loaded = Fabric.load(fabric.net, path)
        assert json.dumps(loaded.to_payload(), sort_keys=True) == json.dumps(
            fabric.to_payload(), sort_keys=True
        )
        # And routing state survives exactly.
        assert loaded.dump_lft() == fabric.dump_lft()
        assert loaded.lidmap.base == fabric.lidmap.base
        assert loaded.vl_of_dlid == fabric.vl_of_dlid

    def test_format_version_stamped_and_enforced(self, tmp_path):
        fabric = build_fabric(BASELINE, scale=2)
        payload = fabric.to_payload()
        assert payload["format_version"] == FABRIC_FORMAT_VERSION
        payload["format_version"] = FABRIC_FORMAT_VERSION + 1
        with pytest.raises(RoutingError):
            Fabric.from_payload(fabric.net, payload)

    def test_wrong_network_rejected(self):
        fabric = build_fabric(BASELINE, scale=2)
        other = build_fabric(get_combination("hx-dfsssp-linear"), scale=2)
        with pytest.raises(RoutingError):
            Fabric.from_payload(other.net, fabric.to_payload())

    def test_sidecar_mmap_and_eager_loads_are_byte_identical(self, tmp_path):
        import numpy as np

        fabric = build_fabric(BASELINE, scale=2)
        path = tmp_path / "fab.json"
        fabric.save(path, arrays=True)
        assert Fabric.rows_sidecar(path).exists()
        eager = Fabric.load(fabric.net, path)
        mm = Fabric.load(fabric.net, path, mmap_mode="c")
        assert not eager.tables.is_mmap_backed
        assert mm.tables.is_mmap_backed
        assert np.array_equal(eager.tables.dense, fabric.tables.dense)
        assert np.array_equal(mm.tables.dense, fabric.tables.dense)
        assert mm.dump_lft() == eager.dump_lft() == fabric.dump_lft()
        assert mm.lidmap.base == fabric.lidmap.base
        assert mm.vl_of_dlid == fabric.vl_of_dlid

    def test_mmap_writes_never_touch_the_cache_file(self, tmp_path):
        """mmap_mode='c' is copy-on-write: a re-sweep mutating the
        attached tables lands in private pages, so the shared cache file
        stays exactly what the first writer stored."""
        import numpy as np

        fabric = build_fabric(BASELINE, scale=2)
        path = tmp_path / "fab.json"
        fabric.save(path, arrays=True)
        sidecar = Fabric.rows_sidecar(path)
        before = sidecar.read_bytes()
        mm = Fabric.load(fabric.net, path, mmap_mode="c")
        sw = fabric.net.switches[0]
        dlid = next(iter(mm.tables[sw]))
        del mm.tables[sw][dlid]  # write to the attached matrix
        assert dlid not in mm.tables[sw]
        assert sidecar.read_bytes() == before
        # A fresh eager load still sees the original entry.
        assert dlid in Fabric.load(fabric.net, path).tables[sw]
        assert np.count_nonzero(
            Fabric.load(fabric.net, path).tables.dense
            != mm.tables.dense
        ) == 1

    def test_sidecar_payload_validates_foreign_links(self, tmp_path):
        import numpy as np

        fabric = build_fabric(BASELINE, scale=2)
        path = tmp_path / "fab.json"
        fabric.save(path, arrays=True)
        sidecar = Fabric.rows_sidecar(path)
        m = np.load(sidecar)
        # Point some switch's first present entry at a link leaving a
        # different switch — the load must refuse the corrupt matrix.
        r, c = np.argwhere(m >= 0)[0]
        links = fabric.net.links
        sw = fabric.tables.switch_ids[r]
        m[r, c] = next(l.id for l in links if l.src != sw)
        with open(sidecar, "wb") as fh:
            np.save(fh, m)
        with pytest.raises(RoutingError, match="foreign link"):
            Fabric.load(fabric.net, path, mmap_mode="c")

    def test_missing_sidecar_fails_loudly(self, tmp_path):
        fabric = build_fabric(BASELINE, scale=2)
        path = tmp_path / "fab.json"
        fabric.save(path, arrays=True)
        payload = json.loads(path.read_text())
        assert "rows_file" in payload["tables"]
        with pytest.raises(RoutingError, match="sidecar"):
            Fabric.from_payload(fabric.net, payload)


class TestLedger:
    def test_records_skip_torn_line(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append({"cell_id": "a", "status": "completed"})
        with open(ledger.path, "ab") as fh:
            fh.write(b'{"cell_id": "b", "stat')  # killed mid-write
        assert [r["cell_id"] for r in ledger.records()] == ["a"]

    def test_append_repairs_torn_tail(self, tmp_path):
        """A record appended after a torn line must not be glued onto
        (and lost with) the torn one."""
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append({"cell_id": "a", "status": "completed"})
        with open(ledger.path, "ab") as fh:
            fh.write(b'{"cell_id": "b", "stat')
        ledger.append({"cell_id": "c", "status": "completed"})
        assert [r["cell_id"] for r in ledger.records()] == ["a", "c"]

    def test_latest_and_completed(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append({"cell_id": "a", "status": "failed", "attempt": 1})
        ledger.append({"cell_id": "a", "status": "completed", "attempt": 2})
        assert ledger.completed_ids() == {"a"}
        assert ledger.latest()["a"]["attempt"] == 2
        assert ledger.attempt_counts() == {"a": 2}


class TestCampaignSpec:
    def test_round_trip_via_directory(self, tmp_path):
        spec = _tiny_spec()
        spec.save(tmp_path)
        assert CampaignSpec.load(tmp_path) == spec

    def test_duplicate_cells_rejected(self):
        cell = RunSpec("ft-ftree-linear", "CoMD", num_nodes=8)
        with pytest.raises(ConfigurationError):
            CampaignSpec("dup", (cell, cell))

    def test_grid_validates_combos_eagerly(self):
        with pytest.raises(ConfigurationError):
            capability_grid(["no-such-combo"], ["CoMD"], [8])


class TestCampaignEngine:
    def test_serial_completes_and_warm_cache_skips_routing(self, tmp_path):
        spec = _tiny_spec(nodes=(8, 12))  # 2 combos x 2 node counts
        status = run_campaign(spec, tmp_path, workers=1)
        assert status.all_completed
        assert status.completed == 4 and status.failed == 0
        # 4 cells share 2 fabrics: each routed once, reused afterwards.
        assert status.fabric_routed == 2
        assert status.fabric_memory_hits == 2
        assert status.fabric_disk_stores == 2

    def test_disk_cache_feeds_fresh_process_state(self, tmp_path):
        spec = _tiny_spec(nodes=(8,))
        run_campaign(spec, tmp_path, workers=1)
        clear_fabric_cache()  # simulate a brand-new worker process
        spec2 = _tiny_spec(nodes=(12,))
        status = run_campaign(spec2, tmp_path / "second", workers=1)
        # Different campaign dir -> different disk cache; still routed.
        assert status.fabric_routed == 2
        clear_fabric_cache()
        status3 = run_campaign(
            _tiny_spec(nodes=(10,), name="t3"), tmp_path, workers=1
        )
        # Same campaign dir: fabrics deserialize from disk, no routing —
        # and every disk hit attaches the dense rows zero-copy via mmap.
        assert status3.fabric_routed == 0
        assert status3.fabric_disk_hits == 2
        assert status3.fabric_mmap_attaches == 2
        assert status3.to_dict()["fabric_cache"]["mmap_attaches"] == 2

    def test_resume_after_kill_skips_completed_cells(self, tmp_path):
        spec = _tiny_spec(nodes=(8, 12))
        partial = run_campaign(spec, tmp_path, workers=1, limit=2)
        assert partial.completed == 2 and partial.pending == 2
        # Simulate the kill tearing the ledger mid-write.
        with open(campaign_paths(tmp_path)["ledger"], "ab") as fh:
            fh.write(b'{"cell_id": "torn')
        resumed = run_campaign(spec, tmp_path, workers=1)
        assert resumed.all_completed
        # Only the two remaining cells ran: one attempt per cell total.
        assert resumed.attempts == 4
        rerun = run_campaign(spec, tmp_path, workers=1)
        assert rerun.attempts == 4  # fully-complete campaign is a no-op

    def test_failed_cell_retried_with_structured_error(self, tmp_path):
        cells = (RunSpec("ft-ftree-linear", "NoSuchApp", num_nodes=8,
                         reps=1, scale=2, sim_mode="static"),)
        spec = CampaignSpec("boom", cells, max_attempts=3)
        status = run_campaign(spec, tmp_path, workers=1)
        assert status.failed == 1 and status.pending == 1
        records = Ledger(campaign_paths(tmp_path)["ledger"]).records()
        assert len(records) == 3  # retried up to max_attempts, then kept
        for rec in records:
            assert rec["status"] == "failed"
            assert rec["error"]["type"]
            assert "NoSuchApp" in rec["error"]["message"]
            assert rec["error"]["traceback"]

    def test_parallel_matches_serial_values(self, tmp_path):
        spec = _tiny_spec(nodes=(8, 12))
        serial = run_campaign(spec, tmp_path / "serial", workers=1)
        clear_fabric_cache()
        parallel = run_campaign(spec, tmp_path / "parallel", workers=2)
        assert serial.all_completed and parallel.all_completed
        s = Ledger(campaign_paths(tmp_path / "serial")["ledger"]).latest()
        p = Ledger(campaign_paths(tmp_path / "parallel")["ledger"]).latest()
        assert set(s) == set(p)
        for cid in s:
            assert s[cid]["values"] == p[cid]["values"], cid

    def test_sweep_counters_recorded_and_summarized(self, tmp_path):
        from repro.core.parallel import sweep_workers

        spec = _tiny_spec()
        # Serial campaigns leave the ambient sweep-pool configuration
        # alone; the ledger records what each cell actually ran with.
        # (Neither campaign engine is parallel_sweep_safe, so no pool
        # spawns — the *configured* width is still recorded.)
        with sweep_workers(2):
            status = run_campaign(spec, tmp_path, workers=1)
        assert status.all_completed
        for rec in Ledger(
            campaign_paths(tmp_path)["ledger"]
        ).latest().values():
            assert rec["sweep"]["workers"] == 2
            assert rec["sweep"]["parallel_sweeps"] == 0
        assert status.sweep_workers == 2
        assert status.parallel_sweeps == 0
        d = status.to_dict()
        assert d["sweep"] == {"workers": 2, "parallel_sweeps": 0}
        assert all(c["sweep"]["workers"] == 2 for c in d["cells"])

    def test_parallel_campaign_pins_nested_sweeps_to_one(self, tmp_path):
        from repro.core.parallel import sweep_workers

        spec = _tiny_spec()
        # Campaign worker processes must not nest their own sweep pools
        # (one process per cell already saturates the machine), even
        # when the parent session has a wide pool configured.
        with sweep_workers(4):
            status = run_campaign(spec, tmp_path, workers=2)
        assert status.all_completed
        for rec in Ledger(
            campaign_paths(tmp_path)["ledger"]
        ).latest().values():
            assert rec["sweep"]["workers"] == 1
        assert status.sweep_workers == 1
        assert status.to_dict()["sweep"]["workers"] == 1

    def test_summarize_counts_pending(self, tmp_path):
        spec = _tiny_spec(nodes=(8, 12))
        run_campaign(spec, tmp_path, workers=1, limit=1)
        status = summarize(spec, Ledger(campaign_paths(tmp_path)["ledger"]))
        assert status.completed == 1
        assert status.pending == 3
        assert not status.all_completed
        d = status.to_dict()
        assert d["total_cells"] == 4
        assert len(d["cells"]) == 4


class TestPublicSurface:
    @pytest.mark.parametrize("pkg", [experiments_pkg, campaign_pkg],
                             ids=["experiments", "campaign"])
    def test_all_exports_resolve(self, pkg):
        assert pkg.__all__, f"{pkg.__name__} must declare __all__"
        for name in pkg.__all__:
            assert getattr(pkg, name, None) is not None, name

    def test_campaign_exports_cover_the_api(self):
        for name in ("CampaignSpec", "Ledger", "run_campaign", "summarize",
                     "capability_grid", "capacity_sweep", "execute_cell"):
            assert name in campaign_pkg.__all__

    def test_experiments_exports_cover_the_api(self):
        for name in ("RunSpec", "run_capability", "build_fabric",
                     "fabric_cache_key", "set_fabric_cache_dir"):
            assert name in experiments_pkg.__all__

    def test_legacy_positional_form_warns(self):
        from repro.experiments import run_capability
        from repro.workloads.proxyapps import PROXY_APPS

        app = PROXY_APPS["CoMD"]
        with pytest.warns(DeprecationWarning):
            run_capability(
                BASELINE, "CoMD",
                measure=lambda job, sim: app.kernel_runtime(job, sim),
                num_nodes=8, reps=1, scale=2, seed=0, sim_mode="static",
            )
