"""Tests for Nue routing: deadlock freedom within a fixed lane budget."""

import pytest

from repro.core.errors import DeadlockError
from repro.ib.subnet_manager import OpenSM
from repro.routing import DfssspRouting, NueRouting, audit_fabric
from repro.topology.faults import inject_cable_faults
from repro.topology.fattree import k_ary_n_tree
from repro.topology.hyperx import hyperx
from repro.topology.torus import torus


class TestFixedBudgetGuarantee:
    """Nue's defining property: ANY budget >= 1 must succeed."""

    @pytest.mark.parametrize("vls", [1, 2, 4])
    @pytest.mark.parametrize(
        "net_factory",
        [
            lambda: hyperx((4, 4), 2),
            lambda: torus((4, 4), 2),
            lambda: k_ary_n_tree(4, 2),
        ],
        ids=["hyperx", "torus", "tree"],
    )
    def test_routes_within_budget(self, net_factory, vls):
        net = net_factory()
        fabric = OpenSM(net).run(NueRouting(num_vls=vls))
        audit = audit_fabric(fabric)
        assert audit.clean
        assert fabric.num_vls == vls
        assert max(fabric.vl_of_dlid.values(), default=0) < vls

    def test_single_lane_is_escape_only(self):
        """With one lane everything rides the Up*/Down* escape."""
        net = torus((4, 4), 1)
        fabric = OpenSM(net).run(NueRouting(num_vls=1))
        assert set(fabric.vl_of_dlid.values()) == {0}
        assert audit_fabric(fabric).clean

    def test_zero_budget_rejected(self):
        with pytest.raises(DeadlockError):
            NueRouting(num_vls=0)


class TestPathQuality:
    def test_mostly_minimal_with_two_lanes(self):
        net = hyperx((4, 4), 2)
        fabric = OpenSM(net).run(NueRouting(num_vls=2))
        audit = audit_fabric(fabric)
        assert audit.minimal_pairs > 0.9 * audit.pairs_checked

    def test_detours_are_bounded(self):
        net = torus((4, 4), 2)
        fabric = OpenSM(net).run(NueRouting(num_vls=2))
        audit = audit_fabric(fabric)
        assert audit.max_stretch <= net.num_switches

    def test_comparable_to_dfsssp_on_tree(self):
        """On a tree (no cycles possible) Nue should be fully minimal,
        like DFSSSP."""
        net = k_ary_n_tree(4, 2)
        nue = audit_fabric(OpenSM(net).run(NueRouting(num_vls=2)))
        df = audit_fabric(OpenSM(net).run(DfssspRouting()))
        assert nue.non_minimal_pairs == 0
        assert df.non_minimal_pairs == 0


class TestFaultTolerance:
    def test_faulty_hyperx(self):
        net = hyperx((4, 4), 2)
        inject_cable_faults(net, 8, seed=2)
        fabric = OpenSM(net).run(NueRouting(num_vls=2))
        audit = audit_fabric(fabric)
        assert audit.clean

    def test_faulty_torus_single_lane(self):
        net = torus((4, 4), 1)
        inject_cable_faults(net, 4, seed=0)
        fabric = OpenSM(net).run(NueRouting(num_vls=1))
        assert audit_fabric(fabric).clean


class TestEscapeOrientation:
    def test_orientation_covers_all_switch_links(self):
        from repro.routing.nue import _escape_orientation

        net = hyperx((3, 3), 1)
        is_down = _escape_orientation(net, net.switches[0])
        sw_links = [
            l.id for l in net.iter_links()
            if net.is_switch(l.src) and net.is_switch(l.dst)
        ]
        assert set(is_down) >= set(sw_links)

    def test_cable_directions_opposite(self):
        from repro.routing.nue import _escape_orientation

        net = hyperx((3, 3), 1)
        is_down = _escape_orientation(net, net.switches[0])
        for link in net.switch_cables():
            assert is_down[link.id] != is_down[link.reverse_id]
