"""Shared-scan linter equivalence: vectorised masks == per-entry loops.

The FAB001/FAB002/FAB007/FAB013 rules all read one :class:`_TableScan`
pass over the dense matrix (entry gathers + a single
``walk_dest_columns`` suspect prefilter).  These tests pin that the
refactor changed nothing observable: on randomly corrupted fabrics the
emitted diagnostics and pair counts equal an independent per-entry
reference that walks every destination with no prefilter at all.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lint_fabric
from repro.analysis.linter import _classify_switches
from repro.core.errors import TopologyError
from repro.core.rng import make_rng
from repro.ib.subnet_manager import OpenSM
from repro.routing import MinHopRouting
from repro.topology.hyperx import hyperx

SCAN_RULES = {"FAB001", "FAB002", "FAB007", "FAB013"}
UNCAPPED = 10**6


def _fresh_fabric():
    net = hyperx((3, 3), 2)
    return net, OpenSM(net).run(MinHopRouting())


def _corrupt(net, fabric, rng, n_defects):
    """Seed a random mix of the defects the scan-backed rules cover."""
    dlids = fabric.lidmap.terminal_lids(net)
    for _ in range(n_defects):
        kind = int(rng.integers(5))
        sw = net.switches[int(rng.integers(len(net.switches)))]
        dlid = dlids[int(rng.integers(len(dlids)))]
        if kind == 0:  # black hole: drop an entry
            fabric.tables[sw].pop(dlid, None)
        elif kind == 1:  # FAB007: entry leaves a different switch
            other = net.switches[
                (net.switches.index(sw) + 1) % len(net.switches)
            ]
            fabric.tables[sw][dlid] = net.out_links(other)[0].id
        elif kind == 2:  # FAB007: link id outside the fabric
            fabric.tables[sw][dlid] = len(net.links) + int(rng.integers(99))
        elif kind == 3:  # FAB013 (+ FAB001): cable dies after routing
            cables = net.switch_cables()
            if cables:
                net.disable_cable(
                    cables[int(rng.integers(len(cables)))].id
                )
        else:  # FAB002: splice a two-switch forwarding loop
            entry = fabric.tables[sw].get(dlid)
            if entry is None or not (0 <= entry < len(net.links)):
                continue
            succ = net.link(entry).dst
            if not net.is_switch(succ):
                continue
            back = next(
                (link.id for link in net.out_links(succ)
                 if link.dst == sw), None,
            )
            if back is not None:
                fabric.tables[succ][dlid] = back


def _reference_entry_findings(fabric):
    """FAB007/FAB013 keys from a plain loop over every table entry."""
    net = fabric.net
    num_links = len(net.links)
    fab007, fab013 = set(), set()
    for sw in net.switches:
        for dlid, link_id in fabric.tables.get(sw, {}).items():
            if not (0 <= link_id < num_links):
                fab007.add((sw, dlid, link_id))
                continue
            link = net.link(link_id)
            if link.src != sw:
                fab007.add((sw, dlid, link_id))
            elif not link.enabled:
                fab013.add((sw, dlid, link_id))
            if dlid not in fabric.lidmap.owner:
                fab007.add((sw, dlid, link_id))
    return fab007, fab013


def _reference_walk_findings(fabric):
    """FAB001/FAB002 keys and pair counts, classifying EVERY dlid."""
    net = fabric.net
    attached = {sw: net.attached_terminals(sw) for sw in net.switches}
    blackholed = looped = 0
    holes, loops = set(), set()
    for dlid in fabric.lidmap.terminal_lids(net):
        dest_node = fabric.lidmap.node_of(dlid)
        try:
            dsw = net.attached_switch(dest_node)
        except TopologyError:
            continue
        state, cycles = _classify_switches(fabric, dlid, dest_node, dsw)
        by_hole = {}
        for sw, verdict in state.items():
            if verdict[0] == "blackhole":
                by_hole.setdefault(verdict[1], []).append(sw)
        for hole, sources in by_hole.items():
            affected = sum(len(attached[s]) for s in sources)
            if dsw in sources:
                affected -= 1
            blackholed += affected
            if affected:
                holes.add((dlid, hole))
        for idx, cycle in enumerate(cycles):
            feeders = [
                s for s, verdict in state.items()
                if verdict[0] == "loop" and verdict[1] == idx
            ]
            affected = sum(len(attached[s]) for s in feeders)
            if dsw in feeders:
                affected -= 1
            looped += affected
            loops.add((dlid, frozenset(cycle)))
    return blackholed, looped, holes, loops


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10**6), n_defects=st.integers(0, 6))
def test_scan_matches_per_entry_reference(seed, n_defects):
    net, fabric = _fresh_fabric()
    _corrupt(net, fabric, make_rng(seed), n_defects)

    want_007, want_013 = _reference_entry_findings(fabric)
    want_bh, want_lp, want_holes, want_loops = _reference_walk_findings(
        fabric
    )

    report = lint_fabric(fabric, rules=SCAN_RULES, max_per_rule=UNCAPPED)
    got_007 = {
        (d.switch, d.lid, d.witness["link"])
        for d in report.by_code("FAB007")
    }
    got_013 = {
        (d.switch, d.lid, d.witness["link"])
        for d in report.by_code("FAB013")
    }
    got_holes = {(d.lid, d.witness["switch"])
                 for d in report.by_code("FAB001")}
    got_loops = {(d.lid, frozenset(d.witness["cycle"]))
                 for d in report.by_code("FAB002")}

    assert got_007 == want_007
    assert got_013 == want_013
    assert got_holes == want_holes
    assert got_loops == want_loops
    assert report.stats["blackholed_pairs"] == want_bh
    assert report.stats["looped_pairs"] == want_lp
    if n_defects == 0:
        assert not report.diagnostics


def test_overflow_entries_keep_per_entry_treatment():
    """Out-of-universe dlids bypass the dense scan but still lint."""
    net, fabric = _fresh_fabric()
    sw = net.switches[0]
    local = net.out_links(sw)[0].id
    fabric.tables[sw][9999] = local  # unknown destination LID
    net.disable_cable(local)  # ...over a now-dead link: FAB013 too

    report = lint_fabric(fabric, rules={"FAB007", "FAB013"},
                         max_per_rule=UNCAPPED)
    assert any(
        d.lid == 9999 and "unknown destination" in d.message
        for d in report.by_code("FAB007")
    )
    assert any(d.lid == 9999 for d in report.by_code("FAB013"))
