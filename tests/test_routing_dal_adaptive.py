"""Unit tests for the DAL candidate selector and adaptive flow router."""

import pytest

from repro.core.errors import RoutingError
from repro.core.units import MIB
from repro.routing.dal import DalSelector
from repro.sim.adaptive import AdaptiveFlowRouter
from repro.topology.hyperx import hyperx


@pytest.fixture(scope="module")
def net():
    return hyperx((4, 4), 2)


class TestDalSelector:
    def test_candidates_end_to_end(self, net):
        sel = DalSelector(net)
        a, b = net.terminals[0], net.terminals[-1]
        for cand in sel.candidates(a, b):
            nodes = net.path_nodes(cand)
            assert nodes[0] == a and nodes[-1] == b

    def test_self_path_empty(self, net):
        sel = DalSelector(net)
        a = net.terminals[0]
        assert sel.candidates(a, a) == [[]]

    def test_includes_both_dimension_orders(self, net):
        sel = DalSelector(net, num_detours=0)
        # Pick terminals whose switches differ in both dimensions.
        a = net.terminals[0]
        b = None
        ca = net.node_meta(net.attached_switch(a))["coord"]
        for t in net.terminals:
            cb = net.node_meta(net.attached_switch(t))["coord"]
            if cb[0] != ca[0] and cb[1] != ca[1]:
                b = t
                break
        cands = sel.candidates(a, b)
        assert len(cands) == 2  # XY and YX
        assert all(net.path_hops(c) == 2 for c in cands)

    def test_detours_are_longer(self, net):
        sel = DalSelector(net, num_detours=4, seed=1)
        a, b = net.terminals[0], net.terminals[-1]
        cands = sel.candidates(a, b)
        hops = sorted(net.path_hops(c) for c in cands)
        assert hops[0] <= 2
        assert hops[-1] >= 2

    def test_deterministic(self, net):
        a, b = net.terminals[0], net.terminals[-1]
        c1 = DalSelector(net, seed=7).candidates(a, b)
        c2 = DalSelector(net, seed=7).candidates(a, b)
        assert c1 == c2

    def test_requires_coordinates(self):
        from repro.topology.fattree import k_ary_n_tree

        with pytest.raises(RoutingError):
            DalSelector(k_ary_n_tree(4, 2))

    def test_skips_faulted_direct_links(self, net):
        import copy

        local = hyperx((4,), 1)
        sel = DalSelector(local, num_detours=0)
        a, b = local.terminals[0], local.terminals[-1]
        direct = local.links_between(
            local.attached_switch(a), local.attached_switch(b)
        )[0]
        local.disable_cable(direct.id)
        # The only minimal candidate died with the direct link.
        with pytest.raises(RoutingError):
            sel.candidates(a, b)


class TestAdaptiveRouter:
    def test_spreads_repeated_flows(self, net):
        """Send the same big flow repeatedly: the router must not put
        every copy on the identical path."""
        router = AdaptiveFlowRouter(net, DalSelector(net, num_detours=4, seed=0))
        a, b = net.terminals[0], net.terminals[-1]
        paths = {router.choose(a, b, 1 * MIB) for _ in range(8)}
        assert len(paths) > 1

    def test_prefers_minimal_when_idle(self, net):
        router = AdaptiveFlowRouter(net, DalSelector(net, num_detours=4, seed=0))
        a, b = net.terminals[0], net.terminals[-1]
        first = router.choose(a, b, 1 * MIB)
        assert net.path_hops(first) <= 2

    def test_reset_restores_idle_choice(self, net):
        router = AdaptiveFlowRouter(net)
        a, b = net.terminals[0], net.terminals[-1]
        first = router.choose(a, b, 1 * MIB)
        for _ in range(5):
            router.choose(a, b, 1 * MIB)
        router.reset()
        assert router.choose(a, b, 1 * MIB) == first
