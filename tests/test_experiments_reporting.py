"""Unit tests for the plain-text report renderers."""

from repro.core.units import GIB
from repro.experiments.reporting import (
    capacity_table,
    gain_grid,
    heatmap_summary,
    series_table,
)


class TestGainGrid:
    def test_contains_all_cells(self):
        text = gain_grid(
            "T", [8.0, 1024.0], [7, 14],
            {(8.0, 7): 0.5, (8.0, 14): -0.25, (1024.0, 7): 0.0,
             (1024.0, 14): 1.0},
        )
        assert "+0.50" in text and "-0.25" in text and "+1.00" in text
        assert "1.0 KiB" in text
        assert text.startswith("T")

    def test_missing_cells_blank(self):
        text = gain_grid("T", [8.0], [7, 14], {(8.0, 7): 0.1})
        assert "+0.10" in text
        # Only one numeric cell rendered.
        assert text.count("+0.") == 1

    def test_sub_byte_labels(self):
        text = gain_grid("T", [0.5], [7], {(0.5, 7): 0.0})
        assert "0.5" in text


class TestSeriesTable:
    def test_rows_and_formatting(self):
        text = series_table(
            "S", [7, 14],
            {"a": [1e-6, 2e-6], "b": [None, 1.0]},
        )
        assert "1.00 us" in text and "2.00 us" in text
        assert "1.00 s" in text
        assert "a" in text and "b" in text

    def test_custom_formatter(self):
        text = series_table("S", [1], {"x": [2 * GIB]},
                            formatter=lambda v: f"{v / GIB:.0f}G")
        assert "2G" in text


class TestCapacityTable:
    def test_totals_column(self):
        text = capacity_table(
            "C", {"combo1": {"A": 10, "B": 5}}, ["A", "B"],
        )
        assert "15" in text
        assert "combo1" in text

    def test_missing_app_zero(self):
        text = capacity_table("C", {"mycombo": {"A": 3}}, ["A", "B"])
        [row] = [l for l in text.splitlines() if "mycombo" in l]
        # Columns: A=3, B=0 (missing), total=3.
        assert row.split("|")[1].split() == ["3", "0", "3"]


class TestHeatmapSummary:
    def test_format(self):
        s = heatmap_summary("panel", 2 * GIB)
        assert "panel" in s and "2.00 GiB/s" in s
