"""Unit + property tests for collective phase expansions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.mpi import collectives as coll

RANKS = st.integers(1, 40)
SIZES = st.floats(1.0, 1e6, allow_nan=False)


def _touched_as_receiver(phases):
    out = set()
    for phase in phases:
        for _, dst, _ in phase:
            out.add(dst)
    return out


class TestBcast:
    @given(RANKS, SIZES)
    @settings(max_examples=60, deadline=None)
    def test_everyone_receives_once(self, p, size):
        phases = coll.binomial_bcast(p, size)
        receivers = [dst for ph in phases for _, dst, _ in ph]
        assert sorted(receivers) == sorted(set(receivers))
        assert set(receivers) | {0} == set(range(p))

    @given(RANKS)
    @settings(max_examples=40, deadline=None)
    def test_log_rounds(self, p):
        phases = coll.binomial_bcast(p, 1.0)
        assert len(phases) == math.ceil(math.log2(p)) if p > 1 else not phases

    def test_senders_already_have_data(self):
        """Causality: a rank only forwards after it received."""
        p = 13
        have = {0}
        for phase in coll.binomial_bcast(p, 1.0):
            for src, dst, _ in phase:
                assert src in have
            have |= {dst for _, dst, _ in phase}
        assert have == set(range(p))

    def test_nonzero_root(self):
        phases = coll.binomial_bcast(5, 1.0, root=3)
        assert _touched_as_receiver(phases) == {0, 1, 2, 4}


class TestReduceGatherScatter:
    @given(RANKS, SIZES)
    @settings(max_examples=40, deadline=None)
    def test_reduce_mirrors_bcast_bytes(self, p, size):
        assert coll.rank_phase_bytes(
            coll.binomial_reduce(p, size)
        ) == pytest.approx(coll.rank_phase_bytes(coll.binomial_bcast(p, size)))

    @given(RANKS, SIZES)
    @settings(max_examples=40, deadline=None)
    def test_gather_collects_all_contributions(self, p, size):
        """Byte conservation: the root ends up having received exactly
        (p-1) rank contributions across the tree."""
        phases = coll.binomial_gather(p, size)
        into_root = sum(sz for ph in phases for _, dst, sz in ph if dst == 0)
        assert into_root == pytest.approx((p - 1) * size)

    @given(RANKS, SIZES)
    @settings(max_examples=40, deadline=None)
    def test_scatter_mirrors_gather(self, p, size):
        g = coll.rank_phase_bytes(coll.binomial_gather(p, size))
        s = coll.rank_phase_bytes(coll.binomial_scatter(p, size))
        assert g == pytest.approx(s)

    def test_linear_gather_is_single_incast(self):
        phases = coll.linear_gather(6, 10.0)
        assert len(phases) == 1
        assert all(dst == 0 for _, dst, _ in phases[0])
        assert len(phases[0]) == 5

    def test_linear_scatter_root_streams(self):
        phases = coll.linear_scatter(6, 10.0)
        assert all(src == 0 for src, _, _ in phases[0])


class TestAllreduce:
    @given(RANKS, SIZES)
    @settings(max_examples=40, deadline=None)
    def test_recursive_doubling_symmetric_per_phase(self, p, size):
        for phase in coll.recursive_doubling_allreduce(p, size):
            srcs = sorted(s for s, _, _ in phase)
            dsts = sorted(d for _, d, _ in phase)
            if len(phase) == p:  # core exchange rounds are symmetric
                assert srcs == dsts

    def test_power_of_two_round_count(self):
        assert len(coll.recursive_doubling_allreduce(8, 1.0)) == 3
        assert len(coll.recursive_doubling_allreduce(16, 1.0)) == 4

    def test_remainder_handling(self):
        # p=6: fold (2 transfers), 2 core rounds of 4, unfold.
        phases = coll.recursive_doubling_allreduce(6, 1.0)
        assert len(phases) == 4
        assert len(phases[0]) == 2
        assert len(phases[-1]) == 2

    def test_single_rank_empty(self):
        assert coll.recursive_doubling_allreduce(1, 1.0) == []
        assert coll.ring_allreduce(1, 1.0) == []

    @given(st.sampled_from([2, 4, 8, 16, 32]), SIZES)
    @settings(max_examples=30, deadline=None)
    def test_rabenseifner_moves_fewer_bytes_than_rdbl(self, p, size):
        """Rabenseifner's point: ~2x less data than recursive doubling
        for large payloads."""
        rab = coll.rank_phase_bytes(coll.rabenseifner_allreduce(p, size))
        rdb = coll.rank_phase_bytes(coll.recursive_doubling_allreduce(p, size))
        if p > 2:
            assert rab < rdb

    @given(RANKS, SIZES)
    @settings(max_examples=40, deadline=None)
    def test_ring_allreduce_structure(self, p, size):
        phases = coll.ring_allreduce(p, size)
        if p == 1:
            return
        assert len(phases) == 2 * (p - 1)
        for phase in phases:
            assert len(phase) == p
            for src, dst, sz in phase:
                assert dst == (src + 1) % p
                assert sz == pytest.approx(size / p)


class TestAlltoallBarrierAllgather:
    @given(st.integers(2, 24), SIZES)
    @settings(max_examples=40, deadline=None)
    def test_alltoall_every_pair_exactly_once(self, p, size):
        pairs = set()
        for phase in coll.pairwise_alltoall(p, size):
            for src, dst, _ in phase:
                assert (src, dst) not in pairs
                pairs.add((src, dst))
        assert len(pairs) == p * (p - 1)

    def test_alltoall_phases_are_permutations(self):
        for phase in coll.pairwise_alltoall(7, 1.0):
            assert sorted(s for s, _, _ in phase) == list(range(7))
            assert sorted(d for _, d, _ in phase) == list(range(7))

    @given(st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_barrier_round_count(self, p):
        phases = coll.dissemination_barrier(p)
        expected = math.ceil(math.log2(p)) if p > 1 else 0
        assert len(phases) == expected
        assert all(sz == 0.0 for ph in phases for _, _, sz in ph)

    def test_allgather_rounds(self):
        phases = coll.ring_allgather(5, 3.0)
        assert len(phases) == 4
        assert coll.rank_phase_bytes(phases) == pytest.approx(4 * 5 * 3.0)


class TestValidation:
    def test_zero_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            coll.binomial_bcast(0, 1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            coll.pairwise_alltoall(4, -1.0)
