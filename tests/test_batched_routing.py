"""Equivalence suite for destination-batched sweeps and chunked passes.

The batched sweep kernel (:func:`repro.routing.arrays.tree_core_batch`)
relaxes a whole block of destination columns per numpy pass; the
sequential :func:`repro.routing.dijkstra.tree_to_destination` stays
alongside as the executable specification.  This module pins them
together three ways:

* hypothesis-fuzzed kernel equivalence on random weights and random
  link masks, column by column against the sequential tree;
* whole-fabric bit-equality (dense matrix, overflow, notes, lanes) of
  a batched sweep against a forced-sequential sweep, for every engine
  that declares ``supports_batched_sweep`` — full sweeps, fallbacks,
  and incremental re-sweeps after cable faults;
* frozen 672-node golden LFT digests per batched engine.

The chunked dense passes (destination-chunked table walkers, load
estimator and what-if incidence scan) are pinned byte-identical against
themselves under a one-item chunk size, and the narrowed forwarding
dtype's overflow refusal and cache-format bump are covered at the end.
"""

import hashlib
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.load import estimate_link_loads
from repro.analysis.whatif import audit_whatif
from repro.core.chunking import (
    chunk_bytes,
    get_chunk_bytes,
    items_per_chunk,
    set_chunk_bytes,
)
from repro.core.errors import RoutingError
from repro.ib.fabric import Fabric
from repro.ib.subnet_manager import OpenSM, resweep
from repro.ib.tables import table_dtype_for
from repro.routing import create_engine, engine_names
from repro.routing.arrays import UNREACHED_HOPS, tree_core_batch
from repro.routing.base import (
    batched_sweep,
    batched_sweep_enabled,
    set_batched_sweep,
)
from repro.routing.dijkstra import tree_to_destination
from repro.topology.hyperx import hyperx
from repro.topology.t2hx import t2hx_hyperx
from repro.topology.torus import torus

BATCHED_ENGINES = [
    n for n in engine_names() if create_engine(n).supports_batched_sweep
]


def _sweep(name, *, batched, net=None, scale=2, seed=1):
    with batched_sweep(batched):
        if net is None:
            net = t2hx_hyperx(with_faults=True, seed=seed, scale=scale)
        return OpenSM(net).run(create_engine(name))


def _assert_fabrics_equal(fa, fb):
    assert np.array_equal(fa.tables.dense, fb.tables.dense)
    assert dict(fa.tables.overflow_items()) == dict(fb.tables.overflow_items())
    assert fa.notes == fb.notes
    assert fa.vl_of_dlid == fb.vl_of_dlid
    assert fa.num_vls == fb.num_vls
    assert fa.dump_lft() == fb.dump_lft()


class TestBatchKernelEquivalence:
    """tree_core_batch column-by-column against tree_to_destination."""

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_random_weights_and_masks(self, data):
        shape = data.draw(st.sampled_from([(3, 3), (4, 2), (2, 2, 2)]))
        net = hyperx(shape, 1) if len(shape) == 2 else torus(shape, 1)
        graph = net.switch_graph()
        num_links = len(net.links)
        weights = data.draw(st.lists(
            st.floats(0.0, 8.0, allow_nan=False, width=32),
            min_size=num_links, max_size=num_links,
        ))
        cables = [
            l.id for l in net.iter_links()
            if net.is_switch(l.src) and net.is_switch(l.dst)
        ]
        masked = frozenset(data.draw(st.lists(
            st.sampled_from(cables), max_size=3, unique=True,
        )))
        roots = list(range(graph.num_switches))
        view = graph.masked(masked) if masked else graph
        plid, hops = tree_core_batch(view, roots, weights)
        for c, root_u in enumerate(roots):
            dsw = graph.switches[root_u]
            parent, ref_hops = tree_to_destination(net, dsw, weights, masked)
            for u in range(graph.num_switches):
                sw = graph.switches[u]
                if u == root_u:
                    assert plid[u, c] == -1 and hops[u, c] == 0
                elif sw in parent:
                    assert plid[u, c] == parent[sw]
                    assert hops[u, c] == ref_hops[sw]
                else:
                    assert plid[u, c] == -1
                    assert hops[u, c] == UNREACHED_HOPS

    def test_per_column_weight_matrix(self):
        net = hyperx((3, 3), 1)
        graph = net.switch_graph()
        rng = np.random.default_rng(7)
        k = graph.num_switches
        wts = rng.uniform(0.0, 4.0, size=(len(net.links), k))
        roots = list(range(k))
        plid, hops = tree_core_batch(graph, roots, wts)
        for c, root_u in enumerate(roots):
            dsw = graph.switches[root_u]
            parent, ref_hops = tree_to_destination(
                net, dsw, wts[:, c].tolist()
            )
            for u in range(k):
                sw = graph.switches[u]
                if u == root_u:
                    continue
                assert plid[u, c] == parent.get(sw, -1)


class TestBatchedSweepEquality:
    """Whole-fabric bit-equality, batched vs forced-sequential."""

    @pytest.mark.parametrize("name", BATCHED_ENGINES)
    def test_full_sweep_matches_sequential(self, name):
        _assert_fabrics_equal(
            _sweep(name, batched=True), _sweep(name, batched=False)
        )

    def test_fatpaths_fallback_notes_match(self):
        # scale=4 collapses the plane to 4 switches, where every layer
        # mask disconnects something: the fallback path must fire and
        # note identically in both modes.
        fa = _sweep("fatpaths", batched=True, scale=4, seed=0)
        fb = _sweep("fatpaths", batched=False, scale=4, seed=0)
        assert fa.notes and any("fallback" in n for n in fa.notes)
        _assert_fabrics_equal(fa, fb)

    @pytest.mark.parametrize("name", BATCHED_ENGINES)
    def test_resweep_after_fault_matches_sequential(self, name):
        reports = []
        fabrics = []
        for batched in (True, False):
            with batched_sweep(batched):
                net = t2hx_hyperx(with_faults=True, seed=1, scale=2)
                fab = OpenSM(net).run(create_engine(name))
                cable = next(
                    l for l in net.iter_links()
                    if net.is_switch(l.src) and net.is_switch(l.dst)
                )
                net.disable_cable(cable.id)
                reports.append(resweep(fab, create_engine(name)))
                fabrics.append(fab)
        _assert_fabrics_equal(*fabrics)
        ra, rb = reports
        assert ra.dests_affected == rb.dests_affected
        assert ra.entries_changed == rb.entries_changed
        assert ra.pairs_affected == rb.pairs_affected
        assert ra.paths_changed == rb.paths_changed
        assert ra.num_unreachable == rb.num_unreachable
        assert ra.dests_recomputed == rb.dests_recomputed
        # Both runs must have taken the incremental path: only the
        # stale destinations recomputed, not the whole LID space.
        total = len(fabrics[0].lidmap.terminal_lids(fabrics[0].net))
        assert 0 < ra.dests_recomputed == ra.dests_affected < total

    def test_toggle_returns_previous_value(self):
        assert batched_sweep_enabled()
        prev = set_batched_sweep(False)
        assert prev is True
        assert not batched_sweep_enabled()
        assert set_batched_sweep(prev) is False
        assert batched_sweep_enabled()

    def test_context_manager_restores_on_error(self):
        assert batched_sweep_enabled()
        with pytest.raises(ValueError):
            with batched_sweep(False):
                assert not batched_sweep_enabled()
                raise ValueError("boom")
        assert batched_sweep_enabled()


#: sha256 of ``Fabric.dump_lft()`` (and the lane count) on the faulted
#: 672-node plane for every batched engine: the batched kernel must
#: keep producing the exact sequential-era bytes.
GOLDEN_672 = {
    "minhop": (
        "c9f7a3a243c4eafd39a766f891aebff7219d93b8705b73032777b3248ccb598f", 2),
    "fthx": (
        "919c279de2f76d641e3226d7e5361ca4c6d306e6ce59ec8946a846cb6b46eb33", 4),
    "fatpaths": (
        "1e674b9e34288f31c19d86f95af4fdd576fa59675f1ba029862bef84df0d3c5a", 7),
}


class TestGolden672Digests:
    @pytest.mark.parametrize("name", sorted(GOLDEN_672))
    def test_full_plane_lft_bytes_are_frozen(self, name):
        fab = _sweep(name, batched=True, scale=1)
        digest = hashlib.sha256(fab.dump_lft().encode()).hexdigest()
        want_digest, want_vls = GOLDEN_672[name]
        assert digest == want_digest
        assert fab.num_vls == want_vls


class TestChunkedPasses:
    """One-destination chunks must reproduce default-chunk bytes."""

    def test_chunk_knob_roundtrip(self):
        base = get_chunk_bytes()
        prev = set_chunk_bytes(123)
        assert prev == base
        assert get_chunk_bytes() == 123
        assert items_per_chunk(40) == 3
        assert items_per_chunk(10**9) == 1  # never zero items
        set_chunk_bytes(base)

    def test_chunk_context_manager_restores(self):
        base = get_chunk_bytes()
        with chunk_bytes(123):
            assert get_chunk_bytes() == 123
            with chunk_bytes(456):
                assert get_chunk_bytes() == 456
            assert get_chunk_bytes() == 123
        assert get_chunk_bytes() == base

    def test_load_estimate_chunk_invariant(self):
        fab = _sweep("fthx", batched=True)
        with chunk_bytes(1):  # one destination per chunk everywhere
            loads_tiny = estimate_link_loads(fab)
        with chunk_bytes(64 * 1024 * 1024):
            assert estimate_link_loads(fab) == loads_tiny

    def test_whatif_report_chunk_invariant(self):
        fab = _sweep("fthx", batched=True)
        with chunk_bytes(1):
            tiny = json.loads(audit_whatif(fab, k2_samples=4, seed=9).to_json())
        with chunk_bytes(64 * 1024 * 1024):
            big = json.loads(audit_whatif(fab, k2_samples=4, seed=9).to_json())
        tiny["summary"]["elapsed_seconds"] = 0
        big["summary"]["elapsed_seconds"] = 0
        assert tiny == big

    def test_resolve_paths_chunk_invariant(self):
        fab = _sweep("fthx", batched=True)
        with chunk_bytes(1):
            tiny = fab.resolve_paths()
        with chunk_bytes(64 * 1024 * 1024):
            big = fab.resolve_paths()
        for f in tiny.__dataclass_fields__:
            a, b = getattr(tiny, f), getattr(big, f)
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b), f
            else:
                assert a == b, f

    def test_destination_blocks_honour_chunk_bytes(self):
        from repro.routing.base import destination_blocks
        fab = _sweep("minhop", batched=True, scale=4, seed=0)
        dlids = fab.lidmap.terminal_lids(fab.net)
        with chunk_bytes(1):
            blocks = destination_blocks(fab, dlids)
        assert all(len(b) == 1 for b in blocks)
        assert [d for b in blocks for d in b] == list(dlids)


class TestNarrowDtype:
    def test_dtype_for_link_space(self):
        assert table_dtype_for(100) == np.int16
        assert table_dtype_for(np.iinfo(np.int16).max) == np.int16
        assert table_dtype_for(np.iinfo(np.int16).max + 1) == np.int32

    def test_small_fabric_tables_are_int16(self):
        fab = _sweep("minhop", batched=True, scale=4, seed=0)
        assert fab.tables.dense.dtype == np.int16

    def test_scalar_overflow_is_refused(self):
        fab = _sweep("minhop", batched=True, scale=4, seed=0)
        tables = fab.tables
        sw = fab.net.switches[0]
        dlid = int(tables.dlids[0])
        with pytest.raises(RoutingError, match="dtype"):
            tables[sw][dlid] = int(np.iinfo(np.int16).max) + 1

    def test_row_array_overflow_is_refused(self):
        fab = _sweep("minhop", batched=True, scale=4, seed=0)
        tables = fab.tables
        row = np.full(len(tables.dlids), np.iinfo(np.int16).max + 1,
                      dtype=np.int64)
        with pytest.raises(RoutingError, match="dtype"):
            tables.install_row_array(fab.net.switches[0], row)


class TestFormatV4Cache:
    def test_sidecar_records_rows_dtype(self, tmp_path):
        fab = _sweep("minhop", batched=True, scale=4, seed=0)
        path = tmp_path / "fab.json"
        fab.save(path, arrays=True)
        payload = json.loads(path.read_text())
        assert payload["tables"]["rows_dtype"] == "int16"
        clone = Fabric.load(fab.net, path)
        assert np.array_equal(clone.tables.dense, fab.tables.dense)
        assert clone.tables.dense.dtype == fab.tables.dense.dtype

    def test_stale_sidecar_dtype_is_refused(self, tmp_path):
        fab = _sweep("minhop", batched=True, scale=4, seed=0)
        path = tmp_path / "fab.json"
        fab.save(path, arrays=True)
        payload = json.loads(path.read_text())
        sidecar = tmp_path / payload["tables"]["rows_file"]
        np.save(sidecar, np.load(sidecar).astype(np.int32))
        with pytest.raises(RoutingError, match="dtype"):
            Fabric.load(fab.net, path)
