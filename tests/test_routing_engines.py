"""Unit/integration tests for MinHop, SSSP, DFSSSP, Up*/Down*, ftree."""

import numpy as np
import pytest

from repro.ib.subnet_manager import OpenSM
from repro.routing import (
    DfssspRouting,
    FtreeRouting,
    MinHopRouting,
    SsspRouting,
    UpDownRouting,
    audit_fabric,
)
from repro.routing.dijkstra import accumulate_tree_loads, tree_to_destination
from repro.core.errors import RoutingError
from repro.topology.faults import inject_cable_faults
from repro.topology.fattree import k_ary_n_tree, three_level_fattree
from repro.topology.hyperx import hyperx


class TestDijkstra:
    def test_tree_reaches_all_switches(self):
        net = hyperx((4, 4), 1)
        w = np.ones(len(net.links))
        parent, hops = tree_to_destination(net, net.switches[0], w)
        assert set(parent) == set(net.switches) - {net.switches[0]}
        assert max(hops.values()) <= 2

    def test_mask_forces_detour(self):
        net = hyperx((4,), 1)  # full mesh of 4
        w = np.ones(len(net.links))
        s = net.switches
        direct = net.links_between(s[3], s[0])[0].id
        parent, hops = tree_to_destination(net, s[0], w, masked_links={direct})
        assert parent[s[3]] != direct
        assert hops[s[3]] == 2

    def test_weights_steer_ties(self):
        net = hyperx((3, 3), 1)
        w = np.ones(len(net.links))
        parent0, _ = tree_to_destination(net, net.switches[0], w)
        # Pump weight onto every link the first tree uses; the next tree
        # must differ somewhere (equal-hop alternatives exist in a 3x3).
        for link in parent0.values():
            w[link] += 100
        parent1, _ = tree_to_destination(net, net.switches[0], w)
        assert any(parent0[s] != parent1[s] for s in parent0)

    def test_hop_count_dominates_weight(self):
        # Even a very heavy direct link beats a light two-hop detour:
        # the metric is lexicographic (hops, weight).
        net = hyperx((3,), 1)
        w = np.ones(len(net.links))
        s = net.switches
        direct = net.links_between(s[1], s[0])[0].id
        w[direct] = 1e6
        parent, hops = tree_to_destination(net, s[0], w)
        assert parent[s[1]] == direct
        assert hops[s[1]] == 1

    def test_accumulate_tree_loads(self):
        net = hyperx((4,), 1)
        w = np.ones(len(net.links))
        parent, hops = tree_to_destination(net, net.switches[0], w)
        loads = accumulate_tree_loads(
            net, parent, hops, {sw: 1.0 for sw in net.switches[1:]}
        )
        # Full mesh: each of the three sources sends straight in.
        assert sum(loads.values()) == pytest.approx(3.0)


@pytest.fixture(scope="module")
def hx44():
    return hyperx((4, 4), 2)


class TestMinHop:
    def test_clean_and_minimal(self, hx44):
        fabric = OpenSM(hx44).run(MinHopRouting())
        audit = audit_fabric(fabric)
        assert audit.clean
        assert audit.non_minimal_pairs == 0

    def test_lmc_routes_every_lid(self, hx44):
        fabric = OpenSM(hx44, lmc=1).run(MinHopRouting())
        t0, t1 = hx44.terminals[0], hx44.terminals[-1]
        for idx in range(2):
            path = fabric.path(t0, t1, lid_index=idx)
            assert hx44.path_nodes(path)[-1] == t1


class TestSssp:
    def test_balances_better_than_minhop_on_faulty_tree(self):
        """SSSP's raison d'etre (and why the paper picks it for its
        imperfect Fat-Tree): far lower maximum link load than MinHop's
        deterministic tie-breaks once the topology is irregular."""
        net = three_level_fattree(
            num_edge_switches=8, terminals_per_edge=4,
            uplinks_per_edge=4, num_directors=2,
        )
        inject_cable_faults(net, 5, seed=0)

        def max_load(fabric):
            loads: dict[int, int] = {}
            for a in net.terminals:
                for b in net.terminals:
                    if a != b:
                        for l in fabric.path(a, b):
                            loads[l] = loads.get(l, 0) + 1
            return max(
                c for l, c in loads.items()
                if net.is_switch(net.link(l).src)
                and net.is_switch(net.link(l).dst)
            )

        mh = max_load(OpenSM(net).run(MinHopRouting()))
        ss = max_load(OpenSM(net).run(SsspRouting()))
        assert ss < mh

    def test_deadlock_prone_on_hyperx(self, hx44):
        """The paper's motivation for DFSSSP: plain SSSP's single-lane
        CDG is cyclic on a HyperX."""
        fabric = OpenSM(hx44).run(SsspRouting())
        assert fabric.num_vls == 1
        audit = audit_fabric(fabric)
        assert not audit.deadlock_free

    def test_minimal(self, hx44):
        fabric = OpenSM(hx44).run(SsspRouting())
        audit = audit_fabric(fabric, check_deadlock=False)
        assert audit.non_minimal_pairs == 0
        assert audit.unreachable == 0


class TestDfsssp:
    def test_deadlock_free_within_qdr_budget(self, hx44):
        fabric = OpenSM(hx44).run(DfssspRouting())
        audit = audit_fabric(fabric)
        assert audit.clean
        assert 1 <= fabric.num_vls <= 8

    def test_full_scale_needs_few_vls(self):
        """Paper section 4.4.3: DFSSSP needs only 3 VLs on the 12x8
        HyperX; our conservative layering may use one or two more but
        must stay well within the 8-VL hardware limit."""
        from repro.topology.t2hx import t2hx_hyperx

        fabric = OpenSM(t2hx_hyperx()).run(DfssspRouting())
        assert fabric.num_vls <= 5

    def test_survives_faults(self, ):
        net = hyperx((4, 4), 2)
        inject_cable_faults(net, 6, seed=2)
        fabric = OpenSM(net).run(DfssspRouting())
        audit = audit_fabric(fabric)
        assert audit.clean


class TestUpDown:
    def test_clean_on_hyperx(self, hx44):
        fabric = OpenSM(hx44).run(UpDownRouting())
        audit = audit_fabric(fabric)
        assert audit.clean

    def test_single_vl_suffices(self, hx44):
        """Up*/Down* is deadlock-free by construction: the layering must
        confirm a single lane."""
        sm = OpenSM(hx44, max_vls=1)
        fabric = sm.run(UpDownRouting())
        assert fabric.num_vls == 1

    def test_root_choice_respected(self, hx44):
        fabric = OpenSM(hx44).run(UpDownRouting(root=hx44.switches[5]))
        assert audit_fabric(fabric).clean

    def test_non_minimal_paths_exist(self, hx44):
        """The classic up/down root bottleneck: some pairs detour."""
        fabric = OpenSM(hx44).run(UpDownRouting())
        audit = audit_fabric(fabric)
        assert audit.non_minimal_pairs > 0


class TestFtree:
    def test_clean_minimal_one_vl_on_kary(self):
        net = k_ary_n_tree(4, 2)
        fabric = OpenSM(net, max_vls=1).run(FtreeRouting())
        audit = audit_fabric(fabric)
        assert audit.clean
        assert audit.non_minimal_pairs == 0
        assert fabric.num_vls == 1

    def test_clean_minimal_on_director_tree(self):
        net = three_level_fattree(
            num_edge_switches=8, terminals_per_edge=4,
            uplinks_per_edge=4, num_directors=2,
        )
        fabric = OpenSM(net).run(FtreeRouting())
        audit = audit_fabric(fabric)
        assert audit.clean
        assert audit.non_minimal_pairs == 0

    def test_fault_tolerant(self):
        net = three_level_fattree(
            num_edge_switches=8, terminals_per_edge=4,
            uplinks_per_edge=4, num_directors=2,
        )
        inject_cable_faults(net, 4, seed=1)
        fabric = OpenSM(net).run(FtreeRouting())
        audit = audit_fabric(fabric)
        assert audit.unreachable == 0
        assert audit.loops == 0

    def test_shift_permutation_spreads_uplinks(self):
        """d-mod-k property: consecutive destinations on one leaf take
        distinct up ports from a remote leaf (contention-free shifts)."""
        net = k_ary_n_tree(4, 2)
        fabric = OpenSM(net).run(FtreeRouting())
        leaf0_terms = net.attached_terminals(net.switches[0])
        src = net.attached_terminals(net.switches[1])[0]
        first_up = set()
        for dst in leaf0_terms:
            path = fabric.path(src, dst)
            first_up.add(path[1])  # link leaving the source leaf
        assert len(first_up) == len(leaf0_terms)

    def test_rejects_non_tree(self, hx44):
        with pytest.raises(RoutingError):
            OpenSM(hx44).run(FtreeRouting())
