"""Unit tests for the communication profiler and placement strategies."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.mpi.collectives import pairwise_alltoall, ring_allreduce
from repro.mpi.profiler import CommunicationProfiler, merge_demands
from repro.placement import (
    clustered_placement,
    linear_placement,
    placement,
    random_placement,
)


class TestProfiler:
    def test_alltoall_profile_uniform_255(self):
        prof = CommunicationProfiler()
        prof.record(pairwise_alltoall(4, 1000.0))
        d = prof.rank_demands()
        for src in range(4):
            for dst in range(4):
                if src != dst:
                    assert d[src][dst] == 255

    def test_normalisation_range(self):
        prof = CommunicationProfiler()
        prof.record_pair(0, 1, 1e9)
        prof.record_pair(0, 2, 1.0)  # tiny but nonzero -> at least 1
        d = prof.rank_demands()
        assert d[0][1] == 255
        assert d[0][2] == 1

    def test_zero_traffic_absent(self):
        prof = CommunicationProfiler()
        prof.record([[(0, 1, 0.0)]])
        assert prof.rank_demands() == {}

    def test_self_sends_ignored(self):
        prof = CommunicationProfiler()
        prof.record([[(2, 2, 100.0)]])
        assert prof.rank_demands() == {}

    def test_accumulation_across_records(self):
        prof = CommunicationProfiler()
        prof.record(ring_allreduce(4, 100.0))
        total = prof.total_bytes
        prof.record(ring_allreduce(4, 100.0))
        assert prof.total_bytes == pytest.approx(2 * total)

    def test_demands_for_nodes_rekeys(self):
        prof = CommunicationProfiler()
        prof.record_pair(0, 1, 100.0)
        nodes = [42, 99]
        d = prof.demands_for_nodes(nodes)
        assert d == {42: {99: 255}}

    def test_demands_for_nodes_bounds_checked(self):
        prof = CommunicationProfiler()
        prof.record_pair(0, 5, 100.0)
        with pytest.raises(ConfigurationError):
            prof.demands_for_nodes([10, 11])

    def test_merge_takes_max(self):
        a = {1: {2: 100}}
        b = {1: {2: 200, 3: 50}}
        assert merge_demands(a, b) == {1: {2: 200, 3: 50}}


class TestPlacements:
    POOL = list(range(100, 150))

    def test_linear(self):
        assert linear_placement(self.POOL, 5) == [100, 101, 102, 103, 104]

    def test_clustered_strides_geometric(self):
        alloc = clustered_placement(self.POOL, 20, seed=0)
        assert len(alloc) == len(set(alloc)) == 20
        strides = np.diff(sorted(self.POOL.index(n) for n in alloc))
        # Mean geometric(0.8) stride is 1.25; allocation must be mostly
        # dense with occasional gaps.
        assert strides.mean() < 2.5

    def test_clustered_wraps_when_pool_exhausted(self):
        alloc = clustered_placement(self.POOL, 50, seed=1)
        assert sorted(alloc) == sorted(self.POOL)

    def test_clustered_deterministic(self):
        a = clustered_placement(self.POOL, 10, seed=5)
        b = clustered_placement(self.POOL, 10, seed=5)
        assert a == b

    def test_random_unique_and_seeded(self):
        a = random_placement(self.POOL, 10, seed=2)
        b = random_placement(self.POOL, 10, seed=2)
        assert a == b
        assert len(set(a)) == 10
        assert all(n in self.POOL for n in a)

    def test_random_spreads(self):
        a = random_placement(self.POOL, 10, seed=0)
        assert a != linear_placement(self.POOL, 10)

    def test_dispatch(self):
        assert placement("linear", self.POOL, 3) == [100, 101, 102]
        assert len(placement("clustered", self.POOL, 3, seed=0)) == 3
        assert len(placement("random", self.POOL, 3, seed=0)) == 3
        with pytest.raises(ConfigurationError):
            placement("best", self.POOL, 3)

    def test_too_many_ranks(self):
        with pytest.raises(ConfigurationError):
            linear_placement(self.POOL, 1000)

    def test_zero_ranks(self):
        with pytest.raises(ConfigurationError):
            linear_placement(self.POOL, 0)
