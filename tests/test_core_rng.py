"""Unit tests for seeded RNG helpers."""

import numpy as np
import pytest

from repro.core.rng import derive_seed, hash_str, make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).integers(0, 1000, 10)
        b = make_rng(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_none_gives_fresh_entropy(self):
        # Two unseeded generators must not collide on a long draw.
        a = make_rng(None).integers(0, 2**62)
        b = make_rng(None).integers(0, 2**62)
        # Astronomically unlikely to be equal; flakiness risk ~5e-19.
        assert a != b


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 7)) == 7

    def test_streams_differ(self):
        rngs = spawn_rngs(0, 3)
        draws = [r.integers(0, 2**32) for r in rngs]
        assert len(set(draws)) == 3

    def test_deterministic(self):
        a = [r.integers(0, 2**32) for r in spawn_rngs(5, 4)]
        b = [r.integers(0, 2**32) for r in spawn_rngs(5, 4)]
        assert a == b

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "faults") == derive_seed(1, "faults")

    def test_tags_matter(self):
        assert derive_seed(1, "faults") != derive_seed(1, "placement")

    def test_master_seed_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_int_tags(self):
        assert derive_seed(1, 3) != derive_seed(1, 4)


class TestHashStr:
    def test_process_independent_known_value(self):
        # FNV-1a of "a" is a published constant.
        assert hash_str("a") == 0xE40C292C

    def test_distinct(self):
        assert hash_str("hyperx") != hash_str("fattree")
