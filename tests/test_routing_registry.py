"""Registry contract tests: every registered engine is constructible,
routes clean, and tells the truth about its capability flags."""

import pytest

from repro.core.errors import ConfigurationError
from repro.ib.subnet_manager import OpenSM, resweep
from repro.routing import (
    MinHopRouting,
    RoutingEngine,
    audit_fabric,
    catalogue_markdown,
    create_engine,
    engine_catalogue,
    engine_names,
    engine_spec,
    register_engine,
    sm_kwargs_for,
)
from repro.topology.fattree import k_ary_n_tree
from repro.topology.faults import FabricEvent
from repro.topology.hyperx import hyperx


def _supports(name: str, topology: str) -> bool:
    topos = engine_spec(name).topologies
    return not topos or topology in topos


def _route(net, name):
    """Route a plane the way every consumer does: registry + sm_defaults."""
    return OpenSM(net).run(create_engine(name))


class TestRegistryContract:
    def test_catalogue_is_populated(self):
        names = engine_names()
        assert names == sorted(names)
        for expected in ("minhop", "ftree", "sssp", "dfsssp", "parx",
                         "fthx", "fatpaths"):
            assert expected in names

    def test_create_engine_round_trips_every_name(self):
        for name in engine_names():
            engine = create_engine(name)
            assert isinstance(engine, RoutingEngine)
            # The registry never re-states what the class declares.
            assert sm_kwargs_for(name) == dict(engine.sm_defaults)

    def test_unknown_name_lists_the_catalogue(self):
        with pytest.raises(ConfigurationError) as e:
            create_engine("no-such-engine")
        for name in engine_names():
            assert name in str(e.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_engine("minhop", MinHopRouting)

    def test_demands_forwarded_only_to_demand_engines(self):
        demands = {0: {1: 100}}
        parx = create_engine("parx", demands=demands)
        assert parx.demands == {0: {1: 100}}
        # Non-demand engines ignore the profile instead of crashing.
        assert create_engine("dfsssp", demands=demands).name == "dfsssp"

    def test_catalogue_rows_and_markdown(self):
        rows = {r["name"]: r for r in engine_catalogue()}
        assert set(rows) == set(engine_names())
        assert rows["parx"]["needs_demands"]
        assert rows["fthx"]["incremental_resweep"]
        assert rows["fthx"]["parallel_sweep"]
        assert not rows["dfsssp"]["parallel_sweep"]
        assert not rows["sssp"]["deadlock_free"]
        md = catalogue_markdown()
        for name in engine_names():
            assert f"`{name}`" in md


class TestEveryEngineRoutesClean:
    """Each registered engine routes its supported small topologies with
    zero unreachable pairs, zero loops, and (when it claims deadlock
    freedom) a deadlock-free lane assignment."""

    @pytest.fixture(scope="class")
    def hx(self):
        return hyperx((4, 4), 2)  # even 2-D shape: PARX-compatible

    @pytest.fixture(scope="class")
    def ft(self):
        return k_ary_n_tree(4, 2)

    @pytest.mark.parametrize("name", sorted(
        n for n in engine_names() if _supports(n, "hyperx")
    ))
    def test_routes_small_hyperx(self, hx, name):
        fabric = _route(hx, name)
        audit = audit_fabric(fabric)
        assert audit.unreachable == 0
        assert audit.loops == 0
        if create_engine(name).provides_deadlock_freedom:
            assert audit.deadlock_free

    @pytest.mark.parametrize("name", sorted(
        n for n in engine_names() if _supports(n, "fattree")
    ))
    def test_routes_small_fattree(self, ft, name):
        fabric = _route(ft, name)
        audit = audit_fabric(fabric)
        assert audit.unreachable == 0
        assert audit.loops == 0
        if create_engine(name).provides_deadlock_freedom:
            assert audit.deadlock_free


class TestCapabilityFlagsHonest:
    """``supports_incremental_resweep`` is a bit-equality promise: the
    incremental path must reproduce a forced heavy sweep exactly."""

    @pytest.mark.parametrize("name", sorted(
        n for n in engine_names()
        if create_engine(n).supports_incremental_resweep
        and _supports(n, "hyperx")
    ))
    def test_incremental_matches_forced_heavy(self, name):
        net_inc = hyperx((4, 4), 2)
        net_heavy = hyperx((4, 4), 2)
        fab_inc = _route(net_inc, name)
        fab_heavy = _route(net_heavy, name)

        # A cable some pair actually routes over, so entries go stale.
        src = net_inc.attached_terminals(net_inc.switches[0])[0]
        dst = net_inc.attached_terminals(net_inc.switches[-1])[0]
        cable = net_inc.link(fab_inc.path(src, dst)[1]).id

        net_inc.disable_cable(cable)
        engine_inc = create_engine(name)
        report = resweep(
            fab_inc, engine_inc,
            events=[FabricEvent("fail_cable", phase=0, cable=cable)],
        )
        assert report.resweep_ran
        assert 0 < report.dests_recomputed < len(
            fab_inc.lidmap.terminal_lids(net_inc)
        ), "incremental path did not run (fell back to heavy?)"

        net_heavy.disable_cable(cable)
        heavy_cls = type(
            "ForcedHeavy", (type(create_engine(name)),),
            {"supports_incremental_resweep": False},
        )
        engine_heavy = heavy_cls() if not engine_spec(name).needs_demands \
            else heavy_cls(None)
        resweep(
            fab_heavy, engine_heavy,
            events=[FabricEvent("fail_cable", phase=0, cable=cable)],
        )

        assert fab_inc.dump_lft() == fab_heavy.dump_lft()
        assert fab_inc.vl_of_dlid == fab_heavy.vl_of_dlid
        assert fab_inc.num_vls == fab_heavy.num_vls


class TestDynamicCombinations:
    """Any registered engine name is a valid campaign combination."""

    def test_every_engine_forms_a_combination(self):
        from repro.experiments.configs import get_combination, make_engine
        for name in engine_names():
            topos = engine_spec(name).topologies
            prefix = "ft" if topos == ("fattree",) else "hx"
            combo = get_combination(f"{prefix}-{name}-linear")
            assert combo.routing == name
            engine, sm_kwargs = make_engine(combo)
            assert engine.name == create_engine(name).name
            assert sm_kwargs == sm_kwargs_for(name)

    def test_combination_key_is_ledger_compatible(self):
        from repro.campaign import engine_race_grid
        cells = engine_race_grid(
            ["dfsssp", "fthx", "fatpaths"], ["alltoall"], [8]
        )
        ids = [c.cell_id for c in cells]
        assert len(set(ids)) == len(ids)
        assert all(cid.startswith("hx-") for cid in ids)
