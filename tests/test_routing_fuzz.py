"""Property-based fuzzing: routing invariants over random fabrics.

Hypothesis generates random small HyperX/torus shapes, terminal
densities, fault patterns and engine choices; every combination must
produce a fully routable, loop-free fabric whose deadlock guarantees
hold.  This is the library's broadest safety net — any engine change
that breaks an invariant on *some* topology corner shows up here.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import TopologyError
from repro.ib.subnet_manager import OpenSM
from repro.routing import (
    DfssspRouting,
    MinHopRouting,
    NueRouting,
    UpDownRouting,
    ValiantRouting,
    audit_fabric,
)
from repro.topology.faults import inject_cable_faults
from repro.topology.hyperx import hyperx
from repro.topology.torus import torus

ENGINES = {
    "minhop": MinHopRouting,
    "updown": UpDownRouting,
    "dfsssp": DfssspRouting,
    "nue": lambda: NueRouting(num_vls=2),
    "valiant": lambda: ValiantRouting(seed=1),
}


@st.composite
def _fabrics(draw):
    kind = draw(st.sampled_from(["hyperx", "torus"]))
    dims = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(2, 4)) for _ in range(dims))
    terminals = draw(st.integers(1, 3))
    if kind == "hyperx":
        net = hyperx(shape, terminals)
    else:
        net = torus(shape, terminals)
    faults = draw(st.integers(0, 3))
    if faults:
        try:
            inject_cable_faults(net, faults, seed=draw(st.integers(0, 99)))
        except TopologyError:
            pass  # tiny fabrics cannot lose that many cables; fine
    return net


class TestRoutingInvariantsFuzz:
    @given(_fabrics(), st.sampled_from(sorted(ENGINES)))
    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_engine_produces_clean_fabric(self, net, engine_name):
        from repro.core.errors import DeadlockError

        engine = ENGINES[engine_name]()
        try:
            fabric = OpenSM(net).run(engine)
        except DeadlockError:
            # A clean refusal is compliant: Valiant's detoured trees —
            # and DFSSSP's destination partitioning on dense low-radix
            # tori (e.g. 3x4x4) — can exceed QDR's 8 lanes.  Refusing is
            # correct behaviour; producing a deadlock would not be.
            assert engine_name in ("valiant", "dfsssp"), engine_name
            return
        audit = audit_fabric(fabric)
        assert audit.unreachable == 0, (engine_name, net.name)
        assert audit.loops == 0, (engine_name, net.name)
        assert audit.deadlock_free, (engine_name, net.name)
        assert fabric.num_vls <= 8

    @given(_fabrics())
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_minhop_is_minimal_everywhere(self, net):
        fabric = OpenSM(net).run(MinHopRouting())
        audit = audit_fabric(fabric, check_deadlock=False)
        assert audit.non_minimal_pairs == 0

    @given(_fabrics())
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_paths_are_symmetric_in_reachability(self, net):
        """If a can reach b, b can reach a (connected fault injection
        guarantees it; the tables must honour it)."""
        fabric = OpenSM(net).run(MinHopRouting())
        terms = net.terminals
        a, b = terms[0], terms[-1]
        if a == b:
            return
        assert fabric.path(a, b)
        assert fabric.path(b, a)
