"""Integration tests for the experiment harness."""

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments import (
    BASELINE,
    THE_FIVE,
    RunSpec,
    build_fabric,
    get_combination,
    make_job,
    make_pml,
    relative_gain,
    run_capability,
    run_capacity,
    whisker_stats,
)
from repro.experiments.capacity import CAPACITY_APPS
from repro.mpi.pml import Ob1Pml, ParxBfoPml
from repro.workloads.proxyapps import PROXY_APPS


class TestCombinations:
    def test_exactly_the_papers_five(self):
        labels = [c.label for c in THE_FIVE]
        assert labels == [
            "Fat-Tree / ftree / linear",
            "Fat-Tree / SSSP / clustered",
            "HyperX / DFSSSP / linear",
            "HyperX / DFSSSP / random",
            "HyperX / PARX / clustered",
        ]

    def test_baseline_is_first(self):
        assert BASELINE.key == "ft-ftree-linear"

    def test_lookup(self):
        assert get_combination("hx-parx-clustered").uses_parx
        with pytest.raises(ConfigurationError):
            get_combination("hx-dal-magic")

    def test_pml_selection(self):
        assert isinstance(make_pml(BASELINE), Ob1Pml)
        assert isinstance(make_pml(get_combination("hx-parx-clustered")), ParxBfoPml)


class TestBuildFabric:
    @pytest.mark.parametrize("combo", THE_FIVE, ids=lambda c: c.key)
    def test_all_five_route_cleanly(self, combo):
        fabric = build_fabric(combo, scale=2, with_faults=True)
        from repro.routing.validate import audit_fabric

        audit = audit_fabric(fabric, sample_pairs=400)
        assert audit.unreachable == 0
        assert audit.loops == 0

    def test_cache_hit_returns_same_object(self):
        a = build_fabric(BASELINE, scale=2)
        b = build_fabric(BASELINE, scale=2)
        assert a is b

    def test_parx_with_demands_not_cached(self):
        combo = get_combination("hx-parx-clustered")
        t = build_fabric(combo, scale=2).net.terminals
        a = build_fabric(combo, scale=2, demands={t[0]: {t[1]: 255}})
        b = build_fabric(combo, scale=2, demands={t[0]: {t[1]: 255}})
        assert a is not b

    def test_make_job_applies_placement(self):
        fabric = build_fabric(BASELINE, scale=2)
        job = make_job(BASELINE, fabric, 8, seed=0)
        assert job.nodes == fabric.net.terminals[:8]  # linear
        combo = get_combination("hx-dfsssp-random")
        fabric2 = build_fabric(combo, scale=2)
        job2 = make_job(combo, fabric2, 8, seed=0)
        assert job2.nodes != fabric2.net.terminals[:8]


class TestMetrics:
    def test_gain_sign_latency(self):
        # New config twice as fast -> +1.0.
        assert relative_gain(2.0, 1.0) == pytest.approx(1.0)
        assert relative_gain(1.0, 2.0) == pytest.approx(-0.5)

    def test_gain_sign_throughput(self):
        assert relative_gain(1.0, 2.0, higher_is_better=True) == pytest.approx(1.0)

    def test_gain_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            relative_gain(0.0, 1.0)

    def test_whiskers(self):
        st = whisker_stats([3.0, 1.0, 2.0, 5.0, 4.0])
        assert st.minimum == 1.0
        assert st.maximum == 5.0
        assert st.median == 3.0
        assert st.q1 == 2.0 and st.q3 == 4.0
        assert st.best == 1.0
        assert st.n == 5

    def test_whiskers_empty(self):
        with pytest.raises(ConfigurationError):
            whisker_stats([])


class TestCapabilityRunner:
    def test_reps_and_noise(self):
        app = PROXY_APPS["CoMD"]
        spec = RunSpec(BASELINE.key, "CoMD", num_nodes=8, reps=4, scale=2,
                       seed=0, sim_mode="static")
        res = run_capability(
            spec, lambda job, sim: app.kernel_runtime(job, sim)
        )
        assert len(res.values) == 4
        spread = max(res.values) / min(res.values)
        assert 1.0 < spread < 1.15  # ~1% lognormal noise

    def test_deterministic_given_seed(self):
        app = PROXY_APPS["CoMD"]
        spec = RunSpec(BASELINE.key, "CoMD", num_nodes=8, reps=2, scale=2,
                       seed=7, sim_mode="static")
        measure = lambda job, sim: app.kernel_runtime(job, sim)  # noqa: E731
        a = run_capability(spec, measure)
        b = run_capability(spec, measure)
        assert a.values == b.values

    def test_parx_reroutes_with_profile(self):
        combo = get_combination("hx-parx-clustered")
        app = PROXY_APPS["MILC"]
        spec = RunSpec(combo.key, "MILC", num_nodes=8, reps=1, scale=2,
                       seed=0, sim_mode="static")
        res = run_capability(
            spec, lambda job, sim: app.kernel_runtime(job, sim),
            rank_phases_for_profile=app.rank_phases(8),
        )
        assert res.values[0] > 0

    def test_legacy_keyword_form_still_works(self):
        app = PROXY_APPS["CoMD"]
        spec = RunSpec(BASELINE.key, "CoMD", num_nodes=8, reps=2, scale=2,
                       seed=7, sim_mode="static")
        measure = lambda job, sim: app.kernel_runtime(job, sim)  # noqa: E731
        new = run_capability(spec, measure)
        with pytest.warns(DeprecationWarning):
            old = run_capability(
                BASELINE, "CoMD", measure=measure,
                num_nodes=8, reps=2, scale=2, seed=7, sim_mode="static",
            )
        assert old.values == new.values

    def test_best_respects_direction(self):
        from repro.experiments.runner import CapabilityResult

        r = CapabilityResult("x", "y", 4, values=[1.0, 2.0])
        assert r.best == 1.0
        r2 = CapabilityResult("x", "y", 4, values=[1.0, 2.0], higher_is_better=True)
        assert r2.best == 2.0


class TestCapacity:
    def test_scaled_capacity_run(self):
        res = run_capacity(BASELINE, scale=2, sim_mode="static")
        assert set(res.runs) == {a for a, _ in CAPACITY_APPS}
        assert all(v > 0 for v in res.runs.values())
        assert res.total_runs == sum(res.runs.values())

    def test_interference_never_speeds_up(self):
        res = run_capacity(BASELINE, scale=2, sim_mode="static")
        for name in res.runs:
            assert (
                res.interfered_seconds[name]
                >= res.solo_seconds[name] * (1 - 1e-9)
            )

    def test_deterministic(self):
        a = run_capacity(BASELINE, scale=2, sim_mode="static", seed=1)
        b = run_capacity(BASELINE, scale=2, sim_mode="static", seed=1)
        assert a.runs == b.runs
