"""Tests for the point-to-point benchmark patterns."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.units import GIB, MIB, QDR_LINK_BANDWIDTH
from repro.ib.subnet_manager import OpenSM
from repro.mpi import pt2pt
from repro.mpi.job import Job
from repro.routing.dfsssp import DfssspRouting
from repro.sim.engine import FlowSimulator
from repro.topology.hyperx import hyperx


@pytest.fixture(scope="module")
def env():
    net = hyperx((3, 3), 2)
    fabric = OpenSM(net).run(DfssspRouting())
    return net, fabric


class TestPatterns:
    def test_ping_pong_alternates(self):
        phases = pt2pt.ping_pong(100.0, rounds=3)
        assert len(phases) == 6
        assert phases[0] == [(0, 1, 100.0)]
        assert phases[1] == [(1, 0, 100.0)]

    def test_ping_ping_concurrent(self):
        [phase] = pt2pt.ping_ping(10.0)
        assert sorted(phase) == [(0, 1, 10.0), (1, 0, 10.0)]

    def test_exchange_covers_both_neighbours(self):
        right, left = pt2pt.exchange(5, 1.0)
        assert (0, 1, 1.0) in right
        assert (0, 4, 1.0) in left

    def test_windows(self):
        [uni] = pt2pt.uni_band(8.0, window=16)
        assert len(uni) == 16
        [bi] = pt2pt.bi_band(8.0, window=16)
        assert len(bi) == 32

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pt2pt.ping_pong(-1.0)
        with pytest.raises(ConfigurationError):
            pt2pt.exchange(1, 1.0)
        with pytest.raises(ConfigurationError):
            pt2pt.uni_band(1.0, window=0)


class TestOnSimulator:
    def test_ping_pong_round_trip_time(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:2])
        sim = FlowSimulator(net, mode="static")
        t = sim.run(job.materialize(pt2pt.ping_pong(8.0))).total_time
        # Two latency-bound messages in sequence.
        assert 2e-6 < t < 20e-6

    def test_full_duplex_no_halving(self, env):
        """ping-ping must NOT halve bandwidth: the two directions use
        opposite link directions (full duplex)."""
        net, fabric = env
        job = Job(fabric, net.terminals[:2])
        sim = FlowSimulator(net, mode="static")
        solo = sim.run(
            job.materialize([[(0, 1, 64 * MIB)]])
        ).total_time
        duplex = sim.run(
            job.materialize(pt2pt.ping_ping(64 * MIB))
        ).total_time
        assert duplex == pytest.approx(solo, rel=0.02)

    def test_uni_band_aggregates_to_line_rate(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:2])
        sim = FlowSimulator(net, mode="static")
        window, size = 32, 4 * MIB
        t = sim.run(job.materialize(pt2pt.uni_band(size, window))).total_time
        rate = window * size / t
        assert rate == pytest.approx(QDR_LINK_BANDWIDTH, rel=0.05)
