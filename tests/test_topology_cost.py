"""Unit tests for the deployment-cost model."""

import pytest

from repro.core.errors import TopologyError
from repro.topology.cost import (
    DEFAULT_PRICES,
    compare_planes,
    fattree_packaging,
    hyperx_packaging,
    plane_cost,
    rack_distance_m,
)
from repro.topology.hyperx import hyperx
from repro.topology.t2hx import t2hx_fattree, t2hx_hyperx


class TestRackDistance:
    def test_same_rack_slack_only(self):
        assert rack_distance_m(3, 3) == pytest.approx(4.0)

    def test_same_row(self):
        assert rack_distance_m(0, 5) == pytest.approx(5 * 1.2 + 4.0)

    def test_across_rows(self):
        # rack 0 = (row 0, col 0), rack 13 = (row 1, col 1).
        assert rack_distance_m(0, 13) == pytest.approx(1.2 + 3.0 + 4.0)

    def test_symmetric(self):
        assert rack_distance_m(2, 30) == rack_distance_m(30, 2)


class TestHyperXPackaging:
    def test_paper_rack_count(self):
        net = t2hx_hyperx()
        rack_of = hyperx_packaging(net)
        racks = {rack_of(sw) for sw in net.switches}
        assert len(racks) == 24  # the paper's 24 compute racks

    def test_four_switches_per_rack(self):
        net = t2hx_hyperx()
        rack_of = hyperx_packaging(net)
        from collections import Counter

        counts = Counter(rack_of(sw) for sw in net.switches)
        assert set(counts.values()) == {4}

    def test_rejects_terminal(self):
        net = t2hx_hyperx()
        rack_of = hyperx_packaging(net)
        with pytest.raises(TopologyError):
            rack_of(net.terminals[0])


class TestFattreePackaging:
    def test_edges_and_directors_separated(self):
        net = t2hx_fattree()
        rack_of = fattree_packaging(net)
        edge_racks = {
            rack_of(sw) for sw in net.switches
            if net.node_meta(sw).get("role") == "edge"
        }
        director_racks = {
            rack_of(sw) for sw in net.switches
            if "director" in net.node_meta(sw)
        }
        assert len(edge_racks) == 24
        assert not edge_racks & director_racks


class TestPlaneCost:
    def test_every_cable_priced_once(self):
        net = hyperx((4, 4), 2)
        cost = plane_cost(net, hyperx_packaging(net))
        from repro.topology.properties import cable_count

        assert cost.dac_cables + cost.aoc_cables == cable_count(net)
        assert cost.hcas == 32

    def test_terminal_links_are_copper(self):
        net = hyperx((2, 2), 3)
        cost = plane_cost(net, hyperx_packaging(net, switches_per_rack=4))
        # One rack: every cable is copper.
        assert cost.aoc_cables == 0

    def test_total_is_sum_of_parts(self):
        net = hyperx((4, 4), 1)
        p = DEFAULT_PRICES
        cost = plane_cost(net, hyperx_packaging(net))
        expected = (
            cost.switch_ports * p["switch_port"]
            + cost.dac_cables * p["dac_cable"]
            + cost.aoc_cables * p["aoc_base"]
            + cost.aoc_metres * p["aoc_per_meter"]
            + cost.hcas * p["hca"]
        )
        assert cost.total == pytest.approx(expected)

    def test_price_override(self):
        net = hyperx((2, 2), 1)
        base = plane_cost(net, hyperx_packaging(net))
        pricey = plane_cost(net, hyperx_packaging(net), {"hca": 10_000.0})
        assert pricey.total > base.total


class TestPaperComparison:
    def test_hyperx_aoc_count_matches_paper(self):
        """The paper wired 684 AOCs for the full 12x8 HyperX; our
        packaging model predicts within 10%."""
        net = t2hx_hyperx()
        cost = plane_cost(net, hyperx_packaging(net))
        assert cost.aoc_cables == pytest.approx(684, rel=0.10)

    def test_hyperx_cheaper_per_node(self):
        """The headline: the HyperX plane's deployment cost is clearly
        below the Fat-Tree's ('drastically reduce overall network
        costs', section 2.2)."""
        costs = compare_planes(t2hx_hyperx(), t2hx_fattree())
        hx = costs["hyperx"].per_terminal(672)
        ft = costs["fattree"].per_terminal(672)
        assert hx < 0.85 * ft

    def test_fattree_needs_more_ports(self):
        costs = compare_planes(t2hx_hyperx(), t2hx_fattree())
        assert costs["fattree"].switch_ports > costs["hyperx"].switch_ports
