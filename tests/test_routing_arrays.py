"""Equivalence suite for the routing-sweep engine's array fast paths.

Every performance-critical rewrite in the sweep pipeline keeps its
original implementation alongside as an executable specification:

* array Dijkstra core           vs ``reference_tree_to_destination``
* Pearce-Kelly lane layering    vs ``reference_assign_layers``
* dense CDG column extraction   vs ``_dest_dependencies_generic``
* bulk matrix path resolution   vs per-pair ``_snapshot_paths``
* dense load estimation         vs ``_estimate_link_loads_reference``
* incremental re-sweeps         vs a forced heavy sweep

This module pins each pair together — down to the dict *key order* the
float-exact load accumulation depends on.  Any divergence is a bug in
the fast path, never accepted drift; the golden LFT digests at the
bottom additionally pin the absolute output bytes across refactors.
"""

import hashlib
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.load import (
    _estimate_link_loads_reference,
    estimate_link_loads,
)
from repro.core.errors import DeadlockError, RoutingError, TopologyError
from repro.ib.cdg import _dest_dependencies_generic, dest_dependencies_from_tables
from repro.ib.deadlock import assign_layers, reference_assign_layers
from repro.ib.fabric import FABRIC_FORMAT_VERSION, Fabric
from repro.ib.subnet_manager import (
    UNREACHABLE_SAMPLE_CAP,
    OpenSM,
    _snapshot_paths,
    resweep,
)
from repro.ib.tables import NO_ENTRY, ForwardingTables
from repro.routing.dfsssp import DfssspRouting
from repro.routing.dijkstra import (
    reference_tree_to_destination,
    tree_to_destination,
)
from repro.routing.minhop import MinHopRouting
from repro.topology.fattree import k_ary_n_tree
from repro.topology.faults import FabricEvent, inject_cable_faults
from repro.topology.hyperx import hyperx
from repro.topology.torus import torus


def _small_nets():
    return [
        ("hyperx33", hyperx((3, 3), 2)),
        ("fattree23", k_ary_n_tree(2, 3)),
        ("torus33", torus((3, 3), 1)),
    ]


def _switch_links(net):
    return [
        link.id
        for link in net.iter_links()
        if net.is_switch(link.src) and net.is_switch(link.dst)
    ]


def _assert_trees_equal(net, dsw, weights, masked=()):
    parent, hops = tree_to_destination(net, dsw, weights, masked)
    ref_parent, ref_hops = reference_tree_to_destination(net, dsw, weights, masked)
    assert parent == ref_parent
    assert hops == ref_hops
    # accumulate_tree_loads sorts `parent` stably by depth, so the key
    # (settlement) order is load-bearing for float-exact weight sums.
    assert list(parent) == list(ref_parent)


class TestTreeCoreEquivalence:
    @pytest.mark.parametrize("name,net", _small_nets())
    def test_unit_weights_all_destinations(self, name, net):
        weights = [1.0] * len(net.links)
        for dsw in net.switches:
            _assert_trees_equal(net, dsw, weights)

    @pytest.mark.parametrize("name,net", _small_nets())
    def test_random_weights_and_masks(self, name, net):
        rng = random.Random(7)
        sw_links = _switch_links(net)
        for trial in range(10):
            weights = [1.0 + rng.random() * rng.randrange(1, 50)
                       for _ in range(len(net.links))]
            masked = rng.sample(sw_links, k=rng.randrange(0, 4))
            for dsw in (net.switches[0], net.switches[len(net.switches) // 2],
                        net.switches[-1]):
                _assert_trees_equal(net, dsw, weights, masked)

    def test_faulted_fabric(self):
        net = hyperx((3, 3), 2)
        inject_cable_faults(net, 3, seed=11)
        weights = [1.0] * len(net.links)
        for dsw in net.switches:
            _assert_trees_equal(net, dsw, weights)

    @given(
        st.sampled_from(["hyperx", "torus", "fattree"]),
        st.integers(0, 10 ** 6),
    )
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fuzz_topology_weights_masks(self, kind, seed):
        rng = random.Random(seed)
        if kind == "hyperx":
            shape = tuple(rng.randrange(2, 4) for _ in range(rng.randrange(1, 3)))
            net = hyperx(shape, rng.randrange(1, 3))
        elif kind == "torus":
            shape = tuple(rng.randrange(2, 4) for _ in range(rng.randrange(1, 3)))
            net = torus(shape, rng.randrange(1, 3))
        else:
            net = k_ary_n_tree(2, rng.randrange(2, 4))
        if rng.random() < 0.5:
            try:
                inject_cable_faults(net, rng.randrange(1, 3), seed=seed)
            except TopologyError:
                pass  # tiny fabrics cannot lose that many cables; fine
        weights = [float(rng.randrange(1, 100)) for _ in range(len(net.links))]
        sw_links = _switch_links(net)
        masked = rng.sample(sw_links, k=min(len(sw_links), rng.randrange(0, 5)))
        dsw = rng.choice(net.switches)
        _assert_trees_equal(net, dsw, weights, masked)


def _random_acyclic_dep_sets(rng, channels, dests, max_edges):
    """Per-destination edge sets, each acyclic by construction.

    Orienting every edge along a per-destination random permutation rank
    makes the set a DAG — exactly the shape real destination trees give
    the layering — while cross-destination unions still conflict freely.
    """
    sets = {}
    for dlid in range(dests):
        perm = list(range(channels))
        rng.shuffle(perm)
        rank = {c: i for i, c in enumerate(perm)}
        edges = set()
        for _ in range(rng.randrange(max_edges + 1)):
            a, b = rng.sample(range(channels), 2)
            if rank[a] > rank[b]:
                a, b = b, a
            edges.add((a, b))
        sets[dlid] = frozenset(edges)
    return sets


class TestAssignLayersEquivalence:
    def test_randomized_against_reference(self):
        rng = random.Random(2026)
        for trial in range(150):
            sets = _random_acyclic_dep_sets(
                rng,
                channels=rng.randrange(4, 12),
                dests=rng.randrange(1, 14),
                max_edges=rng.randrange(1, 12),
            )
            max_vls = rng.randrange(1, 5)
            try:
                got = assign_layers(sets, max_vls=max_vls)
            except DeadlockError:
                with pytest.raises(DeadlockError):
                    reference_assign_layers(sets, max_vls=max_vls)
                continue
            assert got == reference_assign_layers(sets, max_vls=max_vls), trial

    def test_real_fixture_dep_sets(self):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(DfssspRouting())
        dep_edges = {
            dlid: dest_dependencies_from_tables(fabric, dlid)
            for dlid in fabric.lidmap.terminal_lids(net)
        }
        vl_of, num = assign_layers(dep_edges)
        assert (vl_of, num) == reference_assign_layers(dep_edges)
        assert (vl_of, num) == (fabric.vl_of_dlid, fabric.num_vls)

    def test_cyclic_single_destination_is_refused(self):
        # Reference silently installed a self-deadlocking destination in
        # a fresh lane; the dynamic-order lane refuses it loudly.  Real
        # destination trees are acyclic, so this only fires on bad input.
        with pytest.raises(DeadlockError, match="cyclic"):
            assign_layers({5: {(1, 2), (2, 1)}})


class TestDenseCdgExtraction:
    def test_matches_generic_per_destination(self):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(DfssspRouting())
        for dlid in fabric.lidmap.terminal_lids(net):
            assert dest_dependencies_from_tables(fabric, dlid) == \
                _dest_dependencies_generic(net, fabric.tables, dlid)

    def test_matches_generic_after_resweep(self):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(MinHopRouting())
        inject_cable_faults(net, 2, seed=5)
        resweep(fabric, MinHopRouting())
        for dlid in fabric.lidmap.terminal_lids(net):
            assert dest_dependencies_from_tables(fabric, dlid) == \
                _dest_dependencies_generic(net, fabric.tables, dlid)

    def test_foreign_rows_fold_in(self):
        net = hyperx((2, 2), 1)
        fabric = OpenSM(net).run(MinHopRouting())
        dlid = fabric.lidmap.terminal_lids(net)[0]
        fake_switch = max(net.switches) + max(net.terminals) + 1
        fabric.tables[fake_switch] = {dlid: _switch_links(net)[0]}
        assert dest_dependencies_from_tables(fabric, dlid) == \
            _dest_dependencies_generic(net, fabric.tables, dlid)


class TestForwardingTablesFacade:
    @pytest.fixture()
    def fabric(self):
        net = hyperx((2, 2), 1)
        return OpenSM(net).run(MinHopRouting())

    def test_setdefault_returns_live_row(self, fabric):
        tables = ForwardingTables(fabric.net, fabric.lidmap)
        sw = fabric.net.switches[0]
        dlid = fabric.lidmap.terminal_lids(fabric.net)[0]
        link = _switch_links(fabric.net)[0]
        # The MutableMapping mixin would return the default dict itself;
        # writes to that object must land in the matrix, so the facade
        # hands back the live row view instead.
        row = tables.setdefault(sw, {})
        row[dlid] = link
        assert tables[sw][dlid] == link
        assert tables.dense[tables.row_of(sw), tables.column_of(dlid)] == link
        assert tables.setdefault(sw, {})[dlid] == link

    def test_behaves_like_dict_of_dicts(self, fabric):
        tables = fabric.tables
        plain = {sw: dict(row) for sw, row in tables.items()}
        assert dict(tables) == {sw: tables[sw] for sw in tables}
        for sw, entries in plain.items():
            assert len(tables[sw]) == len(entries)
            for dlid, link in entries.items():
                assert tables[sw][dlid] == link
                assert dlid in tables[sw]

    def test_overflow_dlid_outside_universe(self, fabric):
        tables = fabric.tables
        sw = fabric.net.switches[0]
        weird_dlid = int(tables.dlids[-1]) + 1000
        assert tables.column_of(weird_dlid) is None
        link = _switch_links(fabric.net)[0]
        tables[sw][weird_dlid] = link
        assert tables[sw][weird_dlid] == link
        assert (sw, weird_dlid, link) in list(tables.overflow_items())
        del tables[sw][weird_dlid]
        assert weird_dlid not in tables[sw]

    def test_foreign_switch_row(self, fabric):
        tables = fabric.tables
        dlid = fabric.lidmap.terminal_lids(fabric.net)[0]
        fake = max(fabric.net.switches) + max(fabric.net.terminals) + 1
        assert tables.row_of(fake) is None
        tables[fake] = {dlid: 0}
        assert fake in tables.foreign_switches()
        assert tables[fake][dlid] == 0
        del tables[fake]
        assert fake not in tables.foreign_switches()
        assert fake not in tables

    def test_clear_column(self, fabric):
        tables = fabric.tables
        dlid = fabric.lidmap.terminal_lids(fabric.net)[0]
        col = tables.column_of(dlid)
        assert (tables.dense[:, col] >= 0).any()
        tables.clear_column(dlid)
        assert (tables.dense[:, col] == NO_ENTRY).all()
        for sw in tables:
            assert dlid not in tables[sw]

    def test_uid_is_process_unique(self, fabric):
        a = ForwardingTables(fabric.net, fabric.lidmap)
        b = ForwardingTables(fabric.net, fabric.lidmap)
        assert a.uid != b.uid
        assert fabric.tables.uid not in (a.uid, b.uid)

    def test_assignment_rewraps_plain_dicts(self, fabric):
        before = fabric.dump_lft()
        plain = {sw: dict(row) for sw, row in fabric.tables.items()}
        fabric.tables = plain
        assert isinstance(fabric.tables, ForwardingTables)
        assert fabric.dump_lft() == before


class TestResolvePathsEquivalence:
    def _cross_check(self, fabric):
        res = fabric.resolve_paths()
        snap = _snapshot_paths(fabric)
        net = fabric.net
        lost = 0
        for (src, dst), path in snap.items():
            if path is None:
                lost += 1
                assert not res.reachable(src, dst)
            else:
                assert res.reachable(src, dst)
                assert res.hop_count(src, dst) == net.path_hops(list(path))
        assert res.num_unreachable == lost
        for t in net.terminals:
            assert not res.reachable(t, t)

    @pytest.mark.parametrize("engine", [MinHopRouting, DfssspRouting])
    def test_healthy_fabric(self, engine):
        net = hyperx((3, 3), 2)
        self._cross_check(OpenSM(net).run(engine()))

    def test_faulted_and_rerouted(self):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(MinHopRouting())
        inject_cable_faults(net, 2, seed=3)
        # Stale tables first: pairs crossing the dead cables must
        # resolve exactly like the per-pair walk (unreachable, not ok).
        self._cross_check(fabric)
        resweep(fabric, MinHopRouting())
        self._cross_check(fabric)

    def test_unreachable_pairs_respects_limit(self):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(MinHopRouting())
        cable = _switch_links(net)[0]
        net.disable_cable(cable)
        res = fabric.resolve_paths()
        if res.num_unreachable:
            assert len(res.unreachable_pairs(limit=1)) == 1
        assert len(res.unreachable_pairs()) == res.num_unreachable


class _ForcedHeavyMinHop(MinHopRouting):
    """MinHop stripped of its incremental capability: forces the heavy
    resweep path so the incremental one can be diffed against it."""

    supports_incremental_resweep = False


class _LossyMinHop(_ForcedHeavyMinHop):
    """MinHop that tolerates unreachable switches instead of raising —
    lets a resweep complete on a partitioned fabric so the report's
    unreachable accounting is exercised."""

    @staticmethod
    def _check_reach(fabric, parent, hops, dsw, dlid):
        pass


class TestIncrementalResweep:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_heavy_sweep_exactly(self, seed):
        fabrics, reports = [], []
        for engine in (MinHopRouting(), _ForcedHeavyMinHop()):
            net = hyperx((3, 3), 2)
            fabric = OpenSM(net).run(engine)
            # Same seed on identically built nets fails the same cables.
            inject_cable_faults(net, 2, seed=seed)
            reports.append(resweep(fabric, engine))
            fabrics.append(fabric)
        inc, heavy = fabrics
        r_inc, r_heavy = reports
        assert inc.dump_lft() == heavy.dump_lft()
        assert inc.vl_of_dlid == heavy.vl_of_dlid
        assert inc.num_vls == heavy.num_vls
        for field in ("dests_affected", "entries_changed", "paths_changed",
                      "pairs_total", "hops_before", "hops_after",
                      "num_unreachable"):
            assert getattr(r_inc, field) == getattr(r_heavy, field), field
        assert r_inc.resweep_ran and r_heavy.resweep_ran
        # The incremental pass only touched the stale destinations.
        assert 0 < r_inc.dests_recomputed < r_heavy.dests_recomputed
        assert r_heavy.dests_recomputed == len(
            inc.lidmap.terminal_lids(inc.net)
        )
        assert r_inc.sweep_seconds > 0 and r_heavy.sweep_seconds > 0

    def test_restore_falls_back_to_heavy(self):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(MinHopRouting())
        cable = inject_cable_faults(net, 1, seed=9)[0]
        report = resweep(fabric, MinHopRouting())
        assert report.dests_recomputed < len(net.terminals)
        net.enable_cable(cable.id)
        report = resweep(
            fabric, MinHopRouting(),
            events=[FabricEvent("restore_cable", phase=0, cable=cable.id)],
        )
        assert report.resweep_ran
        assert report.dests_recomputed == len(
            fabric.lidmap.terminal_lids(net)
        )

    def test_skip_leaves_sweep_seconds_zero(self):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(MinHopRouting())
        report = resweep(fabric, MinHopRouting())
        assert not report.resweep_ran
        assert report.dests_recomputed == 0
        assert report.sweep_seconds == 0.0

    def test_report_to_dict_carries_new_fields(self):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(MinHopRouting())
        inject_cable_faults(net, 1, seed=4)
        payload = resweep(fabric, MinHopRouting()).to_dict()
        assert payload["dests_recomputed"] > 0
        assert payload["sweep_seconds"] > 0
        assert payload["num_unreachable"] == 0

    def test_unreachable_sample_is_capped(self):
        # Isolate one switch of a 27-terminal fabric: 3 terminals x 24
        # partners x 2 directions = 144 lost pairs, over the cap.
        net = hyperx((3, 3), 3)
        fabric = OpenSM(net).run(_LossyMinHop())
        victim = net.switches[0]
        for link_id in _switch_links(net):
            link = net.link(link_id)
            if victim in (link.src, link.dst) and link.enabled:
                net.disable_cable(link.id)
        report = resweep(fabric, _LossyMinHop())
        assert report.num_unreachable == 144
        assert len(report.unreachable_pairs) == UNREACHABLE_SAMPLE_CAP
        assert report.to_dict()["num_unreachable"] == 144


class TestLoadEstimatorEquivalence:
    @pytest.mark.parametrize("engine", [MinHopRouting, DfssspRouting])
    def test_dense_matches_reference(self, engine):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(engine())
        dlids = fabric.lidmap.terminal_lids(net)
        assert estimate_link_loads(fabric) == \
            _estimate_link_loads_reference(fabric, dlids)

    def test_dense_matches_reference_after_faults(self):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(MinHopRouting())
        inject_cable_faults(net, 2, seed=6)
        resweep(fabric, MinHopRouting())
        dlids = fabric.lidmap.terminal_lids(net)
        assert estimate_link_loads(fabric) == \
            _estimate_link_loads_reference(fabric, dlids)

    def test_foreign_rows_take_reference_path(self):
        net = hyperx((2, 2), 1)
        fabric = OpenSM(net).run(MinHopRouting())
        dense = estimate_link_loads(fabric)
        fake = max(net.switches) + max(net.terminals) + 1
        fabric.tables[fake] = {}
        assert estimate_link_loads(fabric) == dense


class TestPayloadRoundtrip:
    def test_v2_roundtrip_is_lossless(self):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(DfssspRouting())
        payload = fabric.to_payload()
        assert payload["format_version"] == FABRIC_FORMAT_VERSION
        clone = Fabric.from_payload(net, payload)
        assert clone.dump_lft() == fabric.dump_lft()
        assert clone.vl_of_dlid == fabric.vl_of_dlid
        assert clone.num_vls == fabric.num_vls

    def test_stale_format_version_is_refused(self):
        net = hyperx((2, 2), 1)
        fabric = OpenSM(net).run(MinHopRouting())
        payload = fabric.to_payload()
        payload["format_version"] = 1
        with pytest.raises(RoutingError, match="format"):
            Fabric.from_payload(net, payload)


#: sha256 of ``Fabric.dump_lft()`` on the seed implementation; the
#: array pipeline must keep producing these exact bytes.
GOLDEN_LFT_DIGESTS = {
    "minhop": "5b2f80266f164077867b35752511087fc336af831f3c7f31b2d99e59a13b8f7c",
    "dfsssp": "83058202690dff61e5cc6123c08a271751b95e90527423fbb6a11b374719265a",
}


class TestGoldenDigests:
    @pytest.mark.parametrize("name,engine", [
        ("minhop", MinHopRouting), ("dfsssp", DfssspRouting),
    ])
    def test_small_hyperx_lft_bytes_are_frozen(self, name, engine):
        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(engine())
        digest = hashlib.sha256(fabric.dump_lft().encode()).hexdigest()
        assert digest == GOLDEN_LFT_DIGESTS[name]
