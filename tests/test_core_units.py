"""Unit tests for repro.core.units formatting and constants."""

import pytest

from repro.core import units


class TestConstants:
    def test_byte_multiples(self):
        assert units.KIB == 1024
        assert units.MIB == 1024**2
        assert units.GIB == 1024**3
        assert units.KB == 1000
        assert units.GB == 1000**3

    def test_qdr_bandwidth_in_plausible_band(self):
        # QDR 4X data rate is 32 Gbit/s = 4 GB/s; effective must be below.
        assert 2.5 * units.GIB < units.QDR_LINK_BANDWIDTH < 4.0 * units.GIB

    def test_parx_threshold_is_papers_512(self):
        assert units.PARX_SIZE_THRESHOLD == 512

    def test_latencies_ordered(self):
        assert 0 < units.PER_HOP_LATENCY < units.BASE_MPI_LATENCY
        assert units.BFO_PML_OVERHEAD > units.BASE_MPI_LATENCY


class TestFormatBytes:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (2048, "2.0 KiB"),
            (3 * units.MIB, "3.0 MiB"),
            (5 * units.GIB, "5.0 GiB"),
        ],
    )
    def test_values(self, n, expected):
        assert units.format_bytes(n) == expected


class TestRuMaxrssToBytes:
    """getrusage reports KiB on Linux but bytes on macOS/BSD."""

    def test_linux_is_kib(self):
        assert units.ru_maxrss_to_bytes(200_000, platform="linux") == \
            200_000 * units.KIB

    def test_darwin_is_bytes(self):
        assert units.ru_maxrss_to_bytes(200_000_000, platform="darwin") == \
            200_000_000

    def test_default_platform_matches_explicit(self):
        import sys

        assert units.ru_maxrss_to_bytes(1234) == \
            units.ru_maxrss_to_bytes(1234, platform=sys.platform)

    def test_returns_int(self):
        assert isinstance(units.ru_maxrss_to_bytes(10.0, platform="linux"), int)
        assert isinstance(units.ru_maxrss_to_bytes(10.0, platform="darwin"), int)


class TestFormatTime:
    def test_microseconds(self):
        assert units.format_time(2e-6) == "2.00 us"

    def test_milliseconds(self):
        assert units.format_time(3.5e-3) == "3.50 ms"

    def test_seconds(self):
        assert units.format_time(2.25) == "2.25 s"


class TestFormatRate:
    def test_gib_per_s(self):
        assert units.format_rate(2 * units.GIB) == "2.00 GiB/s"

    def test_mib_per_s(self):
        assert units.format_rate(50 * units.MIB) == "50.0 MiB/s"
