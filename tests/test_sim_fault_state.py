"""Fault-awareness regressions for the flow simulator.

Three bug classes this file pins down:

* a simulator constructed before fault injection must see the degraded
  capacities (the old code snapshotted ``net.links`` in ``__init__``),
* a flow whose max-min rate is zero must raise, not finish instantly,
* a path crossing a disabled link must be refused with a stale-LFT
  diagnostic unless a reroute callback heals it.
"""

import pytest

from repro.core.errors import SimulationError
from repro.core.units import MIB
from repro.ib.subnet_manager import OpenSM, resweep
from repro.mpi.job import Job
from repro.routing.dfsssp import DfssspRouting
from repro.sim.engine import FlowSimulator
from repro.topology.faults import FabricEvent, FaultTimeline
from repro.topology.hyperx import hyperx


@pytest.fixture()
def env():
    net = hyperx((3, 3), 2)
    fabric = OpenSM(net).run(DfssspRouting())
    return net, fabric


def _cross_switch_send(net, fabric, size=16 * MIB):
    """A single message between terminals on different switches."""
    src = net.attached_terminals(net.switches[0])[0]
    dst = net.attached_terminals(net.switches[-1])[0]
    job = Job(fabric, [src, dst])
    return job.send(0, 1, size)


class TestLiveCapacity:
    @pytest.mark.parametrize("mode", ["static", "dynamic"])
    def test_degrade_after_construction_slows_the_flow(self, env, mode):
        """Regression: capacities were cached at simulator construction,
        so faults injected afterwards were silently ignored."""
        net, fabric = env
        prog = _cross_switch_send(net, fabric)
        sim = FlowSimulator(net, mode=mode)  # constructed BEFORE the fault
        pristine = sim.run(prog).total_time
        link = net.link(prog.phases[0].messages[0].path[0])
        net.set_capacity(link.id, link.capacity / 4)
        degraded = sim.run(prog).total_time
        assert degraded > pristine * 2

    def test_direct_field_write_is_seen_at_phase_boundary(self, env):
        """A direct ``link.capacity`` write goes through the versioned
        property setter, so the simulator's cheap version check observes
        it — run_phase no longer force-refreshes every phase to paper
        over bypassing mutations."""
        net, fabric = env
        prog = _cross_switch_send(net, fabric)
        sim = FlowSimulator(net, mode="static")
        pristine = sim.run(prog).total_time
        v = net.version
        link = net.link(prog.phases[0].messages[0].path[0])
        link.capacity /= 2  # property setter bumps the version
        assert net.version > v
        assert sim.run(prog).total_time > pristine * 1.5


class TestStarvedFlows:
    @pytest.mark.parametrize("mode", ["static", "dynamic"])
    def test_zero_capacity_link_raises_naming_the_message(self, env, mode):
        """Regression: a non-finite time-to-finish was mapped to 0.0, so
        a starved flow 'completed' instantly."""
        net, fabric = env
        prog = _cross_switch_send(net, fabric)
        msg = prog.phases[0].messages[0]
        net.set_capacity(msg.path[0], 0.0)
        sim = FlowSimulator(net, mode=mode)
        with pytest.raises(SimulationError, match="starved"):
            sim.run(prog)
        with pytest.raises(SimulationError, match=f"{msg.src}->{msg.dst}"):
            sim.run(prog)

    def test_zero_byte_messages_are_not_starved(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:4])
        prog = job.barrier()
        cable = net.switch_cables()[0]
        net.set_capacity(cable.id, 0.0)
        # Zero-byte barriers carry nothing; they must still complete.
        assert FlowSimulator(net, mode="static").run(prog).total_time >= 0


class TestStalePaths:
    def test_path_over_disabled_link_refused(self, env):
        """Regression: a disabled link still simulated at full capacity
        because the snapshot predated the failure."""
        net, fabric = env
        prog = _cross_switch_send(net, fabric)
        path = prog.phases[0].messages[0].path
        net.disable_cable(path[1])
        sim = FlowSimulator(net, mode="static")
        with pytest.raises(SimulationError, match="stale"):
            sim.run(prog)
        with pytest.raises(SimulationError, match="resweep"):
            sim.run(prog)

    def test_reroute_callback_heals_stale_paths(self, env):
        net, fabric = env
        prog = _cross_switch_send(net, fabric)
        msg = prog.phases[0].messages[0]
        dead = msg.path[1]

        def reroute(m):
            return tuple(fabric.path(m.src, m.dst))

        sim = FlowSimulator(net, mode="static", reroute=reroute)
        pristine = sim.run(prog).total_time
        net.disable_cable(dead)
        resweep(fabric, DfssspRouting())
        res = sim.run(prog)
        assert res.messages_rerouted == 1
        assert res.total_time >= pristine

    def test_reroute_must_follow_a_resweep(self, env):
        """A reroute that still crosses the dead link is a table bug."""
        net, fabric = env
        prog = _cross_switch_send(net, fabric)
        msg = prog.phases[0].messages[0]
        net.disable_cable(msg.path[1])
        sim = FlowSimulator(
            net, mode="static", reroute=lambda m: m.path
        )
        with pytest.raises(SimulationError, match="not re-swept"):
            sim.run(prog)

    def test_unreachable_reroute_raises(self, env):
        net, fabric = env
        prog = _cross_switch_send(net, fabric)
        net.disable_cable(prog.phases[0].messages[0].path[1])
        sim = FlowSimulator(net, mode="static", reroute=lambda m: None)
        with pytest.raises(SimulationError, match="unreachable"):
            sim.run(prog)


class TestFaultTimeline:
    def test_events_fire_once_per_simulator(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:6])
        prog = job.alltoall(256 * 1024)
        assert len(prog.phases) > 1
        cable = net.switch_cables()[0]
        timeline = FaultTimeline((
            FabricEvent("degrade_cable", phase=1, cable=cable.id,
                        capacity_factor=0.5),
        ))
        before = cable.capacity
        sim = FlowSimulator(net, mode="static", timeline=timeline)
        res = sim.run(prog)
        assert res.events_applied == 1
        assert cable.capacity == pytest.approx(before / 2)
        # Re-running the same simulator must not compound the degrade.
        res2 = sim.run(prog)
        assert res2.events_applied == 0
        assert cable.capacity == pytest.approx(before / 2)

    def test_event_hook_sees_the_batch(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:4])
        prog = job.alltoall(64 * 1024)
        cable = net.switch_cables()[0]
        seen = []

        def hook(events, phase_index):
            seen.append((tuple(e.action for e in events), phase_index))
            return {"phase": phase_index}

        sim = FlowSimulator(
            net, mode="static",
            timeline=[FabricEvent("degrade_cable", phase=1, cable=cable.id)],
            on_fabric_event=hook,
        )
        sim.run(prog)
        assert seen == [(("degrade_cable",), 1)]
        assert sim.reroute_reports == [{"phase": 1}]

    def test_restore_event_reenables(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:4])
        prog = job.alltoall(64 * 1024)
        cable = net.switch_cables()[-1]
        net.disable_cable(cable.id)
        sim = FlowSimulator(
            net, mode="static",
            timeline=[FabricEvent("restore_cable", phase=0, cable=cable.id)],
        )
        sim.run(prog)
        assert net.link(cable.id).enabled

    def test_monotone_total_under_midrun_degrade(self, env):
        """Degrading mid-run can only slow the remaining phases."""
        net, fabric = env
        job = Job(fabric, net.terminals[:6])
        prog = job.alltoall(1 * MIB)
        pristine = FlowSimulator(net, mode="static").run(prog).total_time
        hot = FlowSimulator(net, mode="static").hottest_links(prog, top=1)
        cable = net.link(hot[0][0])
        faulted = FlowSimulator(
            net, mode="static",
            timeline=[FabricEvent("degrade_cable", phase=1, cable=cable.id,
                                  capacity_factor=0.25)],
        ).run(prog)
        assert faulted.total_time >= pristine
