"""Unit tests for torus/hypercube/flattened-butterfly and dragonfly."""

import itertools

import pytest

from repro.core.errors import TopologyError
from repro.topology.dragonfly import dragonfly
from repro.topology.properties import diameter
from repro.topology.torus import flattened_butterfly, hypercube, torus


class TestTorus:
    def test_ring_connectivity(self):
        net = torus((4,), 1)
        # A 4-ring: each switch has exactly two switch neighbours.
        for sw in net.switches:
            nbrs = [n for n in net.neighbors(sw) if net.is_switch(n)]
            assert len(nbrs) == 2

    def test_mesh_has_no_wraparound(self):
        net = torus((4,), 1, wrap=False)
        by_coord = {net.node_meta(sw)["coord"]: sw for sw in net.switches}
        assert not net.links_between(by_coord[(0,)], by_coord[(3,)])

    def test_size_two_dimension_has_single_cable(self):
        net = torus((2, 2), 1)
        by_coord = {net.node_meta(sw)["coord"]: sw for sw in net.switches}
        assert len(net.links_between(by_coord[(0, 0)], by_coord[(1, 0)])) == 1

    def test_diameter_of_torus(self):
        assert diameter(torus((4, 4), 1)) == 4
        assert diameter(torus((4, 4), 1, wrap=False)) == 6

    def test_bad_shape(self):
        with pytest.raises(TopologyError):
            torus((1, 4), 1)


class TestHypercube:
    def test_is_hyperx_special_case(self):
        net = hypercube(3, 1)
        assert net.num_switches == 8
        assert diameter(net) == 3
        for sw in net.switches:
            nbrs = [n for n in net.neighbors(sw) if net.is_switch(n)]
            assert len(nbrs) == 3

    def test_bad_dimensions(self):
        with pytest.raises(TopologyError):
            hypercube(0)


class TestFlattenedButterfly:
    def test_shape(self):
        net = flattened_butterfly(4, 3)
        # (4,)*(3-1) lattice with 4 terminals per switch.
        assert net.num_switches == 16
        assert net.num_terminals == 64
        assert diameter(net) == 2

    def test_bad_parameters(self):
        with pytest.raises(TopologyError):
            flattened_butterfly(1, 3)


class TestDragonfly:
    def test_balanced_group_count(self):
        net = dragonfly(4, 2, 2)  # a*h + 1 = 9 groups
        groups = {net.node_meta(sw)["group"] for sw in net.switches}
        assert len(groups) == 9
        assert net.num_switches == 36
        assert net.num_terminals == 72

    def test_intra_group_full_mesh(self):
        net = dragonfly(3, 1, 1)
        by_gs = {
            (net.node_meta(sw)["group"], net.node_meta(sw)["index"]): sw
            for sw in net.switches
        }
        for s1, s2 in itertools.combinations(range(3), 2):
            assert net.links_between(by_gs[(0, s1)], by_gs[(0, s2)])

    def test_every_group_pair_connected(self):
        net = dragonfly(4, 2, 2)
        group_of = {sw: net.node_meta(sw)["group"] for sw in net.switches}
        pairs = set()
        for link in net.switch_cables():
            ga, gb = group_of[link.src], group_of[link.dst]
            if ga != gb:
                pairs.add(frozenset((ga, gb)))
        assert len(pairs) == 9 * 8 // 2

    def test_diameter_at_most_three(self):
        assert diameter(dragonfly(4, 2, 2)) <= 3

    def test_fewer_groups_allowed(self):
        net = dragonfly(2, 1, 1, num_groups=2)
        groups = {net.node_meta(sw)["group"] for sw in net.switches}
        assert groups == {0, 1}

    def test_too_many_groups_rejected(self):
        with pytest.raises(TopologyError):
            dragonfly(2, 1, 1, num_groups=4)
