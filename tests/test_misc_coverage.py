"""Coverage for small surfaces: errors, runner helpers, SM options."""

import pytest

from repro.core import errors
from repro.core.units import format_bytes
from repro.experiments.runner import (
    NODE_COUNTS_7,
    NODE_COUNTS_POW2,
    CapabilityResult,
    node_counts_for,
)
from repro.ib.subnet_manager import OpenSM
from repro.topology.hyperx import hyperx


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.TopologyError,
            errors.RoutingError,
            errors.UnreachableError,
            errors.DeadlockError,
            errors.SimulationError,
            errors.ConfigurationError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_unreachable_and_deadlock_are_routing_errors(self):
        assert issubclass(errors.UnreachableError, errors.RoutingError)
        assert issubclass(errors.DeadlockError, errors.RoutingError)

    def test_catchable_as_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.DeadlockError("x")


class TestRunnerHelpers:
    def test_paper_tracks(self):
        assert NODE_COUNTS_7 == (7, 14, 28, 56, 112, 224, 448, 672)
        assert NODE_COUNTS_POW2 == (4, 8, 16, 32, 64, 128, 256, 512)

    def test_node_counts_for_limits(self):
        assert node_counts_for("pow2", max_nodes=64) == (4, 8, 16, 32, 64)
        assert node_counts_for("weak", max_nodes=100) == (7, 14, 28, 56)

    def test_capability_result_best(self):
        r = CapabilityResult("c", "b", 8, values=[3.0, 1.0, 2.0])
        assert r.best == 1.0


class TestSubnetManagerOptions:
    def test_bad_lid_policy(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            OpenSM(hyperx((2, 2), 1), lid_policy="alphabetical")

    def test_quadrant_policy_requires_coords(self):
        from repro.core.errors import TopologyError
        from repro.topology.fattree import k_ary_n_tree

        with pytest.raises(TopologyError):
            OpenSM(k_ary_n_tree(4, 2), lmc=2, lid_policy="quadrant")

    def test_custom_vl_budget_respected(self):
        from repro.core.errors import DeadlockError
        from repro.routing.parx import ParxRouting

        net = hyperx((4, 4), 1)
        with pytest.raises(DeadlockError):
            OpenSM(net, lmc=2, lid_policy="quadrant", max_vls=1).run(
                ParxRouting()
            )


class TestCapacityResult:
    def test_total(self):
        from repro.experiments.capacity import CapacityResult

        r = CapacityResult("c", runs={"a": 2, "b": 3})
        assert r.total_runs == 5


class TestGraph500Internals:
    def test_level_weights_sum_to_one(self):
        from repro.workloads.x500 import Graph500

        app = Graph500()
        phases = app.rank_phases(4)
        # 6 level alltoalls + allreduce rounds; total bytes = per-level
        # volume spread over the weights (which sum to 1).
        from repro.mpi.collectives import rank_phase_bytes

        total = rank_phase_bytes(phases)
        per_level = app.edges_per_process() * 8 / app.LEVELS
        expected = per_level * 4 * 3 / 4  # 4 ranks, 3/4 of volume remote
        # Plus a handful of 8-byte level-synchronisation allreduce hops.
        assert expected <= total <= expected + 1024


class TestFormatEdgeCases:
    def test_negative_bytes(self):
        assert format_bytes(-2048) == "-2.0 KiB"
