"""Meta-tests: the repository keeps its reproduction promises.

These assert structural completeness — every figure/table of the
paper's evaluation has a benchmark module, every public package
documents itself, every example is wired into the smoke tests — so a
refactor cannot silently drop a deliverable.
"""

import importlib
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

REPO = pathlib.Path(__file__).parent.parent


class TestEveryFigureHasABench:
    #: The paper's evaluation artifacts (DESIGN.md section 3).
    EXPECTED = (
        "test_fig1_mpigraph",
        "test_fig2_topologies",
        "test_tab1_lid_selection",
        "test_fig4_imb_collectives",
        "test_fig5a_baidu_allreduce",
        "test_fig5b_barrier",
        "test_fig5c_ebb",
        "test_fig6_proxyapps",
        "test_fig6_x500",
        "test_fig7_capacity",
        "test_ablation_threshold",
    )

    @pytest.mark.parametrize("name", EXPECTED)
    def test_bench_module_exists(self, name):
        assert (REPO / "benchmarks" / f"{name}.py").is_file()

    def test_examples_present(self):
        examples = {p.stem for p in (REPO / "examples").glob("*.py")}
        assert {
            "quickstart", "mpigraph_heatmap", "parx_routing_demo",
            "capacity_scheduler", "topology_explorer",
        } <= examples

    def test_docs_present(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            text = (REPO / doc).read_text()
            assert len(text) > 2000, doc
        assert "HyperX" in (REPO / "README.md").read_text()


class TestPublicApiDocumented:
    PACKAGES = (
        "repro.core", "repro.topology", "repro.ib", "repro.routing",
        "repro.sim", "repro.mpi", "repro.placement", "repro.workloads",
        "repro.experiments",
    )

    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_package_docstring(self, pkg):
        mod = importlib.import_module(pkg)
        assert mod.__doc__ and len(mod.__doc__) > 60

    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_all_exports_resolve(self, pkg):
        mod = importlib.import_module(pkg)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            # Every exported callable/class carries a docstring.
            if callable(obj):
                assert obj.__doc__, f"{pkg}.{name} lacks a docstring"

    def test_every_source_module_has_docstring(self):
        import ast

        for path in (REPO / "src").rglob("*.py"):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path} lacks a module docstring"


class TestLidRoundTripProperties:
    @given(st.integers(0, 3), st.integers(0, 248))
    @settings(max_examples=60, deadline=None)
    def test_quadrant_encoding_roundtrip(self, q, idx):
        from repro.ib.addressing import quadrant_of_lid

        lid = q * 1000 + 4 * idx + 4
        if lid < (q + 1) * 1000:
            assert quadrant_of_lid(lid) == q

    @given(st.integers(2, 6).map(lambda k: 2 * k), st.integers(2, 6).map(lambda k: 2 * k))
    @settings(max_examples=30, deadline=None)
    def test_quadrants_balanced_for_even_shapes(self, sx, sy):
        from repro.topology.hyperx import hyperx_quadrant

        counts = [0, 0, 0, 0]
        for x in range(sx):
            for y in range(sy):
                counts[hyperx_quadrant((x, y), (sx, sy))] += 1
        assert len(set(counts)) == 1


class TestCalibrationLedger:
    def test_all_constants_positive(self):
        from repro.core import units

        for name in (
            "QDR_LINK_BANDWIDTH", "BASE_MPI_LATENCY", "PER_HOP_LATENCY",
            "BFO_PML_OVERHEAD",
        ):
            assert getattr(units, name) > 0

    def test_comm_rounds_documented_in_every_app(self):
        """Every app's calibrated comm_rounds carries an inline comment
        (the EXPERIMENTS.md calibration-ledger discipline)."""
        src = (REPO / "src/repro/workloads/proxyapps.py").read_text()
        src += (REPO / "src/repro/workloads/x500.py").read_text()
        import re

        for m in re.finditer(r"comm_rounds = \d+(.*)", src):
            assert "#" in m.group(1), "comm_rounds without rationale comment"
