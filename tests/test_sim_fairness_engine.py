"""The incremental fairness engine vs the reference implementation.

Three layers of protection for :class:`repro.sim.fairness.FairnessProblem`:

* **equivalence** — randomized agreement (full solves, masked solves,
  and event-loop-style *sequences* of masked solves that exercise the
  bottleneck-structure hint) with
  :func:`repro.sim.fairness.reference_max_min_fair_rates`, the
  pre-incremental scipy implementation kept as the executable spec;
* **invariants** — capacity feasibility and max-min bottleneck
  optimality under arbitrary activity masks;
* **regression** — dynamic-mode ``SimResult`` totals on seed scenarios
  are pinned to the values the pre-engine simulator produced, so the
  perf work provably changed no science.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.units import MIB
from repro.experiments.configs import build_fabric, get_combination, make_job
from repro.sim.engine import FlowSimulator
from repro.sim.fairness import (
    FairnessProblem,
    link_loads,
    reference_max_min_fair_rates,
)

RTOL = 1e-9


@st.composite
def _flow_systems(draw):
    n_links = draw(st.integers(1, 12))
    caps = draw(
        st.lists(
            st.floats(0.5, 100.0, allow_nan=False),
            min_size=n_links, max_size=n_links,
        )
    )
    n_flows = draw(st.integers(1, 25))
    flows = [
        draw(
            st.lists(
                st.integers(0, n_links - 1),
                min_size=0, max_size=min(6, n_links),
            )
        )
        for _ in range(n_flows)
    ]
    return flows, np.array(caps)


def _assert_agrees(new: np.ndarray, ref: np.ndarray) -> None:
    both_inf = np.isinf(new) & np.isinf(ref)
    finite = ~both_inf
    assert np.isinf(new).tolist() == np.isinf(ref).tolist()
    np.testing.assert_allclose(new[finite], ref[finite], rtol=RTOL, atol=0)


class TestReferenceEquivalence:
    @given(_flow_systems())
    @settings(max_examples=150, deadline=None)
    def test_full_solve_matches_reference(self, system):
        flows, caps = system
        prob = FairnessProblem(flows, caps)
        _assert_agrees(prob.rates(), reference_max_min_fair_rates(flows, caps))

    @given(_flow_systems(), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_masked_solve_matches_reference_subproblem(self, system, rnd):
        flows, caps = system
        prob = FairnessProblem(flows, caps)
        mask = np.array([rnd.random() < 0.6 for _ in flows])
        rates = prob.rates(mask)
        assert (rates[~mask] == 0).all()
        idx = np.flatnonzero(mask)
        if idx.size:
            ref = reference_max_min_fair_rates([flows[i] for i in idx], caps)
            _assert_agrees(rates[idx], ref)

    @given(_flow_systems(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_drain_sequence_matches_reference(self, system, rnd):
        """Event-loop shape: the mask shrinks one random flow at a time.

        The first masked call emits the bottleneck-structure hint; every
        later call takes the hint fast path (or falls back) — each step
        must still agree with an independent reference solve.
        """
        flows, caps = system
        prob = FairnessProblem(flows, caps)
        alive = list(range(len(flows)))
        rnd.shuffle(alive)
        while alive:
            mask = np.zeros(len(flows), dtype=bool)
            mask[alive] = True
            rates = prob.rates(mask)
            ref = reference_max_min_fair_rates(
                [flows[i] for i in alive], caps
            )
            _assert_agrees(rates[np.asarray(alive)], ref)
            alive.pop()

    @given(_flow_systems(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_hint_survives_mask_jumps(self, system, rnd):
        """Arbitrary mask changes (grow *and* shrink) stay exact: a
        stale hint must either verify or fall back, never mis-solve."""
        flows, caps = system
        prob = FairnessProblem(flows, caps)
        for _ in range(5):
            mask = np.array([rnd.random() < 0.5 for _ in flows])
            idx = np.flatnonzero(mask)
            rates = prob.rates(mask)
            if idx.size:
                ref = reference_max_min_fair_rates(
                    [flows[i] for i in idx], caps
                )
                _assert_agrees(rates[idx], ref)


class TestMaskedInvariants:
    @given(_flow_systems(), st.randoms(use_true_random=False))
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_exceeded_under_mask(self, system, rnd):
        flows, caps = system
        prob = FairnessProblem(flows, caps)
        for _ in range(3):
            mask = np.array([rnd.random() < 0.6 for _ in flows])
            rates = prob.rates(mask)
            loads = link_loads(flows, rates)
            for lid, load in loads.items():
                assert load <= caps[lid] * (1 + 1e-6)

    @given(_flow_systems(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_every_active_flow_bottlenecked_under_mask(self, system, rnd):
        flows, caps = system
        prob = FairnessProblem(flows, caps)
        mask = np.array([rnd.random() < 0.6 for _ in flows])
        rates = prob.rates(mask)
        loads = link_loads(flows, rates)
        for f in np.flatnonzero(mask).tolist():
            if not flows[f]:
                continue
            bottleneck = False
            for lid in flows[f]:
                if loads.get(lid, 0.0) < caps[lid] * (1 - 1e-6):
                    continue
                co = [
                    rates[g]
                    for g in np.flatnonzero(mask)
                    if lid in flows[g]
                ]
                if rates[f] >= max(co) * (1 - 1e-6):
                    bottleneck = True
                    break
            assert bottleneck, f"active flow {f} has no max-min bottleneck"

    def test_counts_weigh_duplicate_flows(self):
        # Two identical flows form one class of weight 2: each gets half
        # of what a lone flow would.
        caps = {0: 8.0}
        prob = FairnessProblem([[0], [0]], caps)
        assert np.allclose(prob.rates(), 4.0)
        only_first = prob.rates(np.array([True, False]))
        assert only_first[0] == pytest.approx(8.0)
        assert only_first[1] == 0.0


class TestDynamicGoldenRegression:
    """Dynamic-mode totals pinned to the pre-engine simulator's output.

    The incremental engine reorders nothing observable: link occupancies
    are exact integer-valued floats, so water levels and freezing order
    coincide with the original per-event rebuild, and these totals must
    match to relative 1e-9 (they match bit-for-bit at the time of
    writing).
    """

    GOLDEN = {
        ("hx-dfsssp-linear", "alltoall"): (
            0.010074849264705884, 0.010052849264705883, 138412032.0
        ),
        ("hx-dfsssp-linear", "allreduce"): (
            0.009200776470588236, 0.009191176470588234, 134217728.0
        ),
        ("hx-dfsssp-linear", "bcast"): (
            0.0015997334558823532, 0.0015797334558823527, 5767168.0
        ),
        ("ft-ftree-linear", "alltoall"): (
            0.003179266911764706, 0.0031594669117647055, 138412032.0
        ),
        ("ft-ftree-linear", "allreduce"): (
            0.005753485294117647, 0.0057444852941176475, 134217728.0
        ),
        ("ft-ftree-linear", "bcast"): (
            0.0015995334558823531, 0.0015797334558823527, 5767168.0
        ),
        ("hx-parx-clustered", "alltoall"): (
            0.005538261029411766, 0.0054572610294117635, 138412032.0
        ),
        ("hx-parx-clustered", "allreduce"): (
            0.009226376470588236, 0.009191176470588236, 134217728.0
        ),
        ("hx-parx-clustered", "bcast"): (
            0.0016557334558823533, 0.0015797334558823527, 5767168.0
        ),
    }

    @pytest.mark.parametrize(
        "combo_key", ["hx-dfsssp-linear", "ft-ftree-linear", "hx-parx-clustered"]
    )
    def test_dynamic_totals_unchanged(self, combo_key):
        combo = get_combination(combo_key)
        fabric = build_fabric(combo, scale=2, seed=0)
        job = make_job(combo, fabric, 12, seed=0)
        sim = FlowSimulator(fabric.net, mode="dynamic")
        programs = {
            "alltoall": job.alltoall(1 * MIB),
            "allreduce": job.allreduce(4 * MIB),
            "bcast": job.bcast(512 * 1024),
        }
        for op, program in programs.items():
            res = sim.run(program)
            total, transfer, nbytes = self.GOLDEN[(combo_key, op)]
            assert res.total_time == pytest.approx(total, rel=RTOL)
            assert res.transfer_time == pytest.approx(transfer, rel=RTOL)
            assert res.bytes_moved == nbytes

    def test_static_and_dynamic_agree_on_uniform_phase(self):
        """On a perfectly symmetric phase every flow finishes at once:
        the dynamic event loop must collapse to the static answer."""
        combo = get_combination("hx-dfsssp-linear")
        fabric = build_fabric(combo, scale=2, seed=0)
        job = make_job(combo, fabric, 8, seed=0)
        program = job.bcast(1 * MIB)
        static = FlowSimulator(fabric.net, mode="static").run(program)
        dynamic = FlowSimulator(fabric.net, mode="dynamic").run(program)
        assert dynamic.total_time <= static.total_time * (1 + 1e-9)
