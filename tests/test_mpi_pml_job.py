"""Unit tests for PML policies and the Job facade."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.units import BFO_PML_OVERHEAD, MIB
from repro.ib.addressing import quadrant_of_lid
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.mpi.pml import BfoPml, Ob1Pml, ParxBfoPml
from repro.routing.dfsssp import DfssspRouting
from repro.routing.parx import (
    LARGE_LID_CHOICE,
    SMALL_LID_CHOICE,
    ParxRouting,
)
from repro.sim.flows import program_bytes
from repro.topology.hyperx import hyperx


@pytest.fixture(scope="module")
def parx_plane():
    net = hyperx((4, 4), 2)
    fabric = OpenSM(net, lmc=2, lid_policy="quadrant").run(ParxRouting())
    return net, fabric


@pytest.fixture(scope="module")
def plain_plane():
    net = hyperx((4, 4), 2)
    fabric = OpenSM(net, lmc=2).run(DfssspRouting())
    return net, fabric


class TestOb1:
    def test_always_base_lid(self, plain_plane):
        _, fabric = plain_plane
        pml = Ob1Pml()
        t = fabric.net.terminals
        for size in (1, 512, 1 * MIB):
            assert pml.lid_index(fabric, t[0], t[1], size) == 0

    def test_no_overhead(self):
        assert Ob1Pml().overhead == 0.0


class TestBfo:
    def test_round_robin_per_connection(self, plain_plane):
        _, fabric = plain_plane
        pml = BfoPml()
        t = fabric.net.terminals
        seq = [pml.lid_index(fabric, t[0], t[1], 1) for _ in range(6)]
        assert seq == [0, 1, 2, 3, 0, 1]

    def test_connections_independent(self, plain_plane):
        _, fabric = plain_plane
        pml = BfoPml()
        t = fabric.net.terminals
        pml.lid_index(fabric, t[0], t[1], 1)
        assert pml.lid_index(fabric, t[0], t[2], 1) == 0

    def test_reset(self, plain_plane):
        _, fabric = plain_plane
        pml = BfoPml()
        t = fabric.net.terminals
        pml.lid_index(fabric, t[0], t[1], 1)
        pml.reset()
        assert pml.lid_index(fabric, t[0], t[1], 1) == 0

    def test_overhead_is_bfo_penalty(self):
        assert BfoPml().overhead == BFO_PML_OVERHEAD


class TestParxBfo:
    def test_choices_follow_table1(self, parx_plane):
        net, fabric = parx_plane
        pml = ParxBfoPml(seed=0)
        for src in net.terminals[:8]:
            for dst in net.terminals[-8:]:
                if src == dst:
                    continue
                sq = quadrant_of_lid(fabric.lidmap.base[src])
                dq = quadrant_of_lid(fabric.lidmap.base[dst])
                small = pml.lid_index(fabric, src, dst, 8)
                large = pml.lid_index(fabric, src, dst, 1 * MIB)
                assert small in SMALL_LID_CHOICE[(sq, dq)]
                assert large in LARGE_LID_CHOICE[(sq, dq)]

    def test_threshold_boundary(self, parx_plane):
        """512 bytes is already 'large' (paper: threshold 512 B)."""
        net, fabric = parx_plane
        pml = ParxBfoPml(seed=0)
        src, dst = net.terminals[0], net.terminals[1]
        sq = quadrant_of_lid(fabric.lidmap.base[src])
        dq = quadrant_of_lid(fabric.lidmap.base[dst])
        assert pml.lid_index(fabric, src, dst, 512) in LARGE_LID_CHOICE[(sq, dq)]
        assert pml.lid_index(fabric, src, dst, 511) in SMALL_LID_CHOICE[(sq, dq)]

    def test_requires_lmc2(self, parx_plane):
        net, _ = parx_plane
        fabric_lmc0 = OpenSM(net).run(DfssspRouting())
        with pytest.raises(ConfigurationError):
            ParxBfoPml().lid_index(fabric_lmc0, net.terminals[0], net.terminals[1], 1)

    def test_deterministic_after_reset(self, parx_plane):
        net, fabric = parx_plane
        pml = ParxBfoPml(seed=3)
        t = net.terminals
        seq1 = [pml.lid_index(fabric, t[0], t[1], 1) for _ in range(10)]
        pml.reset()
        seq2 = [pml.lid_index(fabric, t[0], t[1], 1) for _ in range(10)]
        assert seq1 == seq2


class TestJob:
    def test_rank_mapping(self, plain_plane):
        net, fabric = plain_plane
        job = Job(fabric, net.terminals[:4])
        assert job.num_ranks == 4
        assert job.node_of_rank(2) == net.terminals[2]

    def test_duplicate_nodes_rejected(self, plain_plane):
        net, fabric = plain_plane
        with pytest.raises(ConfigurationError):
            Job(fabric, [net.terminals[0]] * 2)

    def test_switch_as_node_rejected(self, plain_plane):
        net, fabric = plain_plane
        with pytest.raises(ConfigurationError):
            Job(fabric, [net.switches[0]])

    def test_materialize_skips_self_sends(self, plain_plane):
        net, fabric = plain_plane
        job = Job(fabric, net.terminals[:2])
        prog = job.materialize([[(0, 0, 100.0), (0, 1, 50.0)]])
        assert len(prog.phases[0]) == 1
        assert program_bytes(prog) == 50.0

    def test_collective_facades_produce_programs(self, plain_plane):
        net, fabric = plain_plane
        job = Job(fabric, net.terminals[:6])
        assert len(job.bcast(1024)) == 3
        assert len(job.barrier()) == 3
        assert len(job.alltoall(8)) == 5
        assert len(job.allgather(8)) == 3  # Bruck for small blocks
        assert len(job.allgather(1 * MIB)) == 5  # ring for large
        assert len(job.allreduce(8)) > 0
        assert len(job.reduce(8)) == 3
        assert len(job.gather(8)) > 0
        assert len(job.scatter(8)) > 0
        assert len(job.send(0, 1, 8)) == 1

    def test_allreduce_algorithm_dispatch(self, plain_plane):
        net, fabric = plain_plane
        job = Job(fabric, net.terminals[:4])
        assert len(job.allreduce(8, algorithm="ring")) == 6
        with pytest.raises(ConfigurationError):
            job.allreduce(8, algorithm="nope")

    def test_gather_switches_to_linear_for_large(self, plain_plane):
        net, fabric = plain_plane
        job = Job(fabric, net.terminals[:8])
        small = job.gather(1024)
        large = job.gather(1 * MIB)
        assert len(small) == 3  # binomial rounds
        assert len(large) == 1  # linear incast

    def test_path_cache_reused(self, plain_plane):
        net, fabric = plain_plane
        job = Job(fabric, net.terminals[:4])
        job.alltoall(8)
        cached = dict(job._resolve_cache)
        job.alltoall(8)
        assert job._resolve_cache == cached

    def test_messages_carry_pml_overhead(self, parx_plane):
        net, fabric = parx_plane
        job = Job(fabric, net.terminals[:4], pml=ParxBfoPml())
        prog = job.bcast(1024)
        for phase in prog:
            for m in phase:
                assert m.overhead == BFO_PML_OVERHEAD
