"""Tests for the LASH and Valiant routing engines (related work §6)."""

import pytest

from repro.core.errors import DeadlockError
from repro.core.units import MIB
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing import (
    DfssspRouting,
    LashRouting,
    ValiantRouting,
    audit_fabric,
    verify_pair_layering,
)
from repro.sim.engine import FlowSimulator
from repro.topology.faults import inject_cable_faults
from repro.topology.hyperx import hyperx


@pytest.fixture(scope="module")
def hx():
    return hyperx((4, 4), 2)


class TestLash:
    def test_clean_and_minimal(self, hx):
        fabric = OpenSM(hx).run(LashRouting())
        audit = audit_fabric(fabric, check_deadlock=False)
        assert audit.unreachable == 0 and audit.loops == 0
        assert audit.non_minimal_pairs == 0  # LASH = shortest paths

    def test_per_pair_layering_acyclic(self, hx):
        fabric = OpenSM(hx).run(LashRouting())
        assert verify_pair_layering(fabric)
        assert 1 <= fabric.num_vls <= 8

    def test_finer_granularity_than_dfsssp(self, hx):
        """LASH's per-pair lanes never need MORE layers than DFSSSP's
        per-destination lanes on the same topology."""
        lash = OpenSM(hx).run(LashRouting())
        dfsssp = OpenSM(hx).run(DfssspRouting())
        assert lash.num_vls <= dfsssp.num_vls

    def test_budget_exhaustion(self, hx):
        with pytest.raises(DeadlockError):
            OpenSM(hx).run(LashRouting(max_vls=1))

    def test_survives_faults(self):
        net = hyperx((4, 4), 1)
        inject_cable_faults(net, 6, seed=1)
        fabric = OpenSM(net).run(LashRouting())
        audit = audit_fabric(fabric, check_deadlock=False)
        assert audit.unreachable == 0 and audit.loops == 0

    def test_pair_lanes_exported(self, hx):
        fabric = OpenSM(hx).run(LashRouting())
        pairs = fabric.vl_of_pair  # type: ignore[attr-defined]
        dlids = set(fabric.lidmap.terminal_lids(hx))
        assert all(dlid in dlids for _, dlid in pairs)
        assert all(0 <= vl < fabric.num_vls for vl in pairs.values())


class TestValiant:
    def test_clean_with_detours(self, hx):
        fabric = OpenSM(hx).run(ValiantRouting(seed=0))
        audit = audit_fabric(fabric)
        assert audit.clean
        # Valiant's defining property: most pairs detour.
        assert audit.non_minimal_pairs > audit.minimal_pairs

    def test_deterministic_per_seed(self, hx):
        a = OpenSM(hx).run(ValiantRouting(seed=3))
        b = OpenSM(hx).run(ValiantRouting(seed=3))
        t0, t1 = hx.terminals[0], hx.terminals[-1]
        assert a.path(t0, t1) == b.path(t0, t1)
        c = OpenSM(hx).run(ValiantRouting(seed=4))
        # A different seed draws different intermediates somewhere.
        assert any(
            a.path(t0, t) != c.path(t0, t)
            for t in hx.terminals[1:]
        )

    def test_beats_minimal_on_adversarial_pattern(self, hx):
        """VAL's raison d'etre: bounded worst case.  On the dense
        two-switch shift the detours outperform minimal routing."""
        nodes = (
            hx.attached_terminals(hx.switches[0])
            + hx.attached_terminals(hx.switches[1])
        )

        def dense_time(fabric):
            job = Job(fabric, nodes)
            phase = [(i, i + 2, 1.0 * MIB) for i in range(2)]
            return FlowSimulator(hx, mode="static").run(
                job.materialize([phase])
            ).total_time

        minimal = dense_time(OpenSM(hx).run(DfssspRouting()))
        valiant = dense_time(OpenSM(hx).run(ValiantRouting(seed=0)))
        assert valiant < minimal

    def test_loses_throughput_on_friendly_pattern(self, hx):
        """The VAL tax: uniform same-switch traffic that minimal routing
        serves locally gets dragged across the fabric."""
        fabric_v = OpenSM(hx).run(ValiantRouting(seed=0))
        fabric_m = OpenSM(hx).run(DfssspRouting())
        t0, t1 = hx.attached_terminals(hx.switches[0])[:2]
        assert hx.path_hops(fabric_m.path(t0, t1)) == 0
        assert hx.path_hops(fabric_v.path(t0, t1)) >= 0  # may detour

    def test_vl_budget(self, hx):
        fabric = OpenSM(hx).run(ValiantRouting(seed=0))
        assert fabric.num_vls <= 8
