"""Equivalence suite for flat-array message batches (repro.sim.batch).

The batched phase pipeline must be a pure representation change: a
phase simulated through its prebuilt :class:`MessageBatch` produces
*bit-identical* timings to the same phase flattened per message (the
pre-batch inline arrays).  This file pins that — at the array level
(``from_pool`` vs ``from_messages``), at the simulator level (random
programs, static and dynamic, with and without fabric events), and on
the paper's 672-node t2hx cell via golden durations.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.units import MIB
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing.dfsssp import DfssspRouting
from repro.sim.batch import MessageBatch, PathPool, flatten_paths, phase_batch
from repro.sim.engine import FlowSimulator
from repro.sim.flows import Message, Phase
from repro.topology.faults import FabricEvent
from repro.topology.hyperx import hyperx
from repro.workloads.patterns import rank_phase_arrays


@pytest.fixture(scope="module")
def env():
    net = hyperx((3, 3), 2)
    fabric = OpenSM(net).run(DfssspRouting())
    return net, fabric


# --- the shared flattening kernel -------------------------------------------

paths_strategy = st.lists(
    st.lists(st.integers(0, 99), max_size=8), max_size=12
)


class TestFlattenPaths:
    @given(paths=paths_strategy)
    def test_csr_invariants(self, paths):
        lens, ptr, flat = flatten_paths(paths)
        assert len(lens) == len(paths) and len(ptr) == len(paths) + 1
        assert ptr[0] == 0 and ptr[-1] == flat.size == sum(map(len, paths))
        for i, p in enumerate(paths):
            assert flat[ptr[i]:ptr[i + 1]].tolist() == list(p)

    def test_empty(self):
        lens, ptr, flat = flatten_paths([])
        assert lens.size == 0 and ptr.tolist() == [0] and flat.size == 0


class TestPathPool:
    @given(paths=paths_strategy, split=st.integers(0, 12))
    def test_incremental_build_matches_oneshot(self, paths, split):
        # Adding in two tranches (with an arrays() call in between, which
        # freezes the first tranche) must equal flattening all at once.
        pool = PathPool()
        for p in paths[:split]:
            pool.add(p)
        pool.arrays()
        for p in paths[split:]:
            pool.add(p)
        starts, lens, flat = pool.arrays()
        ref_lens, ref_ptr, ref_flat = flatten_paths(paths)
        assert lens.tolist() == ref_lens.tolist()
        assert starts.tolist() == ref_ptr[:-1].tolist()
        assert flat.tolist() == ref_flat.tolist()


# --- batch construction ------------------------------------------------------

def _messages_from(paths, sizes, overhead):
    return [
        Message(src=2 * i, dst=2 * i + 1, size=float(s), path=tuple(p),
                overhead=overhead)
        for i, (p, s) in enumerate(zip(paths, sizes))
    ]


class TestMessageBatch:
    @given(
        data=st.lists(
            st.tuples(
                st.lists(st.integers(0, 49), max_size=6),
                st.floats(0.0, 1e9),
            ),
            max_size=10,
        ),
        overhead=st.floats(0.0, 1e-3),
    )
    def test_from_pool_identical_to_from_messages(self, data, overhead):
        paths = [p for p, _ in data]
        sizes = [s for _, s in data]
        msgs = _messages_from(paths, sizes, overhead)
        ref = MessageBatch.from_messages(msgs)

        pool = PathPool()
        pids = [pool.add(tuple(p)) for p in paths]
        got = MessageBatch.from_pool(
            pool, pids, sizes, overhead,
            [m.src for m in msgs], [m.dst for m in msgs],
        )
        for name in ("sizes", "overheads", "src", "dst", "lens", "ptr", "flat"):
            a, b = getattr(got, name), getattr(ref, name)
            assert a.tolist() == b.tolist(), name
            assert a.dtype == b.dtype, name

    @given(
        data=st.lists(
            st.tuples(
                st.lists(st.integers(0, 19), max_size=5),
                st.floats(0.0, 1e6),
            ),
            max_size=8,
        )
    )
    def test_bytes_per_link_matches_python_loop(self, data):
        msgs = _messages_from([p for p, _ in data], [s for _, s in data], 0.0)
        batch = MessageBatch.from_messages(msgs)
        ref = np.zeros(20)
        for m in msgs:  # the accounting's old triple-nested loop
            for lid in m.path:
                ref[lid] += m.size
        assert np.array_equal(batch.bytes_per_link(20), ref)

    def test_pool_dedups_through_interning(self):
        pool = PathPool()
        pid = pool.add((1, 2, 3))
        batch = MessageBatch.from_pool(
            pool, [pid, pid, pid], [1.0, 2.0, 3.0], 0.0,
            [0, 0, 0], [1, 1, 1],
        )
        assert len(pool) == 1
        assert batch.flat.tolist() == [1, 2, 3] * 3


class TestPhaseBatchStaleness:
    def test_attached_batch_is_used_while_counts_match(self):
        phase = Phase(messages=[Message(0, 1, 1.0, (5,))])
        b = MessageBatch.from_messages(phase.messages)
        phase.batch = b
        assert phase_batch(phase) is b

    def test_count_mismatch_falls_back_to_messages(self):
        phase = Phase(messages=[Message(0, 1, 1.0, (5,))])
        phase.batch = MessageBatch.from_messages(phase.messages)
        phase.messages.append(Message(1, 0, 2.0, (6,)))
        fresh = phase_batch(phase)
        assert fresh is not phase.batch
        assert fresh.n == 2 and fresh.flat.tolist() == [5, 6]

    def test_invalidate_batch(self):
        phase = Phase(messages=[Message(0, 1, 1.0, (5,))])
        phase.batch = MessageBatch.from_messages(phase.messages)
        phase.invalidate_batch()
        assert phase.batch is None


# --- simulator-level equivalence ---------------------------------------------

def _strip_batches(program):
    for phase in program.phases:
        phase.invalidate_batch()
    return program


def _phase_fingerprint(result):
    return [
        (p.duration, p.transfer_time, p.bytes_moved, p.message_times)
        for p in result.phases
    ]


class TestBatchedRunEquivalence:
    """Batched vs per-message ``run_phase`` on the same programs."""

    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        pairs=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7),
                      st.integers(1, 4 * 1024 * 1024)),
            min_size=1, max_size=20,
        ),
        mode=st.sampled_from(["static", "dynamic"]),
    )
    def test_random_programs_bit_identical(self, env, pairs, mode):
        net, fabric = env
        job = Job(fabric, net.terminals[:8])
        rank_phase = [(a, b, float(s)) for a, b, s in pairs if a != b]
        prog = job.materialize([rank_phase], label="fuzz")
        assert all(p.batch is not None for p in prog.phases)

        batched = FlowSimulator(net, mode=mode).run(
            prog, collect_messages=True
        )
        stripped = FlowSimulator(net, mode=mode).run(
            _strip_batches(prog), collect_messages=True
        )
        assert batched.total_time == stripped.total_time
        assert _phase_fingerprint(batched) == _phase_fingerprint(stripped)

    @pytest.mark.parametrize("mode", ["static", "dynamic"])
    def test_multi_phase_collective_bit_identical(self, env, mode):
        net, fabric = env
        job = Job(fabric, net.terminals[:8])
        prog = job.allreduce(1 * MIB, algorithm="ring")
        batched = FlowSimulator(net, mode=mode).run(prog)
        stripped = FlowSimulator(net, mode=mode).run(_strip_batches(prog))
        assert batched.total_time == stripped.total_time
        assert _phase_fingerprint(batched) == _phase_fingerprint(stripped)

    @pytest.mark.parametrize("mode", ["static", "dynamic"])
    def test_with_fault_timeline_bit_identical(self, mode):
        # A degrade is persistent fabric state, so each run gets its own
        # freshly routed plane; equivalence is judged run-for-run.
        def one_run(strip):
            net = hyperx((3, 3), 2)
            fabric = OpenSM(net).run(DfssspRouting())
            job = Job(fabric, net.terminals[:6])
            prog = job.allgather(2 * MIB, algorithm="ring")
            if strip:
                _strip_batches(prog)
            cable = prog.phases[1].messages[0].path[1]
            events = [
                FabricEvent("degrade_cable", phase=2, cable=cable,
                            capacity_factor=0.25),
            ]
            return FlowSimulator(net, mode=mode, timeline=events).run(prog)

        batched = one_run(strip=False)
        stripped = one_run(strip=True)
        assert batched.events_applied == stripped.events_applied == 1
        assert batched.total_time == stripped.total_time
        assert _phase_fingerprint(batched) == _phase_fingerprint(stripped)

    def test_utilisation_identical_batched_vs_not(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:8])
        prog = job.alltoall(1 * MIB)
        sim = FlowSimulator(net, mode="static")
        batched = sim.link_utilization(prog)
        stripped = sim.link_utilization(_strip_batches(prog))
        assert batched == stripped

    def test_rank_phase_arrays_mirror_materialized_batch(self, env):
        # The rank-space arrays line up with the node-space batch through
        # the job's rank->node mapping (no self-sends in this pattern).
        net, fabric = env
        nodes = net.terminals[:8]
        job = Job(fabric, nodes)
        rank_phase = [(i, (i + 1) % 8, 1024.0 * (i + 1)) for i in range(8)]
        src_r, dst_r, sizes = rank_phase_arrays(rank_phase)
        batch = job.materialize([rank_phase]).phases[0].batch
        node_arr = np.asarray(nodes)
        assert batch.src.tolist() == node_arr[src_r].tolist()
        assert batch.dst.tolist() == node_arr[dst_r].tolist()
        assert batch.sizes.tolist() == sizes.tolist()


class TestGolden672:
    """Pinned durations on the paper's 672-node t2hx HyperX plane."""

    def test_golden_alltoall_durations(self):
        from repro.topology.t2hx import t2hx_hyperx

        net = t2hx_hyperx()
        fabric = OpenSM(net).run(DfssspRouting())
        assert net.num_terminals == 672
        job = Job(fabric, net.terminals[:64])
        prog = job.alltoall(1 * MIB)
        static = FlowSimulator(net, mode="static").run(prog)
        dynamic = FlowSimulator(net, mode="dynamic").run(prog)
        # Golden values recorded from the pre-batch per-message pipeline;
        # the batched run must reproduce them to the last ulp.
        assert static.total_time == pytest.approx(
            0.09664535294117646, rel=1e-12
        )
        assert static.transfer_time == pytest.approx(
            0.09650735294117649, rel=1e-12
        )
        assert dynamic.total_time == pytest.approx(
            0.09664535294117646, rel=1e-12
        )
        assert dynamic.transfer_time == pytest.approx(
            0.09650735294117649, rel=1e-12
        )
