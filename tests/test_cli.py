"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_hyperx(self, capsys):
        assert main(["info", "hyperx"]) == 0
        out = capsys.readouterr().out
        assert "switches=96" in out
        assert "57.1%" in out

    def test_fattree_scaled(self, capsys):
        assert main(["info", "fattree", "--scale", "2"]) == 0
        assert "diameter" in capsys.readouterr().out


class TestRoute:
    @pytest.mark.parametrize("engine", ["minhop", "dfsssp", "parx"])
    def test_hyperx_engines_clean(self, capsys, engine):
        rc = main(
            ["route", "hyperx", engine, "--scale", "2",
             "--sample-pairs", "200"]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "unreachable/loops: 0/0" in out

    def test_ftree_on_fattree(self, capsys):
        rc = main(
            ["route", "fattree", "ftree", "--scale", "2",
             "--sample-pairs", "200"]
        )
        assert rc == 0
        assert "deadlock-free: True" in capsys.readouterr().out


class TestRace:
    def test_barrier_race(self, capsys):
        rc = main(["race", "--operation", "Barrier", "--nodes", "8",
                   "--scale", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HyperX / PARX / clustered" in out
        assert "+0%" in out  # baseline row

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
