"""Unit tests for the Fabric forwarding model."""

import pytest

from repro.core.errors import RoutingError, UnreachableError
from repro.ib.addressing import assign_lids_sequential
from repro.ib.fabric import Fabric
from repro.ib.subnet_manager import OpenSM
from repro.routing.minhop import MinHopRouting
from repro.topology.hyperx import hyperx


@pytest.fixture
def routed():
    net = hyperx((3, 3), 2)
    fabric = OpenSM(net).run(MinHopRouting())
    return net, fabric


@pytest.fixture
def blank():
    net = hyperx((3,), 1)
    return net, Fabric(net, assign_lids_sequential(net))


class TestTableInstallation:
    def test_set_route_validates_link_origin(self, blank):
        net, fabric = blank
        foreign = net.out_links(net.switches[1])[0]
        with pytest.raises(RoutingError):
            fabric.set_route(net.switches[0], 1, foreign.id)

    def test_terminal_hops_installed(self, blank):
        net, fabric = blank
        fabric.install_terminal_hops()
        for t in net.terminals:
            sw = net.attached_switch(t)
            for dlid in fabric.lidmap.lids_of(t):
                out = fabric.out_link(sw, dlid)
                assert net.link(out).dst == t

    def test_missing_route_raises_unreachable(self, blank):
        net, fabric = blank
        with pytest.raises(UnreachableError):
            fabric.out_link(net.switches[0], 9999)


class TestResolve:
    def test_self_send_is_empty(self, routed):
        net, fabric = routed
        t = net.terminals[0]
        assert fabric.resolve(t, fabric.lidmap.base[t]) == []

    def test_path_endpoints(self, routed):
        net, fabric = routed
        a, b = net.terminals[0], net.terminals[-1]
        path = fabric.path(a, b)
        nodes = net.path_nodes(path)
        assert nodes[0] == a and nodes[-1] == b

    def test_same_switch_two_hops(self, routed):
        net, fabric = routed
        t0, t1 = net.attached_terminals(net.switches[0])[:2]
        path = fabric.path(t0, t1)
        assert net.path_hops(path) == 0
        assert len(path) == 2  # up then down

    def test_hops_within_diameter(self, routed):
        net, fabric = routed
        for a in net.terminals[:4]:
            for b in net.terminals[-4:]:
                if a != b:
                    assert fabric.hops(a, b) <= 2

    def test_forwarding_loop_detected(self, blank):
        net, fabric = blank
        fabric.install_terminal_hops()
        s = net.switches
        dlid = fabric.lidmap.base[net.terminals[2]]
        # s0 -> s1 -> s0 ping-pong for a destination at s2.
        fabric.set_route(s[0], dlid, net.links_between(s[0], s[1])[0].id)
        fabric.set_route(s[1], dlid, net.links_between(s[1], s[0])[0].id)
        with pytest.raises(RoutingError, match="loop"):
            fabric.resolve(net.terminals[0], dlid)

    def test_disabled_link_in_route_detected(self, routed):
        net, fabric = routed
        a, b = net.terminals[0], net.terminals[-1]
        path = fabric.path(a, b)
        switch_hop = next(
            l for l in path
            if net.is_switch(net.link(l).src) and net.is_switch(net.link(l).dst)
        )
        net.disable_cable(switch_hop)
        with pytest.raises(UnreachableError):
            fabric.path(a, b)
        net.enable_cable(switch_hop)


class TestVl:
    def test_default_vl_zero(self, routed):
        _, fabric = routed
        assert fabric.vl(list(fabric.lidmap.owner)[0]) >= 0

    def test_iter_dest_paths_covers_sources(self, routed):
        net, fabric = routed
        dlid = fabric.lidmap.base[net.terminals[0]]
        pairs = list(fabric.iter_dest_paths(dlid))
        assert len(pairs) == net.num_terminals - 1
