"""Unit tests for the HyperX generator and quadrant geometry."""

import itertools

import pytest

from repro.core.errors import TopologyError
from repro.topology.hyperx import (
    HyperXSpec,
    coord_in_half,
    hyperx,
    hyperx_quadrant,
    hyperx_shape_of,
    quadrant_halves,
)


class TestSpec:
    def test_paper_instance_counts(self):
        spec = HyperXSpec((12, 8), 7)
        assert spec.num_switches == 96
        assert spec.num_terminals == 672
        # 11 + 7 intra-dimension links + 7 terminals = 25 ports.
        assert spec.switch_radix == 25

    def test_trunking_radix(self):
        spec = HyperXSpec((4, 4), 2, trunking=(2, 1))
        assert spec.switch_radix == 2 * 3 + 3 + 2

    @pytest.mark.parametrize("bad", [(), (1, 4), (4, 0)])
    def test_bad_shapes_rejected(self, bad):
        with pytest.raises(TopologyError):
            HyperXSpec(bad, 1)

    def test_bad_trunking_rejected(self):
        with pytest.raises(TopologyError):
            HyperXSpec((4, 4), 1, trunking=(1,))


class TestGenerator:
    def test_paper_instance(self):
        net = hyperx((12, 8), 7)
        assert net.num_switches == 96
        assert net.num_terminals == 672
        # dim0: 8 rows x C(12,2); dim1: 12 cols x C(8,2).
        assert len(net.switch_cables()) == 8 * 66 + 12 * 28
        net.validate()

    def test_every_dimension_fully_connected(self):
        net = hyperx((3, 4), 1)
        by_coord = {
            tuple(net.node_meta(sw)["coord"]): sw for sw in net.switches
        }
        for a, b in itertools.combinations(by_coord, 2):
            differ = sum(x != y for x, y in zip(a, b))
            linked = bool(net.links_between(by_coord[a], by_coord[b]))
            assert linked == (differ == 1)

    def test_link_dim_annotation(self):
        net = hyperx((3, 3), 1)
        for link in net.switch_cables():
            ca = net.node_meta(link.src)["coord"]
            cb = net.node_meta(link.dst)["coord"]
            d = link.meta["dim"]
            assert ca[d] != cb[d]
            assert all(ca[e] == cb[e] for e in range(2) if e != d)

    def test_trunking_creates_parallel_cables(self):
        net = hyperx((3,), 1, trunking=(2,))
        s = net.switches
        assert len(net.links_between(s[0], s[1])) == 2

    def test_terminals_per_switch(self):
        net = hyperx((2, 2), 3)
        for sw in net.switches:
            assert len(net.attached_terminals(sw)) == 3

    def test_one_dimensional_is_full_mesh(self):
        net = hyperx((5,), 1)
        for a, b in itertools.combinations(net.switches, 2):
            assert net.links_between(a, b)

    def test_shape_recovery(self):
        assert hyperx_shape_of(hyperx((6, 4), 2)) == (6, 4)


class TestQuadrants:
    """Geometry derived from Table 1 consistency: Q0 TL, Q1 BL, Q2 BR, Q3 TR."""

    @pytest.mark.parametrize(
        "coord,quadrant",
        [
            ((0, 0), 0),   # top-left
            ((5, 3), 0),
            ((0, 4), 1),   # bottom-left
            ((5, 7), 1),
            ((6, 4), 2),   # bottom-right
            ((11, 7), 2),
            ((6, 0), 3),   # top-right
            ((11, 3), 3),
        ],
    )
    def test_12x8_quadrants(self, coord, quadrant):
        assert hyperx_quadrant(coord, (12, 8)) == quadrant

    def test_odd_dimensions_rejected(self):
        with pytest.raises(TopologyError):
            hyperx_quadrant((0, 0), (3, 4))

    def test_non_2d_rejected(self):
        with pytest.raises(TopologyError):
            hyperx_quadrant((0, 0, 0), (2, 2, 2))

    def test_halves_partition_quadrants(self):
        halves = quadrant_halves()
        assert halves["left"] | halves["right"] == {0, 1, 2, 3}
        assert halves["left"] & halves["right"] == set()
        assert halves["top"] | halves["bottom"] == {0, 1, 2, 3}
        assert halves["top"] & halves["bottom"] == set()

    def test_halves_consistent_with_quadrant_function(self):
        shape = (12, 8)
        halves = quadrant_halves()
        for x in range(12):
            for y in range(8):
                q = hyperx_quadrant((x, y), shape)
                for half, members in halves.items():
                    assert coord_in_half((x, y), shape, half) == (q in members)

    def test_unknown_half_rejected(self):
        with pytest.raises(TopologyError):
            coord_in_half((0, 0), (4, 4), "diagonal")

    def test_quadrants_equal_size_on_even_grid(self):
        counts = {q: 0 for q in range(4)}
        for x in range(12):
            for y in range(8):
                counts[hyperx_quadrant((x, y), (12, 8))] += 1
        assert set(counts.values()) == {24}
