"""Tests for the structured-diagnostics layer of the fabric linter."""

import json

import pytest

from repro.analysis import (
    ALL_RULES,
    CORE_RULES,
    RULES,
    Diagnostic,
    LintReport,
    Severity,
)


class TestRuleCatalogue:
    def test_codes_are_stable_fab_numbers(self):
        assert set(RULES) == {f"FAB{i:03d}" for i in range(1, 18)}

    def test_slugs_unique(self):
        slugs = [r.slug for r in RULES.values()]
        assert len(slugs) == len(set(slugs))

    def test_every_rule_names_its_paper_mechanism(self):
        for rule in RULES.values():
            assert rule.summary
            assert rule.guards

    def test_core_rules_subset_of_all(self):
        assert CORE_RULES < ALL_RULES
        # The four seeded-defect rules are all part of the preflight.
        assert {"FAB001", "FAB002", "FAB003", "FAB004"} <= CORE_RULES

    def test_seeded_defect_rules_are_errors(self):
        for code in ("FAB001", "FAB002", "FAB003", "FAB004"):
            assert RULES[code].default_severity is Severity.ERROR


class TestDiagnostic:
    def test_default_severity_from_rule(self):
        d = Diagnostic("FAB001", "boom")
        assert d.severity is Severity.ERROR
        assert Diagnostic("FAB011", "warm").severity is Severity.WARNING

    def test_severity_override(self):
        d = Diagnostic("FAB005", "sw", severity=Severity.WARNING)
        assert d.severity is Severity.WARNING

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("FAB999", "nope")

    def test_str_shim(self):
        """Legacy consumers probed failures with substring checks."""
        d = Diagnostic("FAB002", "12->34: forwarding loop at switch 5")
        assert "loop" in str(d)
        assert "loop" in d  # __contains__ shim
        assert "FAB002" in str(d)

    def test_numpy_payloads_coerced_at_construction(self):
        """Witnesses come straight off dense-array walks, so numpy
        scalars leak in naturally; they must land as builtins."""
        import numpy as np

        d = Diagnostic(
            "FAB001", "hole",
            switch=np.int64(7), lid=np.int32(42), vl=np.int16(1),
            witness={
                "affected_pairs": np.int64(12),
                "is_bridge": np.bool_(True),
                "walk": np.array([3, 5, 7]),
                "nested": {"ratio": np.float64(1.5),
                           "cycle": (np.int64(1), np.int64(2))},
            },
        )
        assert type(d.switch) is int and d.switch == 7
        assert type(d.lid) is int and type(d.vl) is int
        w = d.witness
        assert type(w["affected_pairs"]) is int
        assert type(w["is_bridge"]) is bool
        assert w["walk"] == [3, 5, 7]
        assert type(w["nested"]["ratio"]) is float
        assert w["nested"]["cycle"] == [1, 2]
        json.dumps(d.to_dict())  # must not raise

    def test_to_dict_is_json_ready(self):
        d = Diagnostic(
            "FAB003", "credit loop", vl=2,
            witness={"channels": [1, 2, 3]},
        )
        payload = json.dumps(d.to_dict())
        back = json.loads(payload)
        assert back["code"] == "FAB003"
        assert back["rule"] == "cdg-credit-loop"
        assert back["severity"] == "error"
        assert back["vl"] == 2
        assert back["witness"]["channels"] == [1, 2, 3]


class TestLintReport:
    def test_clean_iff_no_errors(self):
        rep = LintReport(network="n", engine="e")
        assert rep.clean
        rep.add("FAB011", "hot", witness={"link": 1})
        assert rep.clean  # warnings do not gate
        rep.add("FAB001", "hole")
        assert not rep.clean
        assert len(rep.errors) == 1
        assert len(rep.warnings) == 1

    def test_codes_and_by_code(self):
        rep = LintReport()
        rep.add("FAB001", "a")
        rep.add("FAB001", "b")
        rep.add("FAB004", "c")
        assert rep.codes() == {"FAB001", "FAB004"}
        assert len(rep.by_code("FAB001")) == 2

    def test_suppressed_counts_in_codes(self):
        rep = LintReport()
        rep.suppressed["FAB007"] = 5
        assert "FAB007" in rep.codes()

    def test_json_roundtrip(self):
        rep = LintReport(network="t2hx", engine="dfsssp")
        rep.add("FAB002", "loop", lid=7, witness={"cycle": [1, 2]})
        rep.stats["pairs_total"] = 42
        back = json.loads(rep.to_json())
        assert back["fabric"] == {"network": "t2hx", "engine": "dfsssp"}
        assert back["summary"]["clean"] is False
        assert back["summary"]["errors"] == 1
        assert back["summary"]["rules_fired"] == ["FAB002"]
        assert back["stats"]["pairs_total"] == 42
        assert back["diagnostics"][0]["witness"]["cycle"] == [1, 2]

    def test_render_text_mentions_findings(self):
        rep = LintReport(network="n", engine="e")
        text = rep.render_text()
        assert "no findings" in text
        rep.add("FAB001", "hole at 3", witness={"walk": [1, 3]})
        text = rep.render_text()
        assert "FAB001" in text
        assert "walk: [1, 3]" in text
