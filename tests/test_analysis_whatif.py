"""The what-if verifier: static certificates vs. actual fail+re-sweep.

The load-bearing contract: every number :func:`audit_whatif` predicts
statically must agree with what actually happens when the cable fails —
the linter's black-hole count before the re-sweep, and the re-sweep
report's stale-destination / dead-pair / unreachable counts after.
These cross-checks pin that agreement on small fabrics for every cable.
"""

import json

import pytest

from repro.analysis import audit_whatif, lint_fabric
from repro.analysis.diagnostics import ALL_RULES, WHATIF_RULES
from repro.core.errors import TopologyError, UnreachableError
from repro.ib.subnet_manager import OpenSM, resweep
from repro.routing import DfssspRouting, MinHopRouting
from repro.topology.faults import FabricEvent, inject_cable_faults
from repro.topology.hyperx import hyperx
from repro.topology.network import Network
from repro.topology.t2hx import t2hx_hyperx


def _hyperx_fabric(shape=(3, 3), terminals=2, engine=None):
    net = hyperx(shape, terminals)
    return net, OpenSM(net).run(engine or MinHopRouting())


def _chain_fabric(n_switches=3, terminals=2):
    """A path graph: every inter-switch cable is a bridge."""
    net = Network(f"chain{n_switches}")
    sws = [net.add_switch() for _ in range(n_switches)]
    for sw in sws:
        for _ in range(terminals):
            t = net.add_terminal()
            net.add_link(t, sw)
    for a, b in zip(sws, sws[1:]):
        net.add_link(a, b)
    return net, OpenSM(net).run(MinHopRouting())


class TestReportShape:
    def test_ranks_are_a_permutation(self):
        _, fabric = _hyperx_fabric()
        report = audit_whatif(fabric)
        assert len(report.cables) == 18  # 2 * C(3,2) * 3 rows/cols
        assert sorted(v.rank for v in report.cables) == list(
            range(1, len(report.cables) + 1)
        )
        assert [v.rank for v in report.cables] == list(
            range(1, len(report.cables) + 1)
        )

    def test_by_cable_resolves_both_directions(self):
        _, fabric = _hyperx_fabric()
        report = audit_whatif(fabric)
        v = report.cables[0]
        assert report.by_cable(v.cable) is v
        assert report.by_cable(v.reverse) is v
        assert report.by_cable(10**9) is None
        assert report.criticality_of(v.cable)["rank"] == v.rank

    def test_json_round_trips(self):
        _, fabric = _hyperx_fabric()
        report = audit_whatif(fabric, k2_samples=2, seed=5)
        payload = json.loads(report.to_json())
        assert payload["summary"]["cables"] == len(report.cables)
        assert len(payload["k2_samples"]) == 2
        assert payload["cables"][0]["rank"] == 1

    def test_clean_hyperx_has_no_bridges_or_credit_loops(self):
        _, fabric = _hyperx_fabric()
        report = audit_whatif(fabric)
        assert report.bridges == []
        assert not any(v.credit_loop_exposed for v in report.cables)
        # Symmetric topology under minhop: every cable carries load.
        assert all(v.load > 0 for v in report.cables)

    def test_k2_sampling_is_deterministic(self):
        _, fabric = _hyperx_fabric()
        a = audit_whatif(fabric, k2_samples=4, seed=9)
        b = audit_whatif(fabric, k2_samples=4, seed=9)
        c = audit_whatif(fabric, k2_samples=4, seed=10)
        assert [s.to_dict() for s in a.k2_samples] == [
            s.to_dict() for s in b.k2_samples
        ]
        assert [s.cables for s in a.k2_samples] != [
            s.cables for s in c.k2_samples
        ]

    def test_rejects_foreign_rows(self):
        _, fabric = _hyperx_fabric()
        fabric.tables[fabric.net.terminals[0]] = {1: 0}
        with pytest.raises(TopologyError):
            audit_whatif(fabric)


class TestBridges:
    def test_chain_cables_are_single_points_of_failure(self):
        net, fabric = _chain_fabric(n_switches=4, terminals=2)
        report = audit_whatif(fabric)
        assert len(report.cables) == 3
        assert all(v.is_bridge for v in report.cables)
        # Cutting the middle cable splits 4 terminals from 4: 2*4*4
        # ordered pairs die; the end cables strand 2 vs 6.
        middle = sorted(v.pairs_disconnected for v in report.cables)
        assert middle == [2 * 2 * 6, 2 * 2 * 6, 2 * 4 * 4]
        # The middle cable outranks the end cables.
        assert report.cables[0].pairs_disconnected == 32

    def test_k2_joint_disconnection_counts(self):
        net, fabric = _chain_fabric(n_switches=3, terminals=2)
        report = audit_whatif(fabric, k2_samples=1, seed=0)
        (sample,) = report.k2_samples
        # Any two distinct chain cables split the 6 terminals 2/2/2:
        # 30 ordered pairs minus 3 * (2*1) intra-component pairs.
        assert sample.disconnects
        assert sample.pairs_disconnected == 30 - 6


def _disconnected_pairs(net) -> int:
    """Ground truth: ordered terminal pairs with no enabled path."""
    reach = {}
    for start in net.switches:
        seen = {start}
        frontier = [start]
        while frontier:
            u = frontier.pop()
            for link in net.out_links(u):
                if net.is_switch(link.dst) and link.dst not in seen:
                    seen.add(link.dst)
                    frontier.append(link.dst)
        reach[start] = seen
    count = 0
    for s in net.terminals:
        for d in net.terminals:
            if s != d and net.attached_switch(d) not in reach[
                net.attached_switch(s)
            ]:
                count += 1
    return count


class TestCrossCheck:
    """Static predictions == measured fail + re-sweep outcomes."""

    @pytest.mark.parametrize("engine_cls", [MinHopRouting, DfssspRouting])
    def test_every_cable_matches_resweep_on_small_hyperx(self, engine_cls):
        net, fabric = _hyperx_fabric(shape=(2, 3), terminals=2,
                                     engine=engine_cls())
        report = audit_whatif(fabric)
        for v in report.cables:
            net_f = hyperx((2, 3), 2)
            fab_f = OpenSM(net_f).run(engine_cls())
            cable = net_f.link(v.cable)
            net_f.disable_cable(cable.id)
            rr = resweep(
                fab_f, engine_cls(),
                events=[FabricEvent("fail_cable", phase=0, cable=cable.id)],
            )
            assert rr.dests_affected == v.dests_affected, v
            assert rr.pairs_affected == v.affected_pairs, v
            # (2,3)-HyperX stays connected after any single cable loss.
            assert rr.num_unreachable == v.pairs_disconnected == 0, v

    def test_bridge_disconnection_matches_ground_truth(self):
        """pairs_disconnected == BFS ground truth, and a re-sweep with a
        completeness-checking engine refuses exactly those fabrics."""
        net, fabric = _chain_fabric(n_switches=3, terminals=2)
        report = audit_whatif(fabric)
        for v in report.cables:
            net_f, fab_f = _chain_fabric(n_switches=3, terminals=2)
            net_f.disable_cable(v.cable)
            assert v.pairs_disconnected == _disconnected_pairs(net_f) > 0, v
            # Every shipped engine raises rather than leaving holes, so
            # a positive static count predicts re-sweep *refusal*.
            with pytest.raises(UnreachableError):
                resweep(
                    fab_f, MinHopRouting(),
                    events=[
                        FabricEvent("fail_cable", phase=0, cable=v.cable)
                    ],
                )

    def test_blackholed_pairs_match_linter_before_resweep(self):
        net, fabric = _hyperx_fabric(shape=(3, 3), terminals=2)
        report = audit_whatif(fabric)
        for v in report.cables[:6]:
            net_f = hyperx((3, 3), 2)
            fab_f = OpenSM(net_f).run(MinHopRouting())
            net_f.disable_cable(v.cable)
            lint = lint_fabric(fab_f, rules={"FAB001"})
            assert lint.stats["blackholed_pairs"] == v.affected_pairs, v

    def test_degraded_fabric_predictions_still_match(self):
        """Audit after prior faults: the baseline need not be pristine."""
        net = hyperx((3, 3), 2)
        inject_cable_faults(net, 3, seed=4)
        fabric = OpenSM(net).run(DfssspRouting())
        report = audit_whatif(fabric)
        for v in report.cables[:4]:
            net_f = hyperx((3, 3), 2)
            inject_cable_faults(net_f, 3, seed=4)
            fab_f = OpenSM(net_f).run(DfssspRouting())
            net_f.disable_cable(v.cable)
            rr = resweep(
                fab_f, DfssspRouting(),
                events=[FabricEvent("fail_cable", phase=0, cable=v.cable)],
            )
            assert rr.dests_affected == v.dests_affected, v
            assert rr.pairs_affected == v.affected_pairs, v


class TestWhatifLintRules:
    def test_default_lint_never_runs_whatif(self):
        _, fabric = _hyperx_fabric()
        report = lint_fabric(fabric)
        assert "whatif" not in report.stats

    def test_fab014_bridge_with_witness_certificate(self):
        _, fabric = _chain_fabric()
        report = lint_fabric(fabric, ALL_RULES | WHATIF_RULES)
        fab014 = [d for d in report.diagnostics if d.code == "FAB014"]
        assert len(fab014) == 2
        w = fab014[0].witness
        assert w["is_bridge"] is True
        assert w["rank"] == 1
        assert w["pairs_disconnected"] > 0
        json.dumps(w)  # certificate must be JSON-serialisable

    def test_fab017_blast_radius_threshold(self):
        _, fabric = _chain_fabric()
        loose = lint_fabric(fabric, WHATIF_RULES, blast_threshold=1.0)
        tight = lint_fabric(fabric, WHATIF_RULES, blast_threshold=0.1)
        assert not any(d.code == "FAB017" for d in loose.diagnostics)
        assert any(d.code == "FAB017" for d in tight.diagnostics)

    def test_clean_t2hx_emits_no_whatif_findings(self):
        net = t2hx_hyperx(scale=2)
        fabric = OpenSM(net).run(DfssspRouting())
        report = lint_fabric(fabric, ALL_RULES | WHATIF_RULES)
        assert report.clean
        assert report.stats["whatif"]["bridges"] == 0
