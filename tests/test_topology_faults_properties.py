"""Unit tests for fault injection and structural properties."""

import pytest

from repro.core.errors import TopologyError
from repro.core.units import QDR_LINK_BANDWIDTH
from repro.topology.faults import degrade_links, inject_cable_faults
from repro.topology.hyperx import hyperx
from repro.topology.fattree import k_ary_n_tree
from repro.topology.properties import (
    average_shortest_path,
    bisection_fraction,
    cable_count,
    diameter,
    hyperx_bisection_fraction,
    link_count,
)


class TestFaultInjection:
    def test_exact_count_disabled(self):
        net = hyperx((4, 4), 1)
        before = len(net.switch_cables())
        failed = inject_cable_faults(net, 5, seed=0)
        assert len(failed) == 5
        assert len(net.switch_cables()) == before - 5

    def test_terminal_links_never_fail(self):
        net = hyperx((4, 4), 2)
        inject_cable_faults(net, 10, seed=1)
        net.validate()  # every terminal still has its uplink

    def test_deterministic(self):
        a = hyperx((4, 4), 1)
        b = hyperx((4, 4), 1)
        fa = inject_cable_faults(a, 5, seed=7)
        fb = inject_cable_faults(b, 5, seed=7)
        assert [l.id for l in fa] == [l.id for l in fb]

    def test_connectivity_preserved_under_heavy_failure(self):
        net = hyperx((4, 4), 1)  # 48 cables
        inject_cable_faults(net, 30, seed=0, keep_connected=True)
        assert diameter(net) >= 2  # raises if disconnected

    def test_overconstrained_failure_raises_and_rolls_back(self):
        # A 2x2 HyperX is a 4-cycle: only one cable can fail while the
        # switch graph stays connected.
        net = hyperx((2, 2), 1)
        with pytest.raises(TopologyError):
            inject_cable_faults(net, 2, seed=0, keep_connected=True)
        assert len(net.switch_cables()) == 4  # rollback restored all

    def test_too_many_faults_rejected(self):
        net = hyperx((2, 2), 1)
        with pytest.raises(TopologyError):
            inject_cable_faults(net, 100)

    def test_impossible_connected_failure_rolls_back(self):
        # A 2-switch network: removing its only cable must fail and
        # leave the cable enabled.
        from repro.topology.network import Network

        net = Network()
        s0, s1 = net.add_switch(), net.add_switch()
        t0, t1 = net.add_terminal(), net.add_terminal()
        net.add_link(t0, s0)
        net.add_link(t1, s1)
        net.add_link(s0, s1)
        with pytest.raises(TopologyError):
            inject_cable_faults(net, 1, keep_connected=True)
        assert len(net.switch_cables()) == 1


class TestDegradeLinks:
    def test_capacity_halved_both_directions(self):
        net = hyperx((3,), 1)
        touched = degrade_links(net, 1.0, capacity_factor=0.5, seed=0)
        assert len(touched) == len(net.switch_cables())
        for cable in touched:
            assert cable.capacity == pytest.approx(QDR_LINK_BANDWIDTH / 2)
            assert net.link(cable.reverse_id).capacity == pytest.approx(
                QDR_LINK_BANDWIDTH / 2
            )

    def test_fraction_zero_touches_nothing(self):
        net = hyperx((3,), 1)
        assert degrade_links(net, 0.0) == []

    def test_bad_fraction(self):
        with pytest.raises(TopologyError):
            degrade_links(hyperx((3,), 1), 1.5)


class TestFabricEvents:
    def test_round_trip(self):
        from repro.topology.faults import FabricEvent, FaultTimeline

        tl = FaultTimeline((
            FabricEvent("fail_cable", phase=1, cable=None, seed=5),
            FabricEvent("degrade_cable", phase=2, cable=7,
                        capacity_factor=0.25),
            FabricEvent("restore_cable", phase=3, cable=7),
        ))
        back = FaultTimeline.from_list(tl.to_list())
        assert back == tl
        assert len(back) == 3
        assert back.events_at(2)[0].action == "degrade_cable"
        assert not FaultTimeline()

    def test_validation(self):
        from repro.topology.faults import FabricEvent

        with pytest.raises(TopologyError):
            FabricEvent("explode_cable", phase=0)
        with pytest.raises(TopologyError):
            FabricEvent("fail_cable", phase=-1)
        with pytest.raises(TopologyError):
            FabricEvent("degrade_cable", phase=0, capacity_factor=0.0)
        with pytest.raises(TopologyError):
            FabricEvent.from_dict({"action": "fail_cable", "phase": 0,
                                   "blast_radius": 3})

    def test_seeded_pick_is_deterministic_and_keeps_connectivity(self):
        from repro.topology.faults import FabricEvent

        event = FabricEvent("fail_cable", phase=0, cable=None, seed=9)
        a, b = hyperx((4, 4), 1), hyperx((4, 4), 1)
        assert event.resolve_cable(a).id == event.resolve_cable(b).id
        # resolve_cable is a dry run: nothing disabled yet.
        assert len(a.switch_cables()) == 48
        event.apply(a)
        assert len(a.switch_cables()) == 47
        assert diameter(a) >= 2  # still connected

    def test_restore_does_not_undo_degrade(self):
        from repro.topology.faults import FabricEvent

        net = hyperx((3,), 1)
        cable = net.switch_cables()[0]
        before = cable.capacity
        FabricEvent("degrade_cable", phase=0, cable=cable.id).apply(net)
        FabricEvent("restore_cable", phase=0, cable=cable.id).apply(net)
        assert cable.enabled
        assert cable.capacity == pytest.approx(before / 2)  # stays slow


class TestFaultMonotonicity:
    """Property: faults never make a program faster.

    Degrading capacities leaves every path in place, so the max-min
    rates can only drop — total time is monotone in both sim modes.
    """

    @pytest.mark.parametrize("mode", ["static", "dynamic"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_degraded_fabric_never_faster(self, mode, seed):
        from repro.core.units import MIB
        from repro.ib.subnet_manager import OpenSM
        from repro.mpi.job import Job
        from repro.routing.dfsssp import DfssspRouting
        from repro.sim.engine import FlowSimulator

        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(DfssspRouting())
        job = Job(fabric, net.terminals[:8])
        prog = job.alltoall(1 * MIB)
        pristine = FlowSimulator(net, mode=mode).run(prog).total_time
        degrade_links(net, 0.4, capacity_factor=0.5, seed=seed)
        degraded = FlowSimulator(net, mode=mode).run(prog).total_time
        assert degraded >= pristine - 1e-12

    @pytest.mark.parametrize("mode", ["static", "dynamic"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_faulted_and_rerouted_never_faster(self, mode, seed):
        from repro.core.units import MIB
        from repro.ib.subnet_manager import OpenSM
        from repro.mpi.job import Job
        from repro.routing.dfsssp import DfssspRouting
        from repro.sim.engine import FlowSimulator

        def total_time(faults):
            net = hyperx((3, 3), 2)
            if faults:
                inject_cable_faults(net, faults, seed=seed)
            fabric = OpenSM(net).run(DfssspRouting())
            job = Job(fabric, net.terminals[:8])
            sim = FlowSimulator(net, mode=mode)
            return sim.run(job.alltoall(1 * MIB)).total_time

        assert total_time(4) >= total_time(0) - 1e-12


class TestDiameterAndPaths:
    def test_hyperx_diameter_is_dimension_count(self):
        assert diameter(hyperx((4, 4), 1)) == 2
        assert diameter(hyperx((3, 3, 3), 1)) == 3

    def test_full_mesh_diameter_one(self):
        assert diameter(hyperx((5,), 1)) == 1

    def test_three_level_tree_diameter(self):
        assert diameter(k_ary_n_tree(2, 3)) == 4  # up 2, down 2

    def test_average_shortest_path_below_diameter(self):
        net = hyperx((4, 4), 1)
        avg = average_shortest_path(net)
        assert 1.0 < avg < 2.0

    def test_sampled_average_close_to_exact(self):
        net = hyperx((6, 4), 1)
        exact = average_shortest_path(net)
        sampled = average_shortest_path(net, sample=12, seed=0)
        assert abs(exact - sampled) < 0.2

    def test_disconnected_raises(self):
        from repro.topology.network import Network

        net = Network()
        net.add_switch()
        net.add_switch()
        with pytest.raises(TopologyError):
            diameter(net)


class TestBisection:
    def test_paper_headline_571_percent(self):
        """Section 2.3: 12x8 with 7 nodes/switch has 57.1% bisection."""
        assert hyperx_bisection_fraction((12, 8), 7) == pytest.approx(
            0.5714, abs=1e-3
        )

    def test_full_bisection_flattened_butterfly(self):
        # T = S/2 per dimension gives >= 100%.
        assert hyperx_bisection_fraction((4, 4), 2) >= 1.0

    def test_trunking_scales_bisection(self):
        base = hyperx_bisection_fraction((8,), 4)
        doubled = hyperx_bisection_fraction((8,), 4, trunking=(2,))
        assert doubled == pytest.approx(2 * base)

    def test_sampled_bisection_matches_formula(self):
        net = hyperx((4, 4), 2)
        sampled = bisection_fraction(net, samples=40, seed=0)
        formula = hyperx_bisection_fraction((4, 4), 2)
        # Sampled min-cut over random bipartitions upper-bounds the true
        # bisection but should land in the same region.
        assert formula * 0.8 <= sampled <= formula * 2.5

    def test_counts(self):
        net = hyperx((3,), 2)
        # 3 switch cables + 6 terminal cables, each 2 directed links.
        assert cable_count(net) == 9
        assert cable_count(net, switches_only=True) == 3
        assert link_count(net) == 18
