"""Tests for the live fabric-state view (version-keyed capacity cache)."""

import pytest

from repro.core.errors import TopologyError
from repro.core.units import QDR_LINK_BANDWIDTH
from repro.topology import FabricState, hyperx


@pytest.fixture()
def net():
    return hyperx((3, 3), 1)


class TestVersionCounter:
    def test_mutations_bump_version(self, net):
        v = net.version
        cable = net.switch_cables()[0]
        net.disable_cable(cable.id)
        assert net.version > v
        v = net.version
        net.enable_cable(cable.id)
        assert net.version > v
        v = net.version
        net.set_capacity(cable.id, 1.0)
        assert net.version > v

    def test_set_capacity_both_directions(self, net):
        cable = net.switch_cables()[0]
        net.set_capacity(cable.id, 2.5)
        assert net.link(cable.id).capacity == 2.5
        assert net.link(cable.reverse_id).capacity == 2.5
        net.set_capacity(cable.id, 1.5, both_directions=False)
        assert net.link(cable.id).capacity == 1.5
        assert net.link(cable.reverse_id).capacity == 2.5

    def test_set_capacity_rejects_negative(self, net):
        with pytest.raises(TopologyError):
            net.set_capacity(net.switch_cables()[0].id, -1.0)

    def test_set_capacity_zero_allowed(self, net):
        # Capacity 0 models a present-but-dead cable (the paper's
        # ">10,000 symbol errors" filter); validate() still rejects it.
        cable = net.switch_cables()[0]
        net.set_capacity(cable.id, 0.0)
        assert net.link(cable.id).capacity == 0.0


class TestFabricState:
    def test_lazy_refresh_on_first_read(self, net):
        state = FabricState(net)
        caps = state.capacities
        assert len(caps) == len(net.links)
        assert caps.max() == pytest.approx(QDR_LINK_BANDWIDTH)

    def test_refresh_reports_whether_it_recomputed(self, net):
        state = FabricState(net)
        assert state.refresh() is True  # first read
        assert state.refresh() is False  # nothing changed
        net.disable_cable(net.switch_cables()[0].id)
        assert state.refresh() is True
        assert state.refresh(force=True) is True  # force always recomputes

    def test_disable_is_visible_without_explicit_refresh(self, net):
        state = FabricState(net)
        assert state.disabled == frozenset()
        cable = net.switch_cables()[0]
        net.disable_cable(cable.id)
        assert cable.id in state.disabled
        assert cable.reverse_id in state.disabled
        net.enable_cable(cable.id)
        assert state.disabled == frozenset()

    def test_set_capacity_visible_in_capacities(self, net):
        state = FabricState(net)
        cable = net.switch_cables()[0]
        before = state.capacities[cable.id]
        net.set_capacity(cable.id, before / 4)
        assert state.capacities[cable.id] == pytest.approx(before / 4)

    def test_direct_field_write_is_versioned(self, net):
        # Link.capacity/.enabled are property setters that bump the
        # owning network's version, so a direct write is visible through
        # the cached view without any force-refresh.
        state = FabricState(net)
        cable = net.switch_cables()[0]
        _ = state.capacities
        v = net.version
        cable.capacity = 0.0
        assert net.version > v
        assert state.capacities[cable.id] == 0.0
        assert cable.id in state.nonpositive
        v = net.version
        cable.enabled = False
        assert net.version > v
        assert cable.id in state.disabled

    def test_free_standing_link_setter_needs_no_network(self):
        from repro.topology.network import Link

        link = Link(0, 1, 2, 4.0)
        link.capacity = 2.0  # no owning network: nothing to bump
        link.enabled = False
        assert link.capacity == 2.0 and link.enabled is False

    def test_disabled_on_and_nonpositive_on(self, net):
        state = FabricState(net)
        cables = net.switch_cables()
        dead, slow = cables[0], cables[1]
        net.disable_cable(dead.id)
        net.set_capacity(slow.id, 0.0)
        path = (dead.id, slow.id, cables[2].id)
        assert state.disabled_on(path) == [dead.id]
        # nonpositive_on excludes links already reported as disabled.
        assert state.nonpositive_on(path) == [slow.id]
        assert state.disabled_on(()) == []

    def test_repr_mentions_counts(self, net):
        state = FabricState(net)
        net.disable_cable(net.switch_cables()[0].id)
        assert "disabled=2" in repr(state)
