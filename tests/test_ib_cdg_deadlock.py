"""Unit tests for channel-dependency graphs and VL layering."""

import pytest

from repro.core.errors import DeadlockError
from repro.ib.cdg import (
    addition_creates_cycle,
    channel_dependencies,
    dependency_cycle_exists,
    dest_dependencies_from_tables,
)
from repro.ib.deadlock import (
    assign_layers,
    assign_layers_by_destination,
    verify_deadlock_free,
)
from repro.ib.subnet_manager import OpenSM
from repro.routing.minhop import MinHopRouting
from repro.topology.hyperx import hyperx
from repro.topology.network import Network


def ring_network(n: int = 3) -> tuple[Network, list[int], list[int]]:
    """n switches in a ring, one terminal each."""
    net = Network(f"ring{n}")
    switches = [net.add_switch() for _ in range(n)]
    terminals = [net.add_terminal() for _ in range(n)]
    for t, s in zip(terminals, switches):
        net.add_link(t, s)
    for i in range(n):
        net.add_link(switches[i], switches[(i + 1) % n])
    return net, switches, terminals


class TestCycleDetection:
    def test_acyclic(self):
        assert not dependency_cycle_exists([(1, 2), (2, 3), (1, 3)])

    def test_direct_cycle(self):
        assert dependency_cycle_exists([(1, 2), (2, 1)])

    def test_long_cycle(self):
        assert dependency_cycle_exists([(1, 2), (2, 3), (3, 4), (4, 1)])

    def test_empty(self):
        assert not dependency_cycle_exists([])

    def test_large_chain_no_recursion_blowup(self):
        edges = [(i, i + 1) for i in range(50_000)]
        assert not dependency_cycle_exists(edges)


class TestAdditionCreatesCycle:
    def test_detects_closing_edge(self):
        adj = {1: {2}, 2: {3}, 3: set()}
        assert addition_creates_cycle(adj, [(3, 1)])
        assert not addition_creates_cycle(adj, [(1, 3)])

    def test_does_not_mutate(self):
        adj = {1: {2}, 2: set()}
        addition_creates_cycle(adj, [(2, 1)])
        assert adj == {1: {2}, 2: set()}

    def test_self_edge(self):
        assert addition_creates_cycle({}, [(1, 1)])

    def test_cycle_among_new_edges_only(self):
        assert addition_creates_cycle({}, [(1, 2), (2, 1)])


class TestChannelDependencies:
    def test_triangle_paths_make_cycle(self):
        """The paper's section 3.2 triangle thought experiment: routing
        A->C via B and B->A via C and C->B via A yields a cyclic CDG."""
        net, s, t = ring_network(3)

        def two_hop(src_t, via, dst_t):
            src_s = net.attached_switch(src_t)
            dst_s = net.attached_switch(dst_t)
            return [
                net.terminal_uplink(src_t).id,
                net.links_between(src_s, via)[0].id,
                net.links_between(via, dst_s)[0].id,
                net.terminal_uplink(dst_t).reverse_id,
            ]

        paths = [
            two_hop(t[0], s[1], t[2]),
            two_hop(t[1], s[2], t[0]),
            two_hop(t[2], s[0], t[1]),
        ]
        deps = channel_dependencies(net, paths)
        assert dependency_cycle_exists(deps)

    def test_terminal_links_excluded(self):
        net, s, t = ring_network(3)
        path = [
            net.terminal_uplink(t[0]).id,
            net.links_between(s[0], s[1])[0].id,
            net.terminal_uplink(t[1]).reverse_id,
        ]
        deps = channel_dependencies(net, [path])
        assert deps == set()  # single switch hop: no dependency pairs


class TestAssignLayers:
    def test_single_acyclic_destination_one_layer(self):
        vl, n = assign_layers({10: {(1, 2), (2, 3)}})
        assert vl == {10: 0}
        assert n == 1

    def test_conflicting_destinations_split(self):
        # dest A needs 1->2, dest B needs 2->1: together cyclic.
        vl, n = assign_layers({1: {(1, 2)}, 2: {(2, 1)}})
        assert n == 2
        assert vl[1] != vl[2]

    def test_budget_exhaustion_raises(self):
        with pytest.raises(DeadlockError):
            assign_layers({1: {(1, 2)}, 2: {(2, 1)}}, max_vls=1)

    def test_zero_budget_rejected(self):
        with pytest.raises(DeadlockError):
            assign_layers({}, max_vls=0)

    def test_path_based_wrapper(self):
        net, s, t = ring_network(4)
        fabric = OpenSM(net).run(MinHopRouting())
        dest_paths = {
            dlid: [p for _, p in fabric.iter_dest_paths(dlid)]
            for dlid in fabric.lidmap.terminal_lids(net)
        }
        vl, n = assign_layers_by_destination(net, dest_paths, max_vls=8)
        assert verify_deadlock_free(net, dest_paths, vl)
        assert 1 <= n <= 8


class TestTableDerivedDependencies:
    def test_matches_path_based_on_minhop(self):
        net = hyperx((3, 3), 1)
        fabric = OpenSM(net).run(MinHopRouting())
        for dlid in fabric.lidmap.terminal_lids(net)[:3]:
            exact = channel_dependencies(
                net, [p for _, p in fabric.iter_dest_paths(dlid)]
            )
            table = dest_dependencies_from_tables(fabric, dlid)
            # Table extraction is conservative: superset of the exact set.
            assert exact <= table
            # But both must stay acyclic (a destination tree).
            assert not dependency_cycle_exists(table)

    def test_fabric_vls_make_paths_deadlock_free(self):
        net = hyperx((4, 4), 1)
        fabric = OpenSM(net).run(MinHopRouting())
        dest_paths = {
            dlid: [p for _, p in fabric.iter_dest_paths(dlid)]
            for dlid in fabric.lidmap.terminal_lids(net)
        }
        assert verify_deadlock_free(net, dest_paths, fabric.vl_of_dlid)
