"""Unit tests for the rewired TSUBAME2 system builders."""

import pytest

from repro.topology.properties import diameter
from repro.topology.t2hx import (
    T2HX_HYPERX_SHAPE,
    T2HX_NUM_NODES,
    t2hx_fattree,
    t2hx_hyperx,
    t2hx_planes,
    usable_nodes,
)


class TestHyperXPlane:
    def test_full_scale_counts(self):
        net = t2hx_hyperx()
        assert net.num_terminals == T2HX_NUM_NODES == 672
        assert net.num_switches == 96
        assert diameter(net) == 2

    def test_faults_remove_fifteen_cables(self):
        clean = t2hx_hyperx()
        faulty = t2hx_hyperx(with_faults=True)
        assert (
            len(clean.switch_cables()) - len(faulty.switch_cables()) == 15
        )

    def test_fault_seed_determinism(self):
        a = t2hx_hyperx(with_faults=True, seed=3)
        b = t2hx_hyperx(with_faults=True, seed=3)
        disabled_a = [l.id for l in a.links if not l.enabled]
        disabled_b = [l.id for l in b.links if not l.enabled]
        assert disabled_a == disabled_b

    def test_scaled_plane_keeps_even_dims(self):
        net = t2hx_hyperx(scale=2)
        shape = tuple(
            max(net.node_meta(sw)["coord"][d] for sw in net.switches) + 1
            for d in range(2)
        )
        assert all(s % 2 == 0 for s in shape)
        assert shape == (6, 4)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            t2hx_hyperx(scale=0)


class TestFatTreePlane:
    def test_full_scale_counts(self):
        net = t2hx_fattree()
        assert net.num_terminals == 672

    def test_faults_scale_with_paper_ratio(self):
        clean = t2hx_fattree()
        faulty = t2hx_fattree(with_faults=True)
        removed = len(clean.switch_cables()) - len(faulty.switch_cables())
        expected = round(197 / 2662 * len(clean.switch_cables()))
        assert removed == expected

    def test_connected_after_faults(self):
        net = t2hx_fattree(with_faults=True)
        assert diameter(net) >= 2


class TestDualPlane:
    def test_planes_host_same_machine(self):
        ft, hx = t2hx_planes()
        assert usable_nodes(ft, hx) == 672

    def test_scaled_planes(self):
        ft, hx = t2hx_planes(scale=2)
        assert usable_nodes(ft, hx) == min(ft.num_terminals, hx.num_terminals)
        assert usable_nodes(ft, hx) >= 128

    def test_shape_constant(self):
        assert T2HX_HYPERX_SHAPE == (12, 8)
