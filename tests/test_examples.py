"""Smoke tests: every example script runs and prints its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = _run("quickstart.py", "--scale", "2", "--nodes", "14")
    assert "Fat-Tree / ftree / linear" in out
    assert "HyperX / PARX / clustered" in out
    assert "vs baseline" in out


def test_topology_explorer():
    out = _run("topology_explorer.py")
    assert "12x8 HyperX" in out
    assert "57%" in out


def test_parx_routing_demo():
    out = _run("parx_routing_demo.py")
    assert "LID0" in out and "LID3" in out
    assert "remove left" in out
    assert "Table 1" in out


def test_capacity_scheduler_scaled():
    out = _run("capacity_scheduler.py", "--scale", "2", "--hours", "1")
    assert "total runs" in out
    assert "MuPP" in out


@pytest.mark.slow
def test_mpigraph_heatmap():
    out = _run("mpigraph_heatmap.py", "--nodes", "14")
    assert "Fat-Tree with ftree routing" in out
    assert "HyperX with PARX routing" in out
