"""Tests for the simulator's link-utilisation diagnostics."""

import pytest

from repro.core.units import MIB, QDR_LINK_BANDWIDTH
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing.dfsssp import DfssspRouting
from repro.sim.engine import FlowSimulator
from repro.topology.hyperx import hyperx


@pytest.fixture(scope="module")
def env():
    net = hyperx((4, 4), 2)
    fabric = OpenSM(net).run(DfssspRouting())
    return net, fabric


class TestLinkUtilization:
    def test_single_flow_saturates_its_path(self, env):
        net, fabric = env
        job = Job(fabric, [net.terminals[0], net.terminals[-1]])
        prog = job.send(0, 1, 64 * MIB)
        sim = FlowSimulator(net, mode="static")
        util = sim.link_utilization(prog)
        path = set(prog.phases[0].messages[0].path)
        assert set(util) == path
        # The flow runs at line rate; utilisation approaches 1 (latency
        # floor shaves a little).
        for v in util.values():
            assert 0.95 < v <= 1.0

    def test_shared_cable_shows_full_others_half(self, env):
        net, fabric = env
        s0 = net.attached_terminals(net.switches[0])
        s1 = net.attached_terminals(net.switches[1])
        job = Job(fabric, s0 + s1)
        prog = job.materialize(
            [[(0, 2, 64 * MIB), (1, 3, 64 * MIB)]], label="pair"
        )
        sim = FlowSimulator(net, mode="static")
        util = sim.link_utilization(prog)
        # The single inter-switch cable carries both flows: ~1.0; each
        # terminal link carries one flow at half rate: ~0.5.
        assert max(util.values()) > 0.95
        assert min(util.values()) < 0.6

    def test_zero_byte_program_empty(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:4])
        util = FlowSimulator(net).link_utilization(job.barrier())
        assert util == {}

    def test_utilisation_bounded(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:8])
        util = FlowSimulator(net, mode="static").link_utilization(
            job.alltoall(1 * MIB)
        )
        for v in util.values():
            assert 0 < v <= 1.0 + 1e-9

    def test_compute_gaps_do_not_dilute_utilisation(self, env):
        """Regression: utilisation divided by total wall time, so a
        two-phase program with a long compute gap reported near-zero
        load on links that were in fact saturated while transferring."""
        from repro.sim.flows import Phase, Program

        net, fabric = env
        job = Job(fabric, [net.terminals[0], net.terminals[-1]])
        msg = job.send(0, 1, 8 * MIB).phases[0].messages[0]
        single = Program(phases=[Phase(messages=[msg])])
        gapped = Program(
            phases=[Phase(messages=[msg]), Phase(messages=[msg])],
            compute_between_phases=10.0,  # dwarfs the transfer time
        )
        sim = FlowSimulator(net, mode="static")
        util_single = sim.link_utilization(single)
        util_gapped = sim.link_utilization(gapped)
        assert util_gapped.keys() == util_single.keys()
        for l, v in util_single.items():
            assert util_gapped[l] == pytest.approx(v)

    def test_mid_run_degrade_uses_per_phase_capacity(self):
        """Regression (post-run denominator): utilisation used to divide
        by the capacities read *after* the run, so a mid-run degrade made
        earlier full-capacity phases report over-unity load.  Bytes are
        now charged against each phase's capacity snapshot: a link
        saturated in both halves reports exactly 1.0."""
        from repro.topology.faults import FabricEvent

        net = hyperx((3, 3), 2)
        fabric = OpenSM(net).run(DfssspRouting())
        src = net.attached_terminals(net.switches[0])[0]
        dst = net.attached_terminals(net.switches[-1])[0]
        job = Job(fabric, [src, dst])
        pair = (0, 1, 16 * MIB)
        prog = job.materialize([[pair], [pair]], label="two-phase")
        cable = prog.phases[0].messages[0].path[0]
        sim = FlowSimulator(
            net,
            mode="static",
            timeline=[
                FabricEvent("degrade_cable", phase=1, cable=cable,
                            capacity_factor=0.5),
            ],
        )
        result = sim.run(prog)
        assert result.events_applied == 1
        util = sim.link_utilization(prog, result=result)
        # Phase 0 at capacity C, phase 1 at C/2: busy = B/C + 2B/C over a
        # transfer of 3B/C -> the degraded cable is pinned at exactly 1.
        # The post-run-capacity bug reported 2B / (C/2 * 3B/C) = 4/3.
        assert util[cable] == pytest.approx(1.0, rel=1e-12)
        # Un-degraded path links moved the same bytes against full
        # capacity both phases: 2B/C over 3B/C -> 2/3.
        for lid in prog.phases[0].messages[0].path[1:]:
            assert util[lid] == pytest.approx(2.0 / 3.0, rel=1e-12)
        assert all(v <= 1.0 + 1e-12 for v in util.values())

    def test_empty_phase_keeps_transfer_time_consistent(self, env):
        """Regression: the empty-phase early return built a PhaseResult
        without ``transfer_time``; pin that the default keeps multi-phase
        transfer time and utilisation identical to the same program
        without the empty phase."""
        from repro.sim.flows import Phase, Program

        net, fabric = env
        job = Job(fabric, [net.terminals[0], net.terminals[-1]])
        msg = job.send(0, 1, 8 * MIB).phases[0].messages[0]
        dense = Program(phases=[Phase(messages=[msg]), Phase(messages=[msg])])
        holey = Program(
            phases=[Phase(messages=[msg]), Phase(), Phase(messages=[msg])]
        )
        sim = FlowSimulator(net, mode="static")
        res_dense = sim.run(dense)
        res_holey = sim.run(holey)
        empty_pr = res_holey.phases[1]
        assert empty_pr.transfer_time == 0.0 and empty_pr.duration == 0.0
        assert empty_pr.link_ids is not None and len(empty_pr.link_ids) == 0
        assert res_holey.transfer_time == res_dense.transfer_time
        assert res_holey.total_time == res_dense.total_time
        assert sim.link_utilization(holey, result=res_holey) == \
            sim.link_utilization(dense, result=res_dense)

    def test_hottest_links_sorted(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:8])
        sim = FlowSimulator(net, mode="static")
        hottest = sim.hottest_links(job.alltoall(1 * MIB), top=3)
        assert len(hottest) == 3
        assert hottest[0][1] >= hottest[1][1] >= hottest[2][1]

    def test_hottest_links_ties_break_on_link_id(self, env):
        """Pin the deterministic tie-break: equal utilisation sorts by
        ascending link id, so the cut at ``top`` never depends on dict
        insertion order."""
        net, fabric = env
        s0 = net.attached_terminals(net.switches[0])
        s1 = net.attached_terminals(net.switches[1])
        job = Job(fabric, s0 + s1)
        # Two identical flows over the one inter-switch cable: the four
        # terminal links each carry one half-rate flow — an exact 4-way
        # utilisation tie just below the shared cable.
        prog = job.materialize(
            [[(0, 2, 64 * MIB), (1, 3, 64 * MIB)]], label="pair"
        )
        sim = FlowSimulator(net, mode="static")
        hottest = sim.hottest_links(prog, top=5)
        assert len(hottest) == 5
        tied = hottest[1:]
        assert len({v for _, v in tied}) == 1  # a genuine tie
        tied_ids = [l for l, _ in tied]
        assert tied_ids == sorted(tied_ids)
        # The cut itself is deterministic: top=3 keeps the two smallest
        # tied link ids, in the same order.
        assert sim.hottest_links(prog, top=3) == hottest[:3]


class TestImbExtendedOps:
    def test_reduce_scatter_and_allgather_dispatch(self, env):
        from repro.workloads.netbench import IMB_COLLECTIVES, imb_latency

        net, fabric = env
        job = Job(fabric, net.terminals[:8])
        sim = FlowSimulator(net, mode="static")
        assert "Reduce_scatter" in IMB_COLLECTIVES
        assert "Allgather" in IMB_COLLECTIVES
        t_rs = imb_latency(job, sim, "Reduce_scatter", 4096)
        t_ag = imb_latency(job, sim, "Allgather", 4096)
        assert t_rs > 0 and t_ag > 0
