"""Tests for the simulator's link-utilisation diagnostics."""

import pytest

from repro.core.units import MIB, QDR_LINK_BANDWIDTH
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.routing.dfsssp import DfssspRouting
from repro.sim.engine import FlowSimulator
from repro.topology.hyperx import hyperx


@pytest.fixture(scope="module")
def env():
    net = hyperx((4, 4), 2)
    fabric = OpenSM(net).run(DfssspRouting())
    return net, fabric


class TestLinkUtilization:
    def test_single_flow_saturates_its_path(self, env):
        net, fabric = env
        job = Job(fabric, [net.terminals[0], net.terminals[-1]])
        prog = job.send(0, 1, 64 * MIB)
        sim = FlowSimulator(net, mode="static")
        util = sim.link_utilization(prog)
        path = set(prog.phases[0].messages[0].path)
        assert set(util) == path
        # The flow runs at line rate; utilisation approaches 1 (latency
        # floor shaves a little).
        for v in util.values():
            assert 0.95 < v <= 1.0

    def test_shared_cable_shows_full_others_half(self, env):
        net, fabric = env
        s0 = net.attached_terminals(net.switches[0])
        s1 = net.attached_terminals(net.switches[1])
        job = Job(fabric, s0 + s1)
        prog = job.materialize(
            [[(0, 2, 64 * MIB), (1, 3, 64 * MIB)]], label="pair"
        )
        sim = FlowSimulator(net, mode="static")
        util = sim.link_utilization(prog)
        # The single inter-switch cable carries both flows: ~1.0; each
        # terminal link carries one flow at half rate: ~0.5.
        assert max(util.values()) > 0.95
        assert min(util.values()) < 0.6

    def test_zero_byte_program_empty(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:4])
        util = FlowSimulator(net).link_utilization(job.barrier())
        assert util == {}

    def test_utilisation_bounded(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:8])
        util = FlowSimulator(net, mode="static").link_utilization(
            job.alltoall(1 * MIB)
        )
        for v in util.values():
            assert 0 < v <= 1.0 + 1e-9

    def test_compute_gaps_do_not_dilute_utilisation(self, env):
        """Regression: utilisation divided by total wall time, so a
        two-phase program with a long compute gap reported near-zero
        load on links that were in fact saturated while transferring."""
        from repro.sim.flows import Phase, Program

        net, fabric = env
        job = Job(fabric, [net.terminals[0], net.terminals[-1]])
        msg = job.send(0, 1, 8 * MIB).phases[0].messages[0]
        single = Program(phases=[Phase(messages=[msg])])
        gapped = Program(
            phases=[Phase(messages=[msg]), Phase(messages=[msg])],
            compute_between_phases=10.0,  # dwarfs the transfer time
        )
        sim = FlowSimulator(net, mode="static")
        util_single = sim.link_utilization(single)
        util_gapped = sim.link_utilization(gapped)
        assert util_gapped.keys() == util_single.keys()
        for l, v in util_single.items():
            assert util_gapped[l] == pytest.approx(v)

    def test_hottest_links_sorted(self, env):
        net, fabric = env
        job = Job(fabric, net.terminals[:8])
        sim = FlowSimulator(net, mode="static")
        hottest = sim.hottest_links(job.alltoall(1 * MIB), top=3)
        assert len(hottest) == 3
        assert hottest[0][1] >= hottest[1][1] >= hottest[2][1]


class TestImbExtendedOps:
    def test_reduce_scatter_and_allgather_dispatch(self, env):
        from repro.workloads.netbench import IMB_COLLECTIVES, imb_latency

        net, fabric = env
        job = Job(fabric, net.terminals[:8])
        sim = FlowSimulator(net, mode="static")
        assert "Reduce_scatter" in IMB_COLLECTIVES
        assert "Allgather" in IMB_COLLECTIVES
        t_rs = imb_latency(job, sim, "Reduce_scatter", 4096)
        t_ag = imb_latency(job, sim, "Allgather", 4096)
        assert t_rs > 0 and t_ag > 0
