"""Tests for ``repro lint`` and the JSON audit output of ``repro route``."""

import json

import pytest

from repro.cli import main


class TestLintCommand:
    @pytest.mark.parametrize("engine", ["minhop", "dfsssp", "parx"])
    def test_clean_hyperx_exits_zero(self, capsys, engine):
        rc = main(["lint", "hyperx", engine, "--scale", "2"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "0 error(s)" in out

    def test_clean_fattree_exits_zero(self, capsys):
        rc = main(["lint", "fattree", "ftree", "--scale", "2"])
        assert rc == 0
        assert "lint t2hx-fattree" in capsys.readouterr().out

    def test_sssp_credit_loop_exits_one_with_witness(self, capsys):
        rc = main(["lint", "hyperx", "sssp", "--scale", "2"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAB003" in out
        assert "channels" in out

    def test_json_format_carries_rule_codes(self, capsys):
        rc = main(["lint", "hyperx", "sssp", "--scale", "2",
                   "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["clean"] is False
        assert "FAB003" in payload["summary"]["rules_fired"]
        diag = payload["diagnostics"][0]
        assert diag["code"] == "FAB003"
        assert len(diag["witness"]["channels"]) >= 2

    def test_json_clean_fabric(self, capsys):
        rc = main(["lint", "hyperx", "dfsssp", "--scale", "2",
                   "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["clean"] is True
        assert payload["summary"]["errors"] == 0
        assert payload["stats"]["link_load"]["links"] > 0

    def test_explicit_shape_with_faults_stays_routable(self, capsys):
        rc = main(["lint", "hyperx:4x4", "dfsssp", "--faults", "2"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "FAB008" in out  # missing cables are reported as warnings

    def test_strict_turns_warnings_into_failure(self, capsys):
        rc = main(["lint", "hyperx:4x4", "dfsssp", "--faults", "2",
                   "--strict"])
        assert rc == 1

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "hyperx", "warp-drive"])


class TestRouteJsonFormat:
    def test_route_json_reuses_audit_serializer(self, capsys):
        rc = main(["route", "hyperx", "parx", "--scale", "2",
                   "--sample-pairs", "200", "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fabric"]["engine"] == "parx"
        assert payload["fabric"]["lmc"] == 2
        audit = payload["audit"]
        assert audit["clean"] is True
        assert audit["pairs_checked"] == 200
        assert audit["unreachable"] == 0
        assert audit["failures"] == []

    def test_route_text_format_unchanged(self, capsys):
        rc = main(["route", "hyperx", "dfsssp", "--scale", "2",
                   "--sample-pairs", "100"])
        assert rc == 0
        assert "unreachable/loops: 0/0" in capsys.readouterr().out
