"""Worker-count invariance suite for the shared-memory sweep pool.

The pool (:mod:`repro.core.parallel`) shards destination columns across
spawn workers; because no kernel lets one destination's result feed
another's, the shard boundaries can never change an output bit.  This
module pins that promise from four directions:

* whole-fabric bit-equality (tables, notes, lanes, LFT dump) at worker
  counts 1, 2, and 8 — cold sweeps, faulted fabrics, and incremental
  re-sweeps with identical :class:`RerouteReport` counters — for every
  engine that declares ``parallel_sweep_safe``;
* the frozen 672-node golden LFT digests reproduced *through the pool*;
* hypothesis-fuzzed equivalence of the sharded in-process tree op
  against one whole-block ``tree_core_batch`` call;
* the degraded paths: worker-count/column-floor gates, spawn failure,
  mid-job worker errors, and SIGKILLed workers must all land back on
  the serial path (or a respawned pool) with identical results.
"""

import hashlib
import os
import signal

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.load import estimate_link_loads
from repro.analysis.whatif import audit_whatif
from repro.core import parallel as par
from repro.core.parallel import (
    SweepPoolError,
    column_floor,
    get_column_floor,
    get_sweep_workers,
    parallel_stats,
    reset_parallel_stats,
    run_tree_job,
    set_sweep_workers,
    shutdown_sweep_pool,
    sweep_pool_pids,
    sweep_workers,
)
from repro.ib.subnet_manager import OpenSM, resweep
from repro.routing import create_engine, engine_names
from repro.routing.arrays import tree_core_batch
from repro.topology.hyperx import hyperx
from repro.topology.t2hx import t2hx_hyperx
from tests.test_batched_routing import GOLDEN_672, _assert_fabrics_equal

PARALLEL_ENGINES = [
    n for n in engine_names()
    if getattr(create_engine(n), "parallel_sweep_safe", False)
]


@pytest.fixture(autouse=True)
def _pool_hygiene():
    """Every test starts with fresh counters and ends with no pool."""
    reset_parallel_stats()
    yield
    shutdown_sweep_pool()


def _route(name, workers, *, scale=2, seed=1, floor=1):
    with sweep_workers(workers), column_floor(floor):
        net = t2hx_hyperx(with_faults=True, seed=seed, scale=scale)
        return OpenSM(net).run(create_engine(name))


class TestWorkerCountInvariance:
    def test_expected_engines_are_parallel_safe(self):
        assert {"minhop", "fthx", "fatpaths"} <= set(PARALLEL_ENGINES)

    @pytest.mark.parametrize("name", PARALLEL_ENGINES)
    def test_cold_sweep_identical_at_1_2_8(self, name):
        serial = _route(name, 1)
        assert parallel_stats()["parallel_sweeps"] == 0
        for workers in (2, 8):
            reset_parallel_stats()
            fab = _route(name, workers)
            assert parallel_stats()["parallel_sweeps"] >= 1, workers
            _assert_fabrics_equal(serial, fab)

    @pytest.mark.parametrize("name", PARALLEL_ENGINES)
    def test_resweep_after_fault_identical(self, name):
        reports, fabrics = [], []
        for workers in (1, 2):
            with sweep_workers(workers), column_floor(1):
                net = t2hx_hyperx(with_faults=True, seed=1, scale=2)
                fab = OpenSM(net).run(create_engine(name))
                cable = next(
                    l for l in net.iter_links()
                    if net.is_switch(l.src) and net.is_switch(l.dst)
                )
                net.disable_cable(cable.id)
                reset_parallel_stats()
                reports.append(resweep(fab, create_engine(name)))
                fabrics.append(fab)
                if workers > 1:
                    # The incremental recompute itself must have sharded
                    # (the floor is 1), not just the cold sweep before it.
                    assert parallel_stats()["parallel_sweeps"] >= 1
        _assert_fabrics_equal(*fabrics)
        ra, rb = reports
        for field in (
            "dests_affected", "entries_changed", "pairs_affected",
            "paths_changed", "num_unreachable", "dests_recomputed",
        ):
            assert getattr(ra, field) == getattr(rb, field), field

    @pytest.mark.parametrize("name", sorted(GOLDEN_672))
    def test_golden_672_digests_through_the_pool(self, name):
        fab = _route(name, 2, scale=1)
        digest = hashlib.sha256(fab.dump_lft().encode()).hexdigest()
        want_digest, want_vls = GOLDEN_672[name]
        assert digest == want_digest
        assert fab.num_vls == want_vls


class TestAnalysisInvariance:
    """Chunked consumers: loads, path walks, what-if scan."""

    @pytest.fixture(scope="class")
    def fthx_fabric(self):
        net = t2hx_hyperx(with_faults=True, seed=1, scale=2)
        return OpenSM(net).run(create_engine("fthx"))

    def test_link_loads(self, fthx_fabric):
        serial = estimate_link_loads(fthx_fabric)
        with sweep_workers(2), column_floor(1):
            assert estimate_link_loads(fthx_fabric) == serial
        assert parallel_stats()["parallel_loads"] >= 1

    def test_resolve_paths(self, fthx_fabric):
        serial = fthx_fabric.resolve_paths()
        with sweep_workers(2), column_floor(1):
            parallel = fthx_fabric.resolve_paths()
        assert parallel_stats()["parallel_walks"] >= 1
        for f in serial.__dataclass_fields__:
            a, b = getattr(serial, f), getattr(parallel, f)
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b), f
            else:
                assert a == b, f

    def test_whatif_report(self, fthx_fabric):
        serial = audit_whatif(fthx_fabric, k2_samples=4, seed=9).to_dict()
        with sweep_workers(2), column_floor(1):
            parallel = audit_whatif(
                fthx_fabric, k2_samples=4, seed=9
            ).to_dict()
        assert parallel_stats()["parallel_scans"] >= 1
        serial["summary"]["elapsed_seconds"] = 0
        parallel["summary"]["elapsed_seconds"] = 0
        assert serial == parallel


class TestSerialFallback:
    def test_workers_one_never_spawns_a_pool(self):
        _route("minhop", 1)
        stats = parallel_stats()
        assert stats["pool_spawns"] == 0
        assert stats["parallel_sweeps"] == 0
        assert sweep_pool_pids() == []

    def test_column_floor_gates_small_fabrics(self):
        serial = _route("minhop", 1)
        fab = _route("minhop", 2, floor=10**6)
        assert parallel_stats()["pool_spawns"] == 0
        _assert_fabrics_equal(serial, fab)

    def test_spawn_failure_latches_and_falls_back(self, monkeypatch):
        serial = _route("minhop", 1)

        class _Broken:
            def __init__(self, workers):
                raise RuntimeError("no processes for you")

        monkeypatch.setattr(par, "_SweepPool", _Broken)
        with sweep_workers(2), column_floor(1):
            net = t2hx_hyperx(with_faults=True, seed=1, scale=2)
            fab = OpenSM(net).run(create_engine("minhop"))
            # The latch holds for the rest of the scope: one failed
            # spawn, then straight to serial without retrying.
            assert par._spawn_broken
        _assert_fabrics_equal(serial, fab)
        stats = parallel_stats()
        assert stats["serial_fallbacks"] >= 1
        assert stats["parallel_sweeps"] == 0
        # Reconfiguring the worker count cleared the latch.
        assert not par._spawn_broken

    def test_mid_job_error_falls_back_and_tears_down(self, monkeypatch):
        serial = _route("minhop", 1)

        def exploding_collect(self, count):
            raise SweepPoolError("worker task failed")

        monkeypatch.setattr(par._SweepPool, "collect", exploding_collect)
        fab = _route("minhop", 2)
        _assert_fabrics_equal(serial, fab)
        assert parallel_stats()["serial_fallbacks"] >= 1
        assert sweep_pool_pids() == []  # failed pool was torn down


class TestPoolLifecycle:
    def test_pool_persists_across_jobs(self):
        with sweep_workers(2), column_floor(1):
            net = t2hx_hyperx(with_faults=True, seed=1, scale=2)
            OpenSM(net).run(create_engine("minhop"))
            first = sweep_pool_pids()
            assert len(first) == 2
            OpenSM(net).run(create_engine("minhop"))
            assert sweep_pool_pids() == first
        assert parallel_stats()["pool_spawns"] == 1

    def test_killed_workers_are_respawned(self):
        serial = _route("minhop", 1)
        with sweep_workers(2), column_floor(1):
            net = t2hx_hyperx(with_faults=True, seed=1, scale=2)
            OpenSM(net).run(create_engine("minhop"))
            first = sweep_pool_pids()
            assert first
            for pid in first:
                os.kill(pid, signal.SIGKILL)
            for proc in par._pool.procs:
                proc.join(timeout=10.0)
                assert not proc.is_alive(), "worker did not die"
            # The next job notices the dead pool, respawns, and still
            # produces the serial bits.
            fab = OpenSM(net).run(create_engine("minhop"))
            _assert_fabrics_equal(serial, fab)
            assert sweep_pool_pids()
            assert set(sweep_pool_pids()) != set(first)
        assert parallel_stats()["pool_spawns"] == 2

    def test_shutdown_is_idempotent(self):
        shutdown_sweep_pool()
        shutdown_sweep_pool()
        assert sweep_pool_pids() == []

    def test_run_tree_job_declines_without_workers(self):
        job = par.TreeJob(
            num_switches=4, num_links=8,
            roots=np.zeros(4, dtype=np.int64),
            dest_switches=[0, 1, 2, 3],
            weights={"kind": "unit", "num_links": 8},
            shards=[], block_cols=4,
        )
        with sweep_workers(1):
            assert run_tree_job(job) is None
        with sweep_workers(2), column_floor(10**6):
            assert run_tree_job(job) is None


class TestKnobs:
    def test_set_sweep_workers_returns_previous_and_clamps(self):
        base = get_sweep_workers()
        prev = set_sweep_workers(3)
        assert prev == base
        assert get_sweep_workers() == 3
        set_sweep_workers(-5)
        assert get_sweep_workers() == 1
        set_sweep_workers(base)

    def test_sweep_workers_context_restores_on_error(self):
        base = get_sweep_workers()
        with pytest.raises(ValueError):
            with sweep_workers(7):
                assert get_sweep_workers() == 7
                raise ValueError("boom")
        assert get_sweep_workers() == base

    def test_column_floor_context(self):
        base = get_column_floor()
        with column_floor(3):
            assert get_column_floor() == 3
            with column_floor(1):
                assert get_column_floor() == 1
            assert get_column_floor() == 3
        assert get_column_floor() == base

    def test_stats_reset(self):
        par._stats["parallel_sweeps"] = 5
        reset_parallel_stats()
        assert all(v == 0 for v in parallel_stats().values())


class TestShardedTreeOp:
    """The worker op, in-process, against one whole-block kernel call."""

    def test_shard_ranges_partition(self):
        for total in (0, 1, 5, 128, 1000):
            for parts in (1, 2, 7, 64):
                ranges = par._shard_ranges(total, parts)
                assert len(ranges) <= parts
                flat = [i for lo, hi in ranges for i in range(lo, hi)]
                assert flat == list(range(total))
                assert all(hi > lo for lo, hi in ranges)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_op_tree_matches_whole_block(self, data):
        net = hyperx((3, 3), 1)
        graph = net.switch_graph()
        k = graph.num_switches
        num_links = len(net.links)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        weights = rng.uniform(0.1, 4.0, size=num_links)
        roots = np.arange(k, dtype=np.int64)

        expect, _ = tree_core_batch(graph, roots, weights)

        parts = data.draw(st.integers(1, 5))
        block = data.draw(st.integers(1, k))
        out = np.full((k, k), -7, dtype=np.int32)
        for lo, hi in par._shard_ranges(k, parts):
            par._op_tree({
                "graph": {
                    "num_switches": k,
                    "in_ptr": graph.in_ptr,
                    "in_src": graph.in_src,
                    "in_link": graph.in_link,
                },
                "out": out,
                "cols": np.arange(lo, hi, dtype=np.int64),
                "roots": roots[lo:hi],
                "weights": {"kind": "array", "data": weights},
                "block_cols": block,
            }, [])
        assert np.array_equal(out, expect)

    def test_maybe_attach_passes_raw_arrays_through(self):
        arr = np.arange(4)
        assert par._maybe_attach(arr, []) is arr
        assert par._maybe_attach({"no": "desc"}, []) == {"no": "desc"}
