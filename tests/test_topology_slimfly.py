"""Unit tests for the Slim Fly (MMS) topology."""

import pytest

from repro.core.errors import TopologyError
from repro.topology.properties import diameter
from repro.topology.slimfly import slimfly, slimfly_generator_sets


class TestGeneratorSets:
    def test_partition_nonzero_elements(self):
        """X and X' partition GF(q) \\ {0} for q = 4k + 1."""
        for q in (5, 13, 17):
            x, xp = slimfly_generator_sets(q)
            assert not x & xp
            assert x | xp == set(range(1, q))
            assert len(x) == len(xp) == (q - 1) // 2

    def test_x_is_symmetric_for_4k_plus_1(self):
        """For q = 4k+1, -1 is a quadratic residue, so X = -X — the
        property that makes intra-family adjacency well defined."""
        for q in (5, 13):
            x, xp = slimfly_generator_sets(q)
            assert {(-v) % q for v in x} == x
            assert {(-v) % q for v in xp} == xp

    def test_rejects_non_prime(self):
        with pytest.raises(TopologyError):
            slimfly_generator_sets(9)

    def test_rejects_wrong_residue_class(self):
        with pytest.raises(TopologyError):
            slimfly_generator_sets(7)  # 7 = 4k + 3


class TestConstruction:
    @pytest.mark.parametrize("q", [5, 13])
    def test_mms_counts(self, q):
        net = slimfly(q, terminals_per_switch=1)
        assert net.num_switches == 2 * q * q
        # Network radix is exactly (3q - 1) / 2 for every switch.
        radix = (3 * q - 1) // 2
        for sw in net.switches:
            deg = sum(1 for l in net.out_links(sw) if net.is_switch(l.dst))
            assert deg == radix

    @pytest.mark.parametrize("q", [5, 13])
    def test_diameter_two(self, q):
        assert diameter(slimfly(q, terminals_per_switch=1)) == 2

    def test_default_terminal_load(self):
        net = slimfly(5)
        # Balanced default: ceil(radix / 2) = ceil(7 / 2) = 4 per switch.
        assert net.num_terminals == 50 * 4

    def test_inter_family_is_a_line_incidence(self):
        """(0,x,y) ~ (1,m,c) iff y = mx + c: each family-0 switch has
        exactly q inter-family neighbours (one per slope m)."""
        q = 5
        net = slimfly(q, terminals_per_switch=0)
        fam0 = [sw for sw in net.switches if net.node_meta(sw)["family"] == 0]
        for sw in fam0:
            inter = [
                l for l in net.out_links(sw)
                if net.is_switch(l.dst) and l.meta.get("scope") == "inter"
            ]
            assert len(inter) == q

    def test_routable(self):
        from repro.ib.subnet_manager import OpenSM
        from repro.routing import DfssspRouting, audit_fabric

        net = slimfly(5, terminals_per_switch=2)
        fabric = OpenSM(net).run(DfssspRouting())
        audit = audit_fabric(fabric, sample_pairs=400)
        assert audit.clean
        assert audit.non_minimal_pairs == 0
