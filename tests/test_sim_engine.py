"""Unit tests for the flow simulator engine."""

import pytest

from repro.core.units import GIB, MIB, QDR_LINK_BANDWIDTH
from repro.ib.subnet_manager import OpenSM
from repro.routing.dfsssp import DfssspRouting
from repro.sim.engine import FlowSimulator
from repro.sim.flows import Message, Phase, Program, merge_concurrent, program_bytes
from repro.sim.latency import QDR_LATENCY
from repro.topology.hyperx import hyperx


@pytest.fixture(scope="module")
def plane():
    net = hyperx((4, 4), 2)
    fabric = OpenSM(net).run(DfssspRouting())
    return net, fabric


def _msg(net, fabric, a, b, size):
    return Message(a, b, size, tuple(fabric.path(a, b)))


class TestSingleMessage:
    def test_serialisation_dominates_large(self, plane):
        net, fabric = plane
        a, b = net.terminals[0], net.terminals[-1]
        sim = FlowSimulator(net)
        r = sim.run_phase(Phase([_msg(net, fabric, a, b, 1 * GIB)]))
        expected = 1 * GIB / QDR_LINK_BANDWIDTH
        assert r.duration == pytest.approx(expected, rel=0.01)

    def test_latency_dominates_small(self, plane):
        net, fabric = plane
        a, b = net.terminals[0], net.terminals[-1]
        sim = FlowSimulator(net)
        r = sim.run_phase(Phase([_msg(net, fabric, a, b, 8)]))
        hops = net.path_hops(fabric.path(a, b))
        floor = QDR_LATENCY.constant_time(hops)
        assert floor < r.duration < floor * 1.5

    def test_zero_byte_is_pure_latency(self, plane):
        net, fabric = plane
        a, b = net.terminals[0], net.terminals[1]
        sim = FlowSimulator(net)
        r = sim.run_phase(Phase([_msg(net, fabric, a, b, 0)]))
        hops = net.path_hops(fabric.path(a, b))
        assert r.duration == pytest.approx(QDR_LATENCY.constant_time(hops))

    def test_overhead_added(self, plane):
        net, fabric = plane
        a, b = net.terminals[0], net.terminals[1]
        sim = FlowSimulator(net)
        m = _msg(net, fabric, a, b, 0)
        base = sim.run_phase(Phase([m])).duration
        m2 = Message(a, b, 0, m.path, overhead=5e-6)
        assert sim.run_phase(Phase([m2])).duration == pytest.approx(base + 5e-6)


class TestSharing:
    def test_two_flows_one_cable_halve(self, plane):
        net, fabric = plane
        s0 = net.attached_terminals(net.switches[0])
        s1 = net.attached_terminals(net.switches[1])
        sim = FlowSimulator(net)
        solo = sim.run_phase(
            Phase([_msg(net, fabric, s0[0], s1[0], 64 * MIB)])
        ).duration
        both = sim.run_phase(
            Phase([
                _msg(net, fabric, s0[0], s1[0], 64 * MIB),
                _msg(net, fabric, s0[1], s1[1], 64 * MIB),
            ])
        ).duration
        assert both == pytest.approx(2 * solo, rel=0.02)

    def test_dynamic_faster_or_equal_to_static(self, plane):
        """Static mode never re-allocates freed bandwidth, so it is a
        conservative bound on the dynamic result."""
        net, fabric = plane
        s0 = net.attached_terminals(net.switches[0])
        s1 = net.attached_terminals(net.switches[1])
        phase = Phase([
            _msg(net, fabric, s0[0], s1[0], 64 * MIB),
            _msg(net, fabric, s0[1], s1[1], 16 * MIB),
        ])
        dyn = FlowSimulator(net, mode="dynamic").run_phase(phase).duration
        sta = FlowSimulator(net, mode="static").run_phase(phase).duration
        assert dyn <= sta * (1 + 1e-9)

    def test_dynamic_reallocates_freed_bandwidth(self, plane):
        net, fabric = plane
        s0 = net.attached_terminals(net.switches[0])
        s1 = net.attached_terminals(net.switches[1])
        phase = Phase([
            _msg(net, fabric, s0[0], s1[0], 64 * MIB),
            _msg(net, fabric, s0[1], s1[1], 16 * MIB),
        ])
        sim = FlowSimulator(net, mode="dynamic")
        r = sim.run_phase(phase, collect_messages=True)
        big, small = r.message_times
        # Small flow finishes at half rate, then big accelerates:
        # 16M at 1.7G/s ~ 9.4ms; big: 16M at 1.7 + 48M at 3.4 ~ 23.5ms.
        assert small < big
        solo_big = 64 * MIB / QDR_LINK_BANDWIDTH
        assert big < solo_big * 1.5  # much better than 2x (static)


class TestPrograms:
    def test_phases_serialize(self, plane):
        net, fabric = plane
        a, b = net.terminals[0], net.terminals[-1]
        m = _msg(net, fabric, a, b, 4 * MIB)
        one = FlowSimulator(net).run(Program([Phase([m])])).total_time
        two = FlowSimulator(net).run(
            Program([Phase([m]), Phase([m])])
        ).total_time
        assert two == pytest.approx(2 * one, rel=1e-6)

    def test_compute_gap_added(self, plane):
        net, fabric = plane
        a, b = net.terminals[0], net.terminals[-1]
        m = _msg(net, fabric, a, b, 0)
        prog = Program([Phase([m]), Phase([m])], compute_between_phases=0.1)
        t = FlowSimulator(net).run(prog).total_time
        assert t == pytest.approx(0.1 + 2 * QDR_LATENCY.constant_time(2), rel=0.2)

    def test_program_bytes(self, plane):
        net, fabric = plane
        a, b = net.terminals[0], net.terminals[-1]
        prog = Program([
            Phase([_msg(net, fabric, a, b, 100)]),
            Phase([_msg(net, fabric, b, a, 50)]),
        ])
        assert program_bytes(prog) == 150

    def test_merge_concurrent(self, plane):
        net, fabric = plane
        a, b, c, d = net.terminals[:4]
        p1 = Program([Phase([_msg(net, fabric, a, b, 10)])])
        p2 = Program([
            Phase([_msg(net, fabric, c, d, 20)]),
            Phase([_msg(net, fabric, d, c, 30)]),
        ])
        merged = merge_concurrent([p1, p2])
        assert len(merged) == 2
        assert len(merged.phases[0]) == 2
        assert len(merged.phases[1]) == 1

    def test_empty_phase(self, plane):
        net, _ = plane
        r = FlowSimulator(net).run_phase(Phase([]))
        assert r.duration == 0.0

    def test_pair_bandwidths(self, plane):
        net, fabric = plane
        a, b = net.terminals[0], net.terminals[-1]
        sim = FlowSimulator(net)
        [(m, bw)] = sim.pair_bandwidths(Phase([_msg(net, fabric, a, b, 16 * MIB)]))
        assert 0.8 * QDR_LINK_BANDWIDTH < bw <= QDR_LINK_BANDWIDTH


class TestEventSafetyValve:
    """The dynamic solver's event cap must be *visible*, not silent.

    When ``_MAX_EVENTS_PER_PHASE`` rate recomputations are exhausted,
    stragglers finish at their current rates — an approximation the
    caller must be able to detect via ``events_truncated``.
    """

    def _uneven_phase(self, net, fabric):
        # Two different-size flows on one cable: the small one completes
        # first (event 1), the big one needs a second event.
        s0 = net.attached_terminals(net.switches[0])
        s1 = net.attached_terminals(net.switches[1])
        return Phase([
            _msg(net, fabric, s0[0], s1[0], 64 * MIB),
            _msg(net, fabric, s0[1], s1[1], 16 * MIB),
        ])

    def test_untruncated_run_reports_zero(self, plane):
        net, fabric = plane
        sim = FlowSimulator(net, mode="dynamic")
        pr = sim.run_phase(self._uneven_phase(net, fabric))
        assert pr.events_truncated == 0
        assert sim.run(
            Program([self._uneven_phase(net, fabric)])
        ).events_truncated == 0

    def test_valve_trip_counts_stragglers(self, plane, monkeypatch):
        net, fabric = plane
        monkeypatch.setattr("repro.sim.engine._MAX_EVENTS_PER_PHASE", 1)
        sim = FlowSimulator(net, mode="dynamic")
        pr = sim.run_phase(
            self._uneven_phase(net, fabric), collect_messages=True
        )
        # One event retires the 16 MiB flow; the 64 MiB flow is cut off
        # and finished at its current rate.
        assert pr.events_truncated == 1
        big, small = pr.message_times
        assert 0 < small < big and pr.duration >= big

    def test_simresult_sums_phase_truncations(self, plane, monkeypatch):
        net, fabric = plane
        monkeypatch.setattr("repro.sim.engine._MAX_EVENTS_PER_PHASE", 1)
        sim = FlowSimulator(net, mode="dynamic")
        prog = Program([
            self._uneven_phase(net, fabric),
            self._uneven_phase(net, fabric),
        ])
        result = sim.run(prog)
        assert [p.events_truncated for p in result.phases] == [1, 1]
        assert result.events_truncated == 2
