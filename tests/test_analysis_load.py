"""The static link-load estimator: dense kernel == reference walk.

:func:`~repro.analysis.load.estimate_link_loads` has two
implementations — the frontier-wave numpy kernel over the dense matrix
(shared with the what-if verifier via
:func:`repro.routing.arrays.accumulate_column_loads`) and the per-entry
reference Kahn walk.  They must agree to the integer on every fabric,
including degraded ones with stale entries over dead cables.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.load import (
    _estimate_link_loads_dense,
    _estimate_link_loads_reference,
    estimate_link_loads,
    load_summary,
)
from repro.core.rng import make_rng
from repro.ib.subnet_manager import OpenSM
from repro.routing import DfssspRouting, MinHopRouting
from repro.topology.hyperx import hyperx
from repro.topology.t2hx import t2hx_hyperx


def _small_fabric(dims, terminals, engine_cls):
    net = hyperx(dims, terminals)
    return net, OpenSM(net).run(engine_cls())


class TestDenseMatchesReference:
    @settings(max_examples=20, deadline=None)
    @given(
        a=st.integers(2, 3),
        b=st.integers(2, 3),
        terminals=st.integers(1, 3),
        engine_cls=st.sampled_from([MinHopRouting, DfssspRouting]),
    )
    def test_agrees_on_random_small_fabrics(self, a, b, terminals, engine_cls):
        net, fabric = _small_fabric((a, b), terminals, engine_cls)
        dlids = fabric.lidmap.terminal_lids(net)
        dense = _estimate_link_loads_dense(fabric, dlids)
        reference = _estimate_link_loads_reference(fabric, dlids)
        assert dense == reference

    @settings(max_examples=15, deadline=None)
    @given(
        terminals=st.integers(1, 2),
        kills=st.integers(1, 3),
        seed=st.integers(0, 1000),
    )
    def test_agrees_with_stale_entries_over_dead_cables(
        self, terminals, kills, seed
    ):
        """Disable cables *after* routing: both implementations must
        skip the dead hops identically (no re-sweep happens here)."""
        net, fabric = _small_fabric((3, 3), terminals, MinHopRouting)
        rng = make_rng(seed)
        cables = net.switch_cables()
        for idx in rng.choice(len(cables), size=kills, replace=False):
            net.disable_cable(cables[int(idx)].id)
        dlids = fabric.lidmap.terminal_lids(net)
        dense = _estimate_link_loads_dense(fabric, dlids)
        reference = _estimate_link_loads_reference(fabric, dlids)
        assert dense == reference

    def test_agrees_with_masked_entries(self):
        """Missing forwarding entries (black holes) drop identically."""
        net, fabric = _small_fabric((3, 2), 2, MinHopRouting)
        tables = fabric.tables
        dlids = fabric.lidmap.terminal_lids(net)
        # Knock out a couple of entries straight in the dense matrix.
        tables.dense[0, 0] = -1
        tables.dense[2, tables.dense.shape[1] - 1] = -1
        dense = _estimate_link_loads_dense(fabric, dlids)
        reference = _estimate_link_loads_reference(fabric, dlids)
        assert dense == reference


class TestPinnedGolden:
    def test_t2hx_scale2_dfsssp_summary(self):
        """Pinned against the first shipped implementation: any change
        to these integers is a routing or estimator regression."""
        net = t2hx_hyperx(scale=2)
        fabric = OpenSM(net).run(DfssspRouting())
        loads = estimate_link_loads(fabric)
        assert len(loads) == 192
        assert sum(loads.values()) == 44688
        summary = load_summary(fabric, loads)
        assert summary["mean"] == 232.75
        assert summary["max"] == 385
        assert summary["imbalance"] == 1.65
