"""Unit tests for the Network container."""

import pytest

from repro.core.errors import TopologyError
from repro.topology.network import Network


@pytest.fixture
def tiny():
    """Two switches, one terminal each, one inter-switch cable."""
    net = Network("tiny")
    s0, s1 = net.add_switch(), net.add_switch()
    t0, t1 = net.add_terminal(), net.add_terminal()
    net.add_link(t0, s0)
    net.add_link(t1, s1)
    net.add_link(s0, s1, dim=0)
    return net, s0, s1, t0, t1


class TestConstruction:
    def test_counts(self, tiny):
        net, *_ = tiny
        assert net.num_switches == 2
        assert net.num_terminals == 2
        assert net.num_nodes == 4
        assert len(net.links) == 6  # 3 cables, both directions

    def test_add_link_returns_both_directions(self, tiny):
        net, s0, s1, *_ = tiny
        fwd, rev = net.add_link(s0, s1)
        assert net.link(fwd).reverse_id == rev
        assert net.link(rev).reverse_id == fwd
        assert (net.link(fwd).src, net.link(fwd).dst) == (s0, s1)

    def test_meta_carried_on_both_directions(self, tiny):
        net, s0, s1, *_ = tiny
        links = net.links_between(s0, s1)
        assert all(l.meta == {"dim": 0} for l in links)
        rev = net.links_between(s1, s0)
        assert all(l.meta == {"dim": 0} for l in rev)

    def test_self_loop_rejected(self, tiny):
        net, s0, *_ = tiny
        with pytest.raises(TopologyError):
            net.add_link(s0, s0)

    def test_terminal_terminal_rejected(self, tiny):
        net, _, _, t0, t1 = tiny
        with pytest.raises(TopologyError):
            net.add_link(t0, t1)

    def test_terminal_single_homed(self, tiny):
        net, s0, _, t0, _ = tiny
        with pytest.raises(TopologyError):
            net.add_link(t0, s0)

    def test_unknown_node_rejected(self, tiny):
        net, s0, *_ = tiny
        with pytest.raises(TopologyError):
            net.add_link(s0, 999)


class TestQueries:
    def test_kinds(self, tiny):
        net, s0, _, t0, _ = tiny
        assert net.is_switch(s0) and not net.is_terminal(s0)
        assert net.is_terminal(t0) and not net.is_switch(t0)

    def test_attachment(self, tiny):
        net, s0, s1, t0, t1 = tiny
        assert net.attached_switch(t0) == s0
        assert net.attached_terminals(s1) == [t1]
        assert net.terminal_uplink(t0).dst == s0

    def test_neighbors(self, tiny):
        net, s0, s1, t0, _ = tiny
        assert set(net.neighbors(s0)) == {t0, s1}

    def test_links_between_direction(self, tiny):
        net, s0, s1, *_ = tiny
        assert all(l.dst == s1 for l in net.links_between(s0, s1))
        assert net.links_between(s0, s0) == []

    def test_attached_switch_requires_terminal(self, tiny):
        net, s0, *_ = tiny
        with pytest.raises(TopologyError):
            net.attached_switch(s0)


class TestFaults:
    def test_disable_cable_kills_both_directions(self, tiny):
        net, s0, s1, *_ = tiny
        link = net.links_between(s0, s1)[0]
        net.disable_cable(link.id)
        assert net.links_between(s0, s1) == []
        assert net.links_between(s1, s0) == []

    def test_enable_cable_restores(self, tiny):
        net, s0, s1, *_ = tiny
        link = net.links_between(s0, s1)[0]
        net.disable_cable(link.id)
        net.enable_cable(link.id)
        assert len(net.links_between(s0, s1)) == 1

    def test_switch_cables_excludes_terminal_and_disabled(self, tiny):
        net, s0, s1, *_ = tiny
        cables = net.switch_cables()
        assert len(cables) == 1
        net.disable_cable(cables[0].id)
        assert net.switch_cables() == []

    def test_degree_counts_enabled_only(self, tiny):
        net, s0, s1, *_ = tiny
        before = net.degree(s0)
        net.disable_cable(net.links_between(s0, s1)[0].id)
        assert net.degree(s0) == before - 1


class TestPaths:
    def test_path_nodes(self, tiny):
        net, s0, s1, t0, t1 = tiny
        path = [
            net.terminal_uplink(t0).id,
            net.links_between(s0, s1)[0].id,
            net.terminal_uplink(t1).reverse_id,
        ]
        assert net.path_nodes(path) == [t0, s0, s1, t1]
        assert net.path_hops(path) == 1

    def test_discontinuous_path_rejected(self, tiny):
        net, s0, s1, t0, t1 = tiny
        bad = [net.terminal_uplink(t0).id, net.terminal_uplink(t1).id]
        with pytest.raises(TopologyError):
            net.path_nodes(bad)


class TestValidate:
    def test_valid_network_passes(self, tiny):
        net, *_ = tiny
        net.validate()

    def test_detached_terminal_fails(self):
        net = Network()
        net.add_switch()
        net.add_terminal()
        with pytest.raises(TopologyError):
            net.validate()

    def test_disabled_uplink_fails_validation(self, tiny):
        net, _, _, t0, _ = tiny
        net.disable_cable(net.terminal_uplink(t0).id)
        with pytest.raises(TopologyError):
            net.validate()


class TestExport:
    def test_to_networkx_counts(self, tiny):
        net, *_ = tiny
        g = net.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 6

    def test_switches_only(self, tiny):
        net, *_ = tiny
        g = net.to_networkx(switches_only=True)
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 2
