"""Adversarial and clean-matrix tests for the fabric linter.

The acceptance bar: every shipped engine x topology pair lints with
zero errors, and each deliberately seeded defect — black hole, spliced
forwarding loop, merged virtual lanes (credit loop), duplicate LID — is
caught by exactly its rule code with a reproducible witness.
"""

import pytest

from repro.analysis import (
    CORE_RULES,
    Severity,
    assert_fabric_clean,
    estimate_link_loads,
    lint_fabric,
)
from repro.core.errors import FabricLintError
from repro.ib.subnet_manager import OpenSM
from repro.routing import (
    DfssspRouting,
    FtreeRouting,
    LashRouting,
    MinHopRouting,
    NueRouting,
    ParxRouting,
    SsspRouting,
    UpDownRouting,
    ValiantRouting,
)
from repro.topology import hyperx, t2hx_fattree, t2hx_hyperx

#: The seeded-defect rule codes the adversarial matrix targets.
SEEDED = ("FAB001", "FAB002", "FAB003", "FAB004")


def _hyperx_fabric(engine=None, **sm_kwargs):
    net = t2hx_hyperx(scale=2)
    fabric = OpenSM(net, **sm_kwargs).run(engine or DfssspRouting())
    return net, fabric


HYPERX_ENGINES = [
    MinHopRouting, UpDownRouting, DfssspRouting, LashRouting,
    NueRouting, ValiantRouting,
]
FATTREE_ENGINES = [
    FtreeRouting, MinHopRouting, UpDownRouting, SsspRouting, DfssspRouting,
]


class TestCleanMatrix:
    """Zero false positives on every clean engine x topology pair."""

    @pytest.mark.parametrize("cls", HYPERX_ENGINES, ids=lambda c: c.name)
    def test_hyperx_engines_lint_clean(self, cls):
        _, fabric = _hyperx_fabric(cls())
        report = lint_fabric(fabric)
        assert report.clean, report.render_text()
        assert not (report.codes() & set(SEEDED))

    def test_parx_lints_clean(self):
        _, fabric = _hyperx_fabric(ParxRouting(), lmc=2, lid_policy="quadrant")
        report = lint_fabric(fabric)
        assert report.clean, report.render_text()
        assert not (report.codes() & set(SEEDED))

    @pytest.mark.parametrize("cls", FATTREE_ENGINES, ids=lambda c: c.name)
    def test_fattree_engines_lint_clean(self, cls):
        net = t2hx_fattree(scale=2)
        fabric = OpenSM(net).run(cls())
        report = lint_fabric(fabric)
        assert report.clean, report.render_text()
        assert not (report.codes() & set(SEEDED))

    def test_faulty_hyperx_rerouted_lints_clean(self):
        """Routing around injected faults must satisfy criterion (4)."""
        net = t2hx_hyperx(scale=2, with_faults=True)
        fabric = OpenSM(net).run(DfssspRouting())
        report = lint_fabric(fabric)
        assert report.clean, report.render_text()
        # The missing cables do show up as regularity warnings.
        assert report.by_code("FAB008")

    def test_sssp_on_hyperx_is_the_papers_credit_loop(self):
        """The paper's initial SSSP tests hit exactly this defect."""
        _, fabric = _hyperx_fabric(SsspRouting())
        report = lint_fabric(fabric)
        loops = report.by_code("FAB003")
        assert loops, "plain SSSP on a HyperX must certify a credit loop"
        channels = loops[0].witness["channels"]
        assert len(channels) >= 2


class TestSeededBlackHole:
    def test_deleted_entry_fires_fab001_only(self):
        net, fabric = _hyperx_fabric()
        dlid = fabric.lidmap.terminal_lids(net)[0]
        dsw = net.attached_switch(fabric.lidmap.node_of(dlid))
        victim = next(sw for sw in net.switches if sw != dsw)
        del fabric.tables[victim][dlid]

        report = lint_fabric(fabric)
        assert report.codes() & set(SEEDED) == {"FAB001"}
        diag = report.by_code("FAB001")[0]
        assert diag.severity is Severity.ERROR
        assert diag.lid == dlid
        assert diag.switch == victim
        w = diag.witness
        assert w["reason"] == "no forwarding entry"
        assert w["affected_pairs"] > 0
        assert w["walk"][-1] == victim  # the walk dies at the victim

    def test_disabled_link_entry_fires_fab001(self):
        net, fabric = _hyperx_fabric()
        dlid = fabric.lidmap.terminal_lids(net)[0]
        dsw = net.attached_switch(fabric.lidmap.node_of(dlid))
        victim = next(sw for sw in net.switches if sw != dsw)
        net.disable_cable(fabric.tables[victim][dlid])

        report = lint_fabric(fabric, rules={"FAB001", "FAB002"})
        diags = report.by_code("FAB001")
        assert any(d.switch == victim and "disabled link" in d.witness["reason"]
                   for d in diags)

    def test_blackhole_count_in_stats(self):
        net, fabric = _hyperx_fabric()
        dlid = fabric.lidmap.terminal_lids(net)[0]
        dsw = net.attached_switch(fabric.lidmap.node_of(dlid))
        victim = next(sw for sw in net.switches if sw != dsw)
        del fabric.tables[victim][dlid]
        report = lint_fabric(fabric, rules={"FAB001"})
        assert report.stats["blackholed_pairs"] > 0
        assert report.stats["looped_pairs"] == 0


class TestStaleEntries:
    """FAB013: forwarding entries pointing at links disabled after
    routing — the static counterpart of the simulator's stale-path
    rejection."""

    def test_disabled_link_after_routing_fires_fab013(self):
        net, fabric = _hyperx_fabric()
        dlid = fabric.lidmap.terminal_lids(net)[0]
        dsw = net.attached_switch(fabric.lidmap.node_of(dlid))
        victim = next(sw for sw in net.switches if sw != dsw)
        dead = fabric.tables[victim][dlid]
        net.disable_cable(dead)

        report = lint_fabric(fabric, rules={"FAB013"})
        diags = report.by_code("FAB013")
        assert diags and diags[0].severity is Severity.ERROR
        # Every witness names the dead cable (either direction); the
        # per-rule cap may suppress some entries but counts stay exact.
        cable_ids = {dead, net.link(dead).reverse_id}
        assert all(d.witness["link"] in cable_ids for d in diags)
        assert all("re-sweep" in d.message for d in diags)

    def test_fab013_is_part_of_the_core_preflight(self):
        assert "FAB013" in CORE_RULES

    def test_resweep_clears_fab013(self):
        from repro.ib.subnet_manager import resweep

        net, fabric = _hyperx_fabric()
        dlid = fabric.lidmap.terminal_lids(net)[0]
        dsw = net.attached_switch(fabric.lidmap.node_of(dlid))
        victim = next(sw for sw in net.switches if sw != dsw)
        net.disable_cable(fabric.tables[victim][dlid])
        assert lint_fabric(fabric, rules={"FAB013"}).by_code("FAB013")
        resweep(fabric, DfssspRouting())
        report = lint_fabric(fabric)
        assert not report.by_code("FAB013")
        assert report.clean, report.render_text()


class TestSeededForwardingLoop:
    def _splice(self, net, fabric):
        dlid = fabric.lidmap.terminal_lids(net)[0]
        dsw = net.attached_switch(fabric.lidmap.node_of(dlid))
        a = next(sw for sw in net.switches if sw != dsw)
        b = net.link(fabric.tables[a][dlid]).dst
        back = next(link.id for link in net.out_links(b) if link.dst == a)
        fabric.tables[b][dlid] = back
        return dlid, a, b

    def test_spliced_loop_fires_fab002(self):
        net, fabric = _hyperx_fabric()
        dlid, a, b = self._splice(net, fabric)

        report = lint_fabric(fabric)
        assert "FAB002" in report.codes()
        # A two-switch forwarding loop is also a genuine channel
        # dependency cycle, so FAB003 legitimately co-fires; the other
        # seeded-defect codes must stay silent.
        assert "FAB001" not in report.codes()
        assert "FAB004" not in report.codes()
        diag = report.by_code("FAB002")[0]
        assert diag.lid == dlid
        assert sorted(diag.witness["cycle"]) == sorted([a, b])
        assert len(diag.witness["links"]) == 2
        assert diag.witness["affected_pairs"] > 0

    def test_loop_witness_reproduces(self):
        """Walking the witnessed cycle links re-creates the loop."""
        net, fabric = _hyperx_fabric()
        dlid, _, _ = self._splice(net, fabric)
        report = lint_fabric(fabric, rules={"FAB002"})
        w = report.by_code("FAB002")[0].witness
        cycle, links = w["cycle"], w["links"]
        for i, sw in enumerate(cycle):
            link = net.link(links[i])
            assert link.src == sw
            assert link.dst == cycle[(i + 1) % len(cycle)]


class TestSeededCreditLoop:
    def test_merged_vls_fire_fab003_only(self):
        net, fabric = _hyperx_fabric()
        assert fabric.num_vls > 1, "DFSSSP on a HyperX needs > 1 VL"
        fabric.vl_of_dlid = dict.fromkeys(fabric.vl_of_dlid, 0)
        fabric.num_vls = 1

        report = lint_fabric(fabric)
        assert report.codes() & set(SEEDED) == {"FAB003"}
        diag = report.by_code("FAB003")[0]
        assert diag.vl == 0
        channels = diag.witness["channels"]
        assert channels == [e["link"] for e in diag.witness["endpoints"]]
        # The witness is a closed chain of switch-to-switch channels.
        ends = diag.witness["endpoints"]
        for cur, nxt in zip(ends, ends[1:] + ends[:1]):
            assert cur["dst"] == nxt["src"]

    def test_lash_pair_granularity_respected(self):
        """LASH is deadlock-free per (src, dst) pair; the linter must
        certify at that granularity instead of crying wolf."""
        _, fabric = _hyperx_fabric(LashRouting())
        assert hasattr(fabric, "vl_of_pair")
        report = lint_fabric(fabric, rules={"FAB003"})
        assert report.clean, report.render_text()


class TestSeededLidDefects:
    def test_duplicate_lid_fires_fab004_only(self):
        net, fabric = _hyperx_fabric()
        t0, t1 = net.terminals[0], net.terminals[1]
        fabric.lidmap.base[t1] = fabric.lidmap.base[t0]

        report = lint_fabric(fabric, rules=CORE_RULES - {"FAB007"})
        assert report.codes() & set(SEEDED) == {"FAB004"}
        diag = report.by_code("FAB004")[0]
        assert set(diag.witness.get("nodes", [])) <= {t0, t1}

    def test_unassigned_lid_fires_fab005(self):
        net, fabric = _hyperx_fabric()
        victim = net.terminals[-1]
        del fabric.lidmap.base[victim]
        report = lint_fabric(fabric, rules={"FAB005"})
        assert [d.code for d in report.errors] == ["FAB005"]
        assert report.errors[0].witness["node"] == victim

    def test_out_of_range_lid_fires_fab006(self):
        net, fabric = _hyperx_fabric()
        fabric.lidmap.base[net.terminals[0]] = 0xBFFF + 10
        report = lint_fabric(fabric, rules={"FAB006"})
        assert report.by_code("FAB006")

    def test_vl_out_of_budget_fires_fab012(self):
        net, fabric = _hyperx_fabric()
        dlid = fabric.lidmap.terminal_lids(net)[0]
        fabric.vl_of_dlid[dlid] = fabric.num_vls + 3
        report = lint_fabric(fabric, rules={"FAB012"})
        diag = report.by_code("FAB012")[0]
        assert diag.lid == dlid
        assert diag.severity is Severity.ERROR


class TestTableAndTopologyHygiene:
    def test_foreign_link_entry_fires_fab007(self):
        net, fabric = _hyperx_fabric()
        dlid = fabric.lidmap.terminal_lids(net)[0]
        sw0, sw1 = net.switches[0], net.switches[1]
        foreign = net.out_links(sw1)[0].id
        fabric.tables[sw0][dlid] = foreign
        report = lint_fabric(fabric, rules={"FAB007"})
        assert report.by_code("FAB007")

    def test_detached_terminal_fires_fab010(self):
        net, fabric = _hyperx_fabric()
        uplink = net.terminal_uplink(net.terminals[0])
        net.disable_cable(uplink.id)
        report = lint_fabric(fabric, rules={"FAB010"})
        assert report.by_code("FAB010")

    def test_tree_level_skip_fires_fab009(self):
        net = t2hx_fattree(scale=2)
        fabric = OpenSM(net).run(FtreeRouting())
        line = next(sw for sw in net.switches
                    if net.node_meta(sw)["level"] == 1)
        net.node_meta(line)["level"] = 5
        report = lint_fabric(fabric, rules={"FAB009"})
        assert report.by_code("FAB009")

    def test_hyperx_miswired_link_is_error(self):
        net, fabric = _hyperx_fabric()
        link = net.switch_cables()[0]
        link.meta["dim"] = 1 - link.meta["dim"]
        report = lint_fabric(fabric, rules={"FAB008"})
        errors = [d for d in report.by_code("FAB008")
                  if d.severity is Severity.ERROR]
        assert errors

    def test_mass_corruption_is_capped_but_counted(self):
        net, fabric = _hyperx_fabric()
        dlids = fabric.lidmap.terminal_lids(net)
        dsw_of = {d: net.attached_switch(fabric.lidmap.node_of(d))
                  for d in dlids}
        for dlid in dlids:
            for sw in net.switches:
                if sw != dsw_of[dlid]:
                    fabric.tables[sw].pop(dlid, None)
        report = lint_fabric(fabric, rules={"FAB001"}, max_per_rule=5)
        assert len(report.by_code("FAB001")) == 5
        assert report.suppressed["FAB001"] > 0
        assert report.stats["blackholed_pairs"] > 100


class TestLoadEstimator:
    def test_exact_counts_on_a_two_switch_hyperx(self):
        net = hyperx((2,), 2)
        fabric = OpenSM(net).run(MinHopRouting())
        loads = estimate_link_loads(fabric)
        # 2 terminals per switch: each of the 2 remote (src, dlid)
        # source terminals targets 2 dlids across the single cable.
        cable_loads = sorted(loads.values())
        assert cable_loads == [4, 4]

    def test_total_traversals_match_resolved_paths(self):
        net, fabric = _hyperx_fabric(MinHopRouting())
        loads = estimate_link_loads(fabric)
        expected = 0
        for dlid in fabric.lidmap.terminal_lids(net):
            for _, path in fabric.iter_dest_paths(dlid):
                expected += net.path_hops(path)
        assert sum(loads.values()) == expected

    def test_updown_concentration_flags_hot_links(self):
        """Up*/Down* funnels HyperX traffic through its root — the
        exact static concentration FAB011 exists to flag."""
        _, fabric = _hyperx_fabric(UpDownRouting())
        report = lint_fabric(fabric, rules={"FAB011"})
        hot = report.by_code("FAB011")
        assert hot
        assert all(d.severity is Severity.WARNING for d in hot)
        assert hot[0].witness["ratio"] > 3.0
        assert report.stats["link_load"]["imbalance"] > 3.0

    def test_balanced_minimal_routing_has_no_hot_links(self):
        _, fabric = _hyperx_fabric(DfssspRouting())
        report = lint_fabric(fabric, rules={"FAB011"})
        assert not report.by_code("FAB011")


class TestPreflightGate:
    def test_assert_clean_passes_on_good_fabric(self):
        _, fabric = _hyperx_fabric()
        report = assert_fabric_clean(fabric)
        assert report.clean

    def test_assert_clean_raises_with_report(self):
        net, fabric = _hyperx_fabric()
        dlid = fabric.lidmap.terminal_lids(net)[0]
        dsw = net.attached_switch(fabric.lidmap.node_of(dlid))
        victim = next(sw for sw in net.switches if sw != dsw)
        del fabric.tables[victim][dlid]
        with pytest.raises(FabricLintError) as exc:
            assert_fabric_clean(fabric, context="unit-test")
        assert "FAB001" in str(exc.value)
        assert "unit-test" in str(exc.value)
        assert exc.value.report is not None
        assert exc.value.report.by_code("FAB001")

    def test_runner_preflight_catches_corrupted_cached_fabric(self):
        from repro.core.errors import FabricLintError as FLE
        from repro.experiments import RunSpec, build_fabric, run_capability
        from repro.experiments.configs import BASELINE, clear_fabric_cache
        from repro.workloads.proxyapps import PROXY_APPS

        clear_fabric_cache()
        try:
            fabric = build_fabric(BASELINE, scale=2, with_faults=True)
            net = fabric.net
            dlid = fabric.lidmap.terminal_lids(net)[0]
            dsw = net.attached_switch(fabric.lidmap.node_of(dlid))
            victim = next(sw for sw in net.switches
                          if sw != dsw and dlid in fabric.tables.get(sw, {}))
            del fabric.tables[victim][dlid]

            app = PROXY_APPS["CoMD"]
            spec = RunSpec(BASELINE.key, "CoMD", num_nodes=8, reps=1,
                           scale=2, seed=0, sim_mode="static")
            with pytest.raises(FLE):
                run_capability(
                    spec, lambda job, sim: app.kernel_runtime(job, sim)
                )
        finally:
            clear_fabric_cache()

    def test_unknown_rule_code_rejected(self):
        _, fabric = _hyperx_fabric()
        with pytest.raises(ValueError):
            lint_fabric(fabric, rules={"FAB999"})
