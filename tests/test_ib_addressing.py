"""Unit tests for LID assignment and the quadrant policy."""

import pytest

from repro.core.errors import TopologyError
from repro.ib.addressing import (
    assign_lids_quadrant,
    assign_lids_sequential,
    quadrant_of_lid,
)
from repro.topology.hyperx import hyperx, hyperx_quadrant, hyperx_shape_of


@pytest.fixture(scope="module")
def net():
    return hyperx((4, 4), 2)


class TestSequential:
    def test_lid_zero_reserved(self, net):
        lm = assign_lids_sequential(net, lmc=0)
        assert 0 not in lm.owner

    def test_lmc_block(self, net):
        lm = assign_lids_sequential(net, lmc=2)
        t = net.terminals[0]
        assert lm.lids_per_port == 4
        assert lm.lids_of(t) == [lm.base[t] + i for i in range(4)]
        for i, lid in enumerate(lm.lids_of(t)):
            assert lm.node_of(lid) == t
            assert lm.index_of(lid) == i

    def test_blocks_aligned(self, net):
        lm = assign_lids_sequential(net, lmc=2)
        for t in net.terminals:
            assert lm.base[t] % 4 == 0

    def test_no_lid_collisions(self, net):
        lm = assign_lids_sequential(net, lmc=1)
        all_lids = lm.terminal_lids(net) + [lm.base[s] for s in net.switches]
        assert len(all_lids) == len(set(all_lids))

    def test_switches_addressed(self, net):
        lm = assign_lids_sequential(net)
        for sw in net.switches:
            assert lm.node_of(lm.base[sw]) == sw

    def test_lid_index_bounds(self, net):
        lm = assign_lids_sequential(net, lmc=1)
        with pytest.raises(TopologyError):
            lm.lid(net.terminals[0], 2)

    def test_bad_lmc(self, net):
        with pytest.raises(TopologyError):
            assign_lids_sequential(net, lmc=8)


class TestQuadrantPolicy:
    def test_terminal_lid_encodes_quadrant(self, net):
        lm = assign_lids_quadrant(net, lmc=2)
        shape = hyperx_shape_of(net)
        for t in net.terminals:
            sw = net.attached_switch(t)
            q = hyperx_quadrant(net.node_meta(sw)["coord"], shape)
            for lid in lm.lids_of(t):
                assert quadrant_of_lid(lid) == q
                assert lid // 1000 == q

    def test_switch_lids_offset_by_10000(self, net):
        lm = assign_lids_quadrant(net, lmc=2)
        shape = hyperx_shape_of(net)
        for sw in net.switches:
            lid = lm.base[sw]
            assert lid >= 10_000
            q = hyperx_quadrant(net.node_meta(sw)["coord"], shape)
            assert quadrant_of_lid(lid) == q

    def test_unique_lids(self, net):
        lm = assign_lids_quadrant(net, lmc=2)
        lids = lm.terminal_lids(net) + [lm.base[s] for s in net.switches]
        assert len(set(lids)) == len(lids)

    def test_overflow_detection(self):
        # 1000 LIDs per quadrant with LMC=2 caps at 250 terminals per
        # quadrant: a 4x4 with 300 nodes per switch overflows.
        big = hyperx((4, 4), 300)
        with pytest.raises(TopologyError):
            assign_lids_quadrant(big, lmc=2)

    def test_requires_coordinates(self):
        from repro.topology.fattree import k_ary_n_tree

        with pytest.raises(TopologyError):
            assign_lids_quadrant(k_ary_n_tree(4, 2), lmc=2)


class TestQuadrantOfLid:
    @pytest.mark.parametrize(
        "lid,q",
        [(4, 0), (1004, 1), (2999, 2), (3004, 3), (10_500, 0), (13_001, 3)],
    )
    def test_values(self, lid, q):
        assert quadrant_of_lid(lid) == q

    def test_rejects_non_policy_lid(self):
        with pytest.raises(TopologyError):
            quadrant_of_lid(5000)
