"""Tests for ASCII visualisation and trace record/replay."""

import io

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.experiments.metrics import whisker_stats
from repro.experiments.visualize import (
    RAMP,
    render_heatmap,
    render_hyperx_utilization,
    render_whiskers,
    sparkline,
)
from repro.ib.subnet_manager import OpenSM
from repro.mpi.collectives import pairwise_alltoall
from repro.mpi.job import Job
from repro.routing.dfsssp import DfssspRouting
from repro.sim.engine import FlowSimulator
from repro.sim.flows import program_bytes
from repro.sim.traces import dump_rank_trace, load_rank_trace, replay
from repro.topology.hyperx import hyperx


class TestHeatmap:
    def test_shape_and_ramp(self):
        m = np.array([[0.0, 1.0], [0.5, 1.0]])
        out = render_heatmap(m)
        rows = out.splitlines()
        assert len(rows) == 2
        assert rows[0][0] == RAMP[0]
        assert rows[0][1] == RAMP[-1]

    def test_title(self):
        out = render_heatmap(np.zeros((1, 1)), title="T")
        assert out.startswith("T\n")

    def test_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            render_heatmap(np.zeros(3))


class TestLatticeUtilization:
    def test_saturated_switch_marked(self):
        net = hyperx((4, 4), 1)
        hot = net.switch_cables()[0]
        out = render_hyperx_utilization(net, {hot.id: 1.0})
        assert RAMP[-1] in out
        assert "idle" in out

    def test_rejects_non_2d(self):
        net = hyperx((2, 2, 2), 1)
        with pytest.raises(ConfigurationError):
            render_hyperx_utilization(net, {})


class TestWhiskers:
    def test_markers_present(self):
        stats = {
            "a": whisker_stats([1, 2, 3, 4, 5]),
            "b": whisker_stats([2, 2, 2, 2, 2]),
        }
        out = render_whiskers(stats, width=30)
        assert "M" in out and "[" in out and "]" in out and "|" in out
        assert "a" in out and "b" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_whiskers({})


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([0, 1, 2, 3, 4])
        assert s[0] == RAMP[0]
        assert s[-1] == RAMP[-1]

    def test_empty(self):
        assert sparkline([]) == ""


class TestTraces:
    @pytest.fixture(scope="class")
    def job(self):
        net = hyperx((4, 4), 1)
        fabric = OpenSM(net).run(DfssspRouting())
        return Job(fabric, net.terminals[:8])

    def test_round_trip(self, job):
        phases = pairwise_alltoall(8, 4096.0)
        buf = io.StringIO()
        dump_rank_trace(phases, buf, label="a2a", compute_gap=0.5)
        buf.seek(0)
        loaded, meta = load_rank_trace(buf)
        assert loaded == [list(p) for p in phases]
        assert meta["ranks"] == 8
        assert meta["compute_gap"] == 0.5

    def test_replay_produces_runnable_program(self, job):
        phases = pairwise_alltoall(8, 4096.0)
        buf = io.StringIO()
        dump_rank_trace(phases, buf, label="a2a")
        buf.seek(0)
        prog = replay(job, buf)
        assert program_bytes(prog) == pytest.approx(8 * 7 * 4096.0)
        net = job.fabric.net
        t = FlowSimulator(net, mode="static").run(prog).total_time
        assert t > 0

    def test_replay_is_placement_independent(self, job):
        """Footnote 6: the same trace replays onto a different node set
        and still moves the same bytes."""
        phases = pairwise_alltoall(4, 1000.0)
        buf = io.StringIO()
        dump_rank_trace(phases, buf)
        net = job.fabric.net
        other = Job(job.fabric, net.terminals[-4:])
        buf.seek(0)
        prog = replay(other, buf)
        assert program_bytes(prog) == pytest.approx(4 * 3 * 1000.0)

    def test_replay_rejects_too_few_ranks(self, job):
        buf = io.StringIO()
        dump_rank_trace(pairwise_alltoall(16, 1.0), buf)
        buf.seek(0)
        with pytest.raises(ConfigurationError):
            replay(job, buf)

    def test_malformed_lines_rejected(self, job):
        for bad in (
            '{"type": "msg", "src": 0, "dst": 1, "size": 1}\n',  # no phase
            '{"type": "phase"}\n{"type": "msg", "src": 0, "dst": 0, "size": 1}\n',
            '{"type": "phase"}\n{"type": "msg", "src": 0, "dst": 1, "size": -5}\n',
            '{"type": "mystery"}\n',
            "not json\n",
        ):
            with pytest.raises(ConfigurationError):
                load_rank_trace(io.StringIO(bad))
