"""Unit + property tests for max-min fair allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.sim.fairness import link_loads, max_min_fair_rates


class TestBasics:
    def test_single_flow_gets_full_capacity(self):
        rates = max_min_fair_rates([[0]], {0: 8.0})
        assert rates[0] == pytest.approx(8.0)

    def test_equal_sharing(self):
        rates = max_min_fair_rates([[0], [0], [0]], {0: 9.0})
        assert np.allclose(rates, 3.0)

    def test_textbook_two_link_example(self):
        # Flow A crosses both links, B only link 0, C only link 1.
        # cap0=1, cap1=2 -> A=B=0.5 on link0; C gets 1.5.
        rates = max_min_fair_rates([[0, 1], [0], [1]], {0: 1.0, 1: 2.0})
        assert rates[0] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(0.5)
        assert rates[2] == pytest.approx(1.5)

    def test_empty_path_is_infinite(self):
        rates = max_min_fair_rates([[], [0]], {0: 4.0})
        assert np.isinf(rates[0])
        assert rates[1] == pytest.approx(4.0)

    def test_no_flows(self):
        assert max_min_fair_rates([], {}).shape == (0,)

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            max_min_fair_rates([[0]], {0: 0.0})

    def test_seven_streams_one_cable(self):
        """The paper's headline bottleneck: 7 flows on one QDR cable each
        get a seventh of it (section 1)."""
        rates = max_min_fair_rates([[0]] * 7, {0: 3.4})
        assert np.allclose(rates, 3.4 / 7)


class TestLinkLoads:
    def test_aggregation(self):
        rates = np.array([1.0, 2.0])
        loads = link_loads([[0, 1], [1]], rates)
        assert loads == {0: 1.0, 1: 3.0}

    def test_infinite_rate_skipped(self):
        loads = link_loads([[], [0]], np.array([np.inf, 1.0]))
        assert loads == {0: 1.0}


@st.composite
def _flow_systems(draw):
    n_links = draw(st.integers(1, 12))
    caps = draw(
        st.lists(
            st.floats(0.5, 100.0, allow_nan=False),
            min_size=n_links, max_size=n_links,
        )
    )
    n_flows = draw(st.integers(1, 25))
    flows = [
        draw(
            st.lists(
                st.integers(0, n_links - 1),
                min_size=1, max_size=min(6, n_links), unique=True,
            )
        )
        for _ in range(n_flows)
    ]
    return flows, np.array(caps)


class TestMaxMinProperties:
    @given(_flow_systems())
    @settings(max_examples=150, deadline=None)
    def test_capacity_never_exceeded(self, system):
        flows, caps = system
        rates = max_min_fair_rates(flows, caps)
        loads = link_loads(flows, rates)
        for lid, load in loads.items():
            assert load <= caps[lid] * (1 + 1e-6)

    @given(_flow_systems())
    @settings(max_examples=150, deadline=None)
    def test_every_flow_bottlenecked(self, system):
        """Max-min optimality: every flow crosses a saturated link where
        no co-flow has a strictly higher rate."""
        flows, caps = system
        rates = max_min_fair_rates(flows, caps)
        loads = link_loads(flows, rates)
        for f, links in enumerate(flows):
            bottleneck = False
            for lid in links:
                saturated = loads.get(lid, 0.0) >= caps[lid] * (1 - 1e-6)
                if not saturated:
                    continue
                co_rates = [
                    rates[g]
                    for g, other in enumerate(flows)
                    if lid in other
                ]
                if rates[f] >= max(co_rates) - 1e-6 * max(co_rates):
                    bottleneck = True
                    break
            assert bottleneck, f"flow {f} has no max-min bottleneck"

    @given(_flow_systems())
    @settings(max_examples=100, deadline=None)
    def test_rates_positive(self, system):
        flows, caps = system
        rates = max_min_fair_rates(flows, caps)
        assert (rates > 0).all()

    @given(_flow_systems())
    @settings(max_examples=100, deadline=None)
    def test_permutation_invariance(self, system):
        flows, caps = system
        rates = max_min_fair_rates(flows, caps)
        perm = list(reversed(range(len(flows))))
        rates_perm = max_min_fair_rates([flows[i] for i in perm], caps)
        assert np.allclose(rates[perm], rates_perm, rtol=1e-6)
