"""Classic setuptools entry point.

This repository deliberately ships a legacy ``setup.py`` alongside the
``pyproject.toml`` metadata: the PEP-660 editable-install path requires
the ``wheel`` package, which air-gapped evaluation environments (like
the one the artifact is checked in) may not have.  With this file,
``pip install -e .`` falls back to ``setup.py develop`` and works fully
offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Flow-level reproduction of 'HyperX Topology: First At-Scale "
        "Implementation and Comparison to the Fat-Tree' (SC '19)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
