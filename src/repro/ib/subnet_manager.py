"""The OpenSM stand-in: drive a routing engine, install its output.

Real deployments run OpenSM on a management node: it assigns LIDs
(optionally pinned through a ``guid2lid`` file — how the paper
implements the quadrant policy), invokes the configured routing engine
to compute linear forwarding tables, and programs SL/VL mappings for
deadlock freedom.  :class:`OpenSM` does the same against a
:class:`~repro.ib.fabric.Fabric`:

>>> sm = OpenSM(net, lmc=2, lid_policy="quadrant")
>>> fabric = sm.run(ParxRouting(demands))
>>> fabric.num_vls
5
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.errors import ConfigurationError
from repro.ib.addressing import (
    LidMap,
    assign_lids_quadrant,
    assign_lids_sequential,
)
from repro.ib.cdg import dest_dependencies_from_tables
from repro.ib.deadlock import assign_layers
from repro.ib.fabric import Fabric
from repro.topology.network import Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.routing.base import RoutingEngine

#: Virtual lanes available on the paper's QDR hardware.
QDR_MAX_VLS = 8


class OpenSM:
    """Subnet manager driving one network plane.

    Parameters
    ----------
    net:
        The plane to manage.
    lmc:
        LID mask control (0 for single-path engines, 2 for PARX).
    lid_policy:
        ``"sequential"`` (default OpenSM behaviour) or ``"quadrant"``
        (the paper's guid2lid pinning for 2-D HyperX planes).
    max_vls:
        Virtual-lane budget for the deadlock layering.
    """

    def __init__(
        self,
        net: Network,
        lmc: int = 0,
        lid_policy: str = "sequential",
        max_vls: int = QDR_MAX_VLS,
    ) -> None:
        self.net = net
        self.lmc = lmc
        self.max_vls = max_vls
        if lid_policy == "sequential":
            self._lidmap: LidMap = assign_lids_sequential(net, lmc)
        elif lid_policy == "quadrant":
            self._lidmap = assign_lids_quadrant(net, lmc)
        else:
            raise ConfigurationError(f"unknown lid_policy {lid_policy!r}")
        self.lid_policy = lid_policy

    def run(self, engine: "RoutingEngine") -> Fabric:
        """Compute and install a routing; returns the ready fabric.

        If the engine declares ``provides_deadlock_freedom`` the subnet
        manager performs the destination-granularity VL layering on the
        engine's paths (raising if the VL budget does not suffice);
        otherwise the fabric is left on a single lane, which for cyclic
        topologies may be deadlock-prone — exactly the behaviour the
        paper saw with plain SSSP on the HyperX.
        """
        fabric = Fabric(self.net, self._lidmap, engine_name=engine.name)
        fabric.install_terminal_hops()
        engine.compute(fabric)

        if engine.provides_deadlock_freedom:
            dep_edges = {
                dlid: dest_dependencies_from_tables(fabric, dlid)
                for dlid in self._lidmap.terminal_lids(self.net)
            }
            vl_of, num = assign_layers(dep_edges, max_vls=self.max_vls)
            fabric.vl_of_dlid = vl_of
            fabric.num_vls = num
        return fabric
