"""The OpenSM stand-in: drive a routing engine, install its output.

Real deployments run OpenSM on a management node: it assigns LIDs
(optionally pinned through a ``guid2lid`` file — how the paper
implements the quadrant policy), invokes the configured routing engine
to compute linear forwarding tables, and programs SL/VL mappings for
deadlock freedom.  :class:`OpenSM` does the same against a
:class:`~repro.ib.fabric.Fabric`:

>>> sm = OpenSM(net, lmc=2, lid_policy="quadrant")
>>> fabric = sm.run(ParxRouting(demands))
>>> fabric.num_vls
5
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.core.errors import ConfigurationError, DeadlockError, ReproError
from repro.ib.addressing import (
    LidMap,
    assign_lids_quadrant,
    assign_lids_sequential,
)
from repro.ib.cdg import dest_dependencies_from_tables
from repro.ib.deadlock import assign_layers
from repro.ib.fabric import Fabric
from repro.topology.faults import FabricEvent
from repro.topology.network import Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.routing.base import RoutingEngine

#: Virtual lanes available on the paper's QDR hardware.
QDR_MAX_VLS = 8

#: How many unreachable pairs a report keeps as a sample; the exact
#: count survives in :attr:`RerouteReport.num_unreachable` (a wholesale
#: partition failure would otherwise store hundreds of thousands of
#: pairs on every report in a campaign ledger).
UNREACHABLE_SAMPLE_CAP = 64


@dataclass(slots=True)
class RerouteReport:
    """What an SM re-sweep changed, in auditable numbers.

    The paper's machine ran with missing cables from day one (section
    2.3), so every fault event in our model ends in a re-sweep; this
    report is the record a fabric operator would pull from the SM log —
    how many destinations were affected, how many forwarding entries and
    end-to-end paths moved, and whether anything became unreachable.
    """

    engine: str
    #: The fabric events (as dicts) that triggered this re-sweep.
    events: list[dict[str, Any]] = field(default_factory=list)
    #: Destination LIDs that had at least one stale table entry.
    dests_affected: int = 0
    #: Ordered terminal pairs whose pre-re-sweep path was already dead
    #: under the degraded topology (the pre-repair black-hole exposure;
    #: on a previously clean fabric this equals the static
    #: ``affected_pairs`` the what-if verifier predicts for the failed
    #: cable).
    pairs_affected: int = 0
    #: Static criticality certificate of the failed cable, attached by
    #: callers that audited the fabric before the failure (see
    #: :meth:`repro.analysis.whatif.VulnerabilityReport.criticality_of`).
    cable_criticality: dict[str, Any] | None = None
    #: Forwarding entries (switch, dlid) whose out link changed.
    entries_changed: int = 0
    #: Terminal pairs whose end-to-end path changed.
    paths_changed: int = 0
    #: Ordered terminal pairs examined (``T * (T - 1)``).
    pairs_total: int = 0
    #: Total switch hops over pairs reachable both before and after.
    hops_before: int = 0
    hops_after: int = 0
    #: Sample of terminal pairs with no route after the re-sweep, capped
    #: at :data:`UNREACHABLE_SAMPLE_CAP` in source-major order; the
    #: exact count is :attr:`num_unreachable`.
    unreachable_pairs: list[tuple[int, int]] = field(default_factory=list)
    #: Exact number of unreachable ordered terminal pairs.
    num_unreachable: int = 0
    #: ``False`` when the incremental check found nothing stale and the
    #: routing engine was never invoked.
    resweep_ran: bool = True
    #: Destination trees the routing engine recomputed (all of them on a
    #: heavy sweep, the affected subset on an incremental one, 0 when
    #: the sweep was skipped).
    dests_recomputed: int = 0
    #: Wall-clock seconds the re-sweep spent (recompute + layering +
    #: diff).
    sweep_seconds: float = 0.0

    @property
    def hops_delta(self) -> int:
        """Extra switch hops the surviving pairs pay after rerouting."""
        return self.hops_after - self.hops_before

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "events": list(self.events),
            "dests_affected": self.dests_affected,
            "pairs_affected": self.pairs_affected,
            "cable_criticality": self.cable_criticality,
            "entries_changed": self.entries_changed,
            "paths_changed": self.paths_changed,
            "pairs_total": self.pairs_total,
            "hops_before": self.hops_before,
            "hops_after": self.hops_after,
            "hops_delta": self.hops_delta,
            "unreachable_pairs": [list(p) for p in self.unreachable_pairs],
            "num_unreachable": self.num_unreachable,
            "resweep_ran": self.resweep_ran,
            "dests_recomputed": self.dests_recomputed,
            "sweep_seconds": self.sweep_seconds,
        }

    def __str__(self) -> str:
        if not self.resweep_ran:
            return f"RerouteReport({self.engine}: no stale entries, skipped)"
        return (
            f"RerouteReport({self.engine}: {self.paths_changed}/"
            f"{self.pairs_total} paths changed, {self.entries_changed} "
            f"entries rewritten, hops {self.hops_before}->{self.hops_after}, "
            f"{self.num_unreachable} unreachable)"
        )


def _stale_entries(fabric: Fabric) -> list[tuple[int, int]]:
    """``(switch, dlid)`` forwarding entries that point at disabled links.

    The dense part is one boolean mask over the whole table matrix;
    overflow and foreign-row entries (out-of-universe writes, test-only)
    are checked entry by entry like before.
    """
    net = fabric.net
    tables = fabric.tables
    graph = net.switch_graph()
    m = tables.dense
    present = m >= 0
    stale_mask = present & ~graph.link_enabled[np.where(present, m, 0)]
    switch_ids = tables.switch_ids
    dlids = tables.dlids
    out = [
        (switch_ids[r], int(dlids[c]))
        for r, c in zip(*np.nonzero(stale_mask))
    ]
    for sw, dlid, link_id in tables.overflow_items():
        if not net.link(link_id).enabled:
            out.append((sw, dlid))
    for sw in tables.foreign_switches():
        for dlid, link_id in tables[sw].items():
            if not net.link(link_id).enabled:
                out.append((sw, dlid))
    return out


def _snapshot_paths(
    fabric: Fabric,
) -> dict[tuple[int, int], tuple[int, ...] | None]:
    """Resolve every ordered terminal pair; ``None`` marks unreachable."""
    paths: dict[tuple[int, int], tuple[int, ...] | None] = {}
    terminals = fabric.net.terminals
    for src in terminals:
        for dst in terminals:
            if src == dst:
                continue
            try:
                paths[(src, dst)] = tuple(fabric.path(src, dst))
            except ReproError:
                paths[(src, dst)] = None
    return paths


def resweep(
    fabric: Fabric,
    engine: "RoutingEngine",
    max_vls: int = QDR_MAX_VLS,
    events: Iterable[FabricEvent] = (),
) -> RerouteReport:
    """Recompute a fabric's forwarding state after fabric events.

    Three speeds, chosen automatically:

    * **skip** — no forwarding entry references a disabled link and no
      event restored a cable (which could open better paths): the
      tables are already consistent and the routing engine is not
      invoked (``resweep_ran=False``) — degrades change capacities, not
      reachability.
    * **incremental** — the engine declares
      ``supports_incremental_resweep`` and only cables failed: just the
      destination trees with stale entries are recomputed
      (``engine.recompute_destinations``), then the full deterministic
      VL layering re-runs over the result — byte-identical tables and
      lanes to a heavy sweep, at the cost of the affected destinations
      only.  A restore event, out-of-universe stale entries, or a
      layering failure fall back to the heavy sweep.  When sweep
      workers are configured and the stale-destination count crosses
      the parallel column floor (:mod:`repro.core.parallel`), the
      recompute itself shards across the worker pool — same bits,
      same report counters, at any worker count.
    * **heavy** — tables and virtual-lane layering recomputed from
      scratch on the current (degraded) topology.

    Either way the report diffs old against new state — entries
    rewritten, paths changed, hop inflation, pairs lost — via matrix
    walks over the dense tables (:func:`repro.ib.tables.walk_dest_columns`)
    instead of resolving every pair in Python.

    Mutates ``fabric`` in place, mirroring a real OpenSM sweep.
    """
    t_start = time.perf_counter()
    net = fabric.net
    event_dicts = [e.to_dict() for e in events]
    stale = _stale_entries(fabric)
    restored = any(e.action == "restore_cable" for e in events)
    report = RerouteReport(engine=engine.name, events=event_dicts)
    if not stale and not restored:
        report.resweep_ran = False
        return report

    stale_dlids = sorted({dlid for _, dlid in stale})
    report.dests_affected = len(stale_dlids)

    tables = fabric.tables
    old_dense = tables.dense_copy()
    old_overflow = tables.overflow_copy()
    old_foreign = {sw: dict(tables[sw]) for sw in tables.foreign_switches()}
    ok_old, hops_old, _ = fabric._resolve_pair_matrices(old_dense, None)

    terminal_dlids = fabric.lidmap.terminal_lids(net)
    in_universe = set(terminal_dlids)
    incremental = (
        engine.supports_incremental_resweep
        and not restored
        and all(d in in_universe for d in stale_dlids)
        and not old_overflow
        and not old_foreign
    )
    done = False
    if incremental:
        try:
            engine.recompute_destinations(fabric, stale_dlids)
            if engine.provides_deadlock_freedom:
                _relayer(fabric, max_vls, engine)
            report.dests_recomputed = len(stale_dlids)
            done = True
        except DeadlockError:
            # A smaller per-lane CDG could in principle layer
            # differently; trust the heavy sweep for the verdict.
            done = False
    if not done:
        fabric.tables = {}
        fabric.vl_of_dlid = {}
        fabric.num_vls = 1
        fabric.install_terminal_hops()
        engine.compute(fabric)
        if engine.provides_deadlock_freedom:
            _relayer(fabric, max_vls, engine)
        report.dests_recomputed = len(terminal_dlids)

    new_tables = fabric.tables
    new_dense = new_tables.dense
    report.entries_changed = int(
        ((new_dense >= 0) & (new_dense != old_dense)).sum()
    )
    for sw, dlid, link_id in new_tables.overflow_items():
        if old_overflow.get(sw, {}).get(dlid) != link_id:
            report.entries_changed += 1
    for sw in new_tables.foreign_switches():
        old_row = old_foreign.get(sw, {})
        report.entries_changed += sum(
            1 for dlid, link_id in new_tables[sw].items()
            if old_row.get(dlid) != link_id
        )

    ok_new, hops_new, entry_diff = fabric._resolve_pair_matrices(
        new_dense, old_dense
    )
    terminals = net.terminals
    n = len(terminals)
    off_diag = ~np.eye(n, dtype=bool)
    report.pairs_total = n * (n - 1)
    # Pairs already dead before the re-sweep, judged under the current
    # (degraded) topology — the black-hole exposure the repair fixes.
    report.pairs_affected = int((off_diag & ~ok_old).sum())
    both = ok_old & ok_new
    report.hops_before = int(hops_old[both].sum())
    report.hops_after = int(hops_new[both].sum())
    # A pair's path changed iff it resolves now and either did not
    # before, or some table entry along the (shared-prefix) walk moved.
    report.paths_changed = int((ok_new & (~ok_old | entry_diff)).sum())
    unreachable = np.argwhere(off_diag & ~ok_new)
    report.num_unreachable = len(unreachable)
    report.unreachable_pairs = [
        (terminals[i], terminals[j])
        for i, j in unreachable[:UNREACHABLE_SAMPLE_CAP].tolist()
    ]
    report.sweep_seconds = time.perf_counter() - t_start
    fabric.notes.append(f"resweep after {len(event_dicts)} event(s): {report}")
    return report


def _assign_lids(net: Network, policy: str, lmc: int) -> LidMap:
    """Build a LID map for a validated policy name."""
    if policy == "quadrant":
        return assign_lids_quadrant(net, lmc)
    return assign_lids_sequential(net, lmc)


def _layering_order(
    fabric: Fabric, engine: "RoutingEngine", dlids: list[int]
) -> list[int] | None:
    """Destination order for the greedy VL layering.

    ``None`` keeps :func:`~repro.ib.deadlock.assign_layers`'s plain
    sorted-LID order.  Engines refine the order through
    :meth:`~repro.routing.base.RoutingEngine.vl_layering_key` — layered
    multi-LID engines (FatPaths) group destinations by LID index, fthx
    groups them by dimension-order class — so each tree family packs
    into virtual lanes together before the next family opens new ones.
    """
    key = getattr(engine, "vl_layering_key", None)
    if key is None:
        return None
    return sorted(dlids, key=lambda d: key(fabric, d))


def _relayer(fabric: Fabric, max_vls: int, engine: "RoutingEngine") -> None:
    """Full deterministic VL layering over the fabric's current tables.

    Run in full even after an incremental table update: greedy first-fit
    layering is order-dependent, so only the complete deterministic run
    (in the same destination order :class:`OpenSM.run` used) guarantees
    the same lanes a heavy sweep would assign.
    """
    dlids = fabric.lidmap.terminal_lids(fabric.net)
    dep_edges = {
        dlid: dest_dependencies_from_tables(fabric, dlid)
        for dlid in dlids
    }
    vl_of, num = assign_layers(
        dep_edges, max_vls=max_vls,
        order=_layering_order(fabric, engine, dlids),
    )
    fabric.vl_of_dlid = vl_of
    fabric.num_vls = num


#: LID policies the subnet manager knows how to assign.
LID_POLICIES = ("sequential", "quadrant")


class OpenSM:
    """Subnet manager driving one network plane.

    Parameters
    ----------
    net:
        The plane to manage.
    lmc:
        LID mask control (0 for single-path engines, 2 for PARX).
        ``None`` (the default) defers to the routing engine's declared
        :attr:`~repro.routing.base.RoutingEngine.sm_defaults` at
        :meth:`run` time, falling back to 0.
    lid_policy:
        ``"sequential"`` (default OpenSM behaviour) or ``"quadrant"``
        (the paper's guid2lid pinning for 2-D HyperX planes).  ``None``
        defers to the engine's ``sm_defaults`` like ``lmc``; an explicit
        policy is validated — and its LID map built — eagerly at
        construction, exactly as before the engine-default redesign.
    max_vls:
        Virtual-lane budget for the deadlock layering.
    """

    def __init__(
        self,
        net: Network,
        lmc: int | None = None,
        lid_policy: str | None = None,
        max_vls: int = QDR_MAX_VLS,
    ) -> None:
        self.net = net
        self.max_vls = max_vls
        if lid_policy is not None and lid_policy not in LID_POLICIES:
            raise ConfigurationError(f"unknown lid_policy {lid_policy!r}")
        self._explicit_lmc = lmc
        self._explicit_policy = lid_policy
        self.lmc = 0 if lmc is None else lmc
        self.lid_policy = lid_policy or "sequential"
        self._lidmap: LidMap | None = None
        if lid_policy is not None:
            # An explicitly requested policy fails fast (e.g. quadrant
            # LIDs on a coordinate-less Fat-Tree raise TopologyError at
            # construction, not mid-run).
            self._lidmap = _assign_lids(net, self.lid_policy, self.lmc)

    @property
    def lidmap(self) -> LidMap:
        """The LID map in force (built on demand for deferred settings)."""
        if self._lidmap is None:
            self._lidmap = _assign_lids(self.net, self.lid_policy, self.lmc)
        return self._lidmap

    def _resolve_lidmap(self, engine: "RoutingEngine") -> LidMap:
        """LID settings for this run: explicit args beat engine defaults.

        Each parameter resolves independently — ``OpenSM(net, lmc=0)``
        run with PARX keeps the explicit ``lmc=0`` but adopts the
        engine's declared quadrant policy.
        """
        defaults = getattr(engine, "sm_defaults", None) or {}
        lmc = (
            self._explicit_lmc
            if self._explicit_lmc is not None
            else int(defaults.get("lmc", 0))
        )
        policy = (
            self._explicit_policy
            if self._explicit_policy is not None
            else str(defaults.get("lid_policy", "sequential"))
        )
        if policy not in LID_POLICIES:
            raise ConfigurationError(
                f"engine {engine.name!r} declares unknown lid_policy "
                f"{policy!r} in sm_defaults"
            )
        if self._lidmap is None or (lmc, policy) != (self.lmc, self.lid_policy):
            self._lidmap = _assign_lids(self.net, policy, lmc)
        self.lmc = lmc
        self.lid_policy = policy
        return self._lidmap

    def run(self, engine: "RoutingEngine") -> Fabric:
        """Compute and install a routing; returns the ready fabric.

        The engine's :meth:`~repro.routing.base.RoutingEngine.check_topology`
        hook runs first, then LID settings not given explicitly resolve
        from the engine's declared ``sm_defaults``.  If the engine
        declares ``provides_deadlock_freedom`` the subnet manager
        performs the destination-granularity VL layering on the engine's
        paths (raising if the VL budget does not suffice); otherwise the
        fabric is left on a single lane, which for cyclic topologies may
        be deadlock-prone — exactly the behaviour the paper saw with
        plain SSSP on the HyperX.

        With sweep workers configured (:mod:`repro.core.parallel`),
        ``parallel_sweep_safe`` engines shard the cold sweep's
        destination columns across the worker pool inside
        ``engine.compute`` — tables, lanes, and notes stay bit-identical
        at any worker count.
        """
        engine.check_topology(self.net)
        lidmap = self._resolve_lidmap(engine)
        fabric = Fabric(self.net, lidmap, engine_name=engine.name)
        fabric.install_terminal_hops()
        engine.compute(fabric)

        if engine.provides_deadlock_freedom:
            dlids = lidmap.terminal_lids(self.net)
            dep_edges = {
                dlid: dest_dependencies_from_tables(fabric, dlid)
                for dlid in dlids
            }
            vl_of, num = assign_layers(
                dep_edges,
                max_vls=self.max_vls,
                order=_layering_order(fabric, engine, dlids),
            )
            fabric.vl_of_dlid = vl_of
            fabric.num_vls = num
        return fabric

    def resweep(
        self,
        fabric: Fabric,
        engine: "RoutingEngine",
        events: Iterable[FabricEvent] = (),
    ) -> RerouteReport:
        """Heavy-sweep a fabric this SM routed after fabric events.

        Thin wrapper over the module-level :func:`resweep` carrying this
        SM's virtual-lane budget.
        """
        return resweep(fabric, engine, max_vls=self.max_vls, events=events)
