"""The OpenSM stand-in: drive a routing engine, install its output.

Real deployments run OpenSM on a management node: it assigns LIDs
(optionally pinned through a ``guid2lid`` file — how the paper
implements the quadrant policy), invokes the configured routing engine
to compute linear forwarding tables, and programs SL/VL mappings for
deadlock freedom.  :class:`OpenSM` does the same against a
:class:`~repro.ib.fabric.Fabric`:

>>> sm = OpenSM(net, lmc=2, lid_policy="quadrant")
>>> fabric = sm.run(ParxRouting(demands))
>>> fabric.num_vls
5
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.core.errors import ConfigurationError, ReproError
from repro.ib.addressing import (
    LidMap,
    assign_lids_quadrant,
    assign_lids_sequential,
)
from repro.ib.cdg import dest_dependencies_from_tables
from repro.ib.deadlock import assign_layers
from repro.ib.fabric import Fabric
from repro.topology.faults import FabricEvent
from repro.topology.network import Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.routing.base import RoutingEngine

#: Virtual lanes available on the paper's QDR hardware.
QDR_MAX_VLS = 8


@dataclass(slots=True)
class RerouteReport:
    """What an SM re-sweep changed, in auditable numbers.

    The paper's machine ran with missing cables from day one (section
    2.3), so every fault event in our model ends in a re-sweep; this
    report is the record a fabric operator would pull from the SM log —
    how many destinations were affected, how many forwarding entries and
    end-to-end paths moved, and whether anything became unreachable.
    """

    engine: str
    #: The fabric events (as dicts) that triggered this re-sweep.
    events: list[dict[str, Any]] = field(default_factory=list)
    #: Destination LIDs that had at least one stale table entry.
    dests_affected: int = 0
    #: Forwarding entries (switch, dlid) whose out link changed.
    entries_changed: int = 0
    #: Terminal pairs whose end-to-end path changed.
    paths_changed: int = 0
    #: Ordered terminal pairs examined (``T * (T - 1)``).
    pairs_total: int = 0
    #: Total switch hops over pairs reachable both before and after.
    hops_before: int = 0
    hops_after: int = 0
    #: Terminal pairs with no route after the re-sweep.
    unreachable_pairs: list[tuple[int, int]] = field(default_factory=list)
    #: ``False`` when the incremental check found nothing stale and the
    #: routing engine was never invoked.
    resweep_ran: bool = True

    @property
    def hops_delta(self) -> int:
        """Extra switch hops the surviving pairs pay after rerouting."""
        return self.hops_after - self.hops_before

    @property
    def num_unreachable(self) -> int:
        return len(self.unreachable_pairs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "engine": self.engine,
            "events": list(self.events),
            "dests_affected": self.dests_affected,
            "entries_changed": self.entries_changed,
            "paths_changed": self.paths_changed,
            "pairs_total": self.pairs_total,
            "hops_before": self.hops_before,
            "hops_after": self.hops_after,
            "hops_delta": self.hops_delta,
            "unreachable_pairs": [list(p) for p in self.unreachable_pairs],
            "resweep_ran": self.resweep_ran,
        }

    def __str__(self) -> str:
        if not self.resweep_ran:
            return f"RerouteReport({self.engine}: no stale entries, skipped)"
        return (
            f"RerouteReport({self.engine}: {self.paths_changed}/"
            f"{self.pairs_total} paths changed, {self.entries_changed} "
            f"entries rewritten, hops {self.hops_before}->{self.hops_after}, "
            f"{self.num_unreachable} unreachable)"
        )


def _stale_entries(fabric: Fabric) -> list[tuple[int, int]]:
    """``(switch, dlid)`` forwarding entries that point at disabled links."""
    return [
        (sw, dlid)
        for sw, entries in fabric.tables.items()
        for dlid, link_id in entries.items()
        if not fabric.net.link(link_id).enabled
    ]


def _snapshot_paths(
    fabric: Fabric,
) -> dict[tuple[int, int], tuple[int, ...] | None]:
    """Resolve every ordered terminal pair; ``None`` marks unreachable."""
    paths: dict[tuple[int, int], tuple[int, ...] | None] = {}
    terminals = fabric.net.terminals
    for src in terminals:
        for dst in terminals:
            if src == dst:
                continue
            try:
                paths[(src, dst)] = tuple(fabric.path(src, dst))
            except ReproError:
                paths[(src, dst)] = None
    return paths


def resweep(
    fabric: Fabric,
    engine: "RoutingEngine",
    max_vls: int = QDR_MAX_VLS,
    events: Iterable[FabricEvent] = (),
) -> RerouteReport:
    """Recompute a fabric's forwarding state after fabric events.

    The incremental fast path: when no forwarding entry references a
    disabled link and no event restored a cable (which could open better
    paths), the tables are already consistent and the routing engine is
    not invoked (``resweep_ran=False``) — degrades change capacities,
    not reachability.  Otherwise the tables and virtual-lane layering
    are recomputed from scratch on the current (degraded) topology and
    the report diffs old against new state: entries rewritten, paths
    changed, hop inflation, pairs lost.

    Mutates ``fabric`` in place, mirroring a real OpenSM heavy sweep.
    """
    event_dicts = [e.to_dict() for e in events]
    stale = _stale_entries(fabric)
    restored = any(e.action == "restore_cable" for e in events)
    report = RerouteReport(engine=engine.name, events=event_dicts)
    if not stale and not restored:
        report.resweep_ran = False
        return report

    report.dests_affected = len({dlid for _, dlid in stale})
    old_tables = {sw: dict(entries) for sw, entries in fabric.tables.items()}
    old_paths = _snapshot_paths(fabric)

    fabric.tables = {}
    fabric.vl_of_dlid = {}
    fabric.num_vls = 1
    fabric.install_terminal_hops()
    engine.compute(fabric)
    if engine.provides_deadlock_freedom:
        dep_edges = {
            dlid: dest_dependencies_from_tables(fabric, dlid)
            for dlid in fabric.lidmap.terminal_lids(fabric.net)
        }
        vl_of, num = assign_layers(dep_edges, max_vls=max_vls)
        fabric.vl_of_dlid = vl_of
        fabric.num_vls = num

    new_paths = _snapshot_paths(fabric)
    for sw, entries in fabric.tables.items():
        old = old_tables.get(sw, {})
        report.entries_changed += sum(
            1 for dlid, link_id in entries.items() if old.get(dlid) != link_id
        )
    report.pairs_total = len(new_paths)
    for pair, new in new_paths.items():
        old = old_paths.get(pair)
        if new is None:
            report.unreachable_pairs.append(pair)
            continue
        if old != new:
            report.paths_changed += 1
        if old is not None:
            report.hops_before += fabric.net.path_hops(old)
            report.hops_after += fabric.net.path_hops(new)
    fabric.notes.append(f"resweep after {len(event_dicts)} event(s): {report}")
    return report


class OpenSM:
    """Subnet manager driving one network plane.

    Parameters
    ----------
    net:
        The plane to manage.
    lmc:
        LID mask control (0 for single-path engines, 2 for PARX).
    lid_policy:
        ``"sequential"`` (default OpenSM behaviour) or ``"quadrant"``
        (the paper's guid2lid pinning for 2-D HyperX planes).
    max_vls:
        Virtual-lane budget for the deadlock layering.
    """

    def __init__(
        self,
        net: Network,
        lmc: int = 0,
        lid_policy: str = "sequential",
        max_vls: int = QDR_MAX_VLS,
    ) -> None:
        self.net = net
        self.lmc = lmc
        self.max_vls = max_vls
        if lid_policy == "sequential":
            self._lidmap: LidMap = assign_lids_sequential(net, lmc)
        elif lid_policy == "quadrant":
            self._lidmap = assign_lids_quadrant(net, lmc)
        else:
            raise ConfigurationError(f"unknown lid_policy {lid_policy!r}")
        self.lid_policy = lid_policy

    def run(self, engine: "RoutingEngine") -> Fabric:
        """Compute and install a routing; returns the ready fabric.

        If the engine declares ``provides_deadlock_freedom`` the subnet
        manager performs the destination-granularity VL layering on the
        engine's paths (raising if the VL budget does not suffice);
        otherwise the fabric is left on a single lane, which for cyclic
        topologies may be deadlock-prone — exactly the behaviour the
        paper saw with plain SSSP on the HyperX.
        """
        fabric = Fabric(self.net, self._lidmap, engine_name=engine.name)
        fabric.install_terminal_hops()
        engine.compute(fabric)

        if engine.provides_deadlock_freedom:
            dep_edges = {
                dlid: dest_dependencies_from_tables(fabric, dlid)
                for dlid in self._lidmap.terminal_lids(self.net)
            }
            vl_of, num = assign_layers(dep_edges, max_vls=self.max_vls)
            fabric.vl_of_dlid = vl_of
            fabric.num_vls = num
        return fabric

    def resweep(
        self,
        fabric: Fabric,
        engine: "RoutingEngine",
        events: Iterable[FabricEvent] = (),
    ) -> RerouteReport:
        """Heavy-sweep a fabric this SM routed after fabric events.

        Thin wrapper over the module-level :func:`resweep` carrying this
        SM's virtual-lane budget.
        """
        return resweep(fabric, engine, max_vls=self.max_vls, events=events)
