"""InfiniBand-fabric model: LIDs, forwarding tables, virtual lanes.

The paper's PARX routing is built entirely out of InfiniBand mechanisms:
multiple virtual destinations per port (LMC), destination-based linear
forwarding tables computed by the subnet manager, and virtual-lane based
deadlock avoidance.  This package models exactly those mechanisms:

* :mod:`~repro.ib.addressing` — LID assignment incl. the paper's quadrant
  encoding (``q = lid // 1000``),
* :mod:`~repro.ib.fabric` — :class:`Fabric` = network + LIDs + per-switch
  forwarding tables, with table-walking path resolution,
* :mod:`~repro.ib.cdg` — channel-dependency graphs and cycle detection,
* :mod:`~repro.ib.deadlock` — DFSSSP/LASH-style virtual-lane layering,
* :mod:`~repro.ib.subnet_manager` — the OpenSM stand-in that drives a
  routing engine and installs its output.
"""

from repro.ib.addressing import (
    LidMap,
    assign_lids_sequential,
    assign_lids_quadrant,
    quadrant_of_lid,
)
from repro.ib.fabric import FABRIC_FORMAT_VERSION, Fabric
from repro.ib.cdg import (
    channel_dependencies,
    dependency_cycle_exists,
    dest_dependencies_from_tables,
    find_dependency_cycle,
)
from repro.ib.deadlock import (
    CreditLoop,
    assign_layers,
    assign_layers_by_destination,
    find_credit_loop,
    verify_deadlock_free,
)
from repro.ib.subnet_manager import OpenSM, RerouteReport, resweep

__all__ = [
    "LidMap",
    "assign_lids_sequential",
    "assign_lids_quadrant",
    "quadrant_of_lid",
    "FABRIC_FORMAT_VERSION",
    "Fabric",
    "channel_dependencies",
    "dependency_cycle_exists",
    "dest_dependencies_from_tables",
    "find_dependency_cycle",
    "CreditLoop",
    "assign_layers",
    "assign_layers_by_destination",
    "find_credit_loop",
    "verify_deadlock_free",
    "OpenSM",
    "RerouteReport",
    "resweep",
]
