"""LID assignment: base LIDs, the LMC mask, and quadrant encoding.

InfiniBand addresses endpoints by 16-bit local identifiers (LIDs).  The
LID mask control (LMC) gives every port ``2**lmc`` consecutive LIDs —
``LID0`` (the base) through ``LID(2**lmc - 1)`` — and the subnet manager
routes each LID as if it were a distinct physical endpoint.  PARX sets
``lmc = 2`` (four LIDs per HCA) and encodes the HyperX quadrant of the
attached switch into the base LID so both the routing engine and the
MPI layer can recover the quadrant as ``q = lid // 1000`` (paper
footnotes 5 and 9):

* terminals in quadrant ``q``: base LIDs ``q*1000 + 1, q*1000 + 1 + 2**lmc, ...``
* switches in quadrant ``q``: LIDs ``10000 + q*1000 + index``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import TopologyError
from repro.topology.hyperx import hyperx_quadrant, hyperx_shape_of
from repro.topology.network import Network

#: LID offset that separates switch LIDs from terminal LIDs in the
#: quadrant policy (paper appendix: "see above but add 10000").
SWITCH_LID_OFFSET = 10_000


@dataclass
class LidMap:
    """Bidirectional LID <-> (node, index) mapping for one fabric.

    Attributes
    ----------
    lmc:
        LID mask control; each terminal owns ``2**lmc`` LIDs.
    base:
        node id -> base LID (terminals and switches).
    owner:
        LID -> (node id, lid index).
    """

    lmc: int
    base: dict[int, int] = field(default_factory=dict)
    owner: dict[int, tuple[int, int]] = field(default_factory=dict)

    @property
    def lids_per_port(self) -> int:
        return 1 << self.lmc

    def lid(self, node: int, index: int = 0) -> int:
        """The ``index``-th LID of a node (index 0 is the base LID)."""
        if not 0 <= index < self.lids_per_port:
            raise TopologyError(
                f"lid index {index} out of range for lmc={self.lmc}"
            )
        return self.base[node] + index

    def lids_of(self, node: int) -> list[int]:
        """All LIDs of a terminal, ascending from the base LID."""
        b = self.base[node]
        return list(range(b, b + self.lids_per_port))

    def node_of(self, lid: int) -> int:
        return self.owner[lid][0]

    def index_of(self, lid: int) -> int:
        return self.owner[lid][1]

    def terminal_lids(self, net: Network) -> list[int]:
        """Every routable terminal LID, ascending."""
        out: list[int] = []
        for t in net.terminals:
            out.extend(self.lids_of(t))
        return sorted(out)


def assign_lids_sequential(net: Network, lmc: int = 0) -> LidMap:
    """Plain OpenSM-style assignment: terminals first, then switches.

    Base LIDs start at 1 (LID 0 is reserved in InfiniBand) and are
    aligned to the LMC block size, as real subnet managers do.
    """
    if lmc < 0 or lmc > 7:
        raise TopologyError(f"lmc must be in [0, 7], got {lmc}")
    lm = LidMap(lmc=lmc)
    step = 1 << lmc
    nxt = step  # first aligned block at `step`; keeps LID 0 unused
    for t in net.terminals:
        lm.base[t] = nxt
        for i in range(step):
            lm.owner[nxt + i] = (t, i)
        nxt += step
    for sw in net.switches:
        lm.base[sw] = nxt
        lm.owner[nxt] = (sw, 0)
        nxt += 1
    return lm


def assign_lids_quadrant(net: Network, lmc: int = 2) -> LidMap:
    """The paper's quadrant LID policy for 2-D HyperX fabrics.

    Requires every switch to carry a 2-D ``coord`` (i.e. the network came
    from :func:`repro.topology.hyperx.hyperx`) with even dimensions.
    LID blocks per quadrant start at ``q*1000 + 1``.
    """
    if lmc < 0 or lmc > 7:
        raise TopologyError(f"lmc must be in [0, 7], got {lmc}")
    shape = hyperx_shape_of(net)
    lm = LidMap(lmc=lmc)
    step = 1 << lmc
    next_terminal = {q: q * 1000 + step for q in range(4)}
    next_switch = {q: SWITCH_LID_OFFSET + q * 1000 for q in range(4)}

    for t in net.terminals:
        sw = net.attached_switch(t)
        q = hyperx_quadrant(net.node_meta(sw)["coord"], shape)
        base = next_terminal[q]
        if base + step > (q + 1) * 1000:
            raise TopologyError(
                f"quadrant {q} LID block overflow; fabric too large for the "
                "paper's 1000-LIDs-per-quadrant policy"
            )
        lm.base[t] = base
        for i in range(step):
            lm.owner[base + i] = (t, i)
        next_terminal[q] = base + step

    for sw in net.switches:
        q = hyperx_quadrant(net.node_meta(sw)["coord"], shape)
        lid = next_switch[q]
        lm.base[sw] = lid
        lm.owner[lid] = (sw, 0)
        next_switch[q] = lid + 1
    return lm


def quadrant_of_lid(lid: int) -> int:
    """Recover the HyperX quadrant from a quadrant-policy LID.

    Implements the paper's ``q := floor(LID / 1000)`` (footnote 9),
    normalising switch LIDs back into 0..3.
    """
    q = lid // 1000
    if q >= 10:
        q -= SWITCH_LID_OFFSET // 1000
    if not 0 <= q <= 3:
        raise TopologyError(f"LID {lid} does not follow the quadrant policy")
    return q
