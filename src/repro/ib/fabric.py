"""The routed fabric: network + LIDs + linear forwarding tables.

InfiniBand switches forward by destination LID only ("destination-based
forwarding scheme", paper section 3.2): every switch holds a linear
forwarding table mapping each LID to one output port.  :class:`Fabric`
mirrors that — ``tables[switch][dlid] -> out link id`` — and resolves
paths by walking the tables exactly like a packet would, which means a
routing bug shows up as the same forwarding loop it would cause on real
hardware (and is caught by the walk's loop guard).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.core.errors import RoutingError, UnreachableError
from repro.ib.addressing import LidMap
from repro.topology.network import Network

#: On-disk fabric payload format.  Bump on any change to the payload
#: layout; loaders reject mismatched versions so a stale cache entry is
#: rebuilt instead of silently misread.
FABRIC_FORMAT_VERSION = 1


@dataclass
class Fabric:
    """A network with installed LIDs and forwarding state.

    Attributes
    ----------
    net:
        The underlying topology.
    lidmap:
        LID assignment (see :mod:`repro.ib.addressing`).
    tables:
        Per-switch linear forwarding tables: ``tables[sw][dlid]`` is the
        id of the out link a packet for ``dlid`` takes at switch ``sw``.
    vl_of_dlid:
        Virtual lane assigned to each destination LID by the deadlock
        layering (DFSSSP granularity: whole destinations move between
        layers).  Empty until the subnet manager ran the layering.
    num_vls:
        Number of virtual lanes in use (1 if no layering ran).
    engine_name:
        Name of the routing engine that produced the tables.
    notes:
        Free-form diagnostics from the engine (e.g. PARX fallback events).
    cache_key:
        Content key of the configuration that produced this fabric
        (combination/scale/faults/seed, see
        :func:`repro.experiments.configs.fabric_cache_key`).  ``None``
        for hand-built fabrics; used by the preflight gate and the
        on-disk fabric cache.
    """

    net: Network
    lidmap: LidMap
    tables: dict[int, dict[int, int]] = field(default_factory=dict)
    vl_of_dlid: dict[int, int] = field(default_factory=dict)
    num_vls: int = 1
    engine_name: str = "unrouted"
    notes: list[str] = field(default_factory=list)
    cache_key: str | None = None
    #: Resolved-path memo keyed by ``(src, dst, lid_index)``; valid only
    #: while both the forwarding tables and the topology version stand
    #: still.  Table writes clear it directly, topology changes are
    #: caught by comparing :attr:`Network.version` on lookup.
    _path_cache: dict[tuple[int, int, int], list[int]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _path_cache_version: int = field(
        default=-1, init=False, repr=False, compare=False
    )

    # --- table installation -------------------------------------------------
    def set_route(self, switch: int, dlid: int, link_id: int) -> None:
        """Install one forwarding entry; the link must leave ``switch``."""
        link = self.net.link(link_id)
        if link.src != switch:
            raise RoutingError(
                f"cannot install route at switch {switch} via link {link_id} "
                f"which leaves node {link.src}"
            )
        if self._path_cache:
            self._path_cache.clear()
        self.tables.setdefault(switch, {})[dlid] = link_id

    def install_terminal_hops(self) -> None:
        """Install the final switch -> terminal hop for every terminal LID.

        Every routing engine calls this first; it is the part of the
        table that is topology-determined (each LID's owning port).
        """
        for t in self.net.terminals:
            down = self.net.terminal_uplink(t).reverse_id
            sw = self.net.attached_switch(t)
            for dlid in self.lidmap.lids_of(t):
                self.set_route(sw, dlid, down)

    # --- resolution -----------------------------------------------------------
    def out_link(self, switch: int, dlid: int) -> int:
        """Forwarding lookup; raises :class:`UnreachableError` on a miss."""
        try:
            return self.tables[switch][dlid]
        except KeyError:
            raise UnreachableError(
                f"switch {switch} has no route for dlid {dlid}"
            ) from None

    def resolve(self, src_terminal: int, dlid: int) -> list[int]:
        """Walk the tables from a terminal to a destination LID.

        Returns the link-id path including the terminal uplink and the
        final switch->terminal hop.  Raises :class:`RoutingError` if the
        walk revisits a switch (forwarding loop — exactly the failure
        mode the paper's triangle example in section 3.2 describes).
        """
        dst_node = self.lidmap.node_of(dlid)
        if src_terminal == dst_node:
            return []
        uplink = self.net.terminal_uplink(src_terminal)
        path = [uplink.id]
        here = uplink.dst
        visited = {here}
        while True:
            link_id = self.out_link(here, dlid)
            link = self.net.link(link_id)
            if not link.enabled:
                raise UnreachableError(
                    f"route for dlid {dlid} at switch {here} uses disabled "
                    f"link {link_id}"
                )
            path.append(link_id)
            if link.dst == dst_node:
                return path
            here = link.dst
            if self.net.is_terminal(here):
                raise RoutingError(
                    f"route for dlid {dlid} exits at wrong terminal {here}"
                )
            if here in visited:
                raise RoutingError(
                    f"forwarding loop for dlid {dlid} at switch {here}"
                )
            visited.add(here)

    def path(self, src: int, dst: int, lid_index: int = 0) -> list[int]:
        """Terminal-to-terminal path via the destination's ``lid_index``.

        Memoised per ``(src, dst, lid_index)`` while the topology
        version and the tables stand still — collective builders resolve
        the same pairs once per phase, and a re-sweep (which installs
        new routes) or a cable event (which bumps the version) drops the
        whole memo.  Returns a fresh list each call; mutating it never
        corrupts the cache.
        """
        version = self.net.version
        if version != self._path_cache_version:
            self._path_cache.clear()
            self._path_cache_version = version
        key = (src, dst, lid_index)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = self.resolve(src, self.lidmap.lid(dst, lid_index))
            self._path_cache[key] = cached
        return cached.copy()

    def hops(self, src: int, dst: int, lid_index: int = 0) -> int:
        """Switch-to-switch hop count between two terminals."""
        return self.net.path_hops(self.path(src, dst, lid_index))

    # --- bulk iteration ---------------------------------------------------------
    def iter_dest_paths(self, dlid: int) -> Iterator[tuple[int, list[int]]]:
        """All (source terminal, path) pairs toward one destination LID."""
        dst_node = self.lidmap.node_of(dlid)
        for t in self.net.terminals:
            if t != dst_node:
                yield t, self.resolve(t, dlid)

    def vl(self, dlid: int) -> int:
        """Virtual lane a packet for ``dlid`` travels on (0 by default)."""
        return self.vl_of_dlid.get(dlid, 0)

    # --- LFT export/import --------------------------------------------------
    def dump_lft(self) -> str:
        """Serialise the linear forwarding tables, ibdiagnet-style.

        One block per switch::

            Switch <id> lid <switch lid>
            <dlid> <out link id> <vl>

        The text round-trips through :meth:`load_lft`, letting users
        diff routings across engine versions or archive a deployment's
        tables — the workflow the paper's artifact supports with real
        OpenSM dumps.
        """
        lines: list[str] = [f"# LFT dump: {self.net.name} engine={self.engine_name}"]
        for sw in self.net.switches:
            entries = self.tables.get(sw, {})
            lines.append(f"Switch {sw} lid {self.lidmap.base.get(sw, 0)}")
            for dlid in sorted(entries):
                lines.append(f"{dlid} {entries[dlid]} {self.vl(dlid)}")
        return "\n".join(lines) + "\n"

    def load_lft(self, text: str) -> None:
        """Install tables from a :meth:`dump_lft` text (replaces all
        existing entries and per-destination lanes)."""
        tables: dict[int, dict[int, int]] = {}
        vl_of: dict[int, int] = {}
        current: int | None = None
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("Switch "):
                current = int(line.split()[1])
                tables[current] = {}
                continue
            if current is None:
                raise RoutingError(f"LFT entry before any switch header: {line!r}")
            dlid_s, link_s, vl_s = line.split()
            dlid, link_id = int(dlid_s), int(link_s)
            if self.net.link(link_id).src != current:
                raise RoutingError(
                    f"LFT entry routes dlid {dlid} at switch {current} via "
                    f"foreign link {link_id}"
                )
            tables[current][dlid] = link_id
            vl_of[dlid] = int(vl_s)
        self._path_cache.clear()
        self.tables = tables
        self.vl_of_dlid = {d: v for d, v in vl_of.items() if v > 0}
        self.num_vls = max(vl_of.values(), default=0) + 1

    # --- full-state serialization --------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """The fabric's routed state as a JSON-safe dict.

        Captures everything OpenSM + the routing engine computed — LID
        assignment, linear forwarding tables, and the virtual-lane
        layering — but *not* the topology itself: networks are cheap to
        regenerate deterministically, routing them is not.  The payload
        round-trips through :meth:`from_payload` byte-identically (same
        :meth:`dump_lft` text, same LID maps, same lanes).
        """
        return {
            "format_version": FABRIC_FORMAT_VERSION,
            "net": self.net.name,
            "engine": self.engine_name,
            "cache_key": self.cache_key,
            "num_vls": self.num_vls,
            "notes": list(self.notes),
            "lidmap": {
                "lmc": self.lidmap.lmc,
                "base": {str(n): lid for n, lid in self.lidmap.base.items()},
                "owner": {
                    str(lid): [node, idx]
                    for lid, (node, idx) in self.lidmap.owner.items()
                },
            },
            "tables": {
                str(sw): {str(dlid): link for dlid, link in entries.items()}
                for sw, entries in self.tables.items()
            },
            "vl_of_dlid": {str(d): v for d, v in self.vl_of_dlid.items()},
        }

    @classmethod
    def from_payload(cls, net: Network, payload: dict[str, Any]) -> "Fabric":
        """Rebuild a routed fabric from :meth:`to_payload` output.

        ``net`` must be the same topology the payload was produced on
        (regenerated from the same generator/seed); the network name and
        every table entry's source switch are checked so a mismatched
        plane fails loudly instead of forwarding into nowhere.
        """
        version = payload.get("format_version")
        if version != FABRIC_FORMAT_VERSION:
            raise RoutingError(
                f"fabric payload format {version!r} != "
                f"{FABRIC_FORMAT_VERSION} (stale cache entry?)"
            )
        if payload["net"] != net.name:
            raise RoutingError(
                f"fabric payload is for network {payload['net']!r}, "
                f"not {net.name!r}"
            )
        lm = payload["lidmap"]
        lidmap = LidMap(
            lmc=int(lm["lmc"]),
            base={int(n): int(lid) for n, lid in lm["base"].items()},
            owner={
                int(lid): (int(node), int(idx))
                for lid, (node, idx) in lm["owner"].items()
            },
        )
        fabric = cls(
            net,
            lidmap,
            num_vls=int(payload["num_vls"]),
            engine_name=str(payload["engine"]),
            notes=list(payload.get("notes", ())),
            cache_key=payload.get("cache_key"),
        )
        for sw_s, entries in payload["tables"].items():
            sw = int(sw_s)
            table: dict[int, int] = {}
            for dlid_s, link_id in entries.items():
                if net.link(link_id).src != sw:
                    raise RoutingError(
                        f"fabric payload routes dlid {dlid_s} at switch "
                        f"{sw} via foreign link {link_id}"
                    )
                table[int(dlid_s)] = int(link_id)
            fabric.tables[sw] = table
        fabric.vl_of_dlid = {
            int(d): int(v) for d, v in payload.get("vl_of_dlid", {}).items()
        }
        return fabric

    def save(self, path: str | Path) -> None:
        """Write the routed state to ``path`` as JSON (atomic rename so a
        killed writer never leaves a truncated cache entry)."""
        path = Path(path)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(self.to_payload(), separators=(",", ":")))
        tmp.replace(path)

    @classmethod
    def load(cls, net: Network, path: str | Path) -> "Fabric":
        """Read a routed state saved by :meth:`save` onto ``net``."""
        return cls.from_payload(net, json.loads(Path(path).read_text()))

    def __repr__(self) -> str:
        return (
            f"Fabric({self.net.name!r}, engine={self.engine_name!r}, "
            f"lmc={self.lidmap.lmc}, vls={self.num_vls})"
        )
