"""The routed fabric: network + LIDs + linear forwarding tables.

InfiniBand switches forward by destination LID only ("destination-based
forwarding scheme", paper section 3.2): every switch holds a linear
forwarding table mapping each LID to one output port.  :class:`Fabric`
mirrors that — ``tables[switch][dlid] -> out link id`` — and resolves
paths by walking the tables exactly like a packet would, which means a
routing bug shows up as the same forwarding loop it would cause on real
hardware (and is caught by the walk's loop guard).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.core.errors import RoutingError, UnreachableError
from repro.ib.addressing import LidMap
from repro.ib.tables import ForwardingTables, walk_dest_columns, walk_dest_links
from repro.topology.network import Network

#: On-disk fabric payload format.  Bump on any change to the payload
#: layout; loaders reject mismatched versions so a stale cache entry is
#: rebuilt instead of silently misread.  History:
#:
#: * 1 — dict-of-dicts ``tables`` (``{switch: {dlid: link}}``).
#: * 2 — dense ``tables`` (``{"dlids": [...], "rows": {switch: [link
#:   per dlid, -1 = absent]}, "overflow": {...}}``), matching the
#:   array-backed :class:`~repro.ib.tables.ForwardingTables`.  Version-1
#:   cache entries are rejected and rebuilt.
#: * 3 — the dense matrix may live in a ``.rows.npy`` sidecar instead of
#:   inline JSON: ``"rows"`` is replaced by ``"rows_file"`` (sidecar
#:   file name, relative to the payload), ``"row_switches"`` (present
#:   in-universe switches, first-write order) and ``"rows_shape"``.
#:   Sidecar payloads can be opened zero-copy with
#:   ``np.load(..., mmap_mode="c")`` — the campaign workers' shared
#:   fabric cache.  Inline ``"rows"`` remains valid version-3 output
#:   (``save(arrays=False)``); version-2 entries are rejected and
#:   rebuilt.
#: * 4 — the dense matrix uses the narrowest dtype that holds the
#:   link-id space (:func:`repro.ib.tables.table_dtype_for`, int16 on
#:   every pre-10k config) and sidecar payloads record it as
#:   ``"rows_dtype"``.  Version-3 entries (always int32) are rejected
#:   and rebuilt rather than silently widened.
FABRIC_FORMAT_VERSION = 4


@dataclass
class Fabric:
    """A network with installed LIDs and forwarding state.

    Attributes
    ----------
    net:
        The underlying topology.
    lidmap:
        LID assignment (see :mod:`repro.ib.addressing`).
    tables:
        Per-switch linear forwarding tables: ``tables[sw][dlid]`` is the
        id of the out link a packet for ``dlid`` takes at switch ``sw``.
    vl_of_dlid:
        Virtual lane assigned to each destination LID by the deadlock
        layering (DFSSSP granularity: whole destinations move between
        layers).  Empty until the subnet manager ran the layering.
    num_vls:
        Number of virtual lanes in use (1 if no layering ran).
    engine_name:
        Name of the routing engine that produced the tables.
    notes:
        Free-form diagnostics from the engine (e.g. PARX fallback events).
    cache_key:
        Content key of the configuration that produced this fabric
        (combination/scale/faults/seed, see
        :func:`repro.experiments.configs.fabric_cache_key`).  ``None``
        for hand-built fabrics; used by the preflight gate and the
        on-disk fabric cache.
    """

    net: Network
    lidmap: LidMap
    tables: ForwardingTables = field(default_factory=dict)  # type: ignore[assignment]
    vl_of_dlid: dict[int, int] = field(default_factory=dict)
    num_vls: int = 1
    engine_name: str = "unrouted"
    notes: list[str] = field(default_factory=list)
    cache_key: str | None = None
    #: Resolved-path memo keyed by ``(src, dst, lid_index)``; valid only
    #: while both the forwarding tables and the topology version stand
    #: still.  Table mutations bump ``tables.version`` and topology
    #: changes bump :attr:`Network.version`; both are compared on lookup.
    _path_cache: dict[tuple[int, int, int], list[int]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: Per-destination bulk memo (:meth:`dest_paths`): dlid -> per-switch-
    #: row path tuples; shares the version triple with ``_path_cache``.
    _dest_path_cache: dict[int, list] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _path_cache_version: tuple[int, int, int] = field(
        default=(-1, -1, -1), init=False, repr=False, compare=False
    )

    def __setattr__(self, name: str, value: Any) -> None:
        # Any mapping assigned to ``tables`` (engine code and tests
        # assign plain dicts) is wrapped into the dense array backing.
        # ``net`` and ``lidmap`` precede ``tables`` in field order, so
        # they are already set when dataclass ``__init__`` gets here.
        if name == "tables" and not isinstance(value, ForwardingTables):
            value = ForwardingTables(self.net, self.lidmap, value)
        object.__setattr__(self, name, value)

    # --- table installation -------------------------------------------------
    def set_route(self, switch: int, dlid: int, link_id: int) -> None:
        """Install one forwarding entry; the link must leave ``switch``."""
        link = self.net.link(link_id)
        if link.src != switch:
            raise RoutingError(
                f"cannot install route at switch {switch} via link {link_id} "
                f"which leaves node {link.src}"
            )
        self.tables.setdefault(switch, {})[dlid] = link_id

    def install_terminal_hops(self) -> None:
        """Install the final switch -> terminal hop for every terminal LID.

        Every routing engine calls this first; it is the part of the
        table that is topology-determined (each LID's owning port).
        """
        for t in self.net.terminals:
            down = self.net.terminal_uplink(t).reverse_id
            sw = self.net.attached_switch(t)
            for dlid in self.lidmap.lids_of(t):
                self.set_route(sw, dlid, down)

    # --- resolution -----------------------------------------------------------
    def out_link(self, switch: int, dlid: int) -> int:
        """Forwarding lookup; raises :class:`UnreachableError` on a miss."""
        try:
            return self.tables[switch][dlid]
        except KeyError:
            raise UnreachableError(
                f"switch {switch} has no route for dlid {dlid}"
            ) from None

    def resolve(self, src_terminal: int, dlid: int) -> list[int]:
        """Walk the tables from a terminal to a destination LID.

        Returns the link-id path including the terminal uplink and the
        final switch->terminal hop.  Raises :class:`RoutingError` if the
        walk revisits a switch (forwarding loop — exactly the failure
        mode the paper's triangle example in section 3.2 describes).
        """
        dst_node = self.lidmap.node_of(dlid)
        if src_terminal == dst_node:
            return []
        uplink = self.net.terminal_uplink(src_terminal)
        path = [uplink.id]
        here = uplink.dst
        visited = {here}
        while True:
            link_id = self.out_link(here, dlid)
            link = self.net.link(link_id)
            if not link.enabled:
                raise UnreachableError(
                    f"route for dlid {dlid} at switch {here} uses disabled "
                    f"link {link_id}"
                )
            path.append(link_id)
            if link.dst == dst_node:
                return path
            here = link.dst
            if self.net.is_terminal(here):
                raise RoutingError(
                    f"route for dlid {dlid} exits at wrong terminal {here}"
                )
            if here in visited:
                raise RoutingError(
                    f"forwarding loop for dlid {dlid} at switch {here}"
                )
            visited.add(here)

    def path(self, src: int, dst: int, lid_index: int = 0) -> list[int]:
        """Terminal-to-terminal path via the destination's ``lid_index``.

        Memoised per ``(src, dst, lid_index)`` while the topology
        version and the tables stand still — collective builders resolve
        the same pairs once per phase, and a re-sweep (which installs
        new routes) or a cable event (which bumps the version) drops the
        whole memo.  Returns a fresh list each call; mutating it never
        corrupts the cache.
        """
        self._validate_memos()
        key = (src, dst, lid_index)
        cached = self._path_cache.get(key)
        if cached is None:
            cached = self.resolve(src, self.lidmap.lid(dst, lid_index))
            self._path_cache[key] = cached
        return cached.copy()

    def _validate_memos(self) -> None:
        """Drop the path memos if the topology or tables moved on."""
        version = (self.net.version, self.tables.uid, self.tables.version)
        if version != self._path_cache_version:
            self._path_cache.clear()
            self._dest_path_cache.clear()
            self._path_cache_version = version

    def dest_paths(self, dlid: int) -> list:
        """Per-switch-row link paths toward one destination LID, in bulk.

        ``dest_paths(dlid)[row]`` is the link-id tuple a packet entering
        the fabric at switch ``tables.switch_ids[row]`` takes to reach
        ``dlid`` — the post-uplink portion of :meth:`resolve`'s path,
        ejection hop included — or ``None`` where the walk fails for any
        reason ``resolve`` would raise on (missing entry, disabled link,
        wrong-terminal exit, forwarding loop).  Callers needing the
        exact diagnostic fall back to :meth:`resolve` / :meth:`path` for
        those rows.

        One vectorised :func:`~repro.ib.tables.walk_dest_links` pass per
        destination instead of a Python table walk per source terminal;
        memoised under the same version triple as :meth:`path`.
        """
        self._validate_memos()
        cached = self._dest_path_cache.get(dlid)
        if cached is None:
            cached = self._build_dest_paths(dlid)
            self._dest_path_cache[dlid] = cached
        return cached

    def _build_dest_paths(self, dlid: int) -> list:
        n_rows = len(self.tables.switch_ids)
        col = self.tables.column_of(dlid)
        if col is None:
            return [None] * n_rows
        ok, lens, steps = walk_dest_links(
            self.tables.dense,
            self.net.switch_graph(),
            col,
            self.lidmap.node_of(dlid),
        )
        rows = steps.T.tolist()
        lens_list = lens.tolist()
        return [
            tuple(rows[r][: lens_list[r]]) if good else None
            for r, good in enumerate(ok.tolist())
        ]

    def hops(self, src: int, dst: int, lid_index: int = 0) -> int:
        """Switch-to-switch hop count between two terminals."""
        return self.net.path_hops(self.path(src, dst, lid_index))

    # --- bulk iteration ---------------------------------------------------------
    def resolve_paths(self, lid_index: int = 0) -> "PathResolution":
        """Resolve all ordered terminal pairs at once.

        Walks the dense next-hop matrix O(diameter) times with numpy
        gathers — one walk state per (switch, destination) instead of
        one Python table walk per pair — then expands switches to their
        attached terminals.  Verdicts match :meth:`path` exactly: a pair
        is unreachable precisely when ``path`` would raise (missing
        entry, disabled link, wrong-terminal exit, forwarding loop, or a
        detached source terminal), and ``hops`` equals
        ``net.path_hops(path(src, dst, lid_index))`` for reachable pairs.
        """
        ok, hops, _ = self._resolve_pair_matrices(
            self.tables.dense, None, lid_index
        )
        return PathResolution(
            terminals=list(self.net.terminals),
            lid_index=lid_index,
            ok=ok,
            hops=hops,
        )

    def _resolve_pair_matrices(
        self,
        matrix: "np.ndarray",
        old_matrix: "np.ndarray | None",
        lid_index: int = 0,
    ) -> tuple["np.ndarray", "np.ndarray", "np.ndarray | None"]:
        """Pairwise ok/hops (+path-changed) over an arbitrary table matrix.

        The walk judges ``matrix`` under the *current* topology, which is
        what lets the re-sweep diff old tables against new ones on the
        degraded fabric.  All three results are ``(T, T)`` arrays over
        ordered terminal pairs; ``changed`` is None without
        ``old_matrix`` (see :func:`repro.ib.tables.walk_dest_columns`).
        """
        net = self.net
        graph = net.switch_graph()
        tables = self.tables
        terminals = net.terminals
        cols = []
        dest_nodes = []
        valid = []
        for t in terminals:
            col = tables.column_of(self.lidmap.lid(t, lid_index))
            cols.append(-1 if col is None else col)
            dest_nodes.append(t)
            valid.append(col is not None)
        cols_arr = np.asarray(cols, dtype=np.int64)
        ok_sw, hops_sw, changed_sw = walk_dest_columns(
            matrix,
            graph,
            np.where(cols_arr < 0, 0, cols_arr),
            np.asarray(dest_nodes, dtype=np.int64),
            old_matrix=old_matrix,
        )
        ok_sw = ok_sw & np.asarray(valid, dtype=bool)[None, :]
        # Expand to source terminals via their host switch; a detached
        # terminal (disabled uplink) reaches nothing.
        hosts = graph.host_index[np.asarray(terminals, dtype=np.int64)]
        attached = hosts >= 0
        hosts_safe = np.where(attached, hosts, 0)
        ok = ok_sw[hosts_safe] & attached[:, None]
        hops = np.where(ok, hops_sw[hosts_safe], -1).astype(np.int32)
        np.fill_diagonal(ok, False)
        np.fill_diagonal(hops, -1)
        changed = None if changed_sw is None else changed_sw[hosts_safe]
        return ok, hops, changed

    def iter_dest_paths(self, dlid: int) -> Iterator[tuple[int, list[int]]]:
        """All (source terminal, path) pairs toward one destination LID."""
        dst_node = self.lidmap.node_of(dlid)
        for t in self.net.terminals:
            if t != dst_node:
                yield t, self.resolve(t, dlid)

    def vl(self, dlid: int) -> int:
        """Virtual lane a packet for ``dlid`` travels on (0 by default)."""
        return self.vl_of_dlid.get(dlid, 0)

    # --- LFT export/import --------------------------------------------------
    def dump_lft(self) -> str:
        """Serialise the linear forwarding tables, ibdiagnet-style.

        One block per switch::

            Switch <id> lid <switch lid>
            <dlid> <out link id> <vl>

        The text round-trips through :meth:`load_lft`, letting users
        diff routings across engine versions or archive a deployment's
        tables — the workflow the paper's artifact supports with real
        OpenSM dumps.
        """
        lines: list[str] = [f"# LFT dump: {self.net.name} engine={self.engine_name}"]
        for sw in self.net.switches:
            entries = self.tables.get(sw, {})
            lines.append(f"Switch {sw} lid {self.lidmap.base.get(sw, 0)}")
            for dlid in sorted(entries):
                lines.append(f"{dlid} {entries[dlid]} {self.vl(dlid)}")
        return "\n".join(lines) + "\n"

    def load_lft(self, text: str) -> None:
        """Install tables from a :meth:`dump_lft` text (replaces all
        existing entries and per-destination lanes)."""
        tables: dict[int, dict[int, int]] = {}
        vl_of: dict[int, int] = {}
        current: int | None = None
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("Switch "):
                current = int(line.split()[1])
                tables[current] = {}
                continue
            if current is None:
                raise RoutingError(f"LFT entry before any switch header: {line!r}")
            dlid_s, link_s, vl_s = line.split()
            dlid, link_id = int(dlid_s), int(link_s)
            if self.net.link(link_id).src != current:
                raise RoutingError(
                    f"LFT entry routes dlid {dlid} at switch {current} via "
                    f"foreign link {link_id}"
                )
            tables[current][dlid] = link_id
            vl_of[dlid] = int(vl_s)
        self._path_cache.clear()
        self._dest_path_cache.clear()
        self.tables = tables
        self.vl_of_dlid = {d: v for d, v in vl_of.items() if v > 0}
        self.num_vls = max(vl_of.values(), default=0) + 1

    # --- full-state serialization --------------------------------------------
    def to_payload(self, *, rows_file: str | None = None) -> dict[str, Any]:
        """The fabric's routed state as a JSON-safe dict.

        Captures everything OpenSM + the routing engine computed — LID
        assignment, linear forwarding tables, and the virtual-lane
        layering — but *not* the topology itself: networks are cheap to
        regenerate deterministically, routing them is not.  The payload
        round-trips through :meth:`from_payload` byte-identically (same
        :meth:`dump_lft` text, same LID maps, same lanes).

        With ``rows_file`` the in-universe rows are *referenced* instead
        of inlined: the payload carries the sidecar's file name plus the
        present-switch list, and the caller is responsible for writing
        the dense matrix next to the JSON (:meth:`save` with
        ``arrays=True`` does both atomically).
        """
        if rows_file is None:
            rows: dict[str, Any] = {
                "rows": {
                    str(sw): (
                        self.tables.dense[row].tolist()
                        if (row := self.tables.row_of(sw)) is not None
                        else None
                    )
                    for sw in self.tables
                },
            }
        else:
            rows = {
                "rows_file": rows_file,
                "row_switches": [
                    int(sw)
                    for sw in self.tables
                    if self.tables.row_of(sw) is not None
                ],
                "rows_shape": list(self.tables.dense.shape),
                "rows_dtype": str(self.tables.dense.dtype),
            }
        return {
            "format_version": FABRIC_FORMAT_VERSION,
            "net": self.net.name,
            "engine": self.engine_name,
            "cache_key": self.cache_key,
            "num_vls": self.num_vls,
            "notes": list(self.notes),
            "lidmap": {
                "lmc": self.lidmap.lmc,
                "base": {str(n): lid for n, lid in self.lidmap.base.items()},
                "owner": {
                    str(lid): [node, idx]
                    for lid, (node, idx) in self.lidmap.owner.items()
                },
            },
            "tables": {
                "dlids": [int(d) for d in self.tables.dlids],
                **rows,
                "overflow": {
                    str(sw): {str(dlid): int(link) for dlid, link in entries.items()}
                    for sw, entries in self.tables.overflow_copy().items()
                },
                "foreign_rows": {
                    str(sw): {str(d): int(v) for d, v in dict(self.tables[sw]).items()}
                    for sw in self.tables
                    if self.tables.row_of(sw) is None
                },
            },
            "vl_of_dlid": {str(d): v for d, v in self.vl_of_dlid.items()},
        }

    @classmethod
    def from_payload(
        cls,
        net: Network,
        payload: dict[str, Any],
        *,
        dense_rows: "np.ndarray | None" = None,
    ) -> "Fabric":
        """Rebuild a routed fabric from :meth:`to_payload` output.

        ``net`` must be the same topology the payload was produced on
        (regenerated from the same generator/seed); the network name and
        every table entry's source switch are checked so a mismatched
        plane fails loudly instead of forwarding into nowhere.

        Sidecar payloads (``rows_file`` present) need ``dense_rows`` —
        the matrix from the ``.rows.npy`` next to the JSON, eagerly or
        memory-mapped (:meth:`load` handles both).  The matrix is
        adopted as-is via :meth:`ForwardingTables.attach_dense` after
        one vectorised foreign-link scan, so a memmap stays zero-copy.
        """
        version = payload.get("format_version")
        if version != FABRIC_FORMAT_VERSION:
            raise RoutingError(
                f"fabric payload format {version!r} != "
                f"{FABRIC_FORMAT_VERSION} (stale cache entry?)"
            )
        if payload["net"] != net.name:
            raise RoutingError(
                f"fabric payload is for network {payload['net']!r}, "
                f"not {net.name!r}"
            )
        lm = payload["lidmap"]
        lidmap = LidMap(
            lmc=int(lm["lmc"]),
            base={int(n): int(lid) for n, lid in lm["base"].items()},
            owner={
                int(lid): (int(node), int(idx))
                for lid, (node, idx) in lm["owner"].items()
            },
        )
        fabric = cls(
            net,
            lidmap,
            num_vls=int(payload["num_vls"]),
            engine_name=str(payload["engine"]),
            notes=list(payload.get("notes", ())),
            cache_key=payload.get("cache_key"),
        )
        tp = payload["tables"]
        link_src = net.switch_graph().link_src_node
        n_links = len(net.links)
        payload_dlids = [int(d) for d in tp["dlids"]]
        aligned = payload_dlids == [int(d) for d in fabric.tables.dlids]
        if "rows_file" in tp:
            if dense_rows is None:
                raise RoutingError(
                    "fabric payload references sidecar "
                    f"{tp['rows_file']!r}; load it through Fabric.load or "
                    "pass dense_rows"
                )
            if not aligned:
                raise RoutingError(
                    "fabric sidecar payload dlid universe does not match "
                    "the network's (stale cache entry?)"
                )
            m = dense_rows
            expect = tuple(tp.get("rows_shape", m.shape))
            if m.shape != expect or m.shape != fabric.tables.dense.shape:
                raise RoutingError(
                    f"fabric sidecar matrix shape {m.shape} != expected "
                    f"{expect} / universe {fabric.tables.dense.shape}"
                )
            expect_dtype = fabric.tables.dense.dtype
            if m.dtype != expect_dtype:
                raise RoutingError(
                    f"fabric sidecar matrix dtype {m.dtype} != "
                    f"{expect_dtype} (stale cache entry?)"
                )
            # Same foreign-link check as the inline path, one vector pass
            # over the whole matrix: every entry must leave its row's
            # switch.
            sw_arr = np.asarray(fabric.tables.switch_ids, dtype=np.int64)
            present = m >= 0
            clamped = np.where(present & (m < n_links), m, 0)
            bad = present & (
                (m >= n_links) | (link_src[clamped] != sw_arr[:, None])
            )
            if bad.any():
                r, c = np.argwhere(bad)[0]
                raise RoutingError(
                    f"fabric payload routes entries at switch "
                    f"{int(sw_arr[r])} via foreign link {int(m[r, c])}"
                )
            fabric.tables.attach_dense(
                m, [int(sw) for sw in tp.get("row_switches", sw_arr)]
            )
            inline_rows: dict[str, Any] = {}
        else:
            inline_rows = tp["rows"]
        for sw_s, row_values in inline_rows.items():
            sw = int(sw_s)
            if row_values is None:
                continue  # recorded under foreign_rows
            arr = np.asarray(row_values, dtype=np.int32)
            present = arr >= 0
            entries = arr[present]
            if entries.size and (
                (entries >= n_links).any() or (link_src[entries] != sw).any()
            ):
                bad = next(
                    int(e)
                    for e in entries
                    if e >= n_links or link_src[e] != sw
                )
                raise RoutingError(
                    f"fabric payload routes entries at switch {sw} via "
                    f"foreign link {bad}"
                )
            if aligned:
                fabric.tables.install_row_array(sw, arr)
            else:
                fabric.tables[sw] = {
                    d: int(v) for d, v in zip(payload_dlids, arr) if v >= 0
                }
        for sw_s, entries in tp.get("overflow", {}).items():
            sw = int(sw_s)
            row = fabric.tables.setdefault(sw, {})
            for dlid_s, link_id in entries.items():
                if net.link(int(link_id)).src != sw:
                    raise RoutingError(
                        f"fabric payload routes dlid {dlid_s} at switch "
                        f"{sw} via foreign link {link_id}"
                    )
                row[int(dlid_s)] = int(link_id)
        for sw_s, entries in tp.get("foreign_rows", {}).items():
            fabric.tables[int(sw_s)] = {
                int(d): int(v) for d, v in entries.items()
            }
        fabric.vl_of_dlid = {
            int(d): int(v) for d, v in payload.get("vl_of_dlid", {}).items()
        }
        return fabric

    @staticmethod
    def rows_sidecar(path: str | Path) -> Path:
        """The ``.rows.npy`` sidecar name for a payload at ``path``."""
        path = Path(path)
        return path.with_name(f"{path.stem}.rows.npy")

    def save(self, path: str | Path, *, arrays: bool = False) -> None:
        """Write the routed state to ``path`` as JSON (atomic rename so a
        killed writer never leaves a truncated cache entry).

        With ``arrays=True`` the dense forwarding matrix goes to a
        ``.rows.npy`` sidecar next to the JSON (written first, also via
        tmp + rename), and the JSON references it — the mmap-openable
        cache format campaign workers attach to zero-copy.
        """
        path = Path(path)
        rows_file: str | None = None
        if arrays:
            sidecar = self.rows_sidecar(path)
            tmp_npy = sidecar.with_name(f"{sidecar.name}.tmp{os.getpid()}")
            with open(tmp_npy, "wb") as f:
                np.save(f, np.ascontiguousarray(self.tables.dense))
            tmp_npy.replace(sidecar)
            rows_file = sidecar.name
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(
            json.dumps(self.to_payload(rows_file=rows_file), separators=(",", ":"))
        )
        tmp.replace(path)

    @classmethod
    def load(
        cls, net: Network, path: str | Path, *, mmap_mode: str | None = None
    ) -> "Fabric":
        """Read a routed state saved by :meth:`save` onto ``net``.

        ``mmap_mode`` applies to a ``.rows.npy`` sidecar, if the payload
        has one ("c" = copy-on-write: reads stay page-backed and shared
        across processes, a later re-sweep's writes land in private
        memory and never touch the cache file).  Inline payloads ignore
        it.
        """
        path = Path(path)
        payload = json.loads(path.read_text())
        dense = None
        rows_file = payload.get("tables", {}).get("rows_file")
        if rows_file is not None:
            dense = np.load(path.with_name(rows_file), mmap_mode=mmap_mode)
        return cls.from_payload(net, payload, dense_rows=dense)

    def __repr__(self) -> str:
        return (
            f"Fabric({self.net.name!r}, engine={self.engine_name!r}, "
            f"lmc={self.lidmap.lmc}, vls={self.num_vls})"
        )


@dataclass
class PathResolution:
    """Bulk all-pairs resolution result (:meth:`Fabric.resolve_paths`).

    Attributes
    ----------
    terminals:
        Terminal node ids, defining the row/column order of the arrays.
    lid_index:
        The destination LID index the walks used.
    ok:
        ``(T, T)`` bool; ``ok[i, j]`` iff terminal ``i`` can reach
        terminal ``j``'s LID.  The diagonal is always False.
    hops:
        ``(T, T)`` int32 switch-to-switch hop counts; -1 where not ok.
    """

    terminals: list[int]
    lid_index: int
    ok: np.ndarray
    hops: np.ndarray

    def __post_init__(self) -> None:
        self._pos = {t: i for i, t in enumerate(self.terminals)}

    def reachable(self, src: int, dst: int) -> bool:
        return bool(self.ok[self._pos[src], self._pos[dst]])

    def hop_count(self, src: int, dst: int) -> int:
        """Hops for a reachable pair; raises on unreachable ones."""
        h = int(self.hops[self._pos[src], self._pos[dst]])
        if h < 0:
            raise UnreachableError(f"no path {src} -> {dst}")
        return h

    @property
    def num_unreachable(self) -> int:
        """Ordered pairs (src != dst) with no resolvable path."""
        n = len(self.terminals)
        return n * (n - 1) - int(self.ok.sum())

    def unreachable_pairs(self, limit: int | None = None) -> list[tuple[int, int]]:
        """Unreachable ordered pairs in source-major order, up to ``limit``."""
        bad = ~self.ok
        np.fill_diagonal(bad, False)
        out: list[tuple[int, int]] = []
        for i, j in np.argwhere(bad):
            out.append((self.terminals[i], self.terminals[j]))
            if limit is not None and len(out) >= limit:
                break
        return out
