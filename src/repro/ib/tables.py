"""Dense array backing for linear forwarding tables.

:class:`ForwardingTables` stores the fabric's forwarding state as one
``switch x dlid`` integer matrix (-1 = no entry; narrowest dtype that
holds the link-id space, see :func:`table_dtype_for`) behind the exact
dict-of-dicts mapping API the rest of the library — and its tests — use:
``tables[sw][dlid]``, ``tables.get(sw, {})``, ``tables.setdefault(sw,
{})[dlid] = link``, ``del tables[sw][dlid]``, row ``.pop``/``.items()``,
wholesale ``fabric.tables = {...}`` assignment.  The matrix is what
makes the sweep pipeline fast: stale-entry detection, path snapshots,
and channel-dependency extraction become numpy gathers over columns
instead of per-entry Python loops (:func:`walk_dest_columns`).

The *universe* of the matrix is fixed at construction: rows are the
network's switches, columns the sorted LIDs of the fabric's
:class:`~repro.ib.addressing.LidMap`.  Entries outside the universe
(tests install routes at foreign dlids; the linter installs foreign
links) go to an overflow dict so the mapping facade never rejects a
write the plain dicts accepted — no validation happens here, exactly
like before (``Fabric.set_route`` remains the validating entry point).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping, MutableMapping

import numpy as np

from repro.core.chunking import items_per_chunk
from repro.core.errors import RoutingError
from repro.core.parallel import run_walk_job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ib.addressing import LidMap
    from repro.topology.network import Network, SwitchGraph

#: Matrix value marking an absent forwarding entry.
NO_ENTRY = -1


def table_dtype_for(num_links: int) -> np.dtype:
    """The narrowest signed dtype holding every link id (and -1).

    int16 halves the dominant dense allocation on fabrics whose link-id
    space fits (every existing config, up to 32k directed links); the
    10k-endpoint configs cross that line and widen to int32.  All
    writers refuse — loudly, never by wrapping — values outside the
    chosen dtype's range.
    """
    return np.dtype(
        np.int16 if num_links <= np.iinfo(np.int16).max else np.int32
    )


class TableRow(MutableMapping):
    """Mutable mapping view of one switch's linear forwarding table.

    Reads and writes go straight to the backing matrix row (plus the
    switch's overflow dict for out-of-universe dlids).  Iteration yields
    in-universe dlids in ascending LID order, then overflow entries —
    deterministic, which the dict rows never guaranteed either (callers
    that care sort, e.g. ``dump_lft``).
    """

    __slots__ = ("_tables", "_switch", "_row")

    def __init__(self, tables: "ForwardingTables", switch: int, row: int) -> None:
        self._tables = tables
        self._switch = switch
        self._row = row

    def __getitem__(self, dlid: int) -> int:
        col = self._tables._col_of.get(dlid)
        if col is None:
            return self._tables._overflow[self._switch][dlid]
        link = self._tables._m[self._row, col]
        if link < 0:
            raise KeyError(dlid)
        return int(link)

    def __setitem__(self, dlid: int, link_id: int) -> None:
        t = self._tables
        col = t._col_of.get(dlid)
        if col is None:
            t._overflow.setdefault(self._switch, {})[dlid] = int(link_id)
        else:
            if not t._lo <= link_id <= t._hi:
                raise RoutingError(
                    f"link id {link_id} does not fit forwarding-table "
                    f"dtype {t._m.dtype}"
                )
            t._m[self._row, col] = link_id
        t.version += 1

    def __delitem__(self, dlid: int) -> None:
        t = self._tables
        col = t._col_of.get(dlid)
        if col is None:
            del t._overflow[self._switch][dlid]
        else:
            if t._m[self._row, col] < 0:
                raise KeyError(dlid)
            t._m[self._row, col] = NO_ENTRY
        t.version += 1

    def __contains__(self, dlid: object) -> bool:
        col = self._tables._col_of.get(dlid)
        if col is None:
            return dlid in self._tables._overflow.get(self._switch, ())
        return bool(self._tables._m[self._row, col] >= 0)

    def __iter__(self) -> Iterator[int]:
        t = self._tables
        row = t._m[self._row]
        for col in np.flatnonzero(row >= 0):
            yield int(t._dlids[col])
        yield from t._overflow.get(self._switch, ())

    def __len__(self) -> int:
        t = self._tables
        n = int((t._m[self._row] >= 0).sum())
        return n + len(t._overflow.get(self._switch, ()))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"TableRow(switch={self._switch}, entries={len(self)})"


class ForwardingTables(MutableMapping):
    """The dense ``switch x dlid`` next-hop store behind ``Fabric.tables``.

    A switch key is *present* once a row was created for it (by
    ``setdefault``, item assignment, or an initial dict) — matching the
    plain dict-of-dicts, where ``tables[sw]`` raised until somebody
    wrote there.  :attr:`version` counts every mutation; the fabric's
    path memo and any derived caches key on it.
    """

    _uid_counter = 0

    def __init__(
        self,
        net: "Network",
        lidmap: "LidMap",
        initial: Mapping[int, Mapping[int, int]] | None = None,
    ) -> None:
        self._net = net
        switches = net.switches
        self._row_of: dict[int, int] = {sw: r for r, sw in enumerate(switches)}
        self._switch_ids = switches
        dlids = sorted(lidmap.owner)
        self._dlids = np.asarray(dlids, dtype=np.int64)
        self._col_of: dict[int, int] = {d: c for c, d in enumerate(dlids)}
        dtype = table_dtype_for(len(net.links))
        self._m = np.full((len(switches), len(dlids)), NO_ENTRY, dtype=dtype)
        info = np.iinfo(dtype)
        self._lo, self._hi = int(info.min), int(info.max)
        #: switch -> {dlid -> link} for out-of-universe dlids.
        self._overflow: dict[int, dict[int, int]] = {}
        #: present switch keys -> row view (or plain dict for switches
        #: outside the universe), in first-write order.
        self._rows: dict[int, MutableMapping] = {}
        #: present keys backed by plain dicts (out-of-universe switches).
        self._foreign: set[int] = set()
        self.version = 0
        #: Process-unique instance id: two table objects never share a
        #: ``(uid, version)`` pair, so caches keyed on it can never
        #: confuse a rebuilt table for the one it replaced.
        ForwardingTables._uid_counter += 1
        self.uid = ForwardingTables._uid_counter
        if initial:
            for sw, entries in initial.items():
                self[sw] = entries

    # --- mapping facade ---------------------------------------------------
    def __getitem__(self, switch: int) -> MutableMapping:
        return self._rows[switch]

    def __setitem__(self, switch: int, entries: Mapping[int, int]) -> None:
        row = self._row_of.get(switch)
        if row is None:
            # Unknown switch id: keep a plain dict so the facade stays
            # permissive (the dict tables accepted any key).
            self._rows[switch] = dict(entries)
            self._foreign.add(switch)
            self.version += 1
            return
        view = self._rows.get(switch)
        if view is None:
            view = TableRow(self, switch, row)
            self._rows[switch] = view
        self._m[row, :] = NO_ENTRY
        self._overflow.pop(switch, None)
        self.version += 1
        for dlid, link_id in entries.items():
            view[dlid] = link_id

    def setdefault(self, switch: int, default=None):  # type: ignore[override]
        # The MutableMapping mixin returns ``default`` itself on a miss.
        # Plain dict tables stored that object, so later writes to it
        # were visible; the matrix copies entries out, so we must hand
        # back the live row view instead.
        try:
            return self._rows[switch]
        except KeyError:
            self[switch] = default if default is not None else {}
            return self._rows[switch]

    def __delitem__(self, switch: int) -> None:
        del self._rows[switch]
        self._foreign.discard(switch)
        row = self._row_of.get(switch)
        if row is not None:
            self._m[row, :] = NO_ENTRY
        self._overflow.pop(switch, None)
        self.version += 1

    def __contains__(self, switch: object) -> bool:
        return switch in self._rows

    def __iter__(self) -> Iterator[int]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Mapping):
            if set(self._rows) != set(other):
                return False
            return all(dict(self[sw]) == dict(other[sw]) for sw in self._rows)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"ForwardingTables(switches={len(self._rows)}, "
            f"dlids={len(self._col_of)}, version={self.version})"
        )

    # --- dense access ------------------------------------------------------
    @property
    def dense(self) -> np.ndarray:
        """The backing ``(num_switches, num_dlids)`` integer matrix.

        Row/column order follow :attr:`switch_ids` / :attr:`dlids`.
        Callers must treat it as read-only — mutate through the mapping
        API so :attr:`version` stays truthful.
        """
        return self._m

    @property
    def dlids(self) -> np.ndarray:
        """Column universe: all LIDs of the fabric's lidmap, ascending."""
        return self._dlids

    @property
    def switch_ids(self) -> list[int]:
        """Row universe: switch node ids in network order."""
        return list(self._switch_ids)

    def column_of(self, dlid: int) -> int | None:
        """Matrix column of ``dlid``, or ``None`` if out of universe."""
        return self._col_of.get(dlid)

    def row_of(self, switch: int) -> int | None:
        """Matrix row of ``switch``, or ``None`` if out of universe."""
        return self._row_of.get(switch)

    def dense_copy(self) -> np.ndarray:
        """Snapshot of the matrix (plus a copy of the overflow dict)."""
        return self._m.copy()

    def entry_coordinates(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Every in-universe entry as parallel ``(rows, cols, links)`` arrays.

        Row-major over the dense matrix: rows index :attr:`switch_ids`,
        cols index :attr:`dlids`, ``links[i]`` is the stored link id.
        One ``np.nonzero`` instead of a per-entry Python loop — the
        linter's table-hygiene scan and the what-if verifier's
        cable-to-destination incidence both start here.  Overflow and
        foreign-row entries are not included (see
        :meth:`overflow_items` / :meth:`foreign_switches`).
        """
        rows, cols = np.nonzero(self._m >= 0)
        return rows, cols, self._m[rows, cols]

    def foreign_switches(self) -> tuple[int, ...]:
        """Present keys backed by plain dicts (out-of-universe switches)."""
        return tuple(self._foreign)

    def overflow_items(self) -> Iterator[tuple[int, int, int]]:
        """All out-of-universe entries as ``(switch, dlid, link)``."""
        for sw, entries in self._overflow.items():
            for dlid, link_id in entries.items():
                yield sw, dlid, link_id

    def overflow_copy(self) -> dict[int, dict[int, int]]:
        return {sw: dict(entries) for sw, entries in self._overflow.items()}

    def clear_column(self, dlid: int) -> None:
        """Drop every switch's entry for one destination LID."""
        col = self._col_of.get(dlid)
        if col is not None:
            self._m[:, col] = NO_ENTRY
        for entries in self._overflow.values():
            entries.pop(dlid, None)
        self.version += 1

    def install_column(
        self,
        col: int,
        rows: np.ndarray,
        links: np.ndarray,
        switches: np.ndarray,
    ) -> None:
        """Scatter one destination's entries: ``m[rows[i], col] = links[i]``.

        ``switches[i]`` is the node id of ``rows[i]``; switches written
        for the first time become present keys, in argument order —
        matching a per-entry ``setdefault`` loop.
        """
        self._check_fits(links)
        self._m[rows, col] = links
        present = self._rows
        for sw, row in zip(switches.tolist(), rows.tolist()):
            if sw not in present:
                present[sw] = TableRow(self, sw, row)
        self.version += 1

    @property
    def is_mmap_backed(self) -> bool:
        """Whether the dense matrix is a memory-mapped cache payload.

        True after :meth:`attach_dense` with an ``np.memmap`` — including
        the in-memory memmap-typed arrays ``copy.deepcopy`` produces from
        one.  The campaign ledger counts these attaches to prove workers
        shared the cache file instead of rebuilding tables.
        """
        return isinstance(self._m, np.memmap)

    def attach_dense(
        self, matrix: np.ndarray, present_switches: "list[int] | None" = None
    ) -> None:
        """Adopt ``matrix`` as the backing store (zero-copy cache attach).

        The matrix must match the universe shape and dtype — it is
        taken as-is, *not* copied, so an ``np.load(..., mmap_mode="c")``
        payload stays page-backed until a re-sweep writes to it
        (copy-on-write keeps the cache file immutable).
        ``present_switches`` lists the in-universe switches to mark
        present, in first-write order (default: every row's switch).
        Overflow and foreign rows are untouched — install those through
        the mapping API afterwards.
        """
        if matrix.shape != self._m.shape:
            raise ValueError(
                f"dense attach shape {matrix.shape} != universe {self._m.shape}"
            )
        if matrix.dtype != self._m.dtype:
            raise ValueError(
                f"dense attach dtype {matrix.dtype} != {self._m.dtype}"
            )
        self._m = matrix
        if present_switches is None:
            present_switches = list(self._switch_ids)
        for sw in present_switches:
            row = self._row_of[sw]
            if sw not in self._rows:
                self._rows[sw] = TableRow(self, sw, row)
        self.version += 1

    def install_row_array(self, switch: int, row_values: np.ndarray) -> None:
        """Bulk-install one switch's row, aligned to :attr:`dlids`.

        Fast path for payload loading; marks the switch present even if
        the row is all :data:`NO_ENTRY`.
        """
        row = self._row_of.get(switch)
        if row is None:
            self[switch] = {
                int(d): int(v)
                for d, v in zip(self._dlids, row_values)
                if v >= 0
            }
            return
        if switch not in self._rows:
            self._rows[switch] = TableRow(self, switch, row)
        self._check_fits(np.asarray(row_values))
        self._m[row, :] = row_values
        self.version += 1

    def _check_fits(self, values: np.ndarray) -> None:
        """Refuse values the matrix dtype cannot hold — array scatters
        would otherwise wrap silently (numpy same-kind casting)."""
        if values.size and not (
            self._lo <= int(values.min()) and int(values.max()) <= self._hi
        ):
            raise RoutingError(
                f"link id range [{int(values.min())}, {int(values.max())}] "
                f"does not fit forwarding-table dtype {self._m.dtype}"
            )


def walk_dest_links(
    matrix: np.ndarray,
    graph: "SwitchGraph",
    dest_col: int,
    dest_node: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-switch link-id paths toward one destination column.

    The link-recording sibling of :func:`walk_dest_columns`, restricted
    to a single destination: every switch walks ``matrix[cur, dest_col]``
    simultaneously, and the links taken are recorded step by step.
    Verdicts are identical to ``Fabric.resolve`` restricted to the
    switch part of the walk — a switch is ``ok`` precisely when
    ``resolve`` from a terminal on it would succeed, and its recorded
    links are exactly the post-uplink portion of ``resolve``'s path
    (ejection hop included).

    Returns
    -------
    (ok, lens, steps):
        ``(S,)`` reachability, ``(S,)`` int32 path length in links, and
        a ``(K, S)`` int32 matrix where ``steps[k, s]`` is the k-th link
        of switch ``s``'s walk (undefined past ``lens[s]``).  ``K`` is
        the longest surviving walk, 0 when nothing moved.
    """
    n_switches = matrix.shape[0]
    ok = np.zeros(n_switches, dtype=bool)
    lens = np.zeros(n_switches, dtype=np.int32)
    recorded: list[np.ndarray] = []
    if n_switches == 0:
        return ok, lens, np.zeros((0, 0), dtype=np.int32)

    link_dst_node = graph.link_dst_node
    link_dst_index = graph.link_dst_index
    link_enabled = graph.link_enabled
    cur = np.arange(n_switches, dtype=np.int64)
    walking = np.ones(n_switches, dtype=bool)
    # Same pigeonhole loop guard as walk_dest_columns: a valid walk
    # ejects within S steps; anything longer revisited a switch.
    for _ in range(n_switches + 1):
        if not walking.any():
            break
        entry = np.asarray(matrix[cur, dest_col], dtype=np.int64)
        missing = (entry < 0) | (entry >= len(link_enabled))
        entry_safe = np.where(missing, 0, entry)
        alive = walking & link_enabled[entry_safe] & ~missing
        ejects = alive & (link_dst_node[entry_safe] == dest_node)
        next_idx = link_dst_index[entry_safe]
        recorded.append(np.where(alive, entry, -1).astype(np.int32))
        lens += alive
        ok |= ejects
        walking = alive & ~ejects & (next_idx >= 0)
        cur = np.where(walking, next_idx, cur)
    if not recorded:
        return ok, lens, np.zeros((0, n_switches), dtype=np.int32)
    return ok, lens, np.stack(recorded)


def walk_dest_columns(
    matrix: np.ndarray,
    graph: "SwitchGraph",
    dest_cols: np.ndarray,
    dest_nodes: np.ndarray,
    old_matrix: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Walk every switch toward every destination simultaneously.

    Vectorised equivalent of ``Fabric.resolve`` restricted to the switch
    part of the walk: starting at each switch, repeatedly follow
    ``matrix[current, col]`` until the packet ejects at ``dest_nodes[j]``
    (ok), or hits a missing entry / disabled link / wrong terminal /
    forwarding loop (dead — the exact conditions ``resolve`` raises on;
    the loop guard is the pigeonhole bound instead of a visited set,
    with identical verdicts).

    Parameters
    ----------
    matrix:
        ``(S, D)`` next-hop matrix (:attr:`ForwardingTables.dense`).
    graph:
        Current :meth:`Network.switch_graph` — supplies per-link
        destination/enabled arrays.  Must reflect the same topology
        state the verdicts should be judged under.
    dest_cols, dest_nodes:
        ``(T,)`` matrix column and destination node id per destination.
    old_matrix:
        Optional same-shape matrix; when given, the third result marks
        walks whose *entry at some visited switch* differs between the
        two matrices — exactly the pairs whose resolved path changed
        (paths share their prefix up to the first differing entry and
        diverge there).

    Returns
    -------
    (ok, hops, changed):
        ``(S, T)`` arrays over (start switch, destination): reachability,
        switch-to-switch hop count (valid where ok), and the change flag
        (``None`` when ``old_matrix`` is None; valid where ok).

    Destinations are processed in bounded chunks (the shared budget of
    :mod:`repro.core.chunking`): only the verdict outputs span all T
    destinations; the walk's transient state — current position,
    liveness, per-step gathers — exists for one chunk at a time, which
    is what keeps all-pairs resolution affordable at 10k endpoints.
    Each destination's walk is independent, so chunking cannot change a
    single bit of the outputs.
    """
    n_switches = matrix.shape[0]
    n_dests = len(dest_cols)
    ok = np.zeros((n_switches, n_dests), dtype=bool)
    hops = np.zeros((n_switches, n_dests), dtype=np.int32)
    changed = None if old_matrix is None else np.zeros((n_switches, n_dests), bool)
    if n_switches == 0 or n_dests == 0:
        return ok, hops, changed

    # ~40 transient bytes per (switch, destination) cell across the
    # walk's working arrays.
    chunk = items_per_chunk(n_switches * 40)
    dest_cols = np.asarray(dest_cols)
    dest_nodes = np.asarray(dest_nodes)
    # Destination walks are independent, so the worker pool can shard
    # them with bit-identical verdicts; False falls back to the serial
    # chunk loop below.
    if run_walk_job(
        matrix, graph, dest_cols, dest_nodes, old_matrix,
        ok, hops, changed, chunk,
    ):
        return ok, hops, changed
    for lo in range(0, n_dests, chunk):
        hi = min(lo + chunk, n_dests)
        _walk_dest_block(
            matrix,
            graph,
            np.asarray(dest_cols)[lo:hi],
            np.asarray(dest_nodes)[lo:hi],
            old_matrix,
            ok[:, lo:hi],
            hops[:, lo:hi],
            None if changed is None else changed[:, lo:hi],
        )
    return ok, hops, changed


def _walk_dest_block(
    matrix: np.ndarray,
    graph: "SwitchGraph",
    dest_cols: np.ndarray,
    dest_nodes: np.ndarray,
    old_matrix: np.ndarray | None,
    ok: np.ndarray,
    hops: np.ndarray,
    changed: np.ndarray | None,
) -> None:
    """One destination chunk of :func:`walk_dest_columns`, writing the
    verdicts into the caller's output views."""
    n_switches = matrix.shape[0]
    n_dests = len(dest_cols)
    cur = np.broadcast_to(
        np.arange(n_switches, dtype=np.int64)[:, None], (n_switches, n_dests)
    ).copy()
    walking = np.ones((n_switches, n_dests), dtype=bool)
    col_b = np.broadcast_to(dest_cols[None, :], (n_switches, n_dests))
    dest_b = np.broadcast_to(dest_nodes[None, :], (n_switches, n_dests))
    link_dst_node = graph.link_dst_node
    link_dst_index = graph.link_dst_index
    link_enabled = graph.link_enabled

    # A valid walk ejects within S steps (S-1 switch hops + ejection);
    # anything still walking after that revisited a switch.
    for _ in range(n_switches + 1):
        if not walking.any():
            break
        entry = matrix[cur, col_b]
        if changed is not None:
            changed |= walking & (entry != old_matrix[cur, col_b])
        # Out-of-range positive ids (corrupt "unknown link" entries) are
        # as dead as absent ones; clamping keeps the gathers in bounds.
        missing = (entry < 0) | (entry >= len(link_enabled))
        entry_safe = np.where(missing, 0, entry)
        alive = link_enabled[entry_safe] & ~missing
        ejects = alive & (link_dst_node[entry_safe] == dest_b)
        next_idx = link_dst_index[entry_safe]
        steps = walking & alive & ~ejects & (next_idx >= 0)
        ok |= walking & ejects
        # Dead walks (missing/disabled/wrong terminal) simply stop.
        walking = steps
        cur = np.where(steps, next_idx, cur)
        hops += steps
