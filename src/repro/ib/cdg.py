"""Channel-dependency graphs (Dally & Seitz) and cycle detection.

A routing is deadlock-free on wormhole/credit-based hardware iff its
channel-dependency graph — nodes are directed links ("channels"), with
an edge ``a -> b`` whenever some packet may hold ``a`` while requesting
``b`` — is acyclic.  The paper's criterion (4) demands this; DFSSSP and
PARX achieve it by splitting destinations across virtual lanes so that
each lane's CDG is acyclic (see :mod:`repro.ib.deadlock`).

Only switch-to-switch channels matter: terminal injection links have no
predecessors and ejection links no successors, so they can never lie on
a dependency cycle.
"""

from __future__ import annotations

from typing import Collection, Iterable

from repro.topology.network import Network


def channel_dependencies(
    net: Network,
    paths: Iterable[list[int]],
) -> set[tuple[int, int]]:
    """Collect the CDG edge set induced by a set of link-id paths."""
    deps: set[tuple[int, int]] = set()
    for path in paths:
        prev = -1
        for link_id in path:
            link = net.link(link_id)
            is_sw_sw = net.is_switch(link.src) and net.is_switch(link.dst)
            if is_sw_sw:
                if prev >= 0:
                    deps.add((prev, link_id))
                prev = link_id
        # ejection hop ends the chain; nothing to add
    return deps


def dest_dependencies_from_tables(fabric, dlid: int) -> set[tuple[int, int]]:
    """CDG edges of one destination, read straight off the tables.

    A destination's forwarding entries form a tree: switch ``u`` sends
    on ``tab[u]`` into switch ``s = dst(tab[u])``, which continues on
    ``tab[s]`` — so ``(tab[u], tab[s])`` is a channel dependency.  This
    O(#switches) extraction is what lets the subnet manager layer a
    full-size fabric without resolving all O(N^2) source paths.

    It is mildly conservative: entries at switches no real source routes
    through still contribute edges.  Those extra edges are part of the
    same destination tree, so each destination's set stays acyclic and
    deadlock freedom is never *under*-reported.

    When the tables carry the dense matrix backing the extraction is a
    pair of numpy column gathers; entries outside the matrix universe
    (and plain-dict tables) take the reference per-entry path.
    """
    net = fabric.net
    table = fabric.tables
    col = table.column_of(dlid) if hasattr(table, "column_of") else None
    if col is None:
        return _dest_dependencies_generic(net, table, dlid)

    graph = net.switch_graph()
    column = table.dense[:, col]
    l_in = column[column >= 0]
    # First hop must land on a switch (ejection ends the chain) ...
    next_idx = graph.link_dst_index[l_in]
    on_switch = next_idx >= 0
    l_in = l_in[on_switch]
    # ... which must itself have an entry forwarding onto a switch.
    l_out = column[next_idx[on_switch]]
    chained = l_out >= 0
    l_in, l_out = l_in[chained], l_out[chained]
    sw_sw = graph.link_dst_index[l_out] >= 0
    deps = set(zip(l_in[sw_sw].tolist(), l_out[sw_sw].tolist()))
    # Rows living outside the matrix universe (foreign switches) are
    # rare; fold them in through the reference rules.
    for sw in table.foreign_switches():
        l_in_f = table[sw].get(dlid)
        if l_in_f is None:
            continue
        link_in = net.link(l_in_f)
        if not net.is_switch(link_in.dst):
            continue
        l_out_f = table.get(link_in.dst, {}).get(dlid)
        if l_out_f is not None and net.is_switch(net.link(l_out_f).dst):
            deps.add((l_in_f, l_out_f))
    return deps


def _dest_dependencies_generic(net, table, dlid: int) -> set[tuple[int, int]]:
    """Reference per-entry extraction (any mapping-of-mappings tables)."""
    deps: set[tuple[int, int]] = set()
    for u, entries in table.items():
        l_in = entries.get(dlid)
        if l_in is None:
            continue
        link_in = net.link(l_in)
        if not net.is_switch(link_in.dst):
            continue  # ejection hop: chain ends
        s = link_in.dst
        l_out = table.get(s, {}).get(dlid)
        if l_out is None:
            continue
        link_out = net.link(l_out)
        if net.is_switch(link_out.dst):
            deps.add((l_in, l_out))
    return deps


def lane_dependency_edges(fabric) -> dict[int, set[tuple[int, int]]]:
    """Per-virtual-lane CDG edge sets of a routed fabric.

    Destination-granularity extraction (one column gather per dlid via
    :func:`dest_dependencies_from_tables`), grouped by the lane the
    fabric assigns each destination.  This is the per-lane view the
    linter's credit-loop rule certifies and the what-if verifier probes
    for post-failure cycle exposure.

    Fabrics with a per-pair lane map (LASH's ``vl_of_pair``) are finer
    grained than destinations; this view is then *conservative* (it can
    report a cycle a per-pair split avoids) and callers that need the
    exact verdict must resolve per-pair paths instead.
    """
    per_lane: dict[int, set[tuple[int, int]]] = {}
    for dlid in fabric.lidmap.terminal_lids(fabric.net):
        lane = fabric.vl(dlid)
        per_lane.setdefault(lane, set()).update(
            dest_dependencies_from_tables(fabric, dlid)
        )
    return per_lane


def find_dependency_cycle_excluding(
    edges: Iterable[tuple[int, int]],
    banned: Collection[int],
) -> list[int] | None:
    """Cycle search on the residual CDG after killing some channels.

    Drops every dependency edge that holds or requests a channel in
    ``banned`` (the two directed links of a failed cable carry no
    packets, so neither side of their dependencies can arise), then runs
    :func:`find_dependency_cycle` on what survives.  Returns the ordered
    channel-list witness, or ``None`` when the residual graph is
    acyclic.
    """
    return find_dependency_cycle(
        (a, b) for a, b in edges if a not in banned and b not in banned
    )


def find_dependency_cycle(
    edges: Iterable[tuple[int, int]],
) -> list[int] | None:
    """Find one directed cycle in the dependency edge set, if any.

    Returns the cycle as an ordered channel (link-id) list
    ``[c0, c1, ..., ck]`` where every consecutive pair — and the wrap
    ``ck -> c0`` — is a dependency edge, or ``None`` when the graph is
    acyclic.  The ordered list is the *witness* the fabric linter
    attaches to a credit-loop diagnostic: it names the exact channels a
    deadlocked packet chain would hold.

    Iterative three-colour DFS (the graphs easily exceed Python's
    recursion limit on full-size fabrics).
    """
    adj: dict[int, list[int]] = {}
    for a, b in edges:
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, [])
    WHITE, GREY, BLACK = 0, 1, 2
    colour = dict.fromkeys(adj, WHITE)
    for start in adj:
        if colour[start] != WHITE:
            continue
        stack: list[tuple[int, int]] = [(start, 0)]
        colour[start] = GREY
        while stack:
            node, idx = stack[-1]
            if idx < len(adj[node]):
                stack[-1] = (node, idx + 1)
                nxt = adj[node][idx]
                if colour[nxt] == GREY:
                    # `nxt` is on the DFS stack: the stack suffix from
                    # its position onward is the cycle.
                    chain = [n for n, _ in stack]
                    return chain[chain.index(nxt):]
                if colour[nxt] == WHITE:
                    colour[nxt] = GREY
                    stack.append((nxt, 0))
            else:
                colour[node] = BLACK
                stack.pop()
    return None


def dependency_cycle_exists(edges: Iterable[tuple[int, int]]) -> bool:
    """Whether the dependency edge set contains a directed cycle."""
    return find_dependency_cycle(edges) is not None


def addition_creates_cycle(
    adj: dict[int, set[int]],
    new_edges: Iterable[tuple[int, int]],
) -> bool:
    """Would adding ``new_edges`` to the acyclic graph ``adj`` close a cycle?

    Any new cycle must traverse at least one new edge, so it suffices to
    check, for each new edge ``a -> b``, whether ``a`` is reachable from
    ``b`` in the combined graph.  ``adj`` is *not* modified.

    Used by the incremental virtual-lane layering, where destinations
    are added to a lane one at a time.
    """
    extra: dict[int, set[int]] = {}
    fresh: list[tuple[int, int]] = []
    for a, b in new_edges:
        if b not in adj.get(a, ()) and b not in extra.get(a, ()):
            extra.setdefault(a, set()).add(b)
            fresh.append((a, b))

    def successors(u: int):
        yield from adj.get(u, ())
        yield from extra.get(u, ())

    for a, b in fresh:
        if a == b:
            return True
        seen = {b}
        frontier = [b]
        while frontier:
            u = frontier.pop()
            for v in successors(u):
                if v == a:
                    return True
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
    return False
