"""Virtual-lane layering for deadlock freedom (DFSSSP/LASH style).

Destination-based forwarding guarantees that all paths toward one
destination LID form a tree rooted at the destination, so the CDG of a
*single* destination is always acyclic.  Cycles only arise between
destinations — and can therefore be broken by partitioning destinations
across virtual lanes (Domke et al., IPDPS '11; Skeie et al.'s LASH uses
the same idea at path granularity).

:func:`assign_layers` implements the greedy first-fit partition:
destinations are processed in LID order and placed into the first lane
whose accumulated CDG stays acyclic; a new lane is opened when none
fits, and :class:`~repro.core.errors.DeadlockError` is raised past the
hardware limit (8 VLs on the paper's QDR gear; DFSSSP needed 3 for the
HyperX, PARX 5-8 depending on the ingested profile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Set

from repro.core.errors import DeadlockError
from repro.ib.cdg import (
    addition_creates_cycle,
    channel_dependencies,
    find_dependency_cycle,
)
from repro.topology.network import Network


@dataclass(frozen=True)
class CreditLoop:
    """A witnessed credit loop: one CDG cycle inside one virtual lane.

    Attributes
    ----------
    vl:
        The virtual lane whose accumulated CDG is cyclic.
    channels:
        The cycle as an ordered link-id list; every consecutive pair
        (and the wrap from last to first) is a channel dependency, i.e.
        a packet chain holding these channels in order waits on itself.
    """

    vl: int
    channels: tuple[int, ...]

    def __str__(self) -> str:
        ring = " -> ".join(map(str, self.channels + self.channels[:1]))
        return f"credit loop on VL {self.vl}: channels {ring}"


def assign_layers(
    dep_edges_by_dest: Mapping[int, Set[tuple[int, int]]],
    max_vls: int = 8,
) -> tuple[dict[int, int], int]:
    """Partition destination LIDs over virtual lanes.

    Parameters
    ----------
    dep_edges_by_dest:
        ``dlid -> channel-dependency edge set`` (each set is a tree's
        dependencies, hence acyclic on its own).
    max_vls:
        Hardware virtual-lane budget.

    Returns
    -------
    (vl_of_dlid, num_layers):
        The lane of every destination LID and the number of lanes used.

    Raises
    ------
    DeadlockError
        If some destination fits no lane and the budget is exhausted.
    """
    if max_vls < 1:
        raise DeadlockError(f"need at least one virtual lane, got {max_vls}")

    layers: list[dict[int, set[int]]] = []  # per-lane CDG adjacency
    vl_of_dlid: dict[int, int] = {}

    for dlid in sorted(dep_edges_by_dest):
        deps = dep_edges_by_dest[dlid]
        placed = False
        for vl, adj in enumerate(layers):
            if not addition_creates_cycle(adj, deps):
                _merge(adj, deps)
                vl_of_dlid[dlid] = vl
                placed = True
                break
        if placed:
            continue
        if len(layers) >= max_vls:
            raise DeadlockError(
                f"destination lid {dlid} fits no lane; routing needs more "
                f"than the {max_vls} available virtual lanes"
            )
        adj: dict[int, set[int]] = {}
        _merge(adj, deps)
        layers.append(adj)
        vl_of_dlid[dlid] = len(layers) - 1

    return vl_of_dlid, max(1, len(layers))


def assign_layers_by_destination(
    net: Network,
    dest_paths: Mapping[int, Sequence[list[int]]],
    max_vls: int = 8,
) -> tuple[dict[int, int], int]:
    """Path-based convenience wrapper around :func:`assign_layers`.

    Takes explicit per-destination path lists (as tests do) instead of
    pre-extracted dependency edges.
    """
    dep_edges = {
        dlid: channel_dependencies(net, paths)
        for dlid, paths in dest_paths.items()
    }
    return assign_layers(dep_edges, max_vls=max_vls)


def find_credit_loop(
    net: Network,
    dest_paths: Mapping[int, Sequence[list[int]]],
    vl_of_dlid: Mapping[int, int],
) -> CreditLoop | None:
    """Certify per-lane CDG acyclicity, returning a witness on failure.

    Uses the *exact* dependencies of the given paths, providing a second
    opinion on the incremental (and slightly conservative, see
    :func:`repro.ib.cdg.dest_dependencies_from_tables`) layering.
    Returns ``None`` when every lane's accumulated CDG is acyclic, or
    the first :class:`CreditLoop` found otherwise.
    """
    per_lane: dict[int, set[tuple[int, int]]] = {}
    for dlid, paths in dest_paths.items():
        lane = vl_of_dlid.get(dlid, 0)
        per_lane.setdefault(lane, set()).update(channel_dependencies(net, paths))
    for vl in sorted(per_lane):
        cycle = find_dependency_cycle(per_lane[vl])
        if cycle is not None:
            return CreditLoop(vl=vl, channels=tuple(cycle))
    return None


def verify_deadlock_free(
    net: Network,
    dest_paths: Mapping[int, Sequence[list[int]]],
    vl_of_dlid: Mapping[int, int],
) -> bool:
    """Boolean convenience wrapper around :func:`find_credit_loop`."""
    return find_credit_loop(net, dest_paths, vl_of_dlid) is None


def _merge(adj: dict[int, set[int]], deps: Set[tuple[int, int]]) -> None:
    for a, b in deps:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
