"""Virtual-lane layering for deadlock freedom (DFSSSP/LASH style).

Destination-based forwarding guarantees that all paths toward one
destination LID form a tree rooted at the destination, so the CDG of a
*single* destination is always acyclic.  Cycles only arise between
destinations — and can therefore be broken by partitioning destinations
across virtual lanes (Domke et al., IPDPS '11; Skeie et al.'s LASH uses
the same idea at path granularity).

:func:`assign_layers` implements the greedy first-fit partition:
destinations are processed in LID order and placed into the first lane
whose accumulated CDG stays acyclic; a new lane is opened when none
fits, and :class:`~repro.core.errors.DeadlockError` is raised past the
hardware limit (8 VLs on the paper's QDR gear; DFSSSP needed 3 for the
HyperX, PARX 5-8 depending on the ingested profile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Set

from repro.core.errors import DeadlockError
from repro.ib.cdg import (
    addition_creates_cycle,
    channel_dependencies,
    find_dependency_cycle,
)
from repro.topology.network import Network


@dataclass(frozen=True)
class CreditLoop:
    """A witnessed credit loop: one CDG cycle inside one virtual lane.

    Attributes
    ----------
    vl:
        The virtual lane whose accumulated CDG is cyclic.
    channels:
        The cycle as an ordered link-id list; every consecutive pair
        (and the wrap from last to first) is a channel dependency, i.e.
        a packet chain holding these channels in order waits on itself.
    """

    vl: int
    channels: tuple[int, ...]

    def __str__(self) -> str:
        ring = " -> ".join(map(str, self.channels + self.channels[:1]))
        return f"credit loop on VL {self.vl}: channels {ring}"


class _Lane:
    """One virtual lane's accumulated CDG, with a dynamic topological order.

    Keeps a valid topological index for every channel node
    (Pearce-Kelly style): inserting an edge that already respects the
    order is O(1), and a violating edge only reorders the affected
    index window instead of re-running a DFS over the whole lane — the
    per-destination cycle test that dominates full-fabric layering.

    :meth:`try_add_dest` is transactional: either the whole destination
    edge set goes in (True) or the lane's edge sets are left exactly as
    before (False).  A failed attempt may still permute the topological
    *order*, which is harmless — any order valid with the extra edges
    remains valid without them, and the accept/reject verdict of later
    insertions never depends on which valid order is current.
    """

    __slots__ = ("out", "inn", "ord", "_next")

    def __init__(self) -> None:
        self.out: dict[int, set[int]] = {}
        self.inn: dict[int, set[int]] = {}
        self.ord: dict[int, int] = {}
        self._next = 0

    def _ensure(self, node: int) -> None:
        if node not in self.ord:
            self.ord[node] = self._next
            self._next += 1
            self.out[node] = set()
            self.inn[node] = set()

    def try_add_dest(self, deps: Set[tuple[int, int]]) -> bool:
        """Add one destination's edges, or nothing at all."""
        added: list[tuple[int, int]] = []
        out, inn, ordm = self.out, self.inn, self.ord
        for a, b in deps:
            if a == b:
                self._revert(added)
                return False
            if a not in ordm:
                ordm[a] = self._next
                self._next += 1
                out[a] = set()
                inn[a] = set()
            if b not in ordm:
                ordm[b] = self._next
                self._next += 1
                out[b] = set()
                inn[b] = set()
            if b in out[a]:
                continue
            if not self._insert(a, b):
                self._revert(added)
                return False
            out[a].add(b)
            inn[b].add(a)
            added.append((a, b))
        return True

    def _revert(self, added: list[tuple[int, int]]) -> None:
        for a, b in added:
            self.out[a].discard(b)
            self.inn[b].discard(a)

    def _insert(self, x: int, y: int) -> bool:
        """Make the order consistent with a new edge ``x -> y``.

        Returns False (leaving the order untouched) when the edge would
        close a cycle.
        """
        ordm = self.ord
        ub = ordm[x]
        lb = ordm[y]
        if ub < lb:
            return True  # already consistent
        # Forward discovery from y, confined to the affected window:
        # reaching x means y ~> x exists, so x -> y closes a cycle.
        out = self.out
        fwd = [y]
        seen = {y}
        stack = [y]
        while stack:
            for v in out[stack.pop()]:
                if v == x:
                    return False
                if v not in seen and ordm[v] < ub:
                    seen.add(v)
                    stack.append(v)
                    fwd.append(v)
        # Backward discovery from x over in-edges, same window.
        inn = self.inn
        bwd = [x]
        seen_b = {x}
        stack = [x]
        while stack:
            for v in inn[stack.pop()]:
                if v not in seen_b and ordm[v] > lb:
                    seen_b.add(v)
                    stack.append(v)
                    bwd.append(v)
        # Reorder: everything reaching x keeps preceding everything
        # reachable from y, reusing the same index pool.
        bwd.sort(key=ordm.__getitem__)
        fwd.sort(key=ordm.__getitem__)
        affected = bwd + fwd
        pool = sorted(ordm[n] for n in affected)
        for node, idx in zip(affected, pool):
            ordm[node] = idx
        return True


def assign_layers(
    dep_edges_by_dest: Mapping[int, Set[tuple[int, int]]],
    max_vls: int = 8,
    order: Sequence[int] | None = None,
) -> tuple[dict[int, int], int]:
    """Partition destination LIDs over virtual lanes.

    Parameters
    ----------
    dep_edges_by_dest:
        ``dlid -> channel-dependency edge set`` (each set is a tree's
        dependencies, hence acyclic on its own).
    max_vls:
        Hardware virtual-lane budget.
    order:
        Explicit destination processing order (must be a permutation of
        the mapping's keys); ``None`` keeps the default sorted-LID
        order.  Greedy first-fit is order-dependent, so layered engines
        that want layer -> VL affinity pass destinations grouped by LID
        index here — and every re-layering of the same fabric must pass
        the same order to reproduce the lanes.

    Returns
    -------
    (vl_of_dlid, num_layers):
        The lane of every destination LID and the number of lanes used.

    Raises
    ------
    DeadlockError
        If some destination fits no lane and the budget is exhausted.

    Lanes maintain a dynamic topological order (:class:`_Lane`), so each
    fit test costs a window reorder instead of a full-lane DFS; the
    accept/reject verdicts — and hence the greedy first-fit result — are
    identical to :func:`reference_assign_layers`, which the equivalence
    suite checks.
    """
    if max_vls < 1:
        raise DeadlockError(f"need at least one virtual lane, got {max_vls}")

    if order is not None and sorted(order) != sorted(dep_edges_by_dest):
        raise DeadlockError(
            "layering order must be a permutation of the destination LIDs"
        )
    layers: list[_Lane] = []
    vl_of_dlid: dict[int, int] = {}

    for dlid in (sorted(dep_edges_by_dest) if order is None else order):
        deps = dep_edges_by_dest[dlid]
        placed = False
        for vl, lane in enumerate(layers):
            if lane.try_add_dest(deps):
                vl_of_dlid[dlid] = vl
                placed = True
                break
        if placed:
            continue
        if len(layers) >= max_vls:
            raise DeadlockError(
                f"destination lid {dlid} fits no lane; routing needs more "
                f"than the {max_vls} available virtual lanes"
            )
        lane = _Lane()
        if not lane.try_add_dest(deps):
            raise DeadlockError(
                f"destination lid {dlid} has a cyclic dependency set; "
                "a single destination tree should never self-deadlock"
            )
        layers.append(lane)
        vl_of_dlid[dlid] = len(layers) - 1

    return vl_of_dlid, max(1, len(layers))


def reference_assign_layers(
    dep_edges_by_dest: Mapping[int, Set[tuple[int, int]]],
    max_vls: int = 8,
) -> tuple[dict[int, int], int]:
    """The original first-fit layering (full DFS cycle test per fit).

    Kept as the executable specification :func:`assign_layers` is
    equivalence-tested against (``tests/test_routing_arrays.py``).
    """
    if max_vls < 1:
        raise DeadlockError(f"need at least one virtual lane, got {max_vls}")

    layers: list[dict[int, set[int]]] = []  # per-lane CDG adjacency
    vl_of_dlid: dict[int, int] = {}

    for dlid in sorted(dep_edges_by_dest):
        deps = dep_edges_by_dest[dlid]
        placed = False
        for vl, adj in enumerate(layers):
            if not addition_creates_cycle(adj, deps):
                _merge(adj, deps)
                vl_of_dlid[dlid] = vl
                placed = True
                break
        if placed:
            continue
        if len(layers) >= max_vls:
            raise DeadlockError(
                f"destination lid {dlid} fits no lane; routing needs more "
                f"than the {max_vls} available virtual lanes"
            )
        adj: dict[int, set[int]] = {}
        _merge(adj, deps)
        layers.append(adj)
        vl_of_dlid[dlid] = len(layers) - 1

    return vl_of_dlid, max(1, len(layers))


def assign_layers_by_destination(
    net: Network,
    dest_paths: Mapping[int, Sequence[list[int]]],
    max_vls: int = 8,
) -> tuple[dict[int, int], int]:
    """Path-based convenience wrapper around :func:`assign_layers`.

    Takes explicit per-destination path lists (as tests do) instead of
    pre-extracted dependency edges.
    """
    dep_edges = {
        dlid: channel_dependencies(net, paths)
        for dlid, paths in dest_paths.items()
    }
    return assign_layers(dep_edges, max_vls=max_vls)


def find_credit_loop(
    net: Network,
    dest_paths: Mapping[int, Sequence[list[int]]],
    vl_of_dlid: Mapping[int, int],
) -> CreditLoop | None:
    """Certify per-lane CDG acyclicity, returning a witness on failure.

    Uses the *exact* dependencies of the given paths, providing a second
    opinion on the incremental (and slightly conservative, see
    :func:`repro.ib.cdg.dest_dependencies_from_tables`) layering.
    Returns ``None`` when every lane's accumulated CDG is acyclic, or
    the first :class:`CreditLoop` found otherwise.
    """
    per_lane: dict[int, set[tuple[int, int]]] = {}
    for dlid, paths in dest_paths.items():
        lane = vl_of_dlid.get(dlid, 0)
        per_lane.setdefault(lane, set()).update(channel_dependencies(net, paths))
    for vl in sorted(per_lane):
        cycle = find_dependency_cycle(per_lane[vl])
        if cycle is not None:
            return CreditLoop(vl=vl, channels=tuple(cycle))
    return None


def verify_deadlock_free(
    net: Network,
    dest_paths: Mapping[int, Sequence[list[int]]],
    vl_of_dlid: Mapping[int, int],
) -> bool:
    """Boolean convenience wrapper around :func:`find_credit_loop`."""
    return find_credit_loop(net, dest_paths, vl_of_dlid) is None


def _merge(adj: dict[int, set[int]], deps: Set[tuple[int, int]]) -> None:
    for a, b in deps:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
