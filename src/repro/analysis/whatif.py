"""Exhaustive what-if vulnerability verification over the dense tables.

The paper's machine ran with missing cables from day one (section 2.3),
and criterion (4) of section 3.2 demands every routing stay "loop-free,
fault-tolerant and deadlock-free" on the degraded fabric.  The linter
certifies the fabric *as routed*; this module certifies it against every
failure it has not had yet: for each enabled switch-to-switch cable it
computes — statically, straight off the dense next-hop matrix and the
CSR switch-graph views, with no simulation and no re-routing —

* ``affected_pairs``: how many installed (source, destination) paths
  traverse the cable, i.e. the pairs that black-hole between the
  failure and the SM re-sweep (one frontier-wave pass per destination,
  shared kernel with the FAB011 load estimator),
* ``dests_affected``: how many destination LIDs have at least one
  forwarding entry over the cable — exactly the stale-destination
  count a re-sweep would report, hence the incremental re-sweep's
  work item count (one ``np.nonzero`` incidence pass over the matrix),
* ``pairs_disconnected``: whether the cable is a *bridge* of the
  switch graph and, if so, how many ordered terminal pairs lose every
  path (one Tarjan bridge pass for all cables together),
* ``credit_loop_exposed``: whether the surviving forwarding entries
  still contain a per-lane CDG cycle after the failure (residual-graph
  cycle search; trivially false for every cable when the base lanes
  are acyclic — removing entries only removes dependency edges),
* ``load_shift_bound``: a static bound on the post-failure load of the
  best surviving alternative link at each endpoint (displaced
  traversals must leave through *some* surviving port).

Cables rank by criticality — disconnection first, then affected pairs,
stale destinations and static load — and the four what-if lint rules
(FAB014 single point of failure, FAB015 post-failure credit-loop
exposure, FAB016 load shift beyond hot-link headroom, FAB017 re-sweep
blast radius) read their witnesses from the same
:class:`VulnerabilityReport`.

Agreement guarantee with the dynamic fault machinery (pinned by the
cross-check tests): on a clean fabric, failing cable ``c`` and
re-sweeping yields a ``RerouteReport`` whose ``pairs_affected`` equals
``affected_pairs`` (at the report's LID index), ``dests_affected``
equals ``dests_affected``, and — for engines that find every path on a
connected graph — ``num_unreachable`` equals ``pairs_disconnected``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.core.chunking import items_per_chunk
from repro.core.errors import TopologyError
from repro.core.rng import derive_seed, make_rng
from repro.ib.cdg import (
    dependency_cycle_exists,
    find_dependency_cycle,
    find_dependency_cycle_excluding,
    lane_dependency_edges,
)
from repro.core.parallel import run_loads_job, run_scan_job
from repro.ib.fabric import Fabric
from repro.routing.arrays import accumulate_column_loads, incidence_scan_block

if TYPE_CHECKING:
    from repro.topology.network import Link


@dataclass
class CableVulnerability:
    """Static fault certificate for one switch-to-switch cable."""

    #: Representative (lower-id) directed link of the cable, and its
    #: reverse direction.
    cable: int
    reverse: int
    #: Switch endpoints of the cable.
    src: int
    dst: int
    #: Installed (source terminal, destination) pairs whose table walk
    #: traverses the cable in either direction — the pairs that
    #: black-hole between the failure and the re-sweep.
    affected_pairs: int
    #: Destination LIDs with at least one forwarding entry over the
    #: cable: the re-sweep's stale-destination count.
    dests_affected: int
    #: Ordered terminal pairs with no surviving path if the cable fails
    #: (0 unless the cable is a bridge of the switch graph).
    pairs_disconnected: int
    #: Whether the cable is a bridge (single point of failure).
    is_bridge: bool
    #: FAB011-style static traversal count over both directions (all
    #: destination LIDs, LMC copies included).
    load: int
    #: Static post-failure bound: the heaviest "displaced load plus
    #: least-loaded surviving alternative" over the two endpoints.
    load_shift_bound: int
    #: Whether some virtual lane's residual CDG still has a cycle after
    #: the failure (only possible when a base lane is already cyclic).
    credit_loop_exposed: bool
    #: ``dests_affected`` as a fraction of all installed destinations.
    blast_fraction: float
    #: Criticality rank: 1 = most critical.  Filled by the report.
    rank: int = 0
    #: Ordered channel list of one surviving credit loop (None when not
    #: exposed) — the FAB015 witness certificate.
    credit_loop_witness: list[int] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "cable": self.cable,
            "reverse": self.reverse,
            "src": self.src,
            "dst": self.dst,
            "rank": self.rank,
            "affected_pairs": self.affected_pairs,
            "dests_affected": self.dests_affected,
            "pairs_disconnected": self.pairs_disconnected,
            "is_bridge": self.is_bridge,
            "load": self.load,
            "load_shift_bound": self.load_shift_bound,
            "credit_loop_exposed": self.credit_loop_exposed,
            "credit_loop_witness": self.credit_loop_witness,
            "blast_fraction": self.blast_fraction,
        }


@dataclass
class PairSample:
    """One seeded k=2 sample: joint failure of two cables."""

    cables: tuple[int, int]
    #: Distinct destination LIDs with entries over either cable.
    dests_affected: int
    #: Whether failing both disconnects the switch graph.
    disconnects: bool
    #: Ordered terminal pairs split across the components (0 while the
    #: graph stays connected).
    pairs_disconnected: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "cables": list(self.cables),
            "dests_affected": self.dests_affected,
            "disconnects": self.disconnects,
            "pairs_disconnected": self.pairs_disconnected,
        }


@dataclass
class VulnerabilityReport:
    """Criticality-ranked what-if audit of every enabled cable."""

    network: str = ""
    engine: str = ""
    lid_index: int = 0
    #: Ordered terminal pairs the pair counts are measured against.
    pairs_total: int = 0
    #: Destination LIDs with at least one installed forwarding entry.
    dests_total: int = 0
    #: Mean static traversal count over enabled switch cables (the
    #: FAB016 headroom baseline).
    load_mean: float = 0.0
    #: Per-cable certificates in criticality order (rank 1 first).
    cables: list[CableVulnerability] = field(default_factory=list)
    #: Seeded two-cable samples (empty unless requested).
    k2_samples: list[PairSample] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def __post_init__(self) -> None:
        self._by_link: dict[int, CableVulnerability] = {}
        for v in self.cables:
            self._by_link[v.cable] = v
            self._by_link[v.reverse] = v

    def by_cable(self, link_id: int) -> CableVulnerability | None:
        """Certificate of the cable owning ``link_id`` (either direction)."""
        return self._by_link.get(link_id)

    @property
    def bridges(self) -> list[CableVulnerability]:
        return [v for v in self.cables if v.is_bridge]

    def criticality_of(self, link_id: int) -> dict[str, Any] | None:
        """Compact criticality record for ledgers and reroute reports."""
        v = self.by_cable(link_id)
        if v is None:
            return None
        return {
            "cable": v.cable,
            "rank": v.rank,
            "of": len(self.cables),
            "affected_pairs": v.affected_pairs,
            "dests_affected": v.dests_affected,
            "pairs_disconnected": v.pairs_disconnected,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "fabric": {"network": self.network, "engine": self.engine},
            "summary": {
                "cables": len(self.cables),
                "bridges": len(self.bridges),
                "pairs_total": self.pairs_total,
                "dests_total": self.dests_total,
                "load_mean": self.load_mean,
                "lid_index": self.lid_index,
                "elapsed_seconds": self.elapsed_seconds,
            },
            "cables": [v.to_dict() for v in self.cables],
            "k2_samples": [s.to_dict() for s in self.k2_samples],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)


def audit_whatif(
    fabric: Fabric,
    *,
    k2_samples: int = 0,
    seed: int = 0,
    hot_threshold: float = 3.0,
    blast_threshold: float = 0.5,
    lid_index: int = 0,
) -> VulnerabilityReport:
    """Exhaustive k=1 (plus sampled k=2) static fault certification.

    Parameters
    ----------
    fabric:
        The routed plane to certify.  Must carry dense tables with no
        foreign-switch rows (every engine-produced fabric qualifies).
    k2_samples:
        Seeded two-cable samples to draw on top of the exhaustive
        single-cable audit (0 = none).
    seed:
        Seed for the k=2 sampling only; the k=1 audit is deterministic.
    hot_threshold:
        FAB016 headroom multiple (same meaning as the linter's
        ``hot_threshold`` for FAB011).
    blast_threshold:
        FAB017 fires when a cable's ``blast_fraction`` exceeds this.
    lid_index:
        Destination LID index the pair counts use (0 matches
        ``Fabric.resolve_paths`` and the re-sweep diff).
    """
    t_start = time.perf_counter()
    net = fabric.net
    tables = fabric.tables
    if tables.foreign_switches():
        raise TopologyError(
            "what-if audit needs dense tables; fabric has foreign-switch "
            f"rows {sorted(tables.foreign_switches())}"
        )
    graph = net.switch_graph()
    cables = net.switch_cables()
    n_cables = len(cables)
    num_links = len(net.links)

    # Cable index over directed link ids (-1 = uplink or disabled).
    cable_of_link = np.full(num_links, -1, dtype=np.int64)
    for i, c in enumerate(cables):
        cable_of_link[c.id] = i
        cable_of_link[c.reverse_id] = i

    # --- per-link traversal loads (shared frontier-wave kernel) ----------
    terminals = net.terminals
    all_dlids = fabric.lidmap.terminal_lids(net)
    pair_dlids = []
    pair_roots = []
    for t in terminals:
        dlid = fabric.lidmap.lid(t, lid_index)
        col = tables.column_of(dlid)
        if col is None:
            raise TopologyError(
                f"what-if audit: destination LID {dlid} of terminal {t} "
                "is outside the table universe"
            )
        pair_dlids.append(col)
        pair_roots.append(graph.index[net.attached_switch(t)])

    # Destination-chunked so the per-chunk transient state stays bounded
    # on 10k-LID fabrics; the per-link sums are order-independent, so
    # any chunk size — and any worker sharding — produces the same bits.
    chunk = items_per_chunk(net.num_switches * 40)
    all_cols = np.asarray(
        [tables.column_of(d) for d in all_dlids], dtype=np.int64
    )
    all_roots = np.asarray(
        [
            graph.index[net.attached_switch(fabric.lidmap.node_of(d))]
            for d in all_dlids
        ],
        dtype=np.int64,
    )
    loads_all = np.zeros(num_links, dtype=np.int64)
    if not run_loads_job(
        tables.dense, graph, all_cols, all_roots, loads_all, chunk
    ):
        for lo in range(0, all_cols.size, chunk):
            accumulate_column_loads(
                tables.dense,
                graph,
                all_cols[lo : lo + chunk],
                all_roots[lo : lo + chunk],
                loads_all,
            )
    if fabric.lidmap.lids_per_port == 1:
        pair_loads = loads_all  # lid_index 0 is the only LID per port
    else:
        pair_cols = np.asarray(pair_dlids, dtype=np.int64)
        pair_rootsv = np.asarray(pair_roots, dtype=np.int64)
        pair_loads = np.zeros(num_links, dtype=np.int64)
        if not run_loads_job(
            tables.dense, graph, pair_cols, pair_rootsv, pair_loads, chunk
        ):
            accumulate_column_loads(
                tables.dense, graph, pair_cols, pair_rootsv, pair_loads
            )

    # --- cable -> destination incidence ----------------------------------
    # Column-block scan of the dense matrix instead of one full-matrix
    # nonzero: column ranges partition across blocks, so the union of
    # per-block unique keys is exactly the full-matrix unique key set.
    dense = tables.dense
    n_cols = dense.shape[1]
    scanned = run_scan_job(dense, cable_of_link, chunk)
    if scanned is not None:
        keys, dests_total = scanned
    else:
        key_parts: list[np.ndarray] = []
        dests_total = 0
        for lo in range(0, n_cols, chunk):
            blk_keys, blk_dests = incidence_scan_block(
                dense[:, lo : lo + chunk],
                cable_of_link, lo, n_cols, num_links,
            )
            key_parts.append(blk_keys)
            dests_total += blk_dests
        # Distinct (cable, column) pairs via a combined key; the sorted
        # unique key array doubles as the per-cable column sets for k=2.
        keys = (
            np.unique(np.concatenate(key_parts))
            if key_parts else np.empty(0, dtype=np.int64)
        )
    key_cables = keys // n_cols
    dests_affected = np.bincount(key_cables, minlength=n_cables)
    # Overflow entries (out-of-universe dlids; test-only) fold in as
    # extra distinct destinations per cable.
    extra_dests: dict[int, set[int]] = {}
    for sw, dlid, link_id in tables.overflow_items():
        if 0 <= link_id < num_links and cable_of_link[link_id] >= 0:
            extra_dests.setdefault(int(cable_of_link[link_id]), set()).add(dlid)
    for ci, dls in extra_dests.items():
        dests_affected[ci] += len(dls)

    # --- bridges of the switch graph (Tarjan, one pass) -------------------
    sw_weights = graph.attached_counts.astype(np.int64)
    total_terminals = int(sw_weights.sum())
    cable_u = np.fromiter(
        (graph.index[c.src] for c in cables), dtype=np.int64, count=n_cables
    )
    cable_v = np.fromiter(
        (graph.index[c.dst] for c in cables), dtype=np.int64, count=n_cables
    )
    is_bridge, side_weight, comp_weight = _bridges(
        graph.num_switches, cable_u, cable_v, sw_weights
    )
    pairs_disconnected = np.where(
        is_bridge, 2 * side_weight * (comp_weight - side_weight), 0
    )

    # --- residual credit-loop exposure ------------------------------------
    exposed, loop_witness = _credit_loop_exposure(fabric, cables)

    # --- load-shift bound (FAB016) ----------------------------------------
    enabled_cable_links = [c.id for c in cables] + [c.reverse_id for c in cables]
    cable_loads_flat = loads_all[enabled_cable_links]
    load_mean = (
        float(cable_loads_flat.mean()) if len(enabled_cable_links) else 0.0
    )
    out_links_of: dict[int, list[int]] = {}
    for c in cables:
        out_links_of.setdefault(c.src, []).append(c.id)
        out_links_of.setdefault(c.dst, []).append(c.reverse_id)
    shift_bound = np.zeros(n_cables, dtype=np.int64)
    for i, c in enumerate(cables):
        bound = 0
        for link_id, u in ((c.id, c.src), (c.reverse_id, c.dst)):
            displaced = int(loads_all[link_id])
            if displaced == 0:
                continue
            alts = [l for l in out_links_of[u] if l != link_id]
            if not alts:
                continue  # endpoint isolated: the bridge rule owns this
            best = int(min(loads_all[l] for l in alts))
            bound = max(bound, best + displaced)
        shift_bound[i] = bound

    # --- assemble + rank ---------------------------------------------------
    n_terms = len(terminals)
    vulns: list[CableVulnerability] = []
    for i, c in enumerate(cables):
        vulns.append(CableVulnerability(
            cable=int(c.id),
            reverse=int(c.reverse_id),
            src=int(c.src),
            dst=int(c.dst),
            affected_pairs=int(pair_loads[c.id] + pair_loads[c.reverse_id]),
            dests_affected=int(dests_affected[i]),
            pairs_disconnected=int(pairs_disconnected[i]),
            is_bridge=bool(is_bridge[i]),
            load=int(loads_all[c.id] + loads_all[c.reverse_id]),
            load_shift_bound=int(shift_bound[i]),
            credit_loop_exposed=bool(exposed[i]),
            credit_loop_witness=loop_witness.get(i),
            blast_fraction=(
                round(float(dests_affected[i]) / dests_total, 4)
                if dests_total else 0.0
            ),
        ))
    vulns.sort(key=lambda v: (
        -v.pairs_disconnected, -v.affected_pairs, -v.dests_affected,
        -v.load, v.cable,
    ))
    for rank, v in enumerate(vulns, start=1):
        v.rank = rank

    report = VulnerabilityReport(
        network=net.name,
        engine=fabric.engine_name,
        lid_index=lid_index,
        pairs_total=n_terms * (n_terms - 1),
        dests_total=dests_total,
        load_mean=round(load_mean, 2),
        cables=vulns,
    )
    if k2_samples > 0:
        report.k2_samples = _sample_pairs(
            k2_samples, seed, cables, cable_u, cable_v, graph.num_switches,
            sw_weights, keys, key_cables, n_cols,
        )
    report.elapsed_seconds = round(time.perf_counter() - t_start, 4)
    return report


def _bridges(
    n: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bridge-find every cable of an undirected (multi)graph at once.

    Iterative Tarjan low-link DFS over dense switch indices.  Parallel
    cables between the same pair of switches are distinct edges (the
    DFS skips only the tree edge it entered on, by edge id), so neither
    of a trunked pair is ever a bridge.  Returns per-edge arrays:
    whether the edge is a bridge, the terminal weight of the subtree
    below its tree-child side, and the terminal weight of the connected
    component containing it.
    """
    m = len(edge_u)
    is_bridge = np.zeros(m, dtype=bool)
    side_weight = np.zeros(m, dtype=np.int64)
    comp_weight = np.zeros(m, dtype=np.int64)
    if n == 0 or m == 0:
        return is_bridge, side_weight, comp_weight

    # Adjacency: node -> list of (neighbour, edge index).
    adj: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for e in range(m):
        u, v = int(edge_u[e]), int(edge_v[e])
        adj[u].append((v, e))
        adj[v].append((u, e))

    disc = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    subtree = weights.astype(np.int64).copy()
    timer = 0
    for root in range(n):
        if disc[root] >= 0:
            continue
        comp_nodes = []
        comp_edges = []
        # Stack frames: (node, incoming edge id, iterator position).
        stack = [(root, -1, 0)]
        disc[root] = low[root] = timer
        timer += 1
        comp_nodes.append(root)
        while stack:
            node, in_edge, idx = stack[-1]
            if idx < len(adj[node]):
                stack[-1] = (node, in_edge, idx + 1)
                nbr, e = adj[node][idx]
                if e == in_edge:
                    continue  # the tree edge we came in on (by id)
                if disc[nbr] >= 0:
                    low[node] = min(low[node], disc[nbr])
                    continue
                disc[nbr] = low[nbr] = timer
                timer += 1
                comp_nodes.append(nbr)
                comp_edges.append(e)
                stack.append((nbr, e, 0))
            else:
                stack.pop()
                if stack:
                    parent = stack[-1][0]
                    low[parent] = min(low[parent], low[node])
                    subtree[parent] += subtree[node]
                    if low[node] > disc[parent]:
                        is_bridge[in_edge] = True
                        side_weight[in_edge] = subtree[node]
        total = int(weights[comp_nodes].sum())
        for e in comp_edges:
            comp_weight[e] = total
        # Non-tree edges of this component never became bridges but
        # still need their component weight for completeness.
        # (covered: comp_edges holds tree edges; back edges keep 0 side
        # weight and is_bridge False, so comp_weight is irrelevant.)
    return is_bridge, side_weight, comp_weight


def _credit_loop_exposure(
    fabric: Fabric, cables: list["Link"]
) -> tuple[np.ndarray, dict[int, list[int]]]:
    """Per-cable: does some lane's residual CDG still cycle post-failure?

    Removing a cable only *removes* dependency edges, so a fabric whose
    per-lane CDGs are acyclic can never become deadlock-prone by losing
    a cable — the common case short-circuits to all-False without any
    per-cable work.  When a base lane is cyclic (e.g. plain SSSP on the
    HyperX), a cable is exposed iff some cycle survives without its two
    channels; cables outside a witness cycle are exposed immediately,
    only cables on the witness need the residual re-search.  Returns the
    per-cable exposure mask and, per exposed cable index, one surviving
    cycle as the ordered channel-list witness.
    """
    n_cables = len(cables)
    exposed = np.zeros(n_cables, dtype=bool)
    witnesses: dict[int, list[int]] = {}
    cyclic_lanes = [
        edges for edges in lane_dependency_edges(fabric).values()
        if dependency_cycle_exists(edges)
    ]
    for edges in cyclic_lanes:
        witness = find_dependency_cycle(edges)
        wset = set(witness or ())
        for i, c in enumerate(cables):
            if exposed[i]:
                continue
            if c.id in wset or c.reverse_id in wset:
                survivor = find_dependency_cycle_excluding(
                    edges, (c.id, c.reverse_id)
                )
                if survivor is not None:
                    exposed[i] = True
                    witnesses[i] = [int(ch) for ch in survivor]
            else:
                # The witness cycle shares no channel with this cable,
                # so it survives the failure untouched.
                exposed[i] = True
                witnesses[i] = [int(ch) for ch in witness or ()]
    return exposed, witnesses


def _sample_pairs(
    k2_samples: int,
    seed: int,
    cables: list["Link"],
    cable_u: np.ndarray,
    cable_v: np.ndarray,
    n_switches: int,
    weights: np.ndarray,
    keys: np.ndarray,
    key_cables: np.ndarray,
    n_cols: int,
) -> list[PairSample]:
    """Seeded sampling of two-cable failures (joint incidence + BFS)."""
    n_cables = len(cables)
    if n_cables < 2:
        return []
    rng = make_rng(derive_seed(seed, "whatif", "k2"))
    n_pairs = n_cables * (n_cables - 1) // 2
    count = min(k2_samples, n_pairs)
    picks = rng.choice(n_pairs, size=count, replace=False)

    # Columns per cable, sliced out of the sorted unique key array.
    bounds = np.searchsorted(key_cables, np.arange(n_cables + 1))
    cols_of = [keys[bounds[i]:bounds[i + 1]] % n_cols for i in range(n_cables)]

    adj: list[list[tuple[int, int]]] = [[] for _ in range(n_switches)]
    for e in range(n_cables):
        u, v = int(cable_u[e]), int(cable_v[e])
        adj[u].append((v, e))
        adj[v].append((u, e))

    samples: list[PairSample] = []
    for pick in np.sort(picks):
        a, b = _pair_from_index(int(pick), n_cables)
        dests = int(np.union1d(cols_of[a], cols_of[b]).size)
        disconnects, pairs_lost = _joint_disconnection(
            adj, n_switches, weights, (a, b)
        )
        samples.append(PairSample(
            cables=(int(cables[a].id), int(cables[b].id)),
            dests_affected=dests,
            disconnects=disconnects,
            pairs_disconnected=pairs_lost,
        ))
    return samples


def _pair_from_index(k: int, n: int) -> tuple[int, int]:
    """The k-th pair (i < j) in lexicographic order over n items."""
    i = 0
    remaining = k
    row = n - 1
    while remaining >= row:
        remaining -= row
        i += 1
        row -= 1
    return i, i + 1 + remaining


def _joint_disconnection(
    adj: list[list[tuple[int, int]]],
    n: int,
    weights: np.ndarray,
    dead: Iterable[int],
) -> tuple[bool, int]:
    """Connectivity and split-pair count with some cables removed."""
    dead_set = set(dead)
    label = np.full(n, -1, dtype=np.int64)
    comp_weights: list[int] = []
    for root in range(n):
        if label[root] >= 0:
            continue
        cid = len(comp_weights)
        label[root] = cid
        w = int(weights[root])
        frontier = [root]
        while frontier:
            u = frontier.pop()
            for v, e in adj[u]:
                if e in dead_set or label[v] >= 0:
                    continue
                label[v] = cid
                w += int(weights[v])
                frontier.append(v)
        comp_weights.append(w)
    if len(comp_weights) <= 1:
        return False, 0
    total = int(sum(comp_weights))
    same = sum(w * (w - 1) for w in comp_weights)
    # Ordered pairs across components = all ordered pairs minus the
    # within-component ones.  Pre-existing disconnection is rare (the
    # fault injector keeps graphs connected); callers compare against
    # the base component count if they need the delta.
    return True, total * (total - 1) - same
