"""The fabric linter: static verification of a routed :class:`Fabric`.

:func:`lint_fabric` audits forwarding state *before* any packet moves —
the OpenSM-style static pass the paper relied on to certify criterion
(4), "loop-free, fault-tolerant and deadlock-free", on the rewired
machine.  Every rule walks tables, LID maps or the topology itself; no
flow simulation is involved.  Findings carry stable codes and concrete
witnesses (see :mod:`repro.analysis.diagnostics`):

==========  ==============================================
``FAB001``  LFT reachability / black-hole detection
``FAB002``  forwarding-loop detection
``FAB003``  per-VL credit-loop (CDG cycle) certification
``FAB004``  duplicate LID / owner-table conflicts
``FAB005``  unassigned LIDs
``FAB006``  out-of-range LIDs
``FAB007``  invalid forwarding entries
``FAB008``  HyperX dimension regularity
``FAB009``  fat-tree level consistency
``FAB010``  port capacity / attachment invariants
``FAB011``  predicted hot links (static load estimator)
``FAB012``  virtual lanes outside the fabric/hardware budget
``FAB013``  stale forwarding entries over disabled links
==========  ==============================================

The per-destination forwarding function is a *functional graph* over
switches (destination-based forwarding: one out-edge per switch), so
reachability, black holes and loops for one destination LID all fall
out of a single O(switches) classification pass with memoisation —
O(switches x LIDs) for the whole fabric.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from repro.analysis.diagnostics import (
    ALL_RULES,
    CORE_RULES,
    RULES,
    WHATIF_RULES,
    Diagnostic,
    LintReport,
    Severity,
)
from repro.analysis.load import estimate_link_loads, hot_links, load_summary
from repro.analysis.whatif import audit_whatif
from repro.core.errors import FabricLintError, ReproError, TopologyError
from repro.ib.cdg import find_dependency_cycle, lane_dependency_edges
from repro.ib.deadlock import CreditLoop, find_credit_loop
from repro.ib.fabric import Fabric
from repro.ib.tables import walk_dest_columns
from repro.topology.hyperx import hyperx_shape_of

#: Largest unicast LID (InfiniBand reserves 0 and the multicast range).
MAX_UNICAST_LID = 0xBFFF

#: Virtual lanes available on the paper's QDR hardware.
HARDWARE_MAX_VLS = 8


class _Emitter:
    """Caps per-rule emission so mass corruption stays readable.

    Diagnostics past the cap are counted in ``report.suppressed`` —
    totals stay exact, only the witness list is bounded.
    """

    def __init__(self, report: LintReport, max_per_rule: int) -> None:
        self.report = report
        self.max_per_rule = max_per_rule
        self._counts: dict[str, int] = {}

    def add(self, code: str, message: str, **kwargs: Any) -> Diagnostic | None:
        n = self._counts.get(code, 0)
        self._counts[code] = n + 1
        if n >= self.max_per_rule:
            self.report.suppressed[code] = (
                self.report.suppressed.get(code, 0) + 1
            )
            return None
        return self.report.add(code, message, **kwargs)


def lint_fabric(
    fabric: Fabric,
    rules: Iterable[str] | None = None,
    *,
    hot_threshold: float = 3.0,
    blast_threshold: float = 0.5,
    max_per_rule: int = 16,
) -> LintReport:
    """Statically verify a routed fabric; returns a :class:`LintReport`.

    Parameters
    ----------
    fabric:
        The routed plane to verify.
    rules:
        Rule codes to run (default: every as-routed rule).  Pass
        :data:`~repro.analysis.diagnostics.CORE_RULES` for the cheap
        correctness-only preflight, or ``ALL_RULES | WHATIF_RULES`` to
        add the what-if fault certification (``repro lint --what-if``).
    hot_threshold:
        A link is reported hot when its predicted traversal count
        exceeds this multiple of the fabric mean (FAB011; FAB016 uses
        the same headroom multiple for post-failure bounds).
    blast_threshold:
        FAB017 fires when a single cable failure would invalidate more
        than this fraction of all installed destinations.
    max_per_rule:
        Emission cap per rule; excess findings are counted in
        ``report.suppressed``.
    """
    active = set(ALL_RULES if rules is None else rules)
    unknown = active - set(RULES)
    if unknown:
        raise ValueError(f"unknown lint rule codes: {sorted(unknown)}")
    report = LintReport(network=fabric.net.name, engine=fabric.engine_name)
    emit = _Emitter(report, max_per_rule)

    # The four table rules share one scan over the forwarding state —
    # entry verdicts come from vectorised masks and a single
    # walk_dest_columns pass instead of four independent re-walks.
    table_rules = active & {"FAB001", "FAB002", "FAB007", "FAB013"}
    scan = _TableScan(fabric) if table_rules else None

    if active & {"FAB004", "FAB005", "FAB006"}:
        _check_lids(fabric, emit, active)
    if "FAB007" in active:
        _check_table_hygiene(fabric, emit, scan)
    if "FAB013" in active:
        _check_stale_entries(fabric, emit, scan)
    if active & {"FAB001", "FAB002"}:
        _check_walks(fabric, emit, active, report.stats, scan)
    if active & {"FAB003", "FAB012"}:
        _check_credit_loops(fabric, emit, active)
    if active & {"FAB008", "FAB009", "FAB010"}:
        _check_topology(fabric, emit, active)
    if "FAB011" in active:
        _check_load(fabric, emit, hot_threshold, report.stats)
    if active & WHATIF_RULES:
        _check_whatif(
            fabric, emit, active, report.stats, hot_threshold,
            blast_threshold,
        )
    return report


def assert_fabric_clean(
    fabric: Fabric,
    context: str = "",
    rules: Iterable[str] | None = None,
) -> LintReport:
    """Preflight gate: lint and raise :class:`FabricLintError` on errors.

    Runs the cheap correctness rules by default (no load estimator, no
    shape warnings) — the hook :mod:`repro.experiments.runner` calls
    before every simulation.
    """
    report = lint_fabric(fabric, CORE_RULES if rules is None else rules)
    if not report.clean:
        where = f" ({context})" if context else ""
        first = "; ".join(str(d) for d in report.errors[:3])
        raise FabricLintError(
            f"fabric {fabric.net.name!r} engine={fabric.engine_name!r}"
            f"{where} failed static verification with "
            f"{len(report.errors)} error(s): {first}",
            report=report,
        )
    return report


# --- LID / LMC consistency (FAB004-FAB006) ---------------------------------
def _check_lids(fabric: Fabric, emit: _Emitter, active: set[str]) -> None:
    net = fabric.net
    lm = fabric.lidmap
    span = lm.lids_per_port

    if "FAB005" in active:
        for t in net.terminals:
            if t not in lm.base:
                emit.add(
                    "FAB005",
                    f"terminal {t} has no LID assigned",
                    witness={"node": t, "kind": "terminal"},
                )
        for sw in net.switches:
            if sw not in lm.base:
                emit.add(
                    "FAB005",
                    f"switch {sw} has no LID assigned",
                    severity=Severity.WARNING,
                    switch=sw,
                    witness={"node": sw, "kind": "switch"},
                )

    blocks: list[tuple[int, int, int]] = []  # (start, end_exclusive, node)
    for node, base in lm.base.items():
        width = span if net.is_terminal(node) else 1
        blocks.append((base, base + width, node))
        if "FAB006" in active and (base < 1 or base + width - 1 > MAX_UNICAST_LID):
            emit.add(
                "FAB006",
                f"node {node} LID block [{base}, {base + width - 1}] leaves "
                f"the unicast range [1, {MAX_UNICAST_LID}]",
                lid=base,
                witness={"node": node, "base": base, "width": width},
            )

    if "FAB004" in active:
        blocks.sort()
        for (s1, e1, n1), (s2, e2, n2) in zip(blocks, blocks[1:]):
            if s2 < e1:
                emit.add(
                    "FAB004",
                    f"nodes {n1} and {n2} claim overlapping LID blocks "
                    f"[{s1}, {e1 - 1}] and [{s2}, {e2 - 1}]",
                    lid=s2,
                    witness={"lid": s2, "nodes": [n1, n2]},
                )
        for lid, (node, index) in lm.owner.items():
            base = lm.base.get(node)
            if base is None or base + index != lid:
                emit.add(
                    "FAB004",
                    f"owner table maps LID {lid} to (node {node}, index "
                    f"{index}) but the node's base block disagrees",
                    lid=lid,
                    witness={"lid": lid, "node": node, "index": index,
                             "base": base},
                )


# --- the shared forwarding-state scan ---------------------------------------
class _TableScan:
    """One pass over the forwarding state, shared by the table rules.

    FAB007 and FAB013 read per-entry verdicts off vectorised masks over
    the dense matrix (one ``entry_coordinates`` gather instead of two
    independent per-entry Python loops), and FAB001/FAB002 get a
    :func:`~repro.ib.tables.walk_dest_columns` prefilter that clears
    defect-free destinations wholesale, so only broken destinations pay
    the per-switch Python classification that produces witnesses.
    Out-of-universe state (overflow entries, foreign-switch rows;
    test-only) keeps the per-entry reference treatment.
    """

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        net = fabric.net
        tables = fabric.tables
        self.num_links = len(net.links)
        self.graph = net.switch_graph()
        self.rows, self.cols, self.links = tables.entry_coordinates()
        self.switch_ids = np.asarray(tables.switch_ids, dtype=np.int64)
        self.dlids_arr = tables.dlids
        safe = np.clip(self.links, 0, max(self.num_links - 1, 0))
        #: Entry's link id exists in the network.
        self.known = (self.links >= 0) & (self.links < self.num_links)
        self.entry_src = np.where(
            self.known, self.graph.link_src_node[safe], -1
        )
        self.entry_enabled = self.known & self.graph.link_enabled[safe]
        self.entry_dst = np.where(
            self.known, self.graph.link_dst_node[safe], -1
        )
        #: Switch node id of each entry's row.
        self.entry_sw = self.switch_ids[self.rows]
        #: Entry's link actually leaves the switch it is installed at.
        self.local = self.known & (self.entry_src == self.entry_sw)

    def suspect_dlids(self, dlids: list[int]) -> set[int] | None:
        """Terminal dlids that may have a broken walk, or ``None`` for
        "treat every dlid as suspect" (tables unfit for the dense walk).

        A destination is *clean* exactly when every switch's matrix walk
        ejects at its terminal (``walk_dest_columns`` ok everywhere) and
        no non-local entry exists for it — the same verdicts
        ``_classify_switches`` reaches, wholesale.
        """
        fabric = self.fabric
        tables = fabric.tables
        if tables.foreign_switches():
            return None
        cols = []
        nodes = []
        for dlid in dlids:
            col = tables.column_of(dlid)
            if col is None:
                return None
            cols.append(col)
            nodes.append(fabric.lidmap.node_of(dlid))
        if not cols:
            return set()
        ok, _, _ = walk_dest_columns(
            tables.dense,
            self.graph,
            np.asarray(cols, dtype=np.int64),
            np.asarray(nodes, dtype=np.int64),
        )
        suspects = {
            int(dlids[i]) for i in np.flatnonzero(~ok.all(axis=0))
        }
        # walk_dest_columns follows entries regardless of which switch
        # they leave from; the classifier black-holes foreign/unknown
        # links, so their destinations must stay suspect too.
        nonlocal_cols = self.cols[~self.local]
        suspects.update(
            int(d) for d in self.dlids_arr[nonlocal_cols].tolist()
        )
        return suspects


# --- forwarding-table hygiene (FAB007) -------------------------------------
def _check_table_hygiene(
    fabric: Fabric, emit: _Emitter, scan: _TableScan
) -> None:
    net = fabric.net
    tables = fabric.tables
    num_links = scan.num_links
    # Rows at non-switch keys (terminals, out-of-range ids) are plain
    # dicts outside the matrix universe.
    for sw in tables.foreign_switches():
        emit.add(
            "FAB007",
            f"forwarding table installed at non-switch node {sw}",
            switch=sw,
            witness={"switch": sw},
        )
    # Dense entries: unknown and foreign links straight off the scan
    # masks.  Unknown destination LIDs cannot occur in-universe — the
    # matrix columns *are* the lidmap's LIDs — so only overflow entries
    # need that check below.
    for i in np.flatnonzero(~scan.known).tolist():
        sw = int(scan.entry_sw[i])
        dlid = int(scan.dlids_arr[scan.cols[i]])
        emit.add(
            "FAB007",
            f"switch {sw} routes dlid {dlid} via unknown link "
            f"{int(scan.links[i])}",
            switch=sw, lid=dlid,
            witness={"switch": sw, "dlid": dlid, "link": int(scan.links[i])},
        )
    for i in np.flatnonzero(scan.known & ~scan.local).tolist():
        sw = int(scan.entry_sw[i])
        dlid = int(scan.dlids_arr[scan.cols[i]])
        emit.add(
            "FAB007",
            f"switch {sw} routes dlid {dlid} via foreign link "
            f"{int(scan.links[i])} (leaves node {int(scan.entry_src[i])})",
            switch=sw, lid=dlid,
            witness={"switch": sw, "dlid": dlid, "link": int(scan.links[i]),
                     "link_src": int(scan.entry_src[i])},
        )
    for sw, dlid, link_id in tables.overflow_items():
        if not (0 <= link_id < num_links):
            emit.add(
                "FAB007",
                f"switch {sw} routes dlid {dlid} via unknown link "
                f"{link_id}",
                switch=sw, lid=dlid,
                witness={"switch": sw, "dlid": dlid, "link": link_id},
            )
            continue
        link = net.link(link_id)
        if link.src != sw:
            emit.add(
                "FAB007",
                f"switch {sw} routes dlid {dlid} via foreign link "
                f"{link_id} (leaves node {link.src})",
                switch=sw, lid=dlid,
                witness={"switch": sw, "dlid": dlid, "link": link_id,
                         "link_src": link.src},
            )
        if dlid not in fabric.lidmap.owner:
            emit.add(
                "FAB007",
                f"switch {sw} routes unknown destination LID {dlid}",
                switch=sw, lid=dlid,
                witness={"switch": sw, "dlid": dlid, "link": link_id},
            )


# --- stale entries over disabled links (FAB013) -----------------------------
def _check_stale_entries(
    fabric: Fabric, emit: _Emitter, scan: _TableScan
) -> None:
    """Forwarding entries whose out link has been disabled since routing.

    This is the static counterpart of the simulator's stale-path
    rejection: a table computed before a cable failure silently
    black-holes (or, in a naive model, simulates at line rate) every
    destination routed over the dead cable until the SM re-sweeps.
    """
    net = fabric.net
    tables = fabric.tables
    stale = scan.local & ~scan.entry_enabled
    for i in np.flatnonzero(stale).tolist():
        sw = int(scan.entry_sw[i])
        dlid = int(scan.dlids_arr[scan.cols[i]])
        link_id = int(scan.links[i])
        emit.add(
            "FAB013",
            f"switch {sw} routes dlid {dlid} via disabled link "
            f"{link_id}: stale LFT entry; re-sweep the fabric "
            "(repro.ib.subnet_manager.resweep) after cable events",
            switch=sw, lid=dlid,
            witness={"switch": sw, "dlid": dlid, "link": link_id,
                     "link_dst": int(scan.entry_dst[i])},
        )
    # Out-of-universe state keeps the per-entry reference treatment.
    extra = list(tables.overflow_items()) + [
        (sw, dlid, link_id)
        for sw in tables.foreign_switches()
        for dlid, link_id in tables[sw].items()
    ]
    for sw, dlid, link_id in extra:
        if not (0 <= link_id < scan.num_links):
            continue  # FAB007 owns unknown links
        link = net.link(link_id)
        if link.src == sw and not link.enabled:
            emit.add(
                "FAB013",
                f"switch {sw} routes dlid {dlid} via disabled link "
                f"{link_id}: stale LFT entry; re-sweep the fabric "
                "(repro.ib.subnet_manager.resweep) after cable events",
                switch=sw, lid=dlid,
                witness={"switch": sw, "dlid": dlid, "link": link_id,
                         "link_dst": link.dst},
            )


# --- reachability, black holes, forwarding loops (FAB001/FAB002) -----------
def _check_walks(
    fabric: Fabric,
    emit: _Emitter,
    active: set[str],
    stats: dict[str, Any],
    scan: _TableScan,
) -> None:
    net = fabric.net
    attached = {sw: net.attached_terminals(sw) for sw in net.switches}
    pairs_total = 0
    blackholed_pairs = 0
    looped_pairs = 0

    dlids = fabric.lidmap.terminal_lids(net)
    # One vectorised walk clears defect-free destinations wholesale;
    # only suspects pay the per-switch classification below.
    suspects = scan.suspect_dlids(dlids)

    for dlid in dlids:
        dest_node = fabric.lidmap.node_of(dlid)
        try:
            dsw = net.attached_switch(dest_node)
        except TopologyError:
            continue  # detached destination: FAB010 reports it
        pairs_total += net.num_terminals - 1
        if suspects is not None and dlid not in suspects:
            continue

        state, cycles = _classify_switches(fabric, dlid, dest_node, dsw)

        # Black holes: group the defect by the switch the packet dies at.
        by_hole: dict[int, list[int]] = {}
        for sw, st in state.items():
            if st[0] == "blackhole":
                by_hole.setdefault(st[1], []).append(sw)
        for hole in sorted(by_hole):
            sources = by_hole[hole]
            affected = sum(len(attached[s]) for s in sources)
            if dsw in sources:
                affected -= 1  # the destination does not send to itself
            blackholed_pairs += affected
            if "FAB001" not in active or affected == 0:
                continue
            sample_sw = next(
                (s for s in sources if attached[s] and s != dsw), sources[0]
            )
            sample_src = next(
                (t for t in attached[sample_sw] if t != dest_node), None
            )
            reason = state[hole][2]
            emit.add(
                "FAB001",
                f"dlid {dlid}: black hole at switch {hole} ({reason}); "
                f"{affected} (source, dlid) pair(s) dropped",
                switch=hole, lid=dlid,
                witness={
                    "dlid": dlid,
                    "switch": hole,
                    "reason": reason,
                    "affected_pairs": affected,
                    "source": sample_src,
                    "walk": _rewalk(fabric, dlid, sample_sw, hole),
                },
            )

        # Forwarding loops: one diagnostic per distinct cycle.
        for idx, cycle in enumerate(cycles):
            feeders = [
                s for s, st in state.items()
                if st[0] == "loop" and st[1] == idx
            ]
            affected = sum(len(attached[s]) for s in feeders)
            if dsw in feeders:
                affected -= 1
            looped_pairs += affected
            if "FAB002" not in active:
                continue
            links = [fabric.tables[s][dlid] for s in cycle]
            sample_sw = next((s for s in feeders if attached[s]), cycle[0])
            sample_src = next(
                (t for t in attached.get(sample_sw, []) if t != dest_node),
                None,
            )
            emit.add(
                "FAB002",
                f"dlid {dlid}: forwarding loop through switches "
                f"{' -> '.join(map(str, cycle + cycle[:1]))}; "
                f"{affected} (source, dlid) pair(s) trapped",
                switch=cycle[0], lid=dlid,
                witness={
                    "dlid": dlid,
                    "cycle": cycle,
                    "links": links,
                    "affected_pairs": affected,
                    "source": sample_src,
                },
            )

    stats["pairs_total"] = pairs_total
    stats["blackholed_pairs"] = blackholed_pairs
    stats["looped_pairs"] = looped_pairs


def _classify_switches(
    fabric: Fabric,
    dlid: int,
    dest_node: int,
    dsw: int,
) -> tuple[dict[int, tuple], list[list[int]]]:
    """Classify every switch's fate when forwarding toward ``dlid``.

    Returns ``(state, cycles)`` where ``state[sw]`` is ``("ok",)``,
    ``("blackhole", hole_switch, reason)`` — the walk dies at
    ``hole_switch`` — or ``("loop", cycle_index)``, and ``cycles`` lists
    each distinct forwarding cycle as an ordered switch sequence.
    Memoised walk over the functional graph: O(switches) per LID.
    """
    net = fabric.net
    state: dict[int, tuple] = {}
    cycles: list[list[int]] = []

    for start in net.switches:
        if start in state:
            continue
        path: list[int] = []
        onpath: dict[int, int] = {}
        cur = start
        verdict: tuple | None = None
        while True:
            if cur in state:
                verdict = state[cur]
                break
            if cur in onpath:
                cycle = path[onpath[cur]:]
                cycles.append(cycle)
                verdict = ("loop", len(cycles) - 1)
                break
            onpath[cur] = len(path)
            path.append(cur)
            entry = fabric.tables.get(cur, {}).get(dlid)
            if entry is None:
                verdict = ("blackhole", cur, "no forwarding entry")
                break
            if not 0 <= entry < len(net.links):
                verdict = (
                    "blackhole", cur, f"entry uses unknown link {entry}"
                )
                break
            link = net.link(entry)
            if not link.enabled:
                verdict = (
                    "blackhole", cur, f"entry uses disabled link {entry}"
                )
                break
            if link.src != cur:
                verdict = (
                    "blackhole", cur, f"entry uses foreign link {entry}"
                )
                break
            if net.is_terminal(link.dst):
                if link.dst == dest_node:
                    verdict = ("ok",)
                else:
                    verdict = (
                        "blackhole", cur,
                        f"ejects at wrong terminal {link.dst}",
                    )
                break
            cur = link.dst
        for sw in path:
            state[sw] = verdict
    return state, cycles


def _rewalk(fabric: Fabric, dlid: int, start: int, stop: int) -> list[int]:
    """Re-trace the switch walk from ``start`` until ``stop`` (witness)."""
    net = fabric.net
    walk = [start]
    cur = start
    for _ in range(net.num_switches):
        if cur == stop:
            break
        entry = fabric.tables.get(cur, {}).get(dlid)
        if entry is None or not 0 <= entry < len(net.links):
            break
        link = net.link(entry)
        if not link.enabled or not net.is_switch(link.dst):
            break
        cur = link.dst
        walk.append(cur)
    return walk


# --- credit loops and lane budgets (FAB003/FAB012) -------------------------
def _check_credit_loops(
    fabric: Fabric, emit: _Emitter, active: set[str]
) -> None:
    net = fabric.net

    if "FAB012" in active:
        for dlid, vl in sorted(fabric.vl_of_dlid.items()):
            if vl < 0 or vl >= fabric.num_vls:
                emit.add(
                    "FAB012",
                    f"dlid {dlid} assigned virtual lane {vl} outside the "
                    f"fabric's {fabric.num_vls} lane(s)",
                    lid=dlid, vl=vl,
                    witness={"dlid": dlid, "vl": vl,
                             "num_vls": fabric.num_vls},
                )
        if fabric.num_vls > HARDWARE_MAX_VLS:
            emit.add(
                "FAB012",
                f"fabric uses {fabric.num_vls} virtual lanes; the QDR "
                f"hardware offers {HARDWARE_MAX_VLS}",
                severity=Severity.WARNING,
                witness={"num_vls": fabric.num_vls,
                         "hardware_max": HARDWARE_MAX_VLS},
            )

    if "FAB003" not in active:
        return

    loop = _find_fabric_credit_loop(fabric)
    if loop is None:
        return
    channels = [
        {"link": lid, "src": net.link(lid).src, "dst": net.link(lid).dst}
        for lid in loop.channels
    ]
    emit.add(
        "FAB003",
        str(loop),
        vl=loop.vl,
        witness={"vl": loop.vl, "channels": list(loop.channels),
                 "endpoints": channels},
    )


def _find_fabric_credit_loop(fabric: Fabric) -> CreditLoop | None:
    """Per-lane CDG certification at the fabric's native granularity.

    LASH records a per-pair lane map (``vl_of_pair``); its deadlock
    freedom is invisible at destination granularity, so certify the
    exact per-pair dependencies instead.  Everything else uses the
    O(switches) per-destination extraction straight off the tables.
    """
    net = fabric.net
    vl_of_pair: Mapping[tuple[int, int], int] | None = getattr(
        fabric, "vl_of_pair", None
    )
    if vl_of_pair is not None:
        per_lane_paths: dict[int, dict[int, list[list[int]]]] = {}
        for dlid in fabric.lidmap.terminal_lids(net):
            for src in net.terminals:
                if src == fabric.lidmap.node_of(dlid):
                    continue
                try:
                    path = fabric.resolve(src, dlid)
                except ReproError:
                    continue  # walk rules report broken pairs
                lane = vl_of_pair.get((src, dlid), 0)
                per_lane_paths.setdefault(lane, {}).setdefault(
                    dlid, []
                ).append(path)
        for lane in sorted(per_lane_paths):
            loop = find_credit_loop(
                net, per_lane_paths[lane], dict.fromkeys(per_lane_paths[lane], lane)
            )
            if loop is not None:
                return loop
        return None

    per_lane = lane_dependency_edges(fabric)
    for vl in sorted(per_lane):
        cycle = find_dependency_cycle(per_lane[vl])
        if cycle is not None:
            return CreditLoop(vl=vl, channels=tuple(cycle))
    return None


# --- topology invariants (FAB008/FAB009/FAB010) ----------------------------
def _check_topology(fabric: Fabric, emit: _Emitter, active: set[str]) -> None:
    net = fabric.net

    if "FAB010" in active:
        for t in net.terminals:
            n_up = len(net.out_links(t))
            if n_up != 1:
                emit.add(
                    "FAB010",
                    f"terminal {t} has {n_up} enabled uplinks, expected 1",
                    witness={"terminal": t, "uplinks": n_up},
                )
        for sw in net.switches:
            if net.num_switches > 1 and not any(
                net.is_switch(link.dst) for link in net.out_links(sw)
            ):
                emit.add(
                    "FAB010",
                    f"switch {sw} has no enabled switch-to-switch link",
                    switch=sw,
                    witness={"switch": sw},
                )
        for link in net.iter_links():
            if link.capacity <= 0:
                emit.add(
                    "FAB010",
                    f"link {link.id} ({link.src} -> {link.dst}) has "
                    f"non-positive capacity {link.capacity}",
                    witness={"link": link.id, "capacity": link.capacity},
                )

    if not net.switches:
        return
    meta = net.node_meta(net.switches[0])
    if "FAB008" in active and "coord" in meta:
        _check_hyperx_regularity(fabric, emit)
    if "FAB009" in active and "level" in meta:
        _check_tree_levels(fabric, emit)


def _check_hyperx_regularity(fabric: Fabric, emit: _Emitter) -> None:
    net = fabric.net
    try:
        shape = hyperx_shape_of(net)
    except TopologyError as exc:
        emit.add(
            "FAB008",
            f"cannot recover HyperX shape: {exc}",
            severity=Severity.ERROR,
            witness={"error": str(exc)},
        )
        return

    coord_of = {
        sw: tuple(net.node_meta(sw).get("coord", ())) for sw in net.switches
    }
    for link in net.iter_links():
        if not (net.is_switch(link.src) and net.is_switch(link.dst)):
            continue
        if link.id > link.reverse_id >= 0:
            continue  # one representative direction per cable
        c1, c2 = coord_of[link.src], coord_of[link.dst]
        diff = [i for i, (a, b) in enumerate(zip(c1, c2)) if a != b]
        if len(c1) != len(shape) or len(c2) != len(shape) or len(diff) != 1:
            emit.add(
                "FAB008",
                f"link {link.id} connects coords {c1} and {c2}, which "
                "differ in != 1 dimension",
                severity=Severity.ERROR,
                witness={"link": link.id, "coords": [list(c1), list(c2)]},
            )
            continue
        if link.meta.get("dim") != diff[0]:
            emit.add(
                "FAB008",
                f"link {link.id} is annotated dim={link.meta.get('dim')} "
                f"but spans dimension {diff[0]}",
                severity=Severity.ERROR,
                witness={"link": link.id, "annotated": link.meta.get("dim"),
                         "actual": diff[0]},
            )

    for sw in net.switches:
        coord = coord_of[sw]
        per_dim: dict[int, set[int]] = {d: set() for d in range(len(shape))}
        for link in net.out_links(sw):
            if not net.is_switch(link.dst):
                continue
            other = coord_of[link.dst]
            diff = [i for i, (a, b) in enumerate(zip(coord, other)) if a != b]
            if len(diff) == 1:
                per_dim[diff[0]].add(link.dst)
        for dim, size in enumerate(shape):
            expected = size - 1
            actual = len(per_dim[dim])
            if actual < expected:
                emit.add(
                    "FAB008",
                    f"switch {sw} {coord} reaches {actual}/{expected} "
                    f"dimension-{dim} neighbours (missing cables)",
                    switch=sw,
                    witness={"switch": sw, "coord": list(coord), "dim": dim,
                             "expected": expected, "actual": actual},
                )


def _check_tree_levels(fabric: Fabric, emit: _Emitter) -> None:
    net = fabric.net
    for link in net.iter_links():
        if not (net.is_switch(link.src) and net.is_switch(link.dst)):
            continue
        if link.id > link.reverse_id >= 0:
            continue
        l1 = net.node_meta(link.src).get("level")
        l2 = net.node_meta(link.dst).get("level")
        if l1 is None or l2 is None or abs(int(l1) - int(l2)) != 1:
            emit.add(
                "FAB009",
                f"cable {link.id} connects tree levels {l1} and {l2} "
                "(must be adjacent)",
                witness={"link": link.id, "levels": [l1, l2],
                         "switches": [link.src, link.dst]},
            )


# --- static load estimation (FAB011) ---------------------------------------
def _check_load(
    fabric: Fabric,
    emit: _Emitter,
    hot_threshold: float,
    stats: dict[str, Any],
) -> None:
    loads = estimate_link_loads(fabric)
    stats["link_load"] = load_summary(fabric, loads)
    for witness in hot_links(fabric, loads, threshold=hot_threshold):
        emit.add(
            "FAB011",
            f"link {witness['link']} ({witness['src']} -> "
            f"{witness['dst']}) predicted to carry {witness['load']} "
            f"table walks, {witness['ratio']}x the fabric mean of "
            f"{witness['mean']}",
            witness=witness,
        )


# --- what-if fault certification (FAB014-FAB017) ----------------------------
def _check_whatif(
    fabric: Fabric,
    emit: _Emitter,
    active: set[str],
    stats: dict[str, Any],
    hot_threshold: float,
    blast_threshold: float,
) -> None:
    """Exhaustive single-cable audit feeding the four what-if rules.

    One :func:`~repro.analysis.whatif.audit_whatif` run per lint; every
    rule reads its verdicts off the shared
    :class:`~repro.analysis.whatif.VulnerabilityReport`, and every
    diagnostic's witness is the cable's full vulnerability certificate.
    Findings are emitted in criticality-rank order, so the per-rule cap
    keeps the *worst* cables when mass corruption overflows it.
    """
    try:
        report = audit_whatif(
            fabric,
            hot_threshold=hot_threshold,
            blast_threshold=blast_threshold,
        )
    except TopologyError as exc:
        emit.add(
            "FAB014",
            f"what-if audit not applicable: {exc}",
            severity=Severity.WARNING,
            witness={"error": str(exc)},
        )
        return

    stats["whatif"] = {
        "cables": len(report.cables),
        "bridges": sum(1 for v in report.cables if v.is_bridge),
        "credit_loop_exposed": sum(
            1 for v in report.cables if v.credit_loop_exposed
        ),
        "pairs_total": report.pairs_total,
        "dests_total": report.dests_total,
        "load_mean": report.load_mean,
        "elapsed_seconds": report.elapsed_seconds,
    }

    for v in report.cables:  # criticality-rank order
        cert = v.to_dict()
        if "FAB014" in active and v.is_bridge:
            emit.add(
                "FAB014",
                f"cable {v.cable} ({v.src} <-> {v.dst}) is a single point "
                f"of failure: losing it disconnects the switch graph and "
                f"strands {v.pairs_disconnected} terminal pair(s) "
                f"(criticality rank {v.rank}/{len(report.cables)})",
                witness={**cert, "pairs_total": report.pairs_total},
            )
        if "FAB015" in active and v.credit_loop_exposed:
            emit.add(
                "FAB015",
                f"cable {v.cable} ({v.src} <-> {v.dst}): surviving "
                f"virtual lanes keep a credit-loop cycle after this cable "
                f"fails — the pre-re-sweep fabric is deadlock-capable "
                f"(criticality rank {v.rank}/{len(report.cables)})",
                witness={**cert, "cycle": v.credit_loop_witness},
            )
        if (
            "FAB016" in active
            and report.load_mean > 0
            and v.load > 0
            and v.load_shift_bound > hot_threshold * report.load_mean
        ):
            emit.add(
                "FAB016",
                f"cable {v.cable} ({v.src} <-> {v.dst}): rerouting its "
                f"{v.load} table walks bounds some alternative link at "
                f"{v.load_shift_bound} walks, "
                f"{round(v.load_shift_bound / report.load_mean, 2)}x the "
                f"fabric mean of {report.load_mean} (headroom threshold "
                f"{hot_threshold}x)",
                witness={**cert, "load_mean": report.load_mean,
                         "hot_threshold": hot_threshold},
            )
        if "FAB017" in active and v.blast_fraction > blast_threshold:
            emit.add(
                "FAB017",
                f"cable {v.cable} ({v.src} <-> {v.dst}): failure "
                f"invalidates routes toward {v.dests_affected} of "
                f"{report.dests_total} destinations "
                f"({round(100 * v.blast_fraction, 1)}% re-sweep blast "
                f"radius, threshold "
                f"{round(100 * blast_threshold, 1)}%)",
                witness={**cert, "dests_total": report.dests_total,
                         "blast_threshold": blast_threshold},
            )
