"""Static link-load estimation from forwarding tables alone.

The paper's core HyperX pathology (section 3.1): minimal routing on a
high-radix direct topology concentrates bisection traffic onto few
links, which is why PARX adds non-minimal detours.  This module
predicts that concentration *statically*: for an all-to-all unit demand
(every terminal sends one notional packet to every destination LID),
count how many (source, dlid) table walks traverse each
switch-to-switch link.  No flow simulation is involved — the counts
fall straight out of the destination trees encoded in the LFTs.

The per-destination forwarding function is a functional graph over
switches (each switch has at most one out-edge per dlid), so one
topological pass per destination accumulates all source counts in
O(switches) — O(switches x LIDs) overall, fast enough to run as a lint
rule on the full 12x8 plane.  Switches caught in forwarding loops or
black holes are skipped here; the walk rules report those defects.
"""

from __future__ import annotations

from collections import deque
from typing import Any

import numpy as np

from repro.core.chunking import items_per_chunk
from repro.core.parallel import run_loads_job
from repro.ib.fabric import Fabric
from repro.routing.arrays import accumulate_column_loads


def estimate_link_loads(fabric: Fabric) -> dict[int, int]:
    """Table-walk traversal counts per enabled switch-to-switch link.

    Returns ``link id -> number of (source terminal, destination LID)
    pairs whose table walk crosses that link`` under uniform all-pairs
    demand.  Only switch-to-switch links accumulate load; injection and
    ejection hops are topology-determined and uninteresting.

    When the tables carry the dense next-hop matrix the per-destination
    successor function and in-degrees come from column gathers and the
    Kahn pass drains whole frontiers at a time; tables with rows outside
    the matrix universe (or plain dicts) take the reference walk.  Both
    produce identical integer counts — the drain order never affects the
    totals because every predecessor of a switch settles before it.
    """
    net = fabric.net
    tables = fabric.tables
    dlids = fabric.lidmap.terminal_lids(net)
    if (
        hasattr(tables, "column_of")
        and not tables.foreign_switches()
        and all(tables.column_of(dlid) is not None for dlid in dlids)
    ):
        return _estimate_link_loads_dense(fabric, dlids)
    return _estimate_link_loads_reference(fabric, dlids)


def _estimate_link_loads_dense(fabric: Fabric, dlids: list[int]) -> dict[int, int]:
    """Frontier-at-a-time Kahn over the dense next-hop matrix.

    Thin wrapper over the shared
    :func:`repro.routing.arrays.accumulate_column_loads` kernel (the
    what-if verifier runs the same kernel over other column subsets).
    """
    net = fabric.net
    tables = fabric.tables
    graph = net.switch_graph()
    loads_arr = np.zeros(len(net.links), dtype=np.int64)
    cols = np.asarray(
        [tables.column_of(dlid) for dlid in dlids], dtype=np.int64
    )
    roots = np.asarray(
        [
            graph.index[net.attached_switch(fabric.lidmap.node_of(dlid))]
            for dlid in dlids
        ],
        dtype=np.int64,
    )
    # Destination-chunked so the per-chunk transient state stays bounded
    # on 10k-LID fabrics; per-link sums are order-independent, so any
    # chunk size — and any worker sharding — produces the identical
    # count dict.
    chunk = items_per_chunk(net.num_switches * 40)
    if not run_loads_job(tables.dense, graph, cols, roots, loads_arr, chunk):
        for lo in range(0, cols.size, chunk):
            accumulate_column_loads(
                tables.dense,
                graph,
                cols[lo : lo + chunk],
                roots[lo : lo + chunk],
                loads_arr,
            )

    return {
        link.id: int(loads_arr[link.id])
        for link in net.iter_links()
        if net.is_switch(link.src) and net.is_switch(link.dst)
    }


def _estimate_link_loads_reference(
    fabric: Fabric, dlids: list[int]
) -> dict[int, int]:
    """Reference per-entry table walk (any mapping-of-mappings tables)."""
    net = fabric.net
    loads: dict[int, int] = {
        link.id: 0
        for link in net.iter_links()
        if net.is_switch(link.src) and net.is_switch(link.dst)
    }
    attached: dict[int, int] = {
        sw: len(net.attached_terminals(sw)) for sw in net.switches
    }

    for dlid in dlids:
        dest_node = fabric.lidmap.node_of(dlid)
        # Sources: every terminal except the destination itself.  A
        # terminal's walk enters at its attached switch and follows the
        # destination tree, so seed each switch with its terminal count.
        seed = dict(attached)
        dsw = net.attached_switch(dest_node)
        seed[dsw] -= 1  # the destination does not send to itself

        next_sw: dict[int, tuple[int, int] | None] = {}
        indeg: dict[int, int] = dict.fromkeys(net.switches, 0)
        for sw in net.switches:
            entry = fabric.tables.get(sw, {}).get(dlid)
            hop: tuple[int, int] | None = None
            if entry is not None and 0 <= entry < len(net.links):
                link = net.link(entry)
                if link.enabled and net.is_switch(link.dst):
                    hop = (entry, link.dst)
                    indeg[link.dst] += 1
            next_sw[sw] = hop

        # Kahn's algorithm over the functional graph; switches on a
        # forwarding cycle never reach in-degree 0 and are skipped.
        total = seed
        queue = deque(sw for sw in net.switches if indeg[sw] == 0)
        while queue:
            sw = queue.popleft()
            hop = next_sw[sw]
            if hop is None:
                continue  # ejection at the destination, or a black hole
            link_id, succ = hop
            if total[sw] > 0:
                loads[link_id] += total[sw]
                total[succ] += total[sw]
            indeg[succ] -= 1
            if indeg[succ] == 0:
                queue.append(succ)
    return loads


def load_summary(fabric: Fabric, loads: dict[int, int]) -> dict[str, Any]:
    """Aggregate statistics of an :func:`estimate_link_loads` result."""
    if not loads:
        return {"links": 0, "mean": 0.0, "max": 0, "max_link": None,
                "imbalance": 0.0}
    mean = sum(loads.values()) / len(loads)
    max_link = max(loads, key=lambda lid: loads[lid])
    peak = loads[max_link]
    link = fabric.net.link(max_link)
    return {
        "links": len(loads),
        "mean": round(mean, 2),
        "max": peak,
        "max_link": {"link": max_link, "src": link.src, "dst": link.dst},
        "imbalance": round(peak / mean, 2) if mean else 0.0,
    }


def hot_links(
    fabric: Fabric,
    loads: dict[int, int],
    threshold: float = 3.0,
    limit: int = 8,
) -> list[dict[str, Any]]:
    """Links whose predicted load exceeds ``threshold`` x fabric mean.

    Returns witness dicts sorted by descending load, at most ``limit``
    of them (the linter caps emission; totals live in the summary).
    """
    if not loads:
        return []
    mean = sum(loads.values()) / len(loads)
    if mean <= 0:
        return []
    hot = [
        (lid, count) for lid, count in loads.items() if count > threshold * mean
    ]
    hot.sort(key=lambda item: -item[1])
    out: list[dict[str, Any]] = []
    for lid, count in hot[:limit]:
        link = fabric.net.link(lid)
        out.append({
            "link": lid,
            "src": link.src,
            "dst": link.dst,
            "load": count,
            "mean": round(mean, 2),
            "ratio": round(count / mean, 2),
            "meta": {k: v for k, v in link.meta.items()
                     if isinstance(v, (int, float, str))},
        })
    return out
