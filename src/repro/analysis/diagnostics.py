"""Structured diagnostics for the fabric linter.

Every finding the static verifier emits is a :class:`Diagnostic`: a
stable rule code (``FAB001``...), a severity, the offending location
(switch / LID / virtual lane where applicable) and a machine-readable
*witness* — the concrete certificate that reproduces the defect (the
looping table walk, the CDG cycle as an ordered channel list, the
black-holed ``(source, dlid)`` pair).  Findings aggregate into a
:class:`LintReport` that renders as text for humans and serialises to
JSON for CI gates and tooling.

The rule catalogue below is the contract: codes are stable across
releases, tests assert on them, and DESIGN.md maps each one to the
paper mechanism it guards (criterion (4) of section 3.2, the LMC
multi-pathing of PARX, the virtual-lane deadlock avoidance).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable

import numpy as np


def _to_builtin(value: Any) -> Any:
    """Recursively coerce numpy scalars/arrays to JSON-native builtins.

    Witness certificates are built straight off dense-array walks, so
    ``np.int64`` / ``np.bool_`` / ``np.ndarray`` payloads leak in
    naturally; ``json.dumps`` either rejects them (arrays, and bools on
    older numpy) or bloats the output.  Coercing once at
    :class:`Diagnostic` construction keeps every downstream consumer
    (reports, ledgers, CI gates) on plain builtins.  Tuples become
    lists — the JSON round-trip did that anyway.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_to_builtin(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {_to_builtin(k): _to_builtin(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_builtin(v) for v in value]
    return value


class Severity(str, Enum):
    """Severity of a diagnostic; errors gate CI, warnings inform."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Rule:
    """One entry of the stable rule catalogue.

    Attributes
    ----------
    code:
        Stable identifier (``FAB001``...); never renumbered.
    slug:
        Short kebab-case name used in text output.
    default_severity:
        Severity a diagnostic of this rule carries unless overridden.
    summary:
        One-line description of the defect class.
    guards:
        The paper mechanism this rule protects (for DESIGN.md and
        ``repro lint --format json`` consumers).
    """

    code: str
    slug: str
    default_severity: Severity
    summary: str
    guards: str


_RULE_LIST: tuple[Rule, ...] = (
    Rule(
        "FAB001", "lft-black-hole", Severity.ERROR,
        "a (source, destination-LID) pair is dropped by a missing, "
        "disabled or mis-ejecting forwarding entry",
        "criterion (4) fault tolerance: every LID must stay reachable "
        "on the degraded fabric (section 3.2)",
    ),
    Rule(
        "FAB002", "lft-forwarding-loop", Severity.ERROR,
        "a table walk revisits a switch: packets for the destination "
        "LID cycle forever",
        "criterion (4) loop freedom — the paper's triangle "
        "counter-example in section 3.2",
    ),
    Rule(
        "FAB003", "cdg-credit-loop", Severity.ERROR,
        "the channel-dependency graph of one virtual lane contains a "
        "cycle: a packet chain can deadlock on credits",
        "criterion (4) deadlock freedom via VL layering (Dally & "
        "Seitz; DFSSSP/LASH/Nue, section 3.2)",
    ),
    Rule(
        "FAB004", "lid-duplicate", Severity.ERROR,
        "two ports claim the same LID (overlapping LMC blocks): "
        "forwarding entries alias two endpoints",
        "LMC multi-pathing — PARX's four LIDs per port must be "
        "distinct fabric-wide (footnote 5)",
    ),
    Rule(
        "FAB005", "lid-unassigned", Severity.ERROR,
        "a node has no LID assigned: it cannot be addressed",
        "destination-based forwarding needs a LID per endpoint "
        "(section 3.2)",
    ),
    Rule(
        "FAB006", "lid-out-of-range", Severity.ERROR,
        "a LID falls outside the 16-bit unicast range [1, 0xBFFF]",
        "InfiniBand addressing limits; the quadrant policy packs "
        "quadrants below LID 14000 (footnote 9)",
    ),
    Rule(
        "FAB007", "lft-entry-invalid", Severity.ERROR,
        "a forwarding entry references a foreign or unknown link, or an "
        "unknown destination LID",
        "LFT hygiene: OpenSM only installs entries over live local "
        "ports",
    ),
    Rule(
        "FAB008", "hyperx-irregular", Severity.WARNING,
        "a HyperX switch misses intra-dimension neighbours, or a link "
        "violates the one-differing-coordinate rule",
        "HyperX dimension regularity (Ahn et al.); 15 missing AOCs "
        "degrade but must not break the 12x8 plane (section 2.3)",
    ),
    Rule(
        "FAB009", "tree-level-skip", Severity.ERROR,
        "a fat-tree cable connects non-adjacent levels",
        "fat-tree level consistency: edge -> line -> spine wiring of "
        "the director plane (section 2.3)",
    ),
    Rule(
        "FAB010", "port-capacity", Severity.ERROR,
        "a terminal is multi-homed or detached, a switch is isolated, "
        "or a link carries non-positive capacity",
        "single-homed HCA-port-per-plane wiring and live cable "
        "capacities (section 2.3)",
    ),
    Rule(
        "FAB011", "hot-link", Severity.WARNING,
        "static forwarding-table traversal counts predict a hot link "
        "well above the fabric mean under minimal routing",
        "the paper's core HyperX pathology: minimal routing "
        "concentrates bisection traffic on few links (section 3.1)",
    ),
    Rule(
        "FAB012", "vl-out-of-range", Severity.ERROR,
        "a destination is assigned a virtual lane outside the fabric's "
        "lane count or the hardware budget",
        "the QDR hardware offers 8 VLs; layering must stay within "
        "them (section 3.2)",
    ),
    Rule(
        "FAB013", "lft-disabled-link", Severity.ERROR,
        "a forwarding entry points at a disabled link: the table is "
        "stale relative to the fabric's fault state and traffic for "
        "that destination would be black-holed at line rate",
        "fault tolerance (section 2.3): after a cable fails the SM must "
        "re-sweep; simulating a stale path would flatter the faulty "
        "fabric",
    ),
    Rule(
        "FAB014", "whatif-single-point-of-failure", Severity.ERROR,
        "a cable is a bridge of the switch graph: if it fails, some "
        "terminal pair has no surviving path and no re-sweep can "
        "recover it",
        "criterion (4) fault tolerance: the paper's machine ran with "
        "15 missing AOCs and stayed fully connected (section 2.3)",
    ),
    Rule(
        "FAB015", "whatif-credit-loop-exposure", Severity.WARNING,
        "after a single-cable failure the surviving forwarding entries "
        "still contain a credit loop on some virtual lane: a mid-run "
        "fault leaves the fabric deadlock-prone until the re-sweep",
        "criterion (4) deadlock freedom must hold on the degraded "
        "fabric too — SSSP's failure mode on the HyperX (section 3.2)",
    ),
    Rule(
        "FAB016", "whatif-load-shift", Severity.WARNING,
        "failing a cable would displace its predicted traversals onto "
        "a surviving link already near the hot-link threshold",
        "the paper's HyperX pathology (section 3.1): minimal routing "
        "concentrates bisection traffic; a failure concentrates it "
        "further",
    ),
    Rule(
        "FAB017", "whatif-blast-radius", Severity.WARNING,
        "a single cable failure would invalidate forwarding entries "
        "for a large fraction of all destinations, forcing the SM "
        "re-sweep to recompute most of the fabric",
        "fault tolerance economics: the incremental re-sweep "
        "(section 2.3 recovery path) only pays off when failures stay "
        "local",
    ),
)

#: Stable rule catalogue, keyed by code.
RULES: dict[str, Rule] = {r.code: r for r in _RULE_LIST}

#: Correctness rules every experiment preflights (cheap, no estimators).
CORE_RULES: frozenset[str] = frozenset(
    ("FAB001", "FAB002", "FAB003", "FAB004", "FAB005", "FAB006",
     "FAB007", "FAB010", "FAB012", "FAB013")
)

#: What-if fault-certification rules (:mod:`repro.analysis.whatif`):
#: they audit *hypothetical* single-cable failures, not the fabric as
#: routed, and are opt-in (``repro lint --what-if``).
WHATIF_RULES: frozenset[str] = frozenset(
    ("FAB014", "FAB015", "FAB016", "FAB017")
)

#: All as-routed rules, including topology shape checks and the load
#: estimator.  Deliberately excludes :data:`WHATIF_RULES` so a default
#: ``lint_fabric`` run never pays for (or fails on) hypothetical-failure
#: certification; pass ``ALL_RULES | WHATIF_RULES`` to run everything.
ALL_RULES: frozenset[str] = frozenset(RULES) - WHATIF_RULES


@dataclass
class Diagnostic:
    """One finding of the fabric linter.

    Attributes
    ----------
    code:
        Rule code from :data:`RULES`.
    message:
        Human-readable one-liner naming the offender.
    severity:
        Defaults to the rule's severity; rules may downgrade specific
        instances (e.g. a missing *switch* LID is only a warning).
    switch / lid / vl:
        The offending location, where the rule has one.
    witness:
        JSON-serialisable certificate reproducing the defect.
    """

    code: str
    message: str
    severity: Severity | None = None
    switch: int | None = None
    lid: int | None = None
    vl: int | None = None
    witness: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in RULES:
            raise ValueError(f"unknown rule code {self.code!r}")
        if self.severity is None:
            self.severity = RULES[self.code].default_severity
        # Witnesses built from dense-array walks carry numpy scalars;
        # coerce once here so every serialisation stays JSON-native.
        if self.switch is not None:
            self.switch = int(self.switch)
        if self.lid is not None:
            self.lid = int(self.lid)
        if self.vl is not None:
            self.vl = int(self.vl)
        self.witness = _to_builtin(self.witness)

    @property
    def rule(self) -> Rule:
        return RULES[self.code]

    def __str__(self) -> str:
        return f"{self.code} [{self.severity}] {self.message}"

    def __contains__(self, needle: str) -> bool:
        # str()-compatible shim: legacy RoutingAudit.failures consumers
        # probed failures with substring checks on plain strings.
        return needle in str(self)

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "rule": self.rule.slug,
            "severity": str(self.severity),
            "message": self.message,
            "switch": self.switch,
            "lid": self.lid,
            "vl": self.vl,
            "witness": self.witness,
        }


@dataclass
class LintReport:
    """Aggregated findings of one linter run over one fabric."""

    network: str = ""
    engine: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)
    stats: dict[str, Any] = field(default_factory=dict)
    #: Per-rule count of findings suppressed beyond the emission cap.
    suppressed: dict[str, int] = field(default_factory=dict)

    def add(
        self,
        code: str,
        message: str,
        *,
        severity: Severity | None = None,
        switch: int | None = None,
        lid: int | None = None,
        vl: int | None = None,
        witness: dict[str, Any] | None = None,
    ) -> Diagnostic:
        diag = Diagnostic(
            code, message, severity=severity, switch=switch, lid=lid,
            vl=vl, witness=witness or {},
        )
        self.diagnostics.append(diag)
        return diag

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    # --- queries ------------------------------------------------------------
    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def clean(self) -> bool:
        """No errors (warnings and infos do not gate)."""
        return not self.errors

    def codes(self) -> set[str]:
        """Distinct rule codes that fired (incl. suppressed overflow)."""
        return {d.code for d in self.diagnostics} | set(self.suppressed)

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    # --- serialisation ------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "fabric": {"network": self.network, "engine": self.engine},
            "summary": {
                "clean": self.clean,
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "info": len(self.infos),
                "rules_fired": sorted(self.codes()),
                "suppressed": dict(self.suppressed),
            },
            "stats": self.stats,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render_text(self) -> str:
        """Multi-line human-readable report (the CLI's text format)."""
        head = (
            f"lint {self.network} engine={self.engine}: "
            f"{len(self.errors)} error(s), {len(self.warnings)} "
            f"warning(s), {len(self.infos)} info"
        )
        lines = [head]
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}
        for diag in sorted(
            self.diagnostics, key=lambda d: (order[d.severity or Severity.INFO], d.code)
        ):
            lines.append(f"  {diag}")
            for key in ("walk", "cycle", "channels"):
                if key in diag.witness:
                    lines.append(f"      {key}: {diag.witness[key]}")
        for code in sorted(self.suppressed):
            lines.append(
                f"  {code}: {self.suppressed[code]} further finding(s) "
                "suppressed (see --format json)"
            )
        if not self.diagnostics and not self.suppressed:
            lines.append("  fabric verified: no findings")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render_text()
