"""Static analysis of routed fabrics: the fabric linter.

The paper's correctness bar for any routing engine is criterion (4) of
section 3.2 — "loop-free, fault-tolerant and deadlock-free" — and its
PARX contribution shipped because OpenSM-style tooling could *statically*
audit LFTs, LMC paths and VL assignments before a single packet moved.
This package is that static pass for the reproduction:

* :mod:`~repro.analysis.diagnostics` — stable rule codes (``FAB001``…),
  severities, witness certificates, JSON serialisation,
* :mod:`~repro.analysis.linter` — :func:`lint_fabric` (the rules) and
  :func:`assert_fabric_clean` (the preflight gate),
* :mod:`~repro.analysis.load` — the static link-load estimator behind
  the hot-link rule,
* :mod:`~repro.analysis.whatif` — :func:`audit_whatif`, the exhaustive
  what-if vulnerability verifier behind the ``FAB014``–``FAB017`` fault
  certification rules.

Entry points: ``repro lint <topology> <engine>`` (add ``--what-if`` for
fault certification) and ``repro whatif`` on the command line,
:func:`assert_fabric_clean` inside the experiment runner, and
:func:`~repro.routing.validate.audit_fabric`, which delegates its
correctness findings here.
"""

from repro.analysis.diagnostics import (
    ALL_RULES,
    CORE_RULES,
    RULES,
    WHATIF_RULES,
    Diagnostic,
    LintReport,
    Rule,
    Severity,
)
from repro.analysis.linter import (
    HARDWARE_MAX_VLS,
    MAX_UNICAST_LID,
    assert_fabric_clean,
    lint_fabric,
)
from repro.analysis.load import estimate_link_loads, hot_links, load_summary
from repro.analysis.whatif import (
    CableVulnerability,
    PairSample,
    VulnerabilityReport,
    audit_whatif,
)

__all__ = [
    "ALL_RULES",
    "CORE_RULES",
    "RULES",
    "WHATIF_RULES",
    "Diagnostic",
    "LintReport",
    "Rule",
    "Severity",
    "HARDWARE_MAX_VLS",
    "MAX_UNICAST_LID",
    "assert_fabric_clean",
    "lint_fabric",
    "estimate_link_loads",
    "hot_links",
    "load_summary",
    "CableVulnerability",
    "PairSample",
    "VulnerabilityReport",
    "audit_whatif",
]
