"""Flow-level network simulator.

Messages become *flows* along the link sequences the routing resolved;
concurrent flows share link capacity by max-min fairness.  This is the
standard coarse model for static-routing studies — it exposes exactly
the phenomena the paper measures (the "up to seven traffic streams may
share a single cable" bottleneck of section 1, PARX's bandwidth
recovery, placement sensitivity) without simulating individual packets.

* :mod:`~repro.sim.fairness` — vectorised progressive-filling max-min,
* :mod:`~repro.sim.flows` — flow/phase/program containers,
* :mod:`~repro.sim.latency` — the QDR-IB latency/overhead model,
* :mod:`~repro.sim.engine` — the phase-stepping discrete-event engine,
* :mod:`~repro.sim.adaptive` — least-congested candidate selection (the
  DAL/UGAL stand-in).
"""

from repro.sim.fairness import FairnessProblem, max_min_fair_rates
from repro.sim.flows import Message, Phase, Program, program_bytes
from repro.sim.latency import LatencyModel, QDR_LATENCY
from repro.sim.engine import FlowSimulator, PhaseResult, SimResult
from repro.sim.adaptive import AdaptiveFlowRouter

__all__ = [
    "FairnessProblem",
    "max_min_fair_rates",
    "Message",
    "Phase",
    "Program",
    "program_bytes",
    "LatencyModel",
    "QDR_LATENCY",
    "FlowSimulator",
    "PhaseResult",
    "SimResult",
    "AdaptiveFlowRouter",
]
