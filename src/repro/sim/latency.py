"""Latency/overhead model for the simulated QDR fabric.

A message's completion time decomposes as::

    t = overhead (PML software)          -- per message, set by the PML
      + base_latency                     -- NIC + stack floor
      + per_hop * switch_hops            -- store-and-forward pipeline
      + serialisation                    -- size / fair-share rate (DES)

The constants live in :mod:`repro.core.units`; this module packages them
so experiments can swap calibrations (e.g. an ablation with a faster
software stack) without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.units import (
    BASE_MPI_LATENCY,
    BFO_PML_OVERHEAD,
    PER_HOP_LATENCY,
)


@dataclass(frozen=True)
class LatencyModel:
    """Constant part of message time (everything but serialisation)."""

    base_latency: float = BASE_MPI_LATENCY
    per_hop: float = PER_HOP_LATENCY
    bfo_overhead: float = BFO_PML_OVERHEAD

    def constant_time(self, switch_hops: int, overhead: float = 0.0) -> float:
        """Latency floor of one message crossing ``switch_hops`` switches."""
        return overhead + self.base_latency + self.per_hop * (switch_hops + 1)

    def constant_times(
        self, switch_hops: np.ndarray, overheads: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`constant_time` over per-message arrays."""
        return overheads + self.base_latency + self.per_hop * (switch_hops + 1)


#: Default calibration used throughout the reproduction.
QDR_LATENCY = LatencyModel()
