"""Traffic containers: messages, synchronised phases, programs.

The MPI layer lowers every operation into a :class:`Program` — an
ordered list of :class:`Phase` objects.  All messages of a phase start
together and the phase ends when the last one lands (the classic
bulk-synchronous approximation of collective rounds); successive phases
are dependency-ordered.  The simulator only ever sees these containers,
so workloads, collectives and benchmarks all speak one language.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.batch import MessageBatch


@dataclass(slots=True)
class Message:
    """One point-to-point transfer, already resolved onto the fabric.

    Attributes
    ----------
    src, dst:
        Terminal node ids (not MPI ranks — the job object did the
        rank-to-node mapping before building messages).
    size:
        Payload bytes.
    path:
        Link-id sequence the message travels (empty for self-sends).
    overhead:
        Per-message software latency (PML-dependent; this is where the
        bfo penalty of section 5.1 lives).
    tag:
        Free-form label for reporting (e.g. "bcast-round-2").
    """

    src: int
    dst: int
    size: float
    path: tuple[int, ...]
    overhead: float = 0.0
    tag: str = ""


@dataclass(slots=True)
class Phase:
    """A synchronised round of messages.

    ``batch`` optionally carries the phase's prebuilt flat-array form
    (:class:`~repro.sim.batch.MessageBatch`); builders that lower
    rank-level phases (the job layer) attach it so the simulator skips
    per-message flattening.  It is advisory: the simulator only trusts a
    batch whose message count still matches, and code that edits
    ``messages`` in place must call :meth:`invalidate_batch`.
    """

    messages: list[Message] = field(default_factory=list)
    label: str = ""
    batch: "MessageBatch | None" = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self.messages)

    def invalidate_batch(self) -> None:
        """Drop the prebuilt flat-array form after editing ``messages``."""
        self.batch = None


@dataclass(slots=True)
class Program:
    """An ordered sequence of phases plus optional compute gaps.

    ``compute_between_phases`` seconds of pure computation separate
    consecutive phases (the EmDL benchmark's 0.1 s usleep, proxy-app
    compute sections); it is added once per gap by the simulator.
    """

    phases: list[Phase] = field(default_factory=list)
    label: str = ""
    compute_between_phases: float = 0.0

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    def extend(self, other: "Program") -> None:
        """Append another program's phases (sequential composition)."""
        self.phases.extend(other.phases)


def program_bytes(program: Program) -> float:
    """Total payload bytes a program injects (tests: byte conservation)."""
    return sum(m.size for phase in program for m in phase)


def merge_concurrent(programs: Iterable[Program], label: str = "") -> Program:
    """Zip programs phase-by-phase into one concurrently executing program.

    Phase ``i`` of the result holds every program's phase ``i`` messages;
    shorter programs simply stop contributing.  Used to model multiple
    applications sharing the fabric (the capacity evaluation).
    """
    progs = list(programs)
    out = Program(label=label)
    depth = max((len(p) for p in progs), default=0)
    for i in range(depth):
        phase = Phase(label=f"{label}[{i}]")
        for p in progs:
            if i < len(p):
                phase.messages.extend(p.phases[i].messages)
        out.phases.append(phase)
    return out
