"""The phase-stepping flow simulator.

Executes a :class:`~repro.sim.flows.Program`: for every phase, its
messages become concurrent flows that share link bandwidth max-min
fairly; the phase ends when the last message lands.  Two fidelity modes:

* ``dynamic`` (default) — a discrete-event loop *within* each phase:
  when a flow finishes, the remaining flows' rates are recomputed, so
  late flows inherit freed bandwidth.  Exact for the flow model.
* ``static`` — one fairness computation per phase; each flow keeps its
  initial rate.  A conservative (never optimistic) approximation that
  is much cheaper on full-machine all-to-alls; benchmarks that sweep
  hundreds of configurations use it.

Both modes add the constant latency part (software overhead + per-hop
pipeline) on top of the serialisation time.

The simulator reads link capacities through a live
:class:`~repro.topology.state.FabricState` view, refreshed at every
phase boundary, so fault injection after construction is honoured.  A
:class:`~repro.topology.faults.FaultTimeline` schedules mid-run events
(cable failures, degrades, restores) at phase boundaries; paths that
cross a disabled link are rerouted through the ``reroute`` callback when
one is provided, and rejected with a stale-LFT diagnostic otherwise —
a dead cable must never simulate at line rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.errors import SimulationError
from repro.sim.fairness import max_min_fair_rates
from repro.sim.flows import Message, Phase, Program
from repro.sim.latency import QDR_LATENCY, LatencyModel
from repro.topology.faults import FabricEvent, FaultTimeline
from repro.topology.network import Network
from repro.topology.state import FabricState

#: Dynamic-mode safety valve: after this many rate recomputations per
#: phase the remaining flows are finished at their current rates.
_MAX_EVENTS_PER_PHASE = 2000

#: Called after the simulator applies fabric events before a phase:
#: ``(events, phase_index) -> report or None``.  The usual hook is an SM
#: re-sweep (:func:`repro.ib.subnet_manager.resweep`); whatever it
#: returns is collected in :attr:`FlowSimulator.reroute_reports`.
FabricEventHook = Callable[[list[FabricEvent], int], Any]

#: Maps a message with a stale path to a fresh link-id path (after a
#: re-sweep), or ``None`` when the pair is unreachable.
RerouteFn = Callable[[Message], Sequence[int] | None]


@dataclass(slots=True)
class PhaseResult:
    """Timing of one executed phase."""

    label: str
    duration: float
    num_messages: int
    bytes_moved: float
    #: Serialisation time of the phase: when the last flow drained,
    #: excluding the constant latency part.  Utilisation accounting
    #: divides by this, not by wall time with compute gaps.
    transfer_time: float = 0.0
    #: Per-message completion times, aligned with the phase's message
    #: list; only populated when the simulator collects details.
    message_times: list[float] | None = None


@dataclass(slots=True)
class SimResult:
    """Timing of a whole program."""

    label: str
    total_time: float
    phases: list[PhaseResult] = field(default_factory=list)
    #: Fabric events the simulator's timeline applied during this run.
    events_applied: int = 0
    #: Messages whose stale paths were healed via the reroute callback.
    messages_rerouted: int = 0

    @property
    def bytes_moved(self) -> float:
        return sum(p.bytes_moved for p in self.phases)

    @property
    def transfer_time(self) -> float:
        """Total serialisation time across phases (no gaps, no latency)."""
        return sum(p.transfer_time for p in self.phases)

    def message_bandwidths(self, program: Program) -> list[tuple[Message, float]]:
        """Observable bandwidth of every message of ``program``.

        Pairs the per-message completion times collected during the run
        with the program's messages (the result stores only timings, not
        the messages themselves): bandwidth = payload / completion time,
        0.0 for zero-byte messages.  Requires the result to come from
        ``run(program, collect_messages=True)`` on the same program;
        raises :class:`SimulationError` otherwise.
        """
        if len(program.phases) != len(self.phases):
            raise SimulationError(
                f"program has {len(program.phases)} phases but this result "
                f"recorded {len(self.phases)}; pass the program this result "
                "was produced from"
            )
        out: list[tuple[Message, float]] = []
        for phase, pr in zip(program.phases, self.phases):
            if pr.message_times is None:
                raise SimulationError(
                    "per-message times were not collected; run with "
                    "collect_messages=True"
                )
            if len(pr.message_times) != len(phase.messages):
                raise SimulationError(
                    f"phase {pr.label!r} recorded {len(pr.message_times)} "
                    f"message times for {len(phase.messages)} messages"
                )
            for msg, t in zip(phase.messages, pr.message_times):
                bw = msg.size / t if msg.size > 0 and t > 0 else 0.0
                out.append((msg, bw))
        return out


class FlowSimulator:
    """Max-min fair flow simulator over one network plane.

    Parameters
    ----------
    timeline:
        Optional :class:`~repro.topology.faults.FaultTimeline`; its
        events are applied (once per simulator) at the phase boundary
        they name, before the phase runs.
    on_fabric_event:
        Hook invoked with ``(events, phase_index)`` right after events
        are applied — typically an SM re-sweep; a non-``None`` return is
        appended to :attr:`reroute_reports`.
    reroute:
        Given a message whose path crosses a disabled link, returns a
        fresh path (from the re-swept fabric) or ``None`` when the pair
        is unreachable.  Without it, stale paths raise.
    """

    def __init__(
        self,
        net: Network,
        latency: LatencyModel = QDR_LATENCY,
        mode: str = "dynamic",
        timeline: FaultTimeline | Sequence[FabricEvent] | None = None,
        on_fabric_event: FabricEventHook | None = None,
        reroute: RerouteFn | None = None,
    ) -> None:
        if mode not in ("dynamic", "static"):
            raise SimulationError(f"unknown mode {mode!r}")
        self.net = net
        self.latency = latency
        self.mode = mode
        self.state = FabricState(net)
        if timeline is not None and not isinstance(timeline, FaultTimeline):
            timeline = FaultTimeline(tuple(timeline))
        self.timeline = timeline or FaultTimeline()
        self.on_fabric_event = on_fabric_event
        self.reroute = reroute
        #: ``(event, representative link id)`` pairs, in firing order.
        self.events_applied: list[tuple[FabricEvent, int]] = []
        self.messages_rerouted = 0
        #: Whatever ``on_fabric_event`` returned, per event batch
        #: (RerouteReports when the hook is an SM re-sweep).
        self.reroute_reports: list[Any] = []
        self._fired: set[int] = set()  # timeline indices already applied
        self._hops_cache: dict[tuple[int, ...], int] = {}

    @property
    def _capacity(self) -> np.ndarray:
        """Live per-link capacities (back-compat alias for the state view)."""
        return self.state.capacities

    # --- public API -----------------------------------------------------------
    def run(self, program: Program, collect_messages: bool = False) -> SimResult:
        """Execute a program; returns per-phase and total timing.

        Timeline events scheduled for phase ``i`` fire just before phase
        ``i`` is simulated (events past the last phase never fire); each
        event fires at most once per simulator, so repeated ``run`` calls
        do not compound degrades.
        """
        result = SimResult(label=program.label, total_time=0.0)
        events_before = len(self.events_applied)
        rerouted_before = self.messages_rerouted
        for i, phase in enumerate(program.phases):
            fired = self._apply_events(i)
            if fired and self.on_fabric_event is not None:
                report = self.on_fabric_event(fired, i)
                if report is not None:
                    self.reroute_reports.append(report)
            phase = self._heal_phase(phase)
            pr = self.run_phase(phase, collect_messages=collect_messages)
            result.phases.append(pr)
            result.total_time += pr.duration
            if i + 1 < len(program.phases):
                result.total_time += program.compute_between_phases
        result.events_applied = len(self.events_applied) - events_before
        result.messages_rerouted = self.messages_rerouted - rerouted_before
        return result

    def run_phase(self, phase: Phase, collect_messages: bool = False) -> PhaseResult:
        """Execute one synchronised round of messages."""
        msgs = phase.messages
        if not msgs:
            return PhaseResult(
                label=phase.label,
                duration=0.0,
                num_messages=0,
                bytes_moved=0.0,
                message_times=[] if collect_messages else None,
            )
        # Force-refresh: direct link mutations bypass the version counter,
        # and a stale capacity view is exactly the bug class this guards.
        self.state.refresh(force=True)
        self._check_paths(phase)

        const = np.array(
            [
                self.latency.constant_time(self._hops(m.path), m.overhead)
                for m in msgs
            ]
        )
        sizes = np.array([m.size for m in msgs], dtype=float)
        paths = [m.path for m in msgs]

        if self.mode == "static":
            finish = self._static_finish(msgs, paths, sizes)
        else:
            finish = self._dynamic_finish(msgs, paths, sizes)

        times = const + finish
        duration = float(times.max())
        return PhaseResult(
            label=phase.label,
            duration=duration,
            num_messages=len(msgs),
            bytes_moved=float(sizes.sum()),
            transfer_time=float(finish.max()),
            message_times=times.tolist() if collect_messages else None,
        )

    def link_utilization(self, program: Program) -> dict[int, float]:
        """Average utilisation (0..1) of every link a program touches.

        Utilisation = bytes carried / (capacity x transfer time), where
        transfer time is the sum of per-phase serialisation times —
        compute gaps and the constant latency floor carry no bytes, so
        counting them would under-report hot links in multi-phase
        programs.  This mirrors the paper's port-counter methodology
        (section 2.3's cable-filter criterion and the ibprof-based
        profiling both read hardware counters like this).
        """
        result = self.run(program)
        transfer = result.transfer_time
        if transfer <= 0:
            return {}
        bytes_on: dict[int, float] = {}
        for phase in program.phases:
            for m in phase.messages:
                if m.size <= 0:
                    continue
                for l in m.path:
                    bytes_on[l] = bytes_on.get(l, 0.0) + m.size
        caps = self.state.capacities
        return {
            l: b / (caps[l] * transfer) for l, b in bytes_on.items()
        }

    def hottest_links(
        self, program: Program, top: int = 5
    ) -> list[tuple[int, float]]:
        """The ``top`` most utilised links of a program, hottest first."""
        util = self.link_utilization(program)
        return sorted(util.items(), key=lambda kv: -kv[1])[:top]

    def pair_bandwidths(
        self, phase: Phase
    ) -> list[tuple[Message, float]]:
        """Observable bandwidth per message of a concurrent phase.

        The mpiGraph-style metric: payload divided by completion time
        (including the latency floor).  Zero-byte messages report 0.
        """
        pr = self.run_phase(phase, collect_messages=True)
        assert pr.message_times is not None
        out = []
        for msg, t in zip(phase.messages, pr.message_times):
            bw = msg.size / t if msg.size > 0 and t > 0 else 0.0
            out.append((msg, bw))
        return out

    # --- fault timeline ----------------------------------------------------------
    def _apply_events(self, phase_index: int) -> list[FabricEvent]:
        """Fire all not-yet-applied events due at or before ``phase_index``."""
        fired: list[FabricEvent] = []
        for idx, event in enumerate(self.timeline):
            if idx in self._fired or event.phase > phase_index:
                continue
            cable = event.apply(self.net)
            self._fired.add(idx)
            self.events_applied.append((event, cable.id))
            fired.append(event)
        return fired

    def _heal_phase(self, phase: Phase) -> Phase:
        """Replace stale paths over disabled links via the reroute callback.

        Without a callback the phase is returned untouched and
        :meth:`run_phase` raises the stale-LFT diagnostic instead.
        """
        if self.reroute is None:
            return phase
        self.state.refresh(force=True)
        if not self.state.disabled:
            return phase
        healed: list[Message] = []
        changed = False
        for m in phase.messages:
            dead = self.state.disabled_on(m.path)
            if dead:
                new_path = self.reroute(m)
                if new_path is None:
                    raise SimulationError(
                        f"message {m.src}->{m.dst} in phase {phase.label!r} "
                        f"cannot be rerouted: pair unreachable after cable "
                        f"failure (dead link(s) {dead})"
                    )
                new_path = tuple(new_path)
                still_dead = self.state.disabled_on(new_path)
                if still_dead:
                    raise SimulationError(
                        f"reroute for message {m.src}->{m.dst} still crosses "
                        f"disabled link(s) {still_dead}; the forwarding "
                        "tables were not re-swept after the failure"
                    )
                m = replace(m, path=new_path)
                self.messages_rerouted += 1
                changed = True
            healed.append(m)
        if not changed:
            return phase
        return Phase(messages=healed, label=phase.label)

    def _check_paths(self, phase: Phase) -> None:
        """Refuse stale paths over dead links and flows that cannot progress."""
        if not self.state.disabled and not self.state.nonpositive:
            return
        for m in phase.messages:
            dead = self.state.disabled_on(m.path)
            if dead:
                raise SimulationError(
                    f"message {m.src}->{m.dst} in phase {phase.label!r} uses "
                    f"disabled link(s) {dead}: its path predates a cable "
                    "failure, so the forwarding table entry is stale. "
                    "Re-sweep the fabric (OpenSM.resweep) and rebuild the "
                    "program's paths before simulating."
                )
            if m.size <= 0:
                continue
            starved = self.state.nonpositive_on(m.path)
            if starved:
                raise SimulationError(
                    f"message {m.src}->{m.dst} in phase {phase.label!r} is "
                    f"starved: link(s) {starved} on its path have zero "
                    "capacity, so the flow would never finish"
                )

    # --- internals ---------------------------------------------------------------
    def _hops(self, path: tuple[int, ...]) -> int:
        if path not in self._hops_cache:
            self._hops_cache[path] = self.net.path_hops(path)
        return self._hops_cache[path]

    def _raise_if_starved(
        self, msgs: Sequence[Message], idx: np.ndarray, bad: np.ndarray
    ) -> None:
        """Turn a non-finite time-to-finish into a named error.

        A flow with max-min rate 0 has infinite time-to-finish; the old
        behaviour mapped that to 0.0, so starved flows "completed"
        instantly — the exact opposite of the truth.
        """
        first = msgs[int(idx[int(np.flatnonzero(bad)[0])])]
        raise SimulationError(
            f"flow {first.src}->{first.dst} ({first.size:.0f} B) is starved: "
            "its max-min fair rate is 0, so it would never finish"
        )

    def _static_finish(
        self, msgs: Sequence[Message], paths, sizes: np.ndarray
    ) -> np.ndarray:
        rates = max_min_fair_rates(paths, self.state.capacities)
        with np.errstate(invalid="ignore"):
            finish = np.where(sizes > 0, sizes / rates, 0.0)
        bad = ~np.isfinite(finish)
        if bad.any():
            self._raise_if_starved(msgs, np.arange(len(msgs)), bad)
        return finish

    def _dynamic_finish(
        self, msgs: Sequence[Message], paths, sizes: np.ndarray
    ) -> np.ndarray:
        capacity = self.state.capacities
        n = len(paths)
        remaining = sizes.astype(float).copy()
        finish = np.zeros(n)
        active = remaining > 0
        now = 0.0
        for _ in range(_MAX_EVENTS_PER_PHASE):
            if not active.any():
                return finish
            idx = np.flatnonzero(active)
            rates = max_min_fair_rates([paths[i] for i in idx], capacity)
            with np.errstate(invalid="ignore", divide="ignore"):
                ttf = remaining[idx] / rates
            bad = ~np.isfinite(ttf)
            if bad.any():
                self._raise_if_starved(msgs, idx, bad)
            dt = float(ttf.min())
            now += dt
            remaining[idx] -= rates * dt
            # Everything within a relative hair of zero lands now; the
            # tolerance batches symmetric flows into one event.
            done = idx[remaining[idx] <= 1e-6 * sizes[idx] + 1e-9]
            finish[done] = now
            remaining[done] = 0.0
            active[done] = False
        # Safety valve: finish stragglers at their current fair rates.
        idx = np.flatnonzero(active)
        rates = max_min_fair_rates([paths[i] for i in idx], capacity)
        with np.errstate(invalid="ignore", divide="ignore"):
            ttf = remaining[idx] / rates
        bad = ~np.isfinite(ttf)
        if bad.any():
            self._raise_if_starved(msgs, idx, bad)
        finish[idx] = now + ttf
        return finish
