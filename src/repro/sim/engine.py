"""The phase-stepping flow simulator.

Executes a :class:`~repro.sim.flows.Program`: for every phase, its
messages become concurrent flows that share link bandwidth max-min
fairly; the phase ends when the last message lands.  Two fidelity modes:

* ``dynamic`` (default) — a discrete-event loop *within* each phase:
  when a flow finishes, the remaining flows' rates are recomputed, so
  late flows inherit freed bandwidth.  Exact for the flow model.
* ``static`` — one fairness computation per phase; each flow keeps its
  initial rate.  A conservative (never optimistic) approximation that
  is much cheaper on full-machine all-to-alls; benchmarks that sweep
  hundreds of configurations use it.

Both modes add the constant latency part (software overhead + per-hop
pipeline) on top of the serialisation time.

The simulator reads link capacities through a live
:class:`~repro.topology.state.FabricState` view, refreshed at every
phase boundary, so fault injection after construction is honoured.  A
:class:`~repro.topology.faults.FaultTimeline` schedules mid-run events
(cable failures, degrades, restores) at phase boundaries; paths that
cross a disabled link are rerouted through the ``reroute`` callback when
one is provided, and rejected with a stale-LFT diagnostic otherwise —
a dead cable must never simulate at line rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.errors import SimulationError
from repro.sim.batch import phase_batch
from repro.sim.fairness import FairnessProblem
from repro.sim.flows import Message, Phase, Program
from repro.sim.latency import QDR_LATENCY, LatencyModel
from repro.topology.faults import FabricEvent, FaultTimeline
from repro.topology.network import Network
from repro.topology.state import FabricState

#: Dynamic-mode safety valve: after this many rate recomputations per
#: phase the remaining flows are finished at their current rates.
_MAX_EVENTS_PER_PHASE = 2000

#: Called after the simulator applies fabric events before a phase:
#: ``(events, phase_index) -> report or None``.  The usual hook is an SM
#: re-sweep (:func:`repro.ib.subnet_manager.resweep`); whatever it
#: returns is collected in :attr:`FlowSimulator.reroute_reports`.
FabricEventHook = Callable[[list[FabricEvent], int], Any]

#: Maps a message with a stale path to a fresh link-id path (after a
#: re-sweep), or ``None`` when the pair is unreachable.
RerouteFn = Callable[[Message], Sequence[int] | None]


@dataclass(slots=True)
class PhaseResult:
    """Timing of one executed phase."""

    label: str
    duration: float
    num_messages: int
    bytes_moved: float
    #: Serialisation time of the phase: when the last flow drained,
    #: excluding the constant latency part.  Utilisation accounting
    #: divides by this, not by wall time with compute gaps.
    transfer_time: float = 0.0
    #: Per-message completion times, aligned with the phase's message
    #: list; only populated when the simulator collects details.
    message_times: list[float] | None = None
    #: Link ids this phase moved bytes over, and the busy seconds each
    #: accumulated (bytes / capacity *in effect while the phase ran*).
    #: Utilisation accounting sums these per-phase snapshots, so a
    #: mid-run degrade/restore is charged against the right denominator.
    #: ``None`` only on hand-built results that predate the fields.
    link_ids: np.ndarray | None = None
    link_busy: np.ndarray | None = None
    #: Flows the dynamic mode's safety valve finished at their current
    #: rates after ``_MAX_EVENTS_PER_PHASE`` rate recomputations (0 in
    #: static mode and whenever the event loop converged).  Non-zero
    #: means the phase's late completions are approximate.
    events_truncated: int = 0


@dataclass(slots=True)
class SimResult:
    """Timing of a whole program."""

    label: str
    total_time: float
    phases: list[PhaseResult] = field(default_factory=list)
    #: Fabric events the simulator's timeline applied during this run.
    events_applied: int = 0
    #: Messages whose stale paths were healed via the reroute callback.
    messages_rerouted: int = 0
    #: Sum of the phases' :attr:`PhaseResult.events_truncated` — flows
    #: whose finish times the dynamic safety valve approximated.
    events_truncated: int = 0

    @property
    def bytes_moved(self) -> float:
        return sum(p.bytes_moved for p in self.phases)

    @property
    def transfer_time(self) -> float:
        """Total serialisation time across phases (no gaps, no latency)."""
        return sum(p.transfer_time for p in self.phases)

    def message_bandwidths(self, program: Program) -> list[tuple[Message, float]]:
        """Observable bandwidth of every message of ``program``.

        Pairs the per-message completion times collected during the run
        with the program's messages (the result stores only timings, not
        the messages themselves): bandwidth = payload / completion time,
        0.0 for zero-byte messages.  Requires the result to come from
        ``run(program, collect_messages=True)`` on the same program;
        raises :class:`SimulationError` otherwise.
        """
        if len(program.phases) != len(self.phases):
            raise SimulationError(
                f"program has {len(program.phases)} phases but this result "
                f"recorded {len(self.phases)}; pass the program this result "
                "was produced from"
            )
        out: list[tuple[Message, float]] = []
        for phase, pr in zip(program.phases, self.phases):
            if pr.message_times is None:
                raise SimulationError(
                    "per-message times were not collected; run with "
                    "collect_messages=True"
                )
            if len(pr.message_times) != len(phase.messages):
                raise SimulationError(
                    f"phase {pr.label!r} recorded {len(pr.message_times)} "
                    f"message times for {len(phase.messages)} messages"
                )
            for msg, t in zip(phase.messages, pr.message_times):
                bw = msg.size / t if msg.size > 0 and t > 0 else 0.0
                out.append((msg, bw))
        return out


class FlowSimulator:
    """Max-min fair flow simulator over one network plane.

    Parameters
    ----------
    timeline:
        Optional :class:`~repro.topology.faults.FaultTimeline`; its
        events are applied (once per simulator) at the phase boundary
        they name, before the phase runs.
    on_fabric_event:
        Hook invoked with ``(events, phase_index)`` right after events
        are applied — typically an SM re-sweep; a non-``None`` return is
        appended to :attr:`reroute_reports`.
    reroute:
        Given a message whose path crosses a disabled link, returns a
        fresh path (from the re-swept fabric) or ``None`` when the pair
        is unreachable.  Without it, stale paths raise.
    """

    def __init__(
        self,
        net: Network,
        latency: LatencyModel = QDR_LATENCY,
        mode: str = "dynamic",
        timeline: FaultTimeline | Sequence[FabricEvent] | None = None,
        on_fabric_event: FabricEventHook | None = None,
        reroute: RerouteFn | None = None,
    ) -> None:
        if mode not in ("dynamic", "static"):
            raise SimulationError(f"unknown mode {mode!r}")
        self.net = net
        self.latency = latency
        self.mode = mode
        self.state = FabricState(net)
        if timeline is not None and not isinstance(timeline, FaultTimeline):
            timeline = FaultTimeline(tuple(timeline))
        self.timeline = timeline or FaultTimeline()
        self.on_fabric_event = on_fabric_event
        self.reroute = reroute
        #: ``(event, representative link id)`` pairs, in firing order.
        self.events_applied: list[tuple[FabricEvent, int]] = []
        self.messages_rerouted = 0
        #: Whatever ``on_fabric_event`` returned, per event batch
        #: (RerouteReports when the hook is an SM re-sweep).
        self.reroute_reports: list[Any] = []
        self._fired: set[int] = set()  # timeline indices already applied
        # Per-link "joins two switches" mask for vectorised hop counts.
        # Link endpoints are immutable and links are append-only, so the
        # link count alone keys the cache (unlike capacities, which need
        # the version counter).
        self._swsw_mask: np.ndarray = np.empty(0, dtype=bool)

    @property
    def _capacity(self) -> np.ndarray:
        """Live per-link capacities (back-compat alias for the state view)."""
        return self.state.capacities

    # --- public API -----------------------------------------------------------
    def run(self, program: Program, collect_messages: bool = False) -> SimResult:
        """Execute a program; returns per-phase and total timing.

        Timeline events scheduled for phase ``i`` fire just before phase
        ``i`` is simulated (events past the last phase never fire); each
        event fires at most once per simulator, so repeated ``run`` calls
        do not compound degrades.
        """
        result = SimResult(label=program.label, total_time=0.0)
        events_before = len(self.events_applied)
        rerouted_before = self.messages_rerouted
        for i, phase in enumerate(program.phases):
            fired = self._apply_events(i)
            if fired and self.on_fabric_event is not None:
                report = self.on_fabric_event(fired, i)
                if report is not None:
                    self.reroute_reports.append(report)
            phase = self._heal_phase(phase)
            pr = self.run_phase(phase, collect_messages=collect_messages)
            result.phases.append(pr)
            result.total_time += pr.duration
            result.events_truncated += pr.events_truncated
            if i + 1 < len(program.phases):
                result.total_time += program.compute_between_phases
        result.events_applied = len(self.events_applied) - events_before
        result.messages_rerouted = self.messages_rerouted - rerouted_before
        return result

    def run_phase(self, phase: Phase, collect_messages: bool = False) -> PhaseResult:
        """Execute one synchronised round of messages.

        Consumes the phase's prebuilt :class:`~repro.sim.batch
        .MessageBatch` when one is attached (the job layer builds them at
        materialisation time); phases without one are flattened here via
        the same shared kernel, so both paths run the identical numpy
        passes.
        """
        msgs = phase.messages
        if not msgs:
            return PhaseResult(
                label=phase.label,
                duration=0.0,
                num_messages=0,
                bytes_moved=0.0,
                transfer_time=0.0,
                message_times=[] if collect_messages else None,
                link_ids=np.empty(0, dtype=np.intp),
                link_busy=np.empty(0),
            )
        # Every mutation — including direct ``link.capacity = x`` field
        # writes, which bump the version via the Link setters — moves the
        # version counter, so the cheap version check suffices here.
        self.state.refresh()

        batch = phase_batch(phase)
        lens, ptr, flat = batch.lens, batch.ptr, batch.flat
        sizes = batch.sizes
        self._check_paths(phase, ptr, flat, sizes)

        # Switch-switch hops per message: cumsum-difference over the flat
        # link array — one pass, no per-path Python loop or cache.
        swsw = self._switch_switch_mask()
        hop_csum = np.concatenate(
            ([0], swsw[flat].cumsum())
        ).astype(np.intp)
        hops = hop_csum[ptr[1:]] - hop_csum[ptr[:-1]]
        const = self.latency.constant_times(hops, batch.overheads)

        caps = self.state.capacities
        problem = FairnessProblem(None, caps, prebuilt_flat=(lens, flat))
        truncated = 0
        if self.mode == "static":
            finish = self._static_finish(msgs, problem, sizes)
        else:
            finish, truncated = self._dynamic_finish(msgs, problem, sizes)

        # Per-phase busy-seconds snapshot: bytes over each link divided
        # by the capacity in effect *now*, while the phase's bytes move.
        # ``_check_paths`` already refused flows over zero-capacity
        # links, so every touched link divides by a positive capacity.
        bytes_on = batch.bytes_per_link(len(caps))
        touched = np.flatnonzero(bytes_on)
        busy = bytes_on[touched] / caps[touched]

        times = const + finish
        duration = float(times.max())
        return PhaseResult(
            label=phase.label,
            duration=duration,
            num_messages=len(msgs),
            bytes_moved=float(sizes.sum()),
            transfer_time=float(finish.max()),
            message_times=times.tolist() if collect_messages else None,
            link_ids=touched,
            link_busy=busy,
            events_truncated=truncated,
        )

    def link_utilization(
        self, program: Program, result: SimResult | None = None
    ) -> dict[int, float]:
        """Average utilisation (0..1) of every link a program touches.

        Utilisation = bytes carried / (capacity x transfer time), where
        transfer time is the sum of per-phase serialisation times —
        compute gaps and the constant latency floor carry no bytes, so
        counting them would under-report hot links in multi-phase
        programs.  This mirrors the paper's port-counter methodology
        (section 2.3's cable-filter criterion and the ibprof-based
        profiling both read hardware counters like this).

        Bytes are charged against the capacity *in effect while each
        phase ran* (the per-phase busy-seconds snapshots the run
        recorded), so a :class:`~repro.topology.faults.FaultTimeline`
        degrade or restore mid-run divides each phase's bytes by that
        phase's capacity — not by whatever the capacity happens to be
        after the run.

        Pass a ``result`` from a previous :meth:`run` of the *same*
        program to reuse its transfer time instead of simulating again —
        one run then yields both timing and utilisation.
        """
        if result is None:
            result = self.run(program)
        elif len(result.phases) != len(program.phases):
            raise SimulationError(
                f"program has {len(program.phases)} phases but the supplied "
                f"result recorded {len(result.phases)}; pass the result of "
                "running this same program"
            )
        transfer = result.transfer_time
        if transfer <= 0:
            return {}
        caps = self.state.capacities
        if all(pr.link_ids is not None for pr in result.phases):
            busy_total = np.zeros(len(caps))
            for pr in result.phases:
                busy_total[pr.link_ids] += pr.link_busy
            return {
                int(l): float(busy_total[l] / transfer)
                for l in np.flatnonzero(busy_total)
            }
        # Hand-built results without per-phase snapshots: accumulate
        # bytes via the shared batch kernel and divide by the current
        # capacities (the only view available after the fact).
        bytes_total = np.zeros(len(caps))
        for phase in program.phases:
            if phase.messages:
                bytes_total += phase_batch(phase).bytes_per_link(len(caps))
        return {
            int(l): float(bytes_total[l] / (caps[l] * transfer))
            for l in np.flatnonzero(bytes_total)
        }

    def hottest_links(
        self, program: Program, top: int = 5, result: SimResult | None = None
    ) -> list[tuple[int, float]]:
        """The ``top`` most utilised links of a program, hottest first.

        ``result`` is forwarded to :meth:`link_utilization`: supply the
        program's existing :class:`SimResult` to avoid a second run.
        """
        util = self.link_utilization(program, result=result)
        # Ties break on link id, so the cut at ``top`` never depends on
        # dict insertion order.
        return sorted(util.items(), key=lambda kv: (-kv[1], kv[0]))[:top]

    def pair_bandwidths(
        self, phase: Phase
    ) -> list[tuple[Message, float]]:
        """Observable bandwidth per message of a concurrent phase.

        The mpiGraph-style metric: payload divided by completion time
        (including the latency floor).  Zero-byte messages report 0.
        """
        pr = self.run_phase(phase, collect_messages=True)
        assert pr.message_times is not None
        out = []
        for msg, t in zip(phase.messages, pr.message_times):
            bw = msg.size / t if msg.size > 0 and t > 0 else 0.0
            out.append((msg, bw))
        return out

    # --- fault timeline ----------------------------------------------------------
    def _apply_events(self, phase_index: int) -> list[FabricEvent]:
        """Fire all not-yet-applied events due at or before ``phase_index``."""
        fired: list[FabricEvent] = []
        for idx, event in enumerate(self.timeline):
            if idx in self._fired or event.phase > phase_index:
                continue
            cable = event.apply(self.net)
            self._fired.add(idx)
            self.events_applied.append((event, cable.id))
            fired.append(event)
        return fired

    def _heal_phase(self, phase: Phase) -> Phase:
        """Replace stale paths over disabled links via the reroute callback.

        Without a callback the phase is returned untouched and
        :meth:`run_phase` raises the stale-LFT diagnostic instead.
        """
        if self.reroute is None:
            return phase
        self.state.refresh()
        if not self.state.disabled:
            return phase
        healed: list[Message] = []
        changed = False
        for m in phase.messages:
            dead = self.state.disabled_on(m.path)
            if dead:
                new_path = self.reroute(m)
                if new_path is None:
                    raise SimulationError(
                        f"message {m.src}->{m.dst} in phase {phase.label!r} "
                        f"cannot be rerouted: pair unreachable after cable "
                        f"failure (dead link(s) {dead})"
                    )
                new_path = tuple(new_path)
                still_dead = self.state.disabled_on(new_path)
                if still_dead:
                    raise SimulationError(
                        f"reroute for message {m.src}->{m.dst} still crosses "
                        f"disabled link(s) {still_dead}; the forwarding "
                        "tables were not re-swept after the failure"
                    )
                m = replace(m, path=new_path)
                self.messages_rerouted += 1
                changed = True
            healed.append(m)
        if not changed:
            return phase
        return Phase(messages=healed, label=phase.label)

    def _check_paths(
        self,
        phase: Phase,
        ptr: np.ndarray,
        flat: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        """Refuse stale paths over dead links and flows that cannot progress.

        ``ptr``/``flat`` are the phase's flattened link-id paths (message
        ``i`` owns ``flat[ptr[i]:ptr[i+1]]``); the scan is a pair of mask
        gathers, and only the (cold) failure path walks messages in
        Python to name the offending links.
        """
        dis = self.state.disabled_mask
        npos = self.state.nonpositive_mask
        if not (dis.any() or npos.any()):
            return
        flat_dead = dis[flat]
        if flat_dead.any():
            first = int(
                np.searchsorted(
                    ptr, np.flatnonzero(flat_dead)[0], side="right"
                )
            ) - 1
            m = phase.messages[first]
            dead = self.state.disabled_on(m.path)
            raise SimulationError(
                f"message {m.src}->{m.dst} in phase {phase.label!r} uses "
                f"disabled link(s) {dead}: its path predates a cable "
                "failure, so the forwarding table entry is stale. "
                "Re-sweep the fabric (OpenSM.resweep) and rebuild the "
                "program's paths before simulating."
            )
        starve_csum = np.concatenate(
            ([0], npos[flat].cumsum())
        ).astype(np.intp)
        starved_msgs = (
            (starve_csum[ptr[1:]] - starve_csum[ptr[:-1]]) > 0
        ) & (sizes > 0)
        if starved_msgs.any():
            m = phase.messages[int(np.flatnonzero(starved_msgs)[0])]
            starved = self.state.nonpositive_on(m.path)
            raise SimulationError(
                f"message {m.src}->{m.dst} in phase {phase.label!r} is "
                f"starved: link(s) {starved} on its path have zero "
                "capacity, so the flow would never finish"
            )

    # --- internals ---------------------------------------------------------------
    def _switch_switch_mask(self) -> np.ndarray:
        """Per-link-id bool array: link connects two switches.

        Gathered from the cached switch graph's per-link endpoint
        arrays — two vectorised compares instead of a Python generator
        over every link.  Endpoint kinds are immutable, so any graph
        version yields the same mask.
        """
        n = len(self.net.links)
        if len(self._swsw_mask) != n:
            g = self.net.switch_graph()
            self._swsw_mask = (
                (g.index[g.link_src_node] >= 0) & (g.link_dst_index >= 0)
            )
        return self._swsw_mask

    def _raise_if_starved(
        self, msgs: Sequence[Message], idx: np.ndarray, bad: np.ndarray
    ) -> None:
        """Turn a non-finite time-to-finish into a named error.

        A flow with max-min rate 0 has infinite time-to-finish; the old
        behaviour mapped that to 0.0, so starved flows "completed"
        instantly — the exact opposite of the truth.
        """
        first = msgs[int(idx[int(np.flatnonzero(bad)[0])])]
        raise SimulationError(
            f"flow {first.src}->{first.dst} ({first.size:.0f} B) is starved: "
            "its max-min fair rate is 0, so it would never finish"
        )

    def _static_finish(
        self, msgs: Sequence[Message], problem: FairnessProblem, sizes: np.ndarray
    ) -> np.ndarray:
        rates = problem.rates()
        with np.errstate(invalid="ignore"):
            finish = np.where(sizes > 0, sizes / rates, 0.0)
        bad = ~np.isfinite(finish)
        if bad.any():
            self._raise_if_starved(msgs, np.arange(len(msgs)), bad)
        return finish

    def _dynamic_finish(
        self, msgs: Sequence[Message], problem: FairnessProblem, sizes: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Finish times plus the count of safety-valve-truncated flows."""
        n = len(sizes)
        finish = np.zeros(n)
        # The loop state lives in arrays aligned with the *active* flow
        # subset (``idx`` maps back to message order) and shrinks as
        # flows complete; the per-class multiplicities are maintained
        # incrementally, so one event is a handful of O(active) numpy
        # ops plus the class-level solve.
        idx = np.flatnonzero(sizes > 0)
        rem = sizes[idx]
        tol = 1e-6 * rem + 1e-9
        fc = problem.flow_class[idx]
        linked = fc >= 0
        all_linked = bool(linked.all())
        counts = np.bincount(
            fc if all_linked else fc[linked], minlength=problem.n_classes
        ).astype(float)
        now = 0.0

        def subset_rates() -> np.ndarray:
            crates = problem.solve_classes(counts)
            if all_linked:
                return crates[fc]
            return np.where(linked, crates[np.maximum(fc, 0)], np.inf)

        with np.errstate(invalid="ignore", divide="ignore"):
            for _ in range(_MAX_EVENTS_PER_PHASE):
                if idx.size == 0:
                    return finish, 0
                rates = subset_rates()
                ttf = rem / rates
                bad = ~np.isfinite(ttf)
                if bad.any():
                    self._raise_if_starved(msgs, idx, bad)
                dt = float(ttf.min())
                now += dt
                rem = rem - rates * dt
                # Everything within a relative hair of zero lands now;
                # the tolerance batches symmetric flows into one event.
                done = rem <= tol
                if done.any():
                    finish[idx[done]] = now
                    dfc = fc[done]
                    counts -= np.bincount(
                        dfc if all_linked else dfc[dfc >= 0],
                        minlength=problem.n_classes,
                    )
                    keep = ~done
                    idx = idx[keep]
                    rem = rem[keep]
                    tol = tol[keep]
                    fc = fc[keep]
                    if not all_linked:
                        linked = linked[keep]
                        all_linked = bool(linked.all())
            # Safety valve: finish stragglers at their current rates,
            # and count them so callers can see the approximation.
            truncated = int(idx.size)
            if idx.size:
                rates = subset_rates()
                ttf = rem / rates
                bad = ~np.isfinite(ttf)
                if bad.any():
                    self._raise_if_starved(msgs, idx, bad)
                finish[idx] = now + ttf
        return finish, truncated
