"""The phase-stepping flow simulator.

Executes a :class:`~repro.sim.flows.Program`: for every phase, its
messages become concurrent flows that share link bandwidth max-min
fairly; the phase ends when the last message lands.  Two fidelity modes:

* ``dynamic`` (default) — a discrete-event loop *within* each phase:
  when a flow finishes, the remaining flows' rates are recomputed, so
  late flows inherit freed bandwidth.  Exact for the flow model.
* ``static`` — one fairness computation per phase; each flow keeps its
  initial rate.  A conservative (never optimistic) approximation that
  is much cheaper on full-machine all-to-alls; benchmarks that sweep
  hundreds of configurations use it.

Both modes add the constant latency part (software overhead + per-hop
pipeline) on top of the serialisation time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import SimulationError
from repro.sim.fairness import max_min_fair_rates
from repro.sim.flows import Message, Phase, Program
from repro.sim.latency import QDR_LATENCY, LatencyModel
from repro.topology.network import Network

#: Dynamic-mode safety valve: after this many rate recomputations per
#: phase the remaining flows are finished at their current rates.
_MAX_EVENTS_PER_PHASE = 2000


@dataclass(slots=True)
class PhaseResult:
    """Timing of one executed phase."""

    label: str
    duration: float
    num_messages: int
    bytes_moved: float
    #: Per-message completion times, aligned with the phase's message
    #: list; only populated when the simulator collects details.
    message_times: list[float] | None = None


@dataclass(slots=True)
class SimResult:
    """Timing of a whole program."""

    label: str
    total_time: float
    phases: list[PhaseResult] = field(default_factory=list)

    @property
    def bytes_moved(self) -> float:
        return sum(p.bytes_moved for p in self.phases)

    def message_bandwidths(self, program: Program) -> list[tuple[Message, float]]:
        """Observable bandwidth of every message of ``program``.

        Pairs the per-message completion times collected during the run
        with the program's messages (the result stores only timings, not
        the messages themselves): bandwidth = payload / completion time,
        0.0 for zero-byte messages.  Requires the result to come from
        ``run(program, collect_messages=True)`` on the same program;
        raises :class:`SimulationError` otherwise.
        """
        if len(program.phases) != len(self.phases):
            raise SimulationError(
                f"program has {len(program.phases)} phases but this result "
                f"recorded {len(self.phases)}; pass the program this result "
                "was produced from"
            )
        out: list[tuple[Message, float]] = []
        for phase, pr in zip(program.phases, self.phases):
            if pr.message_times is None:
                raise SimulationError(
                    "per-message times were not collected; run with "
                    "collect_messages=True"
                )
            if len(pr.message_times) != len(phase.messages):
                raise SimulationError(
                    f"phase {pr.label!r} recorded {len(pr.message_times)} "
                    f"message times for {len(phase.messages)} messages"
                )
            for msg, t in zip(phase.messages, pr.message_times):
                bw = msg.size / t if msg.size > 0 and t > 0 else 0.0
                out.append((msg, bw))
        return out


class FlowSimulator:
    """Max-min fair flow simulator over one network plane."""

    def __init__(
        self,
        net: Network,
        latency: LatencyModel = QDR_LATENCY,
        mode: str = "dynamic",
    ) -> None:
        if mode not in ("dynamic", "static"):
            raise SimulationError(f"unknown mode {mode!r}")
        self.net = net
        self.latency = latency
        self.mode = mode
        self._capacity = np.array([l.capacity for l in net.links], dtype=float)
        self._hops_cache: dict[tuple[int, ...], int] = {}

    # --- public API -----------------------------------------------------------
    def run(self, program: Program, collect_messages: bool = False) -> SimResult:
        """Execute a program; returns per-phase and total timing."""
        result = SimResult(label=program.label, total_time=0.0)
        for i, phase in enumerate(program.phases):
            pr = self.run_phase(phase, collect_messages=collect_messages)
            result.phases.append(pr)
            result.total_time += pr.duration
            if i + 1 < len(program.phases):
                result.total_time += program.compute_between_phases
        return result

    def run_phase(self, phase: Phase, collect_messages: bool = False) -> PhaseResult:
        """Execute one synchronised round of messages."""
        msgs = phase.messages
        if not msgs:
            return PhaseResult(phase.label, 0.0, 0, 0.0,
                               [] if collect_messages else None)

        const = np.array(
            [
                self.latency.constant_time(self._hops(m.path), m.overhead)
                for m in msgs
            ]
        )
        sizes = np.array([m.size for m in msgs], dtype=float)
        paths = [m.path for m in msgs]

        if self.mode == "static":
            finish = self._static_finish(paths, sizes)
        else:
            finish = self._dynamic_finish(paths, sizes)

        times = const + finish
        duration = float(times.max())
        return PhaseResult(
            label=phase.label,
            duration=duration,
            num_messages=len(msgs),
            bytes_moved=float(sizes.sum()),
            message_times=times.tolist() if collect_messages else None,
        )

    def link_utilization(self, program: Program) -> dict[int, float]:
        """Average utilisation (0..1) of every link a program touches.

        Utilisation = bytes carried / (capacity x program duration);
        the congestion diagnostics behind the paper's port-counter
        methodology (section 2.3's cable-filter criterion and the
        ibprof-based profiling both read hardware counters like this).
        """
        result = self.run(program)
        duration = result.total_time
        if duration <= 0:
            return {}
        bytes_on: dict[int, float] = {}
        for phase in program.phases:
            for m in phase.messages:
                if m.size <= 0:
                    continue
                for l in m.path:
                    bytes_on[l] = bytes_on.get(l, 0.0) + m.size
        return {
            l: b / (self._capacity[l] * duration) for l, b in bytes_on.items()
        }

    def hottest_links(
        self, program: Program, top: int = 5
    ) -> list[tuple[int, float]]:
        """The ``top`` most utilised links of a program, hottest first."""
        util = self.link_utilization(program)
        return sorted(util.items(), key=lambda kv: -kv[1])[:top]

    def pair_bandwidths(
        self, phase: Phase
    ) -> list[tuple[Message, float]]:
        """Observable bandwidth per message of a concurrent phase.

        The mpiGraph-style metric: payload divided by completion time
        (including the latency floor).  Zero-byte messages report 0.
        """
        pr = self.run_phase(phase, collect_messages=True)
        assert pr.message_times is not None
        out = []
        for msg, t in zip(phase.messages, pr.message_times):
            bw = msg.size / t if msg.size > 0 and t > 0 else 0.0
            out.append((msg, bw))
        return out

    # --- internals ---------------------------------------------------------------
    def _hops(self, path: tuple[int, ...]) -> int:
        if path not in self._hops_cache:
            self._hops_cache[path] = self.net.path_hops(path)
        return self._hops_cache[path]

    def _static_finish(self, paths, sizes: np.ndarray) -> np.ndarray:
        rates = max_min_fair_rates(paths, self._capacity)
        with np.errstate(invalid="ignore"):
            finish = np.where(sizes > 0, sizes / rates, 0.0)
        finish[~np.isfinite(finish)] = 0.0
        return finish

    def _dynamic_finish(self, paths, sizes: np.ndarray) -> np.ndarray:
        n = len(paths)
        remaining = sizes.astype(float).copy()
        finish = np.zeros(n)
        active = remaining > 0
        now = 0.0
        for _ in range(_MAX_EVENTS_PER_PHASE):
            if not active.any():
                return finish
            idx = np.flatnonzero(active)
            rates = max_min_fair_rates([paths[i] for i in idx], self._capacity)
            with np.errstate(invalid="ignore", divide="ignore"):
                ttf = remaining[idx] / rates
            ttf[~np.isfinite(ttf)] = 0.0
            dt = float(ttf.min())
            now += dt
            remaining[idx] -= rates * dt
            # Everything within a relative hair of zero lands now; the
            # tolerance batches symmetric flows into one event.
            done = idx[remaining[idx] <= 1e-6 * sizes[idx] + 1e-9]
            finish[done] = now
            remaining[done] = 0.0
            active[done] = False
        # Safety valve: finish stragglers at their current fair rates.
        idx = np.flatnonzero(active)
        rates = max_min_fair_rates([paths[i] for i in idx], self._capacity)
        with np.errstate(invalid="ignore", divide="ignore"):
            ttf = remaining[idx] / rates
        ttf[~np.isfinite(ttf)] = 0.0
        finish[idx] = now + ttf
        return finish
