"""Traffic-trace serialisation: record programs, replay them anywhere.

The paper's methodology depends on *reusable communication records*:
profiles are captured once per (benchmark, input, rank count) and
"immune to changes in MPI rank placement, topology, and IB routing"
(footnote 6), so the same traffic can be replayed against any plane.
This module provides that artifact for the simulator: a
:class:`~repro.sim.flows.Program` serialises to portable JSON-lines at
*rank* granularity and re-materialises onto any routed fabric.

Format (one JSON object per line)::

    {"type": "meta", "label": ..., "ranks": N, "compute_gap": s}
    {"type": "phase", "label": ...}
    {"type": "msg", "src": rank, "dst": rank, "size": bytes, "tag": ...}
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, TextIO

from repro.core.errors import ConfigurationError
from repro.mpi.collectives import RankPhase
from repro.mpi.job import Job
from repro.sim.flows import Program


def dump_rank_trace(
    rank_phases: Iterable[RankPhase],
    out: TextIO,
    label: str = "",
    num_ranks: int | None = None,
    compute_gap: float = 0.0,
) -> None:
    """Write rank-level phases as a JSON-lines trace."""
    phases = [list(p) for p in rank_phases]
    ranks = num_ranks
    if ranks is None:
        ranks = 1 + max(
            (max(s, d) for ph in phases for s, d, _ in ph), default=0
        )
    out.write(json.dumps({
        "type": "meta", "label": label, "ranks": ranks,
        "compute_gap": compute_gap,
    }) + "\n")
    for i, phase in enumerate(phases):
        out.write(json.dumps({"type": "phase", "label": f"{label}[{i}]"}) + "\n")
        for src, dst, size in phase:
            out.write(json.dumps({
                "type": "msg", "src": src, "dst": dst, "size": size,
            }) + "\n")


def load_rank_trace(
    inp: TextIO,
) -> tuple[list[RankPhase], Mapping[str, object]]:
    """Read a trace back: ``(rank_phases, meta)``."""
    meta: dict[str, object] = {}
    phases: list[RankPhase] = []
    for lineno, raw in enumerate(inp, 1):
        line = raw.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"trace line {lineno} is not valid JSON: {exc}"
            ) from None
        kind = obj.get("type")
        if kind == "meta":
            meta = obj
        elif kind == "phase":
            phases.append([])
        elif kind == "msg":
            if not phases:
                raise ConfigurationError(
                    f"trace line {lineno}: message before any phase"
                )
            src, dst, size = int(obj["src"]), int(obj["dst"]), float(obj["size"])
            if src == dst:
                raise ConfigurationError(
                    f"trace line {lineno}: self-send {src}->{dst}"
                )
            if size < 0:
                raise ConfigurationError(
                    f"trace line {lineno}: negative size {size}"
                )
            phases[-1].append((src, dst, size))
        else:
            raise ConfigurationError(
                f"trace line {lineno}: unknown record type {kind!r}"
            )
    return phases, meta


def replay(job: Job, trace: TextIO) -> Program:
    """Materialise a recorded trace onto a (possibly different) fabric.

    The trace's rank count must fit the job — the placement/topology/
    routing independence of footnote 6 in action.
    """
    phases, meta = load_rank_trace(trace)
    ranks = int(meta.get("ranks", 0))
    if ranks > job.num_ranks:
        raise ConfigurationError(
            f"trace was recorded for {ranks} ranks; the job has only "
            f"{job.num_ranks}"
        )
    return job.materialize(
        phases,
        label=str(meta.get("label", "replay")),
        compute_between_phases=float(meta.get("compute_gap", 0.0)),
    )
