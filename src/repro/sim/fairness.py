"""Max-min fair bandwidth allocation by progressive filling.

Given flows (each a multiset of links) and per-link capacities,
progressive filling raises every unfrozen flow's rate uniformly until
some link saturates, freezes the flows crossing it, and repeats — the
textbook max-min water-filling (Bertsekas & Gallager).

Two entry points:

* :func:`max_min_fair_rates` — the one-shot call every routing/linter
  consumer uses; builds a :class:`FairnessProblem` and solves it once.
* :class:`FairnessProblem` — the reusable engine behind the dynamic
  flow simulator.  Construction compacts the link-id space, deduplicates
  flows with identical link multisets into weighted *flow classes*, and
  lays the link x class incidence out as flat numpy index arrays —
  once.  :meth:`FairnessProblem.rates` then re-solves under any boolean
  activity mask without rebuilding anything, which is what makes exact
  ``dynamic``-mode simulation of full-machine all-to-alls tractable
  (the event loop calls it once per completion event).

The incremental kernel is bit-for-bit equivalent to the original
scipy-CSR implementation (kept as
:func:`reference_max_min_fair_rates`, the executable spec the
equivalence tests and perf baselines compare against): link occupancies
are exact small-integer sums however they are accumulated, so the
water levels, saturation order, and freezing order coincide exactly.
"""

from __future__ import annotations

from typing import Callable, Mapping, NamedTuple, Sequence

import numpy as np

from repro.core.errors import SimulationError

#: Relative tolerance for "link is saturated".
_EPS = 1e-9

#: Lazily bound ``scipy.linalg.lapack.dtrtrs`` (the hint fast path's
#: only scipy dependency; deferred so importing this module stays cheap,
#: and called raw because the high-level wrapper costs 5x the solve).
_dtrtrs: Callable[..., tuple[np.ndarray, int]] | None = None


def _get_dtrtrs() -> Callable[..., tuple[np.ndarray, int]]:
    global _dtrtrs
    if _dtrtrs is None:
        from scipy.linalg.lapack import dtrtrs

        _dtrtrs = dtrtrs
    return _dtrtrs


class _Hint(NamedTuple):
    """Bottleneck structure of a previous solve, reusable across masks.

    A max-min allocation is fully described by its *tiers*: the links
    that saturated and froze at least one class, in freezing order, plus
    the tier each class was frozen at (``toc``).  Given the same
    structure and new per-class weights, the tier rates solve a small
    triangular linear system (each tier's link is exactly exhausted by
    its own classes plus the load of earlier, slower tiers crossing it).
    The solution is then *verified* against the max-min optimality
    conditions; since the max-min allocation is unique, any verified
    solution is exact, and a failed verification just falls back to the
    full water-fill.
    """

    tiers: np.ndarray  # compact link id per tier, in freezing order
    toc: np.ndarray  # tier index per class, -1 = not covered
    covered: np.ndarray  # bool per class: toc >= 0
    all_covered: bool  # every class has a tier (skips the mask check)
    pair_idx: np.ndarray  # toc[c] * T + tier(l) per covered (c, l) crossing
    pair_class: np.ndarray  # class id per covered crossing
    pair_row: np.ndarray  # toc[c] per covered crossing
    pair_col: np.ndarray  # tier(l) per covered crossing
    diag_idx: np.ndarray  # indices of crossings with row == col
    diag_col: np.ndarray  # pair_col[diag_idx]
    off_idx: np.ndarray  # indices of crossings with row != col
    off_row: np.ndarray  # pair_row[off_idx]
    off_col: np.ndarray  # pair_col[off_idx]
    caps_tiers: np.ndarray  # capacity of each tier's link


def _segment_gather(ptr: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Indices covering ``[ptr[i], ptr[i+1])`` for every ``i`` in ``ids``.

    The standard vectorised ragged-segment gather: no Python loop, one
    output element per gathered item.
    """
    starts = ptr[ids]
    lens = ptr[ids + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    # Offset of each output element within its segment, then add starts.
    seg_ends = lens.cumsum()
    within = np.arange(total) - np.repeat(seg_ends - lens, lens)
    return np.repeat(starts, lens) + within


class FairnessProblem:
    """Reusable max-min fairness solver over a fixed flow set.

    Parameters
    ----------
    flow_links:
        Per flow, the link ids it crosses (a path; duplicates allowed
        and counted, matching the reference CSR behaviour).  A flow
        with no links (self send) gets infinite rate when active.
        May be ``None`` when ``prebuilt_flat`` supplies the flattened
        form directly (the batched simulator path).
    link_capacity:
        Capacity per link id (mapping or dense indexable).  Only the
        links actually crossed are read; each must be positive.

    The constructor does all O(total links) work exactly once:

    * **compaction** — ``np.unique`` maps the sparse global link-id
      space onto ``0..n_links-1``;
    * **flow-class dedup** — flows with identical link multisets share
      one column; the solver weighs each class by its active
      multiplicity instead of materialising duplicate columns;
    * **incidence layout** — the link x class incidence and its
      transpose are stored as flat ``(ptr, indices)`` index arrays, so
      the water-filling loop is pure ``bincount``/gather numpy with no
      per-call sparse-matrix construction.

    :meth:`rates` solves for any boolean activity mask; masking only
    changes the per-class weights, never the arrays.
    """

    __slots__ = (
        "n_flows", "n_links", "n_classes", "_flow_class", "_has_links",
        "_caps", "_caps_tol", "_class_ptr", "_class_links", "_nnz_class",
        "_link_ptr", "_link_classes", "_full_counts", "_hint",
    )

    def __init__(
        self,
        flow_links: Sequence[Sequence[int]] | None,
        link_capacity: Mapping[int, float] | Sequence[float] | np.ndarray,
        *,
        prebuilt_flat: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        if prebuilt_flat is not None:
            # Caller already flattened the paths (message batches carry
            # the CSR form); skip the Python-level pass entirely.
            lens, flat = prebuilt_flat
            n_flows = int(len(lens))
        else:
            if flow_links is None:
                raise SimulationError(
                    "FairnessProblem needs flow_links or prebuilt_flat"
                )
            from repro.sim.batch import flatten_paths

            n_flows = len(flow_links)
            lens, _, flat = flatten_paths(flow_links)
        self.n_flows = n_flows
        self._has_links = lens > 0

        # Link-id compaction: the global id space is sparse (a phase
        # touches a fraction of the fabric), the solver's isn't.
        used, flat_c = np.unique(flat, return_inverse=True)
        n_links = len(used)
        self.n_links = n_links
        if isinstance(link_capacity, Mapping):
            caps = np.array(
                [link_capacity[lid] for lid in used.tolist()], dtype=float
            )
        else:
            caps = np.asarray(link_capacity, dtype=float)[used]
        if np.any(caps <= 0):
            raise SimulationError("links must have positive capacity")
        self._caps = caps
        self._caps_tol = caps * (1.0 + _EPS)
        self._hint: _Hint | None = None

        # Canonicalise every flow (sort its links) so identical link
        # multisets compare equal, then dedup into classes.  The lexsort
        # gives all flows' sorted segments in one shot.
        ends = lens.cumsum()
        starts = ends - lens
        total = int(ends[-1]) if n_flows else 0
        flow_ids = np.repeat(np.arange(n_flows), lens)
        order = np.lexsort((flat_c, flow_ids))
        sorted_links = np.ascontiguousarray(flat_c[order])

        flow_class = np.full(n_flows, -1, dtype=np.intp)
        nonempty = np.flatnonzero(lens)
        lmax = int(lens.max()) if n_flows else 0
        if nonempty.size and n_flows * lmax <= 5_000_000:
            # Vectorised dedup: pad every sorted segment to a fixed-width
            # row (compacted ids are >= 0, so the -1 filler cannot
            # collide) and unique the rows as opaque byte strings.
            pad = np.full((n_flows, lmax), -1, dtype=sorted_links.dtype)
            within = np.arange(total, dtype=np.intp) - np.repeat(
                starts, lens
            )
            pad[flow_ids, within] = sorted_links
            rows = np.ascontiguousarray(pad[nonempty])
            key = rows.view(
                np.dtype((np.void, rows.dtype.itemsize * lmax))
            ).ravel()
            _, first, inverse = np.unique(
                key, return_index=True, return_inverse=True
            )
            flow_class[nonempty] = inverse
            reps = nonempty[first]
            rep_lens = lens[reps].astype(np.intp)
            rep_starts_arr = starts[reps].astype(np.intp)
            n_classes = int(first.size)
        else:
            # Fallback for degenerate shapes (a few very long paths)
            # where the padded matrix would not be worth its memory.
            key_to_class: dict[bytes, int] = {}
            rep_start: list[int] = []
            rep_len: list[int] = []
            for f in nonempty.tolist():
                s, e = int(starts[f]), int(ends[f])
                bkey = sorted_links[s:e].tobytes()
                c = key_to_class.get(bkey)
                if c is None:
                    c = len(key_to_class)
                    key_to_class[bkey] = c
                    rep_start.append(s)
                    rep_len.append(e - s)
                flow_class[f] = c
            n_classes = len(key_to_class)
            rep_lens = np.asarray(rep_len, dtype=np.intp)
            rep_starts_arr = np.asarray(rep_start, dtype=np.intp)
        self.n_classes = n_classes
        self._flow_class = flow_class

        # Incidence (class -> links) and transpose (link -> classes) as
        # flat index arrays.
        self._class_ptr = np.concatenate(
            ([0], rep_lens.cumsum())
        ).astype(np.intp)
        if n_classes:
            within = (
                np.arange(int(rep_lens.sum()))
                - np.repeat(rep_lens.cumsum() - rep_lens, rep_lens)
            )
            self._class_links = sorted_links[
                np.repeat(rep_starts_arr, rep_lens) + within
            ]
        else:
            self._class_links = np.empty(0, dtype=np.intp)
        self._nnz_class = np.repeat(np.arange(n_classes), rep_lens)
        t_order = np.argsort(self._class_links, kind="stable")
        self._link_classes = self._nnz_class[t_order]
        self._link_ptr = np.concatenate(
            ([0], np.bincount(self._class_links, minlength=n_links).cumsum())
        ).astype(np.intp)

        self._full_counts = np.bincount(
            flow_class[self._has_links], minlength=n_classes
        ).astype(float)

    # --- solving ----------------------------------------------------------
    def counts(self, active: np.ndarray | None = None) -> np.ndarray:
        """Per-class active flow multiplicity under ``active`` (float)."""
        if active is None:
            return self._full_counts.copy()
        sel = np.asarray(active, dtype=bool) & self._has_links
        return np.bincount(
            self._flow_class[sel], minlength=self.n_classes
        ).astype(float)

    def rates(self, active: np.ndarray | None = None) -> np.ndarray:
        """Max-min fair rate per flow, bytes/second.

        ``active`` is a boolean mask over the problem's flows (default:
        all active).  Inactive flows get rate 0 and contribute no load;
        active link-less flows get ``inf``.  Equivalent to solving the
        sub-problem restricted to the active flows — only the per-class
        weights change, the incidence arrays are reused as-is.

        Masked calls additionally reuse the *bottleneck structure* of
        the previous masked solve (see :class:`_Hint`): when the same
        links stay the bottlenecks — the overwhelmingly common case as a
        dynamic phase drains — the new rates come from a tiny triangular
        solve plus an O(nnz) optimality check instead of a full
        water-fill.  The fallback is automatic and the result is exact
        either way (max-min allocations are unique).
        """
        rates = np.zeros(self.n_flows)
        if active is None:
            act = np.ones(self.n_flows, dtype=bool)
            counts = self._full_counts
        else:
            act = np.asarray(active, dtype=bool)
            counts = self.counts(act)
        rates[act & ~self._has_links] = np.inf
        if self.n_classes:
            class_rates = None
            if active is not None:
                if self._hint is not None:
                    class_rates = self._rates_from_hint(counts)
                if class_rates is None:
                    class_rates, self._hint = self._water_fill(
                        counts, emit=True
                    )
            else:
                class_rates = self.class_rates(counts)
            sel = act & self._has_links
            rates[sel] = class_rates[self._flow_class[sel]]
        return rates

    @property
    def flow_class(self) -> np.ndarray:
        """Class index per flow (``-1`` for link-less flows)."""
        return self._flow_class

    def solve_classes(self, counts: np.ndarray) -> np.ndarray:
        """Class rates under explicit per-class weights.

        The dynamic event loop's entry point: tries the hint fast path
        (see :class:`_Hint`) and falls back to a full water-fill, which
        re-emits the hint for the next call.  Callers that track the
        active multiplicities incrementally skip the per-event
        ``bincount`` of :meth:`rates`.
        """
        crates = None
        if self._hint is not None:
            crates = self._rates_from_hint(counts)
        if crates is None:
            crates, self._hint = self._water_fill(counts, emit=True)
        return crates

    def rates_active(self, idx: np.ndarray) -> np.ndarray:
        """Rates for exactly the flows in ``idx`` (all others inactive).

        Returns an array aligned with ``idx`` — the dynamic event loop's
        shape — skipping the full per-flow expansion of :meth:`rates`.
        Uses the same hint fast path / water-fill fallback.
        """
        fc = self._flow_class[idx]
        linked = fc >= 0
        all_linked = bool(linked.all())
        counts = np.bincount(
            fc if all_linked else fc[linked], minlength=self.n_classes
        ).astype(float)
        crates = self.solve_classes(counts)
        if all_linked:
            return crates[fc]
        out = np.full(len(idx), np.inf)
        out[linked] = crates[fc[linked]]
        return out

    def class_rates(self, counts: np.ndarray) -> np.ndarray:
        """Water-fill the classes weighted by ``counts`` active flows each.

        The incremental kernel: per level it only touches the compacted
        per-link arrays; per-class work happens exactly once, when the
        class freezes (its load is subtracted from the link occupancy,
        which stays an exact integer-valued float throughout — this is
        what makes the kernel agree bit-for-bit with the reference).
        """
        return self._water_fill(counts, emit=False)[0]

    def _water_fill(
        self, counts: np.ndarray, emit: bool
    ) -> tuple[np.ndarray, _Hint | None]:
        """Progressive filling; with ``emit`` also records the hint.

        ``emit=False`` follows the exact arithmetic of the original
        kernel; ``emit=True`` additionally assigns every frozen class
        its *bottleneck tier* (the first saturated link it crosses, in
        link-id order within a level) — the structure
        :meth:`_rates_from_hint` re-solves under new weights.  Both
        paths produce identical rates: the dedup order only affects
        float summation of exact integers.
        """
        n_links = self.n_links
        crates = np.zeros(self.n_classes)
        alive = counts > 0
        n_alive = int(alive.sum())
        toc = np.full(self.n_classes, -1, dtype=np.intp) if emit else None
        tier_links: list[np.ndarray] = []
        tier_base = 0
        if n_alive == 0 or n_links == 0:
            return crates, (self._build_hint(tier_links, toc) if emit else None)
        link_classes = self._link_classes
        link_ptr = self._link_ptr
        class_links = self._class_links
        class_ptr = self._class_ptr
        n_active = np.bincount(
            class_links, weights=counts[self._nnz_class], minlength=n_links
        )
        cap_left = self._caps.copy()
        eps_caps = _EPS * self._caps
        # Links whose occupancy dropped to zero never come back (classes
        # only freeze), so the per-level arrays shrink as flows drain.
        live = np.flatnonzero(n_active > 0)
        level = 0.0
        for _ in range(n_links + 1):
            if n_alive == 0:
                break
            na = n_active[live]
            keep = na > 0
            if not keep.all():
                live = live[keep]
                na = na[keep]
                if live.size == 0:
                    break
            cl = cap_left[live]
            headroom = cl / na
            k = int(headroom.argmin())
            inc = float(headroom[k])
            level += inc
            cl = cl - inc * na
            cap_left[live] = cl
            sat = live[cl <= eps_caps[live]]
            if sat.size == 0:
                # Numerical corner: saturate the tightest link explicitly.
                sat = live[k:k + 1]
            # Freeze every still-alive class crossing a saturated link.
            srcs = None
            if sat.size == 1:
                s = int(sat[0])
                cand = link_classes[link_ptr[s]:link_ptr[s + 1]]
            else:
                cand = link_classes[_segment_gather(link_ptr, sat)]
                if emit:
                    srcs = np.repeat(sat, link_ptr[sat + 1] - link_ptr[sat])
            mask = alive[cand]
            cand = cand[mask]
            if cand.size == 0:
                raise SimulationError(
                    "progressive filling failed to converge"
                )
            if emit:
                assert toc is not None
                if srcs is not None:
                    srcs = srcs[mask]
                if cand.size > 1:
                    cand, first = np.unique(cand, return_index=True)
                    if srcs is None:
                        toc[cand] = tier_base
                    else:
                        toc[cand] = tier_base + np.searchsorted(
                            sat, srcs[first]
                        )
                elif srcs is None:
                    toc[cand] = tier_base
                else:
                    toc[cand] = tier_base + int(
                        np.searchsorted(sat, srcs[0])
                    )
                tier_links.append(sat)
                tier_base += int(sat.size)
            elif cand.size > 1:
                cand = np.sort(cand)
                cand = cand[
                    np.concatenate(([True], cand[1:] != cand[:-1]))
                ]
            crates[cand] = level
            alive[cand] = False
            n_alive -= int(cand.size)
            # Remove the frozen classes' load from the occupancies; on
            # the just-saturated links this lands on exactly zero
            # (integer-valued floats throughout).
            if cand.size == 1:
                c = int(cand[0])
                frozen_links = class_links[class_ptr[c]:class_ptr[c + 1]]
                n_active -= np.bincount(
                    frozen_links,
                    weights=None,
                    minlength=n_links,
                ) * counts[c]
            else:
                frozen_links = class_links[_segment_gather(class_ptr, cand)]
                n_active -= np.bincount(
                    frozen_links,
                    weights=np.repeat(
                        counts[cand], class_ptr[cand + 1] - class_ptr[cand]
                    ),
                    minlength=n_links,
                )
        else:
            raise SimulationError(
                "progressive filling exceeded its iteration bound"
            )
        crates[alive] = level  # pathological leftovers (shouldn't occur)
        return crates, (self._build_hint(tier_links, toc) if emit else None)

    def _build_hint(
        self, tier_links: list[np.ndarray], toc: np.ndarray | None
    ) -> _Hint:
        """Precompute the mask-independent arrays of the hint fast path."""
        assert toc is not None
        tiers = (
            np.concatenate(tier_links)
            if tier_links
            else np.empty(0, dtype=np.intp)
        )
        # Saturated links that froze no class (another link in the same
        # level got there first in link order) add dead rows/columns to
        # the triangular system; prune them so its size tracks the
        # classes, not the saturation count — symmetric phases saturate
        # hundreds of links in one level.
        if tiers.size:
            used = np.zeros(tiers.size, dtype=bool)
            used[toc[toc >= 0]] = True
            if not used.all():
                remap = np.concatenate(
                    (np.cumsum(used) - 1, [-1])
                ).astype(np.intp)
                toc = remap[toc]
                tiers = tiers[used]
        t = tiers.size
        tier_of_link = np.full(self.n_links, -1, dtype=np.intp)
        tier_of_link[tiers] = np.arange(t)
        nl = tier_of_link[self._class_links]
        nc = toc[self._nnz_class]
        valid = (nl >= 0) & (nc >= 0)
        covered = toc >= 0
        pair_row = nc[valid]
        pair_col = nl[valid]
        is_diag = pair_row == pair_col
        diag_idx = np.flatnonzero(is_diag)
        off_idx = np.flatnonzero(~is_diag)
        return _Hint(
            tiers=tiers,
            toc=toc,
            covered=covered,
            all_covered=bool(covered.all()),
            pair_idx=pair_row * t + pair_col,
            pair_class=self._nnz_class[valid],
            pair_row=pair_row,
            pair_col=pair_col,
            diag_idx=diag_idx,
            diag_col=pair_col[diag_idx],
            off_idx=off_idx,
            off_row=pair_row[off_idx],
            off_col=pair_col[off_idx],
            caps_tiers=self._caps[tiers],
        )

    def _rates_from_hint(self, counts: np.ndarray) -> np.ndarray | None:
        """Re-solve under the previous bottleneck structure, verified.

        Tier ``t``'s link is exactly exhausted by its own classes plus
        the load of earlier tiers crossing it, so the tier rates solve a
        lower-triangular system (no later-frozen class can cross an
        earlier-saturated link — it would have been frozen there).  The
        solution is accepted only if it passes the max-min optimality
        conditions: positive rates, every tier at least as fast as the
        earlier tiers crossing its link, and global feasibility.  Any
        failure returns ``None`` and the caller re-derives the structure
        with a full water-fill.
        """
        hint = self._hint
        assert hint is not None
        if not hint.all_covered and bool(
            ((counts > 0) & ~hint.covered).any()
        ):
            return None
        t = hint.tiers.size
        if t == 0:
            return np.zeros(self.n_classes)
        pw = counts[hint.pair_class]
        diag = np.bincount(
            hint.diag_col, weights=pw[hint.diag_idx], minlength=t
        )
        keep = diag > 0
        if keep.all():
            mc = np.bincount(
                hint.pair_idx, weights=pw, minlength=t * t
            ).reshape(t, t)
            caps_t = hint.caps_tiers
            kept = None
        else:
            # Tiers whose classes all completed drop out; a tier with an
            # active class always keeps a positive diagonal (the class
            # crosses its own bottleneck link).  Build the compact
            # matrix directly — crossings into dropped tiers carry load
            # on unsaturated links, covered by the feasibility check;
            # crossings *from* dropped tiers all have zero weight.
            kept = np.flatnonzero(keep)
            tc = kept.size
            if tc == 0:
                return np.zeros(self.n_classes)
            newidx = np.full(t, -1, dtype=np.intp)
            newidx[kept] = np.arange(tc)
            sel = keep[hint.pair_col]
            rows = np.maximum(newidx[hint.pair_row[sel]], 0)
            mc = np.bincount(
                rows * tc + newidx[hint.pair_col[sel]],
                weights=pw[sel],
                minlength=tc * tc,
            ).reshape(tc, tc)
            caps_t = hint.caps_tiers[kept]
        # mc is upper triangular (no later-frozen class crosses an
        # earlier-saturated link), so dtrtrs with trans solves the
        # transposed (lower) system without forming mc.T.
        r, info = _get_dtrtrs()(mc, caps_t, lower=0, trans=1)
        if info != 0 or bool((r <= 0).any()):
            return None
        if kept is None:
            r_full = r
            r_chk = r
        else:
            r_full = np.zeros(t)
            r_full[kept] = r
            # Dropped tiers impose no rate bound of their own.
            r_chk = np.where(keep, r_full, np.inf)
        # Bottleneck validity: no earlier tier crossing this tier's link
        # may be faster, else that link is not these classes' bottleneck.
        # Checked pairwise over the sparse crossings — the dense column
        # max is O(T^2) and dominates when whole levels saturate at once.
        bad = (pw[hint.off_idx] > 0) & (
            r_full[hint.off_row] > r_chk[hint.off_col] * (1.0 + _EPS)
        )
        if bool(bad.any()):
            return None
        if hint.all_covered:
            crates = r_full[hint.toc]
        else:
            crates = np.zeros(self.n_classes)
            cov = hint.covered
            crates[cov] = r_full[hint.toc[cov]]
        load = np.bincount(
            self._class_links,
            weights=(counts * crates)[self._nnz_class],
            minlength=self.n_links,
        )
        if bool((load > self._caps_tol).any()):
            return None
        return crates


def max_min_fair_rates(
    flow_links: Sequence[Sequence[int]],
    link_capacity: Mapping[int, float] | Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Max-min fair rate for each flow, bytes/second.

    Thin wrapper over :class:`FairnessProblem` (build once, solve once)
    keeping the historical one-shot signature every routing/linter
    caller and the property tests use.

    Parameters
    ----------
    flow_links:
        Per flow, the link ids it crosses.  A flow with no links (self
        send) gets infinite rate.
    link_capacity:
        Capacity per link id (mapping or dense indexable).

    Returns
    -------
    Array of per-flow rates.  Invariants (property-tested):

    * no link's summed rate exceeds its capacity,
    * every flow is bottlenecked — it crosses at least one saturated
      link whose other flows have no higher rate (max-min optimality).
    """
    if len(flow_links) == 0:
        return np.zeros(0)
    return FairnessProblem(flow_links, link_capacity).rates()


def reference_max_min_fair_rates(
    flow_links: Sequence[Sequence[int]],
    link_capacity: Mapping[int, float] | Sequence[float] | np.ndarray,
) -> np.ndarray:
    """The pre-incremental implementation, kept as the executable spec.

    Rebuilds the scipy CSR incidence from Python lists on every call —
    exactly what :class:`FairnessProblem` exists to avoid.  The
    equivalence tests assert the incremental engine matches this
    function to 1e-9, and the perf benchmarks measure the speedup
    against it; do not call it from production paths.
    """
    from scipy import sparse

    n_flows = len(flow_links)
    if n_flows == 0:
        return np.zeros(0)

    used_links: dict[int, int] = {}
    rows: list[int] = []
    cols: list[int] = []
    empty_flows: list[int] = []
    for f, links in enumerate(flow_links):
        if not links:
            empty_flows.append(f)
            continue
        for lid in links:
            rows.append(used_links.setdefault(lid, len(used_links)))
            cols.append(f)
    n_links = len(used_links)
    rates = np.zeros(n_flows)
    if empty_flows:
        rates[empty_flows] = np.inf
    if n_links == 0:
        return rates

    if isinstance(link_capacity, Mapping):
        caps = np.array([link_capacity[lid] for lid in used_links], dtype=float)
    else:
        cap_arr = np.asarray(link_capacity, dtype=float)
        caps = np.array([cap_arr[lid] for lid in used_links], dtype=float)
    if np.any(caps <= 0):
        raise SimulationError("links must have positive capacity")

    a = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n_links, n_flows)
    )
    at = a.T.tocsr()

    active = np.ones(n_flows, dtype=bool)
    active[empty_flows] = False
    cap_left = caps.copy()
    level = np.zeros(n_flows)

    for _ in range(n_links + 1):
        if not active.any():
            break
        n_active = a @ active.astype(float)
        crossed = n_active > 0
        if not crossed.any():
            break
        inc = np.min(cap_left[crossed] / n_active[crossed])
        level[active] += inc
        cap_left -= inc * n_active
        saturated = crossed & (cap_left <= _EPS * caps)
        if not saturated.any():
            idx = np.argmin(np.where(crossed, cap_left / np.maximum(n_active, 1), np.inf))
            saturated = np.zeros_like(crossed)
            saturated[idx] = True
        frozen = (at @ saturated.astype(float)) > 0
        newly = frozen & active
        if not newly.any():
            raise SimulationError("progressive filling failed to converge")
        rates[newly] = level[newly]
        active &= ~newly
    else:
        raise SimulationError("progressive filling exceeded its iteration bound")

    rates[active] = level[active]  # pathological leftovers (shouldn't occur)
    return rates


def link_loads(
    flow_links: Sequence[Sequence[int]],
    rates: np.ndarray,
) -> dict[int, float]:
    """Aggregate bytes/second crossing each link under the given rates."""
    loads: dict[int, float] = {}
    for links, rate in zip(flow_links, rates):
        if not np.isfinite(rate):
            continue
        for lid in links:
            loads[lid] = loads.get(lid, 0.0) + float(rate)
    return loads
