"""Max-min fair bandwidth allocation by progressive filling.

Given flows (each a set of links) and per-link capacities, progressive
filling raises every unfrozen flow's rate uniformly until some link
saturates, freezes the flows crossing it, and repeats — the textbook
max-min water-filling (Bertsekas & Gallager).  The implementation is
vectorised over a sparse link x flow incidence matrix so full-machine
all-to-alls (hundreds of thousands of flows) stay tractable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.core.errors import SimulationError

#: Relative tolerance for "link is saturated".
_EPS = 1e-9


def max_min_fair_rates(
    flow_links: Sequence[Sequence[int]],
    link_capacity: Mapping[int, float] | Sequence[float] | np.ndarray,
) -> np.ndarray:
    """Max-min fair rate for each flow, bytes/second.

    Parameters
    ----------
    flow_links:
        Per flow, the link ids it crosses.  A flow with no links (self
        send) gets infinite rate.
    link_capacity:
        Capacity per link id (mapping or dense indexable).

    Returns
    -------
    Array of per-flow rates.  Invariants (property-tested):

    * no link's summed rate exceeds its capacity,
    * every flow is bottlenecked — it crosses at least one saturated
      link whose other flows have no higher rate (max-min optimality).
    """
    n_flows = len(flow_links)
    if n_flows == 0:
        return np.zeros(0)

    # Compact the link id space to the links actually used.
    used_links: dict[int, int] = {}
    rows: list[int] = []
    cols: list[int] = []
    empty_flows: list[int] = []
    for f, links in enumerate(flow_links):
        if not links:
            empty_flows.append(f)
            continue
        for lid in links:
            rows.append(used_links.setdefault(lid, len(used_links)))
            cols.append(f)
    n_links = len(used_links)
    rates = np.zeros(n_flows)
    if empty_flows:
        rates[empty_flows] = np.inf
    if n_links == 0:
        return rates

    if isinstance(link_capacity, Mapping):
        caps = np.array([link_capacity[lid] for lid in used_links], dtype=float)
    else:
        cap_arr = np.asarray(link_capacity, dtype=float)
        caps = np.array([cap_arr[lid] for lid in used_links], dtype=float)
    if np.any(caps <= 0):
        raise SimulationError("links must have positive capacity")

    a = sparse.csr_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n_links, n_flows)
    )
    at = a.T.tocsr()

    active = np.ones(n_flows, dtype=bool)
    active[empty_flows] = False
    cap_left = caps.copy()
    level = np.zeros(n_flows)

    for _ in range(n_links + 1):
        if not active.any():
            break
        n_active = a @ active.astype(float)
        crossed = n_active > 0
        if not crossed.any():
            break
        inc = np.min(cap_left[crossed] / n_active[crossed])
        level[active] += inc
        cap_left -= inc * n_active
        saturated = crossed & (cap_left <= _EPS * caps)
        if not saturated.any():
            # Numerical corner: pick the tightest link explicitly.
            idx = np.argmin(np.where(crossed, cap_left / np.maximum(n_active, 1), np.inf))
            saturated = np.zeros_like(crossed)
            saturated[idx] = True
        frozen = (at @ saturated.astype(float)) > 0
        newly = frozen & active
        if not newly.any():
            raise SimulationError("progressive filling failed to converge")
        rates[newly] = level[newly]
        active &= ~newly
    else:
        raise SimulationError("progressive filling exceeded its iteration bound")

    rates[active] = level[active]  # pathological leftovers (shouldn't occur)
    return rates


def link_loads(
    flow_links: Sequence[Sequence[int]],
    rates: np.ndarray,
) -> dict[int, float]:
    """Aggregate bytes/second crossing each link under the given rates."""
    loads: dict[int, float] = {}
    for links, rate in zip(flow_links, rates):
        if not np.isfinite(rate):
            continue
        for lid in links:
            loads[lid] = loads.get(lid, 0.0) + float(rate)
    return loads
