"""Flat-array message batches: a phase as five numpy arrays.

The simulator's hot loop never wants :class:`~repro.sim.flows.Message`
objects — it wants the phase's payload sizes, per-message software
overheads and the flattened link-id paths.  Historically
``FlowSimulator.run_phase`` re-derived those with ``np.fromiter`` over
every message's ``path`` tuple *each time a phase ran*; for a 672-node
all-to-all that is ~450k Python-level int reads per phase, repeated for
671 phases.

:class:`MessageBatch` is the prebuilt form: parallel arrays

* ``sizes``/``overheads`` — float per message,
* ``src``/``dst`` — terminal node ids per message,
* ``lens``/``ptr``/``flat`` — the CSR flattening of the link-id paths
  (message ``i`` crosses ``flat[ptr[i]:ptr[i+1]]``).

:func:`flatten_paths` is the one shared flattening kernel — the same
pass the fairness solver and the byte-per-link accounting use — and
:class:`PathPool` lets builders (the MPI job layer) construct batches
from *interned* path ids with a vectorised segment gather instead of
re-walking path tuples per message: collectives reuse the same
(src, dst, LID) pairs across rounds, so the per-int Python work happens
once per unique path, not once per message.

Equivalence guarantee: a batch built by :meth:`MessageBatch.from_pool`
is element-for-element identical (values *and* dtypes) to
:meth:`MessageBatch.from_messages` over the same message list, which in
turn reproduces the arrays ``run_phase`` used to build inline — the
``tests/test_sim_batch.py`` suite pins this, and it is what keeps
dynamic-mode results bit-identical to the per-message path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.flows import Message, Phase

__all__ = ["MessageBatch", "PathPool", "flatten_paths", "phase_batch"]


def flatten_paths(
    paths: Sequence[Sequence[int]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten link-id paths into ``(lens, ptr, flat)`` CSR arrays.

    ``lens[i] == len(paths[i])``, ``ptr`` is the exclusive prefix sum
    (``ptr[0] == 0``), and ``flat[ptr[i]:ptr[i+1]]`` holds path ``i``'s
    link ids in order.  The single shared flattening kernel behind
    :meth:`MessageBatch.from_messages`, the fairness solver's
    non-prebuilt constructor path, and the utilisation accounting.
    """
    n = len(paths)
    lens = np.fromiter((len(p) for p in paths), dtype=np.intp, count=n)
    ptr = np.concatenate(([0], lens.cumsum())).astype(np.intp)
    flat = np.fromiter(
        (lid for p in paths for lid in p), dtype=np.intp, count=int(ptr[-1])
    )
    return lens, ptr, flat


def _segment_gather(
    starts: np.ndarray, lens: np.ndarray, flat_pool: np.ndarray
) -> np.ndarray:
    """Concatenate ``flat_pool[starts[i]:starts[i]+lens[i]]`` segments.

    One vectorised gather: no per-segment Python loop, one output
    element per gathered link id.
    """
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=flat_pool.dtype)
    seg_ends = lens.cumsum()
    within = np.arange(total) - np.repeat(seg_ends - lens, lens)
    return flat_pool[np.repeat(starts, lens) + within]


class PathPool:
    """Interned link-id paths, stored once as one growing flat array.

    ``add`` registers a path and returns its id; ``MessageBatch`` then
    gathers per-message segments by id.  The pool never deduplicates —
    callers that intern (the job layer keys on ``(src, dst, lid_index)``)
    get dedup for free, and callers that do not still get the one-pass
    gather.
    """

    __slots__ = ("_paths", "_starts", "_lens", "_flat", "_built", "_flat_used")

    def __init__(self) -> None:
        self._paths: list[Sequence[int]] = []
        self._starts = np.empty(0, dtype=np.intp)
        self._lens = np.empty(0, dtype=np.intp)
        self._flat = np.empty(0, dtype=np.intp)
        self._built = 0  # paths already folded into the arrays
        self._flat_used = 0  # valid prefix of the _flat buffer

    def __len__(self) -> int:
        return len(self._paths)

    def add(self, path: Sequence[int]) -> int:
        """Register a path; returns its pool id."""
        self._paths.append(path)
        return len(self._paths) - 1

    @staticmethod
    def _append(buf: np.ndarray, used: int, new: np.ndarray) -> np.ndarray:
        """Copy ``new`` in at ``buf[used:]``, growing geometrically.

        Amortised-linear over the pool's lifetime — the old code
        re-concatenated the *whole* array on every flush, which made a
        call-per-phase builder quadratic in the total path count.
        """
        need = used + new.size
        if need > buf.size:
            grown = np.empty(max(need, 2 * buf.size, 1024), dtype=np.intp)
            grown[:used] = buf[:used]
            buf = grown
        buf[used:need] = new
        return buf

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(starts, lens, flat)`` over every registered path.

        Rebuilt incrementally: only paths added since the last call are
        flattened and copied into preallocated buffers, so repeated
        batch construction over a growing pool stays linear in new
        work.  The results are views of the internal buffers — callers
        must treat them as read-only.
        """
        if self._built < len(self._paths):
            new = self._paths[self._built:]
            lens, ptr, flat = flatten_paths(new)
            self._starts = self._append(
                self._starts, self._built, ptr[:-1] + self._flat_used
            )
            self._lens = self._append(self._lens, self._built, lens)
            self._flat = self._append(self._flat, self._flat_used, flat)
            self._built = len(self._paths)
            self._flat_used += int(flat.size)
        return (
            self._starts[: self._built],
            self._lens[: self._built],
            self._flat[: self._flat_used],
        )


class MessageBatch:
    """A phase's messages as parallel flat arrays (see module docs)."""

    __slots__ = ("n", "sizes", "overheads", "src", "dst", "lens", "ptr", "flat")

    def __init__(
        self,
        sizes: np.ndarray,
        overheads: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        lens: np.ndarray,
        ptr: np.ndarray,
        flat: np.ndarray,
    ) -> None:
        self.n = int(len(sizes))
        self.sizes = sizes
        self.overheads = overheads
        self.src = src
        self.dst = dst
        self.lens = lens
        self.ptr = ptr
        self.flat = flat

    @classmethod
    def from_messages(cls, messages: Sequence["Message"]) -> "MessageBatch":
        """Build a batch from message objects (the compatibility path).

        Reproduces exactly the arrays ``run_phase`` built inline before
        batching existed — hand-assembled phases pay this once per run,
        like they always did.
        """
        n = len(messages)
        lens, ptr, flat = flatten_paths([m.path for m in messages])
        sizes = np.fromiter((m.size for m in messages), dtype=float, count=n)
        overheads = np.fromiter(
            (m.overhead for m in messages), dtype=float, count=n
        )
        src = np.fromiter((m.src for m in messages), dtype=np.int64, count=n)
        dst = np.fromiter((m.dst for m in messages), dtype=np.int64, count=n)
        return cls(sizes, overheads, src, dst, lens, ptr, flat)

    @classmethod
    def from_pool(
        cls,
        pool: PathPool,
        path_ids: Sequence[int],
        sizes: Iterable[float],
        overhead: float,
        src: Sequence[int],
        dst: Sequence[int],
    ) -> "MessageBatch":
        """Build a batch from pooled path ids (the builder fast path).

        ``overhead`` is the per-message software latency (constant per
        PML, hence scalar here).  Arrays come out identical to
        :meth:`from_messages` over the corresponding message objects.
        """
        starts_all, lens_all, flat_pool = pool.arrays()
        pid = np.asarray(path_ids, dtype=np.intp)
        n = int(pid.size)
        lens = lens_all[pid]
        ptr = np.concatenate(([0], lens.cumsum())).astype(np.intp)
        flat = _segment_gather(starts_all[pid], lens, flat_pool)
        return cls(
            np.asarray(sizes, dtype=float),
            np.full(n, float(overhead)),
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            lens,
            ptr,
            flat,
        )

    def bytes_per_link(self, n_links: int) -> np.ndarray:
        """Payload bytes crossing each link id, as a dense array.

        The batched form of the utilisation accounting's old triple
        Python loop: one ``np.repeat`` + ``np.bincount`` pass.
        """
        if self.flat.size == 0:
            return np.zeros(n_links)
        return np.bincount(
            self.flat,
            weights=np.repeat(self.sizes, self.lens),
            minlength=n_links,
        )


def phase_batch(phase: "Phase") -> "MessageBatch":
    """The phase's prebuilt batch, or a fresh one from its messages.

    A prebuilt batch is trusted only while its message count still
    matches the phase (builders attach batches at materialisation time;
    code that edits ``phase.messages`` in place afterwards must call
    :meth:`~repro.sim.flows.Phase.invalidate_batch`).  Phases without a
    valid batch are flattened from their message objects — the exact
    arrays the simulator used to build inline.
    """
    b = phase.batch
    if b is not None and b.n == len(phase.messages):
        return b
    return MessageBatch.from_messages(phase.messages)
