"""Adaptive flow routing: least-congested candidate selection.

Models what the paper's footnote 3 anticipates — "future HyperX
deployments use AR, making our static routing prototype obsolete".  At
flow granularity the UGAL/DAL decision reduces to: among the candidate
paths (minimal dimension-order routes plus Valiant detours, supplied by
:class:`~repro.routing.dal.DalSelector`), inject on the one whose most
loaded link currently carries the least traffic, weighting non-minimal
candidates by their extra hops the way UGAL compares ``q_min * H_min``
against ``q_val * H_val``.

The router keeps running byte counters per link (the congestion
estimate) which callers reset between independent experiments.
"""

from __future__ import annotations

from repro.routing.dal import DalSelector
from repro.topology.network import Network


class AdaptiveFlowRouter:
    """Stateful least-congested path chooser over DAL candidates."""

    def __init__(self, net: Network, selector: DalSelector | None = None) -> None:
        self.net = net
        self.selector = selector or DalSelector(net)
        self._load: dict[int, float] = {}

    def reset(self) -> None:
        """Forget accumulated congestion (between experiments)."""
        self._load.clear()

    def choose(self, src: int, dst: int, size: float) -> tuple[int, ...]:
        """Pick a path for one flow and account its bytes onto the links.

        The UGAL-style comparison: candidate cost = (max link load after
        placing the flow) x (number of switch hops); the minimum wins,
        so an empty non-minimal path only wins once minimal links are
        busier in proportion to the extra distance.
        """
        net = self.net
        best_path: tuple[int, ...] | None = None
        best_cost = float("inf")
        for cand in self.selector.candidates(src, dst):
            hops = max(1, net.path_hops(cand))
            # Congestion is judged on switch-to-switch channels only: the
            # injection/ejection links are common to every candidate and
            # would otherwise mask the differences UGAL weighs.
            sw_links = [
                l for l in cand
                if net.is_switch(net.link(l).src) and net.is_switch(net.link(l).dst)
            ]
            worst = max(
                (self._load.get(l, 0.0) + size for l in sw_links), default=0.0
            )
            cost = worst * hops
            if cost < best_cost:
                best_cost = cost
                best_path = tuple(cand)
        assert best_path is not None
        for l in best_path:
            self._load[l] = self._load.get(l, 0.0) + size
        return best_path
