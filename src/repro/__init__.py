"""t2hx-repro: a flow-level reproduction of "HyperX Topology: First
At-Scale Implementation and Comparison to the Fat-Tree" (Domke et al.,
SC '19).

Subpackages (see README.md for the architecture tour):

* :mod:`repro.core` — units, QDR calibration, RNG, errors,
* :mod:`repro.topology` — network graphs + generators + cost model,
* :mod:`repro.ib` — the InfiniBand fabric model (LIDs, LFTs, VLs),
* :mod:`repro.routing` — nine routing engines incl. the paper's PARX,
* :mod:`repro.sim` — the max-min-fair flow simulator,
* :mod:`repro.mpi` — collectives, messaging layers, jobs, profiling,
* :mod:`repro.placement` — linear/clustered/random allocations,
* :mod:`repro.workloads` — the paper's benchmark suite as traffic,
* :mod:`repro.experiments` — the five configurations and both
  evaluation modes.
"""

__version__ = "1.0.0"
