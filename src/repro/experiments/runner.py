"""Capability evaluation: one benchmark, one configuration, one scale.

The paper's capability mode (§4.4.1): exclusive access, one job at a
time, scaling from a single switch (7 nodes, or 4 for power-of-two
codes) by doubling up to the full machine, 10 repetitions each.

:func:`run_capability` reproduces that flow for one :class:`RunSpec`
cell: build the routed plane, place the job, (for PARX) profile the
workload and re-route against the demand file, simulate, and add seeded
run-to-run noise standing in for system noise [32] — the flow model
itself is deterministic, the real machine was not.

A cell is fully described by its :class:`RunSpec`, which is frozen and
JSON-round-trippable so the campaign engine (:mod:`repro.campaign`) can
ship cells to worker processes and persist them in the run ledger.
"""

from __future__ import annotations

import copy
import json
import warnings
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable

import numpy as np

from repro.analysis import assert_fabric_clean
from repro.analysis.whatif import audit_whatif
from repro.core.errors import ConfigurationError, ReproError
from repro.core.rng import derive_seed, make_rng
from repro.experiments.configs import (
    Combination,
    build_fabric,
    get_combination,
    make_engine,
    make_job,
    mark_preflighted,
    was_preflighted,
)
from repro.ib.fabric import Fabric
from repro.ib.subnet_manager import resweep
from repro.mpi.job import Job
from repro.mpi.profiler import CommunicationProfiler
from repro.sim.engine import FlowSimulator
from repro.topology.faults import FabricEvent, FaultTimeline

#: The paper's capability node counts (7-based and power-of-two tracks).
NODE_COUNTS_7 = (7, 14, 28, 56, 112, 224, 448, 672)
NODE_COUNTS_POW2 = (4, 8, 16, 32, 64, 128, 256, 512)

#: Multiplicative system-noise sigma applied per repetition.
RUN_NOISE_SIGMA = 0.01


@dataclass(frozen=True)
class RunSpec:
    """One capability cell of an experiment sweep, fully serialized.

    Everything :func:`run_capability` needs except the measure callable
    (which is process-local and resolved from the benchmark name by the
    campaign engine).  Frozen so cells can key dictionaries and ride in
    sets; round-trips through JSON for the campaign ledger and worker
    hand-off.
    """

    combo_key: str
    benchmark: str
    num_nodes: int
    reps: int = 3
    scale: int = 1
    seed: int = 0
    sim_mode: str = "dynamic"
    faults: bool = True
    preflight: bool = True
    #: Mid-run fabric events (cable failures / degrades / restores) the
    #: simulator applies at phase boundaries; empty for pristine runs.
    fault_timeline: tuple[FabricEvent, ...] = ()

    @property
    def combo(self) -> Combination:
        """The full combination this cell runs under."""
        return get_combination(self.combo_key)

    @property
    def cell_id(self) -> str:
        """Stable ledger identity of this cell (excludes reps/modes that
        do not change *which* grid point it is)."""
        base = f"{self.combo_key}/{self.benchmark}/n{self.num_nodes}/s{self.scale}"
        if self.fault_timeline:
            base += f"/evt{len(self.fault_timeline)}"
        return base

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["fault_timeline"] = [e.to_dict() for e in self.fault_timeline]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunSpec":
        known = {f for f in cls.__dataclass_fields__}
        extra = set(data) - known
        if extra:
            raise ConfigurationError(
                f"unknown RunSpec fields {sorted(extra)}"
            )
        data = dict(data)
        timeline = data.pop("fault_timeline", ())
        events = tuple(
            e if isinstance(e, FabricEvent) else FabricEvent.from_dict(e)
            for e in timeline
        )
        return cls(fault_timeline=events, **data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def with_(self, **changes: Any) -> "RunSpec":
        """A copy with some fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)


def preflight_fabric(fabric: Fabric, context: str = "") -> None:
    """Static-verification gate run before every simulation.

    Delegates to :func:`repro.analysis.assert_fabric_clean` (the cheap
    correctness rules: black holes, forwarding loops, credit loops, LID
    conflicts) and raises
    :class:`~repro.core.errors.FabricLintError` on any error — a broken
    routing must never silently shape experiment results.

    Certification is tracked by the fabric's *content* cache key
    (combination/scale/faults/seed), not object identity: identical
    configurations lint once per process, a hand-built fabric
    (``cache_key is None``) lints every time, and the campaign ledger
    can persist the certified keys.
    """
    if was_preflighted(fabric.cache_key):
        return
    assert_fabric_clean(fabric, context=context)
    mark_preflighted(fabric.cache_key)


@dataclass
class CapabilityResult:
    """Measurements of one (combination, benchmark, node count) cell."""

    combo_key: str
    benchmark: str
    num_nodes: int
    values: list[float] = field(default_factory=list)
    higher_is_better: bool = False
    #: Fault-timeline accounting (zero / empty for pristine cells).
    events_applied: int = 0
    messages_rerouted: int = 0
    paths_changed: int = 0
    unreachable_pairs: int = 0
    #: Serialized :class:`~repro.ib.subnet_manager.RerouteReport` dicts,
    #: one per re-sweep the run triggered.
    reroutes: list[dict[str, Any]] = field(default_factory=list)

    @property
    def best(self) -> float:
        return min(self.values) if not self.higher_is_better else max(self.values)


#: Legacy keyword parameters of the pre-RunSpec ``run_capability`` in
#: positional order, for the back-compat shim.
_LEGACY_PARAMS = (
    "measure", "num_nodes", "reps", "scale", "seed", "sim_mode",
    "rank_phases_for_profile", "higher_is_better", "with_faults",
    "preflight",
)


def run_capability(spec, *args, **kwargs) -> CapabilityResult:
    """Measure one benchmark at one scale under one combination.

    Primary form::

        run_capability(spec, measure,
                       rank_phases_for_profile=None,
                       higher_is_better=False)

    where ``spec`` is a :class:`RunSpec` and ``measure(job, sim)``
    returns the benchmark's metric for a single run.

    The pre-1.1 keyword form ``run_capability(combo, benchmark,
    measure=..., num_nodes=..., ...)`` still works through a thin shim
    (deprecated; it will be removed one minor release after 1.1 — see
    README "Migrating to RunSpec").
    """
    if isinstance(spec, RunSpec):
        return _run_capability(spec, *args, **kwargs)
    if not isinstance(spec, Combination):
        raise ConfigurationError(
            f"run_capability expects a RunSpec (or legacy Combination), "
            f"got {type(spec).__name__}"
        )
    warnings.warn(
        "run_capability(combo, benchmark, ...) is deprecated; build a "
        "RunSpec and call run_capability(spec, measure, ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    if args and isinstance(args[0], str):
        benchmark, args = args[0], args[1:]
    else:
        benchmark = kwargs.pop("benchmark")
    params = dict(zip(_LEGACY_PARAMS, args))
    overlap = set(params) & set(kwargs)
    if overlap:
        raise TypeError(
            f"run_capability got multiple values for {sorted(overlap)}"
        )
    params.update(kwargs)
    legacy_spec = RunSpec(
        combo_key=spec.key,
        benchmark=benchmark,
        num_nodes=params.pop("num_nodes"),
        reps=params.pop("reps", 3),
        scale=params.pop("scale", 1),
        seed=params.pop("seed", 0),
        sim_mode=params.pop("sim_mode", "dynamic"),
        faults=params.pop("with_faults", True),
        preflight=params.pop("preflight", True),
    )
    return _run_capability(legacy_spec, params.pop("measure"), **params)


def _run_capability(
    spec: RunSpec,
    measure: Callable[[Job, FlowSimulator], float],
    rank_phases_for_profile=None,
    higher_is_better: bool = False,
) -> CapabilityResult:
    """The real capability flow, RunSpec form.

    For PARX combinations, ``rank_phases_for_profile`` (the workload's
    expanded communication, if the caller has it) is profiled and turned
    into the node-based demand file PARX re-routes with — the paper's
    SAR-style interface; without it PARX routes with the uniform
    profile.
    """
    combo = spec.combo
    result = CapabilityResult(
        combo.key, spec.benchmark, spec.num_nodes,
        higher_is_better=higher_is_better,
    )

    # Placement is part of the configuration: one allocation per cell
    # (the paper pins host lists per experiment, repetitions reuse them).
    fabric = build_fabric(
        combo, scale=spec.scale, seed=spec.seed, with_faults=spec.faults
    )
    job = make_job(
        combo, fabric, spec.num_nodes,
        seed=derive_seed(spec.seed, spec.benchmark),
    )

    demands = None
    if combo.uses_parx and rank_phases_for_profile is not None:
        profiler = CommunicationProfiler()
        profiler.record(rank_phases_for_profile)
        demands = profiler.demands_for_nodes(job.nodes)
        fabric = build_fabric(
            combo, scale=spec.scale, seed=spec.seed,
            with_faults=spec.faults, demands=demands,
        )
        job = Job(fabric, job.nodes, pml=job.pml)

    if spec.preflight:
        preflight_fabric(fabric, context=f"{combo.key}/{spec.benchmark}")

    if spec.fault_timeline:
        # Timeline events mutate the network in place; fabrics are shared
        # through the in-process cache, so this cell degrades a private
        # deep copy instead of poisoning every later cell.
        fabric = copy.deepcopy(fabric)
        job = Job(fabric, job.nodes, pml=job.pml)
        # Re-sweeps recompute with the engine (and, for PARX, the demand
        # file) the plane was originally routed with.
        engine, _ = make_engine(combo, demands)
        # Static criticality of every cable, audited before any timeline
        # event fires; each re-sweep report carries the certificate of
        # the cable(s) it repaired, and the ledger keeps it per cell.
        try:
            whatif = audit_whatif(fabric)
        except ReproError:
            whatif = None

        def on_event(events, phase_index, fabric=fabric, job=job):
            report = resweep(fabric, engine, events=events)
            if whatif is not None:
                failed = [
                    cable_id
                    for event, cable_id in sim.events_applied[-len(events):]
                    if event.action == "fail_cable"
                ]
                crits = [
                    c for c in map(whatif.criticality_of, failed)
                    if c is not None
                ]
                if len(crits) == 1:
                    report.cable_criticality = crits[0]
                elif crits:
                    report.cable_criticality = {"cables": crits}
            job.invalidate_paths()
            return report

        def reroute(msg, fabric=fabric):
            try:
                return tuple(fabric.path(msg.src, msg.dst))
            except ReproError:
                return None

        sim = FlowSimulator(
            fabric.net,
            mode=spec.sim_mode,
            timeline=FaultTimeline(spec.fault_timeline),
            on_fabric_event=on_event,
            reroute=reroute,
        )
    else:
        sim = FlowSimulator(fabric.net, mode=spec.sim_mode)
    base_value = None
    noise = make_rng(
        derive_seed(
            spec.seed, "noise", combo.key, spec.benchmark, spec.num_nodes
        )
    )
    for _ in range(spec.reps):
        job.pml.reset()
        if base_value is None:
            base_value = measure(job, sim)
        # System noise: the deterministic flow model yields the
        # noise-free value; repetitions scatter around it.
        result.values.append(
            float(base_value * np.exp(noise.normal(0.0, RUN_NOISE_SIGMA)))
        )
    if spec.fault_timeline:
        result.events_applied = len(sim.events_applied)
        result.messages_rerouted = sim.messages_rerouted
        result.reroutes = [r.to_dict() for r in sim.reroute_reports]
        result.paths_changed = sum(r.paths_changed for r in sim.reroute_reports)
        result.unreachable_pairs = sum(
            r.num_unreachable for r in sim.reroute_reports
        )
    return result


def node_counts_for(benchmark_scaling: str, max_nodes: int = 672) -> tuple[int, ...]:
    """The paper's scaling track for a benchmark: 7-based doubling for
    most codes, power-of-two for codes that need it (Table 2 figures)."""
    track = NODE_COUNTS_POW2 if benchmark_scaling == "pow2" else NODE_COUNTS_7
    return tuple(n for n in track if n <= max_nodes)
