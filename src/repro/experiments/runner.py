"""Capability evaluation: one benchmark, one configuration, one scale.

The paper's capability mode (§4.4.1): exclusive access, one job at a
time, scaling from a single switch (7 nodes, or 4 for power-of-two
codes) by doubling up to the full machine, 10 repetitions each.

:func:`run_capability` reproduces that flow for a combination: build
the routed plane, place the job, (for PARX) profile the workload and
re-route against the demand file, simulate, and add seeded run-to-run
noise standing in for system noise [32] — the flow model itself is
deterministic, the real machine was not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis import assert_fabric_clean
from repro.core.rng import derive_seed, make_rng
from repro.experiments.configs import Combination, build_fabric, make_job
from repro.ib.fabric import Fabric
from repro.mpi.job import Job
from repro.mpi.profiler import CommunicationProfiler
from repro.sim.engine import FlowSimulator

#: The paper's capability node counts (7-based and power-of-two tracks).
NODE_COUNTS_7 = (7, 14, 28, 56, 112, 224, 448, 672)
NODE_COUNTS_POW2 = (4, 8, 16, 32, 64, 128, 256, 512)

#: Multiplicative system-noise sigma applied per repetition.
RUN_NOISE_SIGMA = 0.01

# Fabrics already certified by the preflight lint this process.  Keyed
# by object identity: build_fabric caches and returns the same Fabric
# for identical configurations, so repeated cells lint once.
_preflighted: dict[int, bool] = {}


def preflight_fabric(fabric: Fabric, context: str = "") -> None:
    """Static-verification gate run before every simulation.

    Delegates to :func:`repro.analysis.assert_fabric_clean` (the cheap
    correctness rules: black holes, forwarding loops, credit loops, LID
    conflicts) and raises
    :class:`~repro.core.errors.FabricLintError` on any error — a broken
    routing must never silently shape experiment results.
    """
    if _preflighted.get(id(fabric)):
        return
    assert_fabric_clean(fabric, context=context)
    _preflighted[id(fabric)] = True


@dataclass
class CapabilityResult:
    """Measurements of one (combination, benchmark, node count) cell."""

    combo_key: str
    benchmark: str
    num_nodes: int
    values: list[float] = field(default_factory=list)
    higher_is_better: bool = False

    @property
    def best(self) -> float:
        return min(self.values) if not self.higher_is_better else max(self.values)


def run_capability(
    combo: Combination,
    benchmark: str,
    measure: Callable[[Job, FlowSimulator], float],
    num_nodes: int,
    reps: int = 3,
    scale: int = 1,
    seed: int = 0,
    sim_mode: str = "dynamic",
    rank_phases_for_profile=None,
    higher_is_better: bool = False,
    with_faults: bool = True,
    preflight: bool = True,
) -> CapabilityResult:
    """Measure one benchmark at one scale under one combination.

    ``measure(job, sim)`` returns the benchmark's metric for a single
    run.  For PARX combinations, ``rank_phases_for_profile`` (the
    workload's expanded communication, if the caller has it) is profiled
    and turned into the node-based demand file PARX re-routes with —
    the paper's SAR-style interface; without it PARX routes with the
    uniform profile.
    """
    result = CapabilityResult(
        combo.key, benchmark, num_nodes, higher_is_better=higher_is_better
    )

    # Placement is part of the configuration: one allocation per cell
    # (the paper pins host lists per experiment, repetitions reuse them).
    net, fabric = build_fabric(
        combo, scale=scale, seed=seed, with_faults=with_faults
    )
    job = make_job(combo, fabric, num_nodes, seed=derive_seed(seed, benchmark))

    if combo.uses_parx and rank_phases_for_profile is not None:
        profiler = CommunicationProfiler()
        profiler.record(rank_phases_for_profile)
        demands = profiler.demands_for_nodes(job.nodes)
        net, fabric = build_fabric(
            combo, scale=scale, seed=seed, with_faults=with_faults,
            demands=demands,
        )
        job = Job(fabric, job.nodes, pml=job.pml)

    if preflight:
        preflight_fabric(fabric, context=f"{combo.key}/{benchmark}")

    sim = FlowSimulator(net, mode=sim_mode)
    base_value = None
    noise = make_rng(derive_seed(seed, "noise", combo.key, benchmark, num_nodes))
    for _ in range(reps):
        job.pml.reset()
        if base_value is None:
            base_value = measure(job, sim)
        # System noise: the deterministic flow model yields the
        # noise-free value; repetitions scatter around it.
        result.values.append(
            float(base_value * np.exp(noise.normal(0.0, RUN_NOISE_SIGMA)))
        )
    return result


def node_counts_for(benchmark_scaling: str, max_nodes: int = 672) -> tuple[int, ...]:
    """The paper's scaling track for a benchmark: 7-based doubling for
    most codes, power-of-two for codes that need it (Table 2 figures)."""
    track = NODE_COUNTS_POW2 if benchmark_scaling == "pow2" else NODE_COUNTS_7
    return tuple(n for n in track if n <= max_nodes)
