"""Resilience sweep: the five combinations under scaled cable-fault levels.

The paper never ran on a pristine machine — 15 of the HyperX plane's
AOCs and 197 of the Fat-Tree's links were missing (§2.3), so every
routing had to route *around* dead cables from day one.  This sweep
makes that condition a measured axis: for each combination it injects a
multiple of the paper's missing-cable count (level 0.0 = pristine,
1.0 = as-built, 2.0 = twice as degraded), routes the degraded plane,
runs an all-to-all, and — to exercise the recovery path — fails one
more cable mid-run and lets the SM re-sweep.  Reported per cell: run
time, slowdown versus pristine, reroute counters, and the statically
verified unreachable-pair count (which must be zero while the switch
graph stays connected).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.linter import lint_fabric
from repro.analysis.whatif import VulnerabilityReport, audit_whatif
from repro.core.errors import ReproError, TopologyError
from repro.core.rng import derive_seed
from repro.core.units import MIB
from repro.experiments.configs import (
    THE_FIVE,
    get_combination,
    make_engine,
    make_job,
)
from repro.ib.subnet_manager import OpenSM, resweep
from repro.sim.engine import FlowSimulator
from repro.topology.faults import (
    FabricEvent,
    FaultTimeline,
    _switch_graph_connected,
    inject_cable_faults,
)
from repro.topology.t2hx import paper_fault_count, t2hx_fattree, t2hx_hyperx

#: Fault levels as multiples of the paper's missing-cable count.
DEFAULT_LEVELS = (0.0, 1.0, 2.0)

#: How a sweep picks which cables to fail.
FAILURE_MODES = ("random", "adversarial")


@dataclass
class ResilienceCell:
    """One (combination, fault level) measurement."""

    combo_key: str
    level: float
    #: Cables disabled before routing (level x the paper's count).
    faults_injected: int
    #: The plane's paper-equivalent missing-cable count (level 1.0).
    paper_faults: int
    num_nodes: int
    time: float
    #: time / the same combination's first-level (usually 0.0) time.
    slowdown: float
    #: Statically verified unreachable terminal pairs (FAB001).
    unreachable_pairs: int
    #: Mid-run recovery accounting (zero when midrun_failure is off).
    events_applied: int = 0
    messages_rerouted: int = 0
    paths_changed: int = 0
    resweep_unreachable: int = 0
    reroutes: list[dict[str, Any]] = field(default_factory=list)
    #: Top utilised links of the (possibly degraded) run, hottest first,
    #: as ``[link_id, utilisation]`` pairs.
    hottest_links: list[list[float]] = field(default_factory=list)
    #: How this cell's cables were chosen ("random" or "adversarial").
    failure_mode: str = "random"
    #: The mid-run failed cable and its static criticality (rank 1 =
    #: most critical of ``midrun_of`` audited cables), from the what-if
    #: audit of the routed degraded plane taken *before* the run.
    midrun_cable: int | None = None
    midrun_rank: int | None = None
    midrun_of: int | None = None
    midrun_affected_pairs: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "combo_key": self.combo_key,
            "level": self.level,
            "faults_injected": self.faults_injected,
            "paper_faults": self.paper_faults,
            "num_nodes": self.num_nodes,
            "time": self.time,
            "slowdown": self.slowdown,
            "unreachable_pairs": self.unreachable_pairs,
            "events_applied": self.events_applied,
            "messages_rerouted": self.messages_rerouted,
            "paths_changed": self.paths_changed,
            "resweep_unreachable": self.resweep_unreachable,
            "reroutes": self.reroutes,
            "hottest_links": self.hottest_links,
            "failure_mode": self.failure_mode,
            "midrun_cable": self.midrun_cable,
            "midrun_rank": self.midrun_rank,
            "midrun_of": self.midrun_of,
            "midrun_affected_pairs": self.midrun_affected_pairs,
        }


@dataclass
class ResilienceResult:
    """The full sweep: cells ordered by (combination, level)."""

    scale: int
    seed: int
    levels: tuple[float, ...]
    failure_mode: str = "random"
    cells: list[ResilienceCell] = field(default_factory=list)

    @property
    def total_unreachable(self) -> int:
        return sum(c.unreachable_pairs + c.resweep_unreachable
                   for c in self.cells)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "levels": list(self.levels),
            "failure_mode": self.failure_mode,
            "total_unreachable": self.total_unreachable,
            "cells": [c.to_dict() for c in self.cells],
        }


def _build_plane(topology: str, scale: int):
    if topology == "hyperx":
        return t2hx_hyperx(with_faults=False, scale=scale)
    return t2hx_fattree(with_faults=False, scale=scale)


def _fail_worst_cables(net, combo, num_faults: int) -> list[int]:
    """Adversarial injection: disable the statically worst-ranked cables.

    Routes a probe fabric on the pristine plane with the combination's
    own engine, ranks every cable with the what-if verifier, then walks
    the ranking greedily — a cable whose removal would disconnect the
    switch graph is skipped (mirroring ``inject_cable_faults``'s
    keep-connected contract, so the two modes stay comparable).
    Returns the disabled representative link ids.
    """
    engine, sm_kwargs = make_engine(combo)
    probe = OpenSM(net, **sm_kwargs).run(engine)
    audit = audit_whatif(probe)
    failed: list[int] = []
    for v in audit.cables:  # rank order: worst first
        if len(failed) == num_faults:
            break
        net.disable_cable(v.cable)
        if not _switch_graph_connected(net):
            net.enable_cable(v.cable)
            continue
        failed.append(v.cable)
    if len(failed) < num_faults:
        for cable in failed:
            net.enable_cable(cable)
        raise TopologyError(
            f"could only fail {len(failed)} of {num_faults} cables while "
            "keeping the switch graph connected"
        )
    return failed


def _worst_surviving_cable(net, audit: "VulnerabilityReport") -> int | None:
    """Highest-ranked enabled cable whose loss keeps the graph connected."""
    for v in audit.cables:
        if not net.link(v.cable).enabled:
            continue
        net.disable_cable(v.cable)
        connected = _switch_graph_connected(net)
        net.enable_cable(v.cable)
        if connected:
            return v.cable
    return None


def run_resilience(
    combo_keys: Sequence[str] | None = None,
    levels: Sequence[float] = DEFAULT_LEVELS,
    scale: int = 2,
    seed: int = 0,
    num_nodes: int | None = None,
    sim_mode: str = "static",
    msg_bytes: float = 1.0 * MIB,
    midrun_failure: bool = True,
    failure_mode: str = "random",
) -> ResilienceResult:
    """Sweep fault levels across combinations; returns all cells.

    Each cell builds its plane fresh (never through the fabric cache —
    the sweep mutates topologies), injects ``round(level x paper
    count)`` cable faults keep-connected, routes with the combination's
    engine, and times an all-to-all over ``num_nodes`` nodes.  With
    ``midrun_failure`` one extra cable dies before the all-to-all's
    second phase: the SM re-sweep must recover every pair (the
    ``resweep_unreachable`` column stays 0 on a connected fabric) and
    the stale paths are rerouted live.

    ``failure_mode`` picks the cables: ``"random"`` draws seeded
    keep-connected picks (the paper's as-built condition), while
    ``"adversarial"`` fails the worst cables by static what-if
    criticality rank (:func:`repro.analysis.whatif.audit_whatif`) — the
    certified worst case at the same failure count.  Either way the
    mid-run cable's criticality certificate is recorded on the cell and
    on its :class:`~repro.ib.subnet_manager.RerouteReport`.
    """
    if failure_mode not in FAILURE_MODES:
        raise ValueError(
            f"unknown failure_mode {failure_mode!r}; "
            f"expected one of {FAILURE_MODES}"
        )
    keys = list(combo_keys) if combo_keys else [c.key for c in THE_FIVE]
    result = ResilienceResult(
        scale=scale, seed=seed, levels=tuple(levels),
        failure_mode=failure_mode,
    )
    for key in keys:
        combo = get_combination(key)
        base_time: float | None = None
        for level in levels:
            net = _build_plane(combo.topology, scale)
            paper_faults = paper_fault_count(combo.topology, net)
            faults = round(level * paper_faults)
            if faults:
                if failure_mode == "adversarial":
                    _fail_worst_cables(net, combo, faults)
                else:
                    inject_cable_faults(
                        net, faults,
                        seed=derive_seed(seed, "resilience", key, str(level)),
                    )
            engine, sm_kwargs = make_engine(combo)
            sm = OpenSM(net, **sm_kwargs)
            fabric = sm.run(engine)
            n = num_nodes or min(16, net.num_terminals)
            job = make_job(combo, fabric, n, seed=seed)
            program = job.alltoall(msg_bytes)

            timeline = FaultTimeline()
            midrun_cable: int | None = None
            midrun_crit: dict[str, Any] | None = None
            if midrun_failure and len(program.phases) > 1:
                # Audit the routed (possibly degraded) plane *before*
                # the run: the simulator mutates the net, and the event
                # choice must be reproducible either way.
                audit = audit_whatif(fabric)
                if failure_mode == "adversarial":
                    midrun_cable = _worst_surviving_cable(net, audit)
                else:
                    pick = FabricEvent(
                        "fail_cable", phase=1, cable=None,
                        seed=derive_seed(seed, "midrun", key, str(level)),
                    ).resolve_cable(net)  # deterministic dry run
                    midrun_cable = pick.id
                if midrun_cable is not None:
                    midrun_crit = audit.criticality_of(midrun_cable)
                    timeline = FaultTimeline((
                        FabricEvent(
                            "fail_cable", phase=1, cable=midrun_cable,
                        ),
                    ))

            def on_event(events, phase_index, fabric=fabric, job=job,
                         engine=engine, sm=sm):
                report = sm.resweep(fabric, engine, events=events)
                job.invalidate_paths()
                return report

            def reroute(msg, fabric=fabric):
                try:
                    return tuple(fabric.path(msg.src, msg.dst))
                except ReproError:
                    return None

            sim = FlowSimulator(
                net, mode=sim_mode, timeline=timeline,
                on_fabric_event=on_event, reroute=reroute,
            )
            res = sim.run(program)
            # Stamp the failed cable's static certificate on each
            # re-sweep report that handled it.
            for r in sim.reroute_reports:
                if midrun_crit is not None and any(
                    e.get("cable") == midrun_cable for e in r.events
                ):
                    r.cable_criticality = dict(midrun_crit)
            # Reuse the run's own SimResult for the utilisation readout
            # instead of simulating the program a second time.
            hot = sim.hottest_links(program, top=3, result=res)
            # Static verification of the end state: every pair must
            # still be reachable on the re-swept tables.
            lint = lint_fabric(fabric, rules={"FAB001"})
            unreachable = int(lint.stats.get("blackholed_pairs", 0))

            if base_time is None:
                base_time = res.total_time
            cell = ResilienceCell(
                combo_key=key,
                level=float(level),
                faults_injected=faults,
                paper_faults=paper_faults,
                num_nodes=n,
                time=res.total_time,
                slowdown=res.total_time / base_time if base_time > 0 else 1.0,
                unreachable_pairs=unreachable,
                events_applied=res.events_applied,
                messages_rerouted=res.messages_rerouted,
                paths_changed=sum(
                    r.paths_changed for r in sim.reroute_reports
                ),
                resweep_unreachable=sum(
                    r.num_unreachable for r in sim.reroute_reports
                ),
                reroutes=[r.to_dict() for r in sim.reroute_reports],
                hottest_links=[[int(l), float(u)] for l, u in hot],
                failure_mode=failure_mode,
                midrun_cable=midrun_cable,
                midrun_rank=(
                    midrun_crit["rank"] if midrun_crit else None
                ),
                midrun_of=midrun_crit["of"] if midrun_crit else None,
                midrun_affected_pairs=(
                    midrun_crit["affected_pairs"] if midrun_crit else None
                ),
            )
            result.cells.append(cell)
    return result
