"""Resilience sweep: the five combinations under scaled cable-fault levels.

The paper never ran on a pristine machine — 15 of the HyperX plane's
AOCs and 197 of the Fat-Tree's links were missing (§2.3), so every
routing had to route *around* dead cables from day one.  This sweep
makes that condition a measured axis: for each combination it injects a
multiple of the paper's missing-cable count (level 0.0 = pristine,
1.0 = as-built, 2.0 = twice as degraded), routes the degraded plane,
runs an all-to-all, and — to exercise the recovery path — fails one
more cable mid-run and lets the SM re-sweep.  Reported per cell: run
time, slowdown versus pristine, reroute counters, and the statically
verified unreachable-pair count (which must be zero while the switch
graph stays connected).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.linter import lint_fabric
from repro.core.errors import ReproError
from repro.core.rng import derive_seed
from repro.core.units import MIB
from repro.experiments.configs import (
    THE_FIVE,
    get_combination,
    make_engine,
    make_job,
)
from repro.ib.subnet_manager import OpenSM, resweep
from repro.sim.engine import FlowSimulator
from repro.topology.faults import FabricEvent, FaultTimeline, inject_cable_faults
from repro.topology.t2hx import paper_fault_count, t2hx_fattree, t2hx_hyperx

#: Fault levels as multiples of the paper's missing-cable count.
DEFAULT_LEVELS = (0.0, 1.0, 2.0)


@dataclass
class ResilienceCell:
    """One (combination, fault level) measurement."""

    combo_key: str
    level: float
    #: Cables disabled before routing (level x the paper's count).
    faults_injected: int
    #: The plane's paper-equivalent missing-cable count (level 1.0).
    paper_faults: int
    num_nodes: int
    time: float
    #: time / the same combination's first-level (usually 0.0) time.
    slowdown: float
    #: Statically verified unreachable terminal pairs (FAB001).
    unreachable_pairs: int
    #: Mid-run recovery accounting (zero when midrun_failure is off).
    events_applied: int = 0
    messages_rerouted: int = 0
    paths_changed: int = 0
    resweep_unreachable: int = 0
    reroutes: list[dict[str, Any]] = field(default_factory=list)
    #: Top utilised links of the (possibly degraded) run, hottest first,
    #: as ``[link_id, utilisation]`` pairs.
    hottest_links: list[list[float]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "combo_key": self.combo_key,
            "level": self.level,
            "faults_injected": self.faults_injected,
            "paper_faults": self.paper_faults,
            "num_nodes": self.num_nodes,
            "time": self.time,
            "slowdown": self.slowdown,
            "unreachable_pairs": self.unreachable_pairs,
            "events_applied": self.events_applied,
            "messages_rerouted": self.messages_rerouted,
            "paths_changed": self.paths_changed,
            "resweep_unreachable": self.resweep_unreachable,
            "reroutes": self.reroutes,
            "hottest_links": self.hottest_links,
        }


@dataclass
class ResilienceResult:
    """The full sweep: cells ordered by (combination, level)."""

    scale: int
    seed: int
    levels: tuple[float, ...]
    cells: list[ResilienceCell] = field(default_factory=list)

    @property
    def total_unreachable(self) -> int:
        return sum(c.unreachable_pairs + c.resweep_unreachable
                   for c in self.cells)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scale": self.scale,
            "seed": self.seed,
            "levels": list(self.levels),
            "total_unreachable": self.total_unreachable,
            "cells": [c.to_dict() for c in self.cells],
        }


def _build_plane(topology: str, scale: int):
    if topology == "hyperx":
        return t2hx_hyperx(with_faults=False, scale=scale)
    return t2hx_fattree(with_faults=False, scale=scale)


def run_resilience(
    combo_keys: Sequence[str] | None = None,
    levels: Sequence[float] = DEFAULT_LEVELS,
    scale: int = 2,
    seed: int = 0,
    num_nodes: int | None = None,
    sim_mode: str = "static",
    msg_bytes: float = 1.0 * MIB,
    midrun_failure: bool = True,
) -> ResilienceResult:
    """Sweep fault levels across combinations; returns all cells.

    Each cell builds its plane fresh (never through the fabric cache —
    the sweep mutates topologies), injects ``round(level x paper
    count)`` cable faults keep-connected, routes with the combination's
    engine, and times an all-to-all over ``num_nodes`` nodes.  With
    ``midrun_failure`` one extra cable dies before the all-to-all's
    second phase: the SM re-sweep must recover every pair (the
    ``resweep_unreachable`` column stays 0 on a connected fabric) and
    the stale paths are rerouted live.
    """
    keys = list(combo_keys) if combo_keys else [c.key for c in THE_FIVE]
    result = ResilienceResult(scale=scale, seed=seed, levels=tuple(levels))
    for key in keys:
        combo = get_combination(key)
        base_time: float | None = None
        for level in levels:
            net = _build_plane(combo.topology, scale)
            paper_faults = paper_fault_count(combo.topology, net)
            faults = round(level * paper_faults)
            if faults:
                inject_cable_faults(
                    net, faults,
                    seed=derive_seed(seed, "resilience", key, str(level)),
                )
            engine, sm_kwargs = make_engine(combo)
            sm = OpenSM(net, **sm_kwargs)
            fabric = sm.run(engine)
            n = num_nodes or min(16, net.num_terminals)
            job = make_job(combo, fabric, n, seed=seed)
            program = job.alltoall(msg_bytes)

            timeline = FaultTimeline()
            if midrun_failure and len(program.phases) > 1:
                timeline = FaultTimeline((
                    FabricEvent(
                        "fail_cable", phase=1, cable=None,
                        seed=derive_seed(seed, "midrun", key, str(level)),
                    ),
                ))

            def on_event(events, phase_index, fabric=fabric, job=job,
                         engine=engine, sm=sm):
                report = sm.resweep(fabric, engine, events=events)
                job.invalidate_paths()
                return report

            def reroute(msg, fabric=fabric):
                try:
                    return tuple(fabric.path(msg.src, msg.dst))
                except ReproError:
                    return None

            sim = FlowSimulator(
                net, mode=sim_mode, timeline=timeline,
                on_fabric_event=on_event, reroute=reroute,
            )
            res = sim.run(program)
            # Reuse the run's own SimResult for the utilisation readout
            # instead of simulating the program a second time.
            hot = sim.hottest_links(program, top=3, result=res)
            # Static verification of the end state: every pair must
            # still be reachable on the re-swept tables.
            lint = lint_fabric(fabric, rules={"FAB001"})
            unreachable = int(lint.stats.get("blackholed_pairs", 0))

            if base_time is None:
                base_time = res.total_time
            cell = ResilienceCell(
                combo_key=key,
                level=float(level),
                faults_injected=faults,
                paper_faults=paper_faults,
                num_nodes=n,
                time=res.total_time,
                slowdown=res.total_time / base_time if base_time > 0 else 1.0,
                unreachable_pairs=unreachable,
                events_applied=res.events_applied,
                messages_rerouted=res.messages_rerouted,
                paths_changed=sum(
                    r.paths_changed for r in sim.reroute_reports
                ),
                resweep_unreachable=sum(
                    r.num_unreachable for r in sim.reroute_reports
                ),
                reroutes=[r.to_dict() for r in sim.reroute_reports],
                hottest_links=[[int(l), float(u)] for l, u in hot],
            )
            result.cells.append(cell)
    return result
