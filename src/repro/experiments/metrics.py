"""Result statistics: relative gain and whisker summaries.

The paper follows Hoefler & Belli's reporting rules [28]: Figure 4
shows the *relative performance gain* of each configuration over the
"Fat-Tree / ftree / linear" baseline, Figures 5b-6 show whisker plots
(min, max, median, 25th/75th percentile over the 10 runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ConfigurationError


def relative_gain(
    baseline: float, value: float, higher_is_better: bool = False
) -> float:
    """Relative gain of ``value`` over ``baseline``.

    Positive = the evaluated configuration is better.  For lower-better
    metrics (latency, runtime) that is ``baseline/value - 1``; for
    higher-better metrics (flop/s, TEPS, bandwidth) ``value/baseline - 1``.
    A gain of +1.0 therefore always reads "twice as good", matching the
    -1.0 .. +1.0 colour scale of the paper's Figure 4.
    """
    if baseline <= 0 or value <= 0:
        raise ConfigurationError(
            f"gains need positive measurements, got base={baseline}, value={value}"
        )
    if higher_is_better:
        return value / baseline - 1.0
    return baseline / value - 1.0


@dataclass(frozen=True)
class WhiskerStats:
    """The five-number summary of the paper's whisker plots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    n: int

    @property
    def best(self) -> float:
        """The 'absolute best observed' value used by Figure 4 — for
        latency/runtime metrics that is the minimum."""
        return self.minimum


def whisker_stats(values: Sequence[float]) -> WhiskerStats:
    """Five-number summary of repeated measurements."""
    if not values:
        raise ConfigurationError("no measurements to summarise")
    arr = np.asarray(values, dtype=float)
    return WhiskerStats(
        minimum=float(arr.min()),
        q1=float(np.percentile(arr, 25)),
        median=float(np.median(arr)),
        q3=float(np.percentile(arr, 75)),
        maximum=float(arr.max()),
        n=len(arr),
    )
