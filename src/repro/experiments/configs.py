"""The five topology/routing/placement combinations (paper §4.4.3).

1. Fat-Tree with ftree routing and linear placement  (the baseline),
2. Fat-Tree with SSSP routing and clustered placement,
3. HyperX with DFSSSP routing and linear placement,
4. HyperX with DFSSSP routing and random placement,
5. HyperX with PARX routing and clustered placement.

:func:`build_fabric` constructs (and caches) the routed plane for a
combination; PARX fabrics are rebuilt per workload when a communication
profile is supplied — exactly the paper's "re-route the fabric prior to
the job start" flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.errors import ConfigurationError
from repro.core.rng import derive_seed
from repro.ib.fabric import Fabric
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.mpi.pml import BfoPml, Ob1Pml, ParxBfoPml, Pml
from repro.placement import placement
from repro.routing.dfsssp import DfssspRouting
from repro.routing.ftree import FtreeRouting
from repro.routing.parx import ParxRouting
from repro.routing.sssp import SsspRouting
from repro.topology.network import Network
from repro.topology.t2hx import t2hx_fattree, t2hx_hyperx


@dataclass(frozen=True)
class Combination:
    """One evaluated system configuration."""

    key: str
    label: str
    topology: str  # "fattree" | "hyperx"
    routing: str   # "ftree" | "sssp" | "dfsssp" | "parx"
    placement: str  # "linear" | "clustered" | "random"

    @property
    def uses_parx(self) -> bool:
        return self.routing == "parx"


THE_FIVE: tuple[Combination, ...] = (
    Combination("ft-ftree-linear", "Fat-Tree / ftree / linear",
                "fattree", "ftree", "linear"),
    Combination("ft-sssp-clustered", "Fat-Tree / SSSP / clustered",
                "fattree", "sssp", "clustered"),
    Combination("hx-dfsssp-linear", "HyperX / DFSSSP / linear",
                "hyperx", "dfsssp", "linear"),
    Combination("hx-dfsssp-random", "HyperX / DFSSSP / random",
                "hyperx", "dfsssp", "random"),
    Combination("hx-parx-clustered", "HyperX / PARX / clustered",
                "hyperx", "parx", "clustered"),
)

#: The reference all relative gains are computed against (paper §5.1).
BASELINE = THE_FIVE[0]


def get_combination(key: str) -> Combination:
    """Look up one of the five combinations by its short key."""
    for c in THE_FIVE:
        if c.key == key:
            return c
    raise ConfigurationError(
        f"unknown combination {key!r}; available: {[c.key for c in THE_FIVE]}"
    )


# --- plane / fabric construction ---------------------------------------------
_fabric_cache: dict[tuple, tuple[Network, Fabric]] = {}


def build_fabric(
    combo: Combination,
    scale: int = 1,
    with_faults: bool = True,
    seed: int = 0,
    demands: Mapping[int, Mapping[int, int]] | None = None,
) -> tuple[Network, Fabric]:
    """Build (or fetch from cache) the routed plane of a combination.

    Fabrics without workload-specific state are cached per
    (combination, scale, faults, seed).  A PARX fabric routed against a
    communication profile (``demands``) is never cached — each profile
    produces different tables.
    """
    cache_key = (combo.key, scale, with_faults, seed)
    if demands is None and cache_key in _fabric_cache:
        return _fabric_cache[cache_key]

    if combo.topology == "fattree":
        net = t2hx_fattree(with_faults=with_faults, seed=seed, scale=scale)
    elif combo.topology == "hyperx":
        net = t2hx_hyperx(with_faults=with_faults, seed=seed, scale=scale)
    else:
        raise ConfigurationError(f"unknown topology {combo.topology!r}")

    if combo.routing == "ftree":
        fabric = OpenSM(net).run(FtreeRouting())
    elif combo.routing == "sssp":
        fabric = OpenSM(net).run(SsspRouting())
    elif combo.routing == "dfsssp":
        fabric = OpenSM(net).run(DfssspRouting())
    elif combo.routing == "parx":
        sm = OpenSM(net, lmc=2, lid_policy="quadrant")
        fabric = sm.run(ParxRouting(demands))
    else:
        raise ConfigurationError(f"unknown routing {combo.routing!r}")

    if demands is None:
        _fabric_cache[cache_key] = (net, fabric)
    return net, fabric


def clear_fabric_cache() -> None:
    """Drop cached fabrics (tests that mutate networks need this)."""
    _fabric_cache.clear()


def make_pml(combo: Combination) -> Pml:
    """The messaging layer a combination runs with.

    PARX requires the modified bfo (Table 1 selection); every other
    combination uses Open MPI's default ob1.  Plain (non-PARX) bfo is
    available via :class:`~repro.mpi.pml.BfoPml` for ablations.
    """
    if combo.uses_parx:
        return ParxBfoPml()
    return Ob1Pml()


def make_bfo_pml() -> Pml:
    """Plain round-robin bfo, for the ob1-vs-bfo overhead ablation."""
    return BfoPml()


def make_job(
    combo: Combination,
    fabric: Fabric,
    num_nodes: int,
    seed: int = 0,
    pool: list[int] | None = None,
) -> Job:
    """Place a job according to the combination's allocation policy."""
    nodes = placement(
        combo.placement,
        pool if pool is not None else fabric.net.terminals,
        num_nodes,
        seed=derive_seed(seed, "placement", combo.key),
    )
    return Job(fabric, nodes, pml=make_pml(combo))
