"""The five topology/routing/placement combinations (paper §4.4.3).

1. Fat-Tree with ftree routing and linear placement  (the baseline),
2. Fat-Tree with SSSP routing and clustered placement,
3. HyperX with DFSSSP routing and linear placement,
4. HyperX with DFSSSP routing and random placement,
5. HyperX with PARX routing and clustered placement.

:func:`build_fabric` constructs (and caches) the routed plane for a
combination; PARX fabrics are rebuilt per workload when a communication
profile is supplied — exactly the paper's "re-route the fabric prior to
the job start" flow.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.core.errors import ConfigurationError
from repro.core.rng import derive_seed
from repro.ib.fabric import Fabric
from repro.ib.subnet_manager import OpenSM
from repro.mpi.job import Job
from repro.mpi.pml import BfoPml, Ob1Pml, ParxBfoPml, Pml
from repro.placement import placement
from repro.routing import create_engine, engine_names, engine_spec
from repro.topology.network import Network
from repro.topology.t2hx import t2hx_fattree, t2hx_hyperx


@dataclass(frozen=True)
class Combination:
    """One evaluated system configuration."""

    key: str
    label: str
    topology: str  # "fattree" | "hyperx"
    routing: str   # any registered engine name (repro.routing.registry)
    placement: str  # "linear" | "clustered" | "random"

    @property
    def uses_parx(self) -> bool:
        """Whether this cell runs the demand-driven PARX flow.

        Registry-backed: true for every engine that declares
        ``needs_demands`` (parx, parx-nd), which is what the re-route-
        per-job fabric flow and the modified-bfo PML actually key on.
        """
        return engine_spec(self.routing).needs_demands


THE_FIVE: tuple[Combination, ...] = (
    Combination("ft-ftree-linear", "Fat-Tree / ftree / linear",
                "fattree", "ftree", "linear"),
    Combination("ft-sssp-clustered", "Fat-Tree / SSSP / clustered",
                "fattree", "sssp", "clustered"),
    Combination("hx-dfsssp-linear", "HyperX / DFSSSP / linear",
                "hyperx", "dfsssp", "linear"),
    Combination("hx-dfsssp-random", "HyperX / DFSSSP / random",
                "hyperx", "dfsssp", "random"),
    Combination("hx-parx-clustered", "HyperX / PARX / clustered",
                "hyperx", "parx", "clustered"),
)

#: The reference all relative gains are computed against (paper §5.1).
BASELINE = THE_FIVE[0]

_TOPOLOGY_PREFIX = {"ft": "fattree", "hx": "hyperx"}
_PLACEMENTS = ("linear", "clustered", "random")


def get_combination(key: str) -> Combination:
    """Look up a combination by its short key.

    The paper's five combinations match by exact key.  Beyond those,
    any ``{ft|hx}-{engine}-{placement}`` key naming a registered routing
    engine is a valid campaign cell — e.g. ``hx-fthx-linear`` or
    ``hx-parx-nd-clustered`` (engine names may themselves contain
    hyphens; the placement is always the last token).  The key string
    doubles as the ledger-compatible cell id.
    """
    for c in THE_FIVE:
        if c.key == key:
            return c

    parts = key.split("-")
    prefix = parts[0] if parts else ""
    topology = _TOPOLOGY_PREFIX.get(prefix)
    placement_name = parts[-1] if len(parts) >= 3 else ""
    if topology is None or placement_name not in _PLACEMENTS:
        raise ConfigurationError(
            f"unknown combination {key!r}; expected one of "
            f"{[c.key for c in THE_FIVE]} or a "
            f"'{{ft|hx}}-{{engine}}-{{placement}}' key with engine in "
            f"{engine_names()} and placement in {list(_PLACEMENTS)}"
        )
    routing = "-".join(parts[1:-1])
    spec = engine_spec(routing)  # unknown engine -> ConfigurationError
    if spec.topologies and topology not in spec.topologies:
        raise ConfigurationError(
            f"engine {routing!r} does not support topology {topology!r} "
            f"(supported: {sorted(spec.topologies)})"
        )
    label = f"{'Fat-Tree' if topology == 'fattree' else 'HyperX'} / " \
            f"{routing} / {placement_name}"
    return Combination(key, label, topology, routing, placement_name)


# --- plane / fabric construction ---------------------------------------------
_fabric_cache: dict[str, Fabric] = {}

#: Fabrics certified by the preflight lint gate this process, by content
#: cache key.  Content keys survive garbage collection (unlike the old
#: ``id(fabric)`` keying, where a recycled id could skip the gate) and
#: are what the campaign ledger persists per cell.
_preflighted_keys: set[str] = set()

#: Directory of the persistent on-disk fabric cache, or ``None`` when
#: disabled.  Campaign workers enable it so only the first worker to
#: touch a configuration pays the OpenSM + routing-engine cost.
_fabric_cache_dir: Path | None = None

#: Build/lookup counters since the last reset, surfaced per cell in the
#: campaign ledger ("warm cache" is verified by ``routed == 0``;
#: ``mmap_attaches`` distinguishes zero-copy attaches to the shared
#: cache file from cold JSON deserialisation).
_fabric_cache_stats = {
    "memory_hits": 0,    # served from this process's in-memory cache
    "disk_hits": 0,      # deserialized from the on-disk cache
    "disk_stores": 0,    # routed here and written to the on-disk cache
    "routed": 0,         # OpenSM + routing engine actually ran
    "mmap_attaches": 0,  # disk hits that memory-mapped the dense rows
}

#: Whether disk-cache loads memory-map the dense forwarding matrix
#: (copy-on-write) instead of deserialising it.  On by default; campaign
#: workers set it explicitly via their initializer.
_fabric_cache_mmap = True


def fabric_cache_key(
    combo: Combination,
    scale: float = 1,
    with_faults: bool = True,
    seed: int = 0,
    demands: Mapping[int, Mapping[int, int]] | None = None,
) -> str:
    """Content key of a routed plane: combination/scale/faults/seed.

    Demand-routed PARX planes append a digest of the demand file, so two
    fabrics share a key exactly when they were built from identical
    inputs — the property both the preflight gate and the on-disk cache
    rely on.
    """
    key = f"{combo.key}/s{scale}/f{int(with_faults)}/seed{seed}"
    if demands is not None:
        blob = json.dumps(
            {
                str(src): {str(dst): int(v) for dst, v in row.items()}
                for src, row in demands.items()
            },
            sort_keys=True,
        )
        key += f"/d{hashlib.sha256(blob.encode()).hexdigest()[:16]}"
    return key


def get_fabric_cache_dir() -> Path | None:
    """Current on-disk fabric cache directory (``None`` when disabled)."""
    return _fabric_cache_dir


def set_fabric_cache_dir(path: str | Path | None) -> None:
    """Enable (or, with ``None``, disable) the on-disk fabric cache."""
    global _fabric_cache_dir
    if path is None:
        _fabric_cache_dir = None
        return
    _fabric_cache_dir = Path(path)
    _fabric_cache_dir.mkdir(parents=True, exist_ok=True)


def set_fabric_cache_mmap(enabled: bool) -> None:
    """Toggle memory-mapped disk-cache loads (see ``_fabric_cache_mmap``)."""
    global _fabric_cache_mmap
    _fabric_cache_mmap = bool(enabled)


def get_fabric_cache_mmap() -> bool:
    """Whether disk-cache loads currently memory-map the dense rows."""
    return _fabric_cache_mmap


def fabric_cache_stats() -> dict[str, int]:
    """Snapshot of the build/lookup counters (copies, safe to keep)."""
    return dict(_fabric_cache_stats)


def reset_fabric_cache_stats() -> None:
    """Zero the counters (campaign workers do this per cell)."""
    for k in _fabric_cache_stats:
        _fabric_cache_stats[k] = 0


def _disk_cache_path(cache_key: str) -> Path | None:
    if _fabric_cache_dir is None:
        return None
    digest = hashlib.sha256(cache_key.encode()).hexdigest()[:32]
    return _fabric_cache_dir / f"fabric-{digest}.json"


def build_fabric(
    combo: Combination,
    scale: float = 1,
    with_faults: bool = True,
    seed: int = 0,
    demands: Mapping[int, Mapping[int, int]] | None = None,
) -> Fabric:
    """Build (or fetch from cache) the routed plane of a combination.

    Returns the :class:`~repro.ib.fabric.Fabric`; the underlying
    topology is reachable as ``fabric.net``.  Fabrics without
    workload-specific state are cached in-process per content key
    (combination/scale/faults/seed) and, when
    :func:`set_fabric_cache_dir` enabled it, persisted to disk so other
    processes skip OpenSM + routing entirely.  A PARX fabric routed
    against a communication profile (``demands``) is never cached —
    each profile produces different tables.
    """
    cache_key = fabric_cache_key(
        combo, scale=scale, with_faults=with_faults, seed=seed,
        demands=demands,
    )
    cacheable = demands is None
    if cacheable and cache_key in _fabric_cache:
        _fabric_cache_stats["memory_hits"] += 1
        return _fabric_cache[cache_key]

    if combo.topology == "fattree":
        net = t2hx_fattree(with_faults=with_faults, seed=seed, scale=scale)
    elif combo.topology == "hyperx":
        net = t2hx_hyperx(with_faults=with_faults, seed=seed, scale=scale)
    else:
        raise ConfigurationError(f"unknown topology {combo.topology!r}")

    disk_path = _disk_cache_path(cache_key) if cacheable else None
    if disk_path is not None and disk_path.exists():
        try:
            fabric = Fabric.load(
                net,
                disk_path,
                mmap_mode="c" if _fabric_cache_mmap else None,
            )
        except Exception:
            # Stale version / truncated file / foreign plane: rebuild.
            disk_path.unlink(missing_ok=True)
            Fabric.rows_sidecar(disk_path).unlink(missing_ok=True)
        else:
            _fabric_cache_stats["disk_hits"] += 1
            if fabric.tables.is_mmap_backed:
                _fabric_cache_stats["mmap_attaches"] += 1
            _fabric_cache[cache_key] = fabric
            return fabric

    engine, sm_kwargs = make_engine(combo, demands)
    fabric = OpenSM(net, **sm_kwargs).run(engine)
    fabric.cache_key = cache_key
    _fabric_cache_stats["routed"] += 1

    if cacheable:
        _fabric_cache[cache_key] = fabric
        if disk_path is not None:
            fabric.save(disk_path, arrays=True)
            _fabric_cache_stats["disk_stores"] += 1
    return fabric


def make_engine(
    combo: Combination,
    demands: Mapping[int, Mapping[int, int]] | None = None,
):
    """The routing engine a combination uses, plus its OpenSM settings.

    Returns ``(engine, sm_kwargs)``; the same pairing
    :func:`build_fabric` routes with, exposed so re-sweeps after fabric
    events (:func:`repro.ib.subnet_manager.resweep`) recompute tables
    with the engine that produced them.  Construction goes through the
    engine registry (:func:`repro.routing.create_engine`), so any
    registered engine name is a valid :attr:`Combination.routing`; the
    returned ``sm_kwargs`` are the engine's declared
    :attr:`~repro.routing.base.RoutingEngine.sm_defaults`.
    """
    engine = create_engine(combo.routing, demands=demands)
    return engine, dict(engine.sm_defaults)


def clear_fabric_cache() -> None:
    """Drop cached fabrics and their preflight certifications (tests
    that mutate networks need this)."""
    _fabric_cache.clear()
    _preflighted_keys.clear()


def was_preflighted(cache_key: str | None) -> bool:
    """Whether the preflight lint already certified this content key."""
    return cache_key is not None and cache_key in _preflighted_keys


def mark_preflighted(cache_key: str | None) -> None:
    """Record a preflight certification for a content key."""
    if cache_key is not None:
        _preflighted_keys.add(cache_key)


def make_pml(combo: Combination) -> Pml:
    """The messaging layer a combination runs with.

    PARX requires the modified bfo (Table 1 selection); every other
    combination uses Open MPI's default ob1.  Plain (non-PARX) bfo is
    available via :class:`~repro.mpi.pml.BfoPml` for ablations.
    """
    if combo.uses_parx:
        return ParxBfoPml()
    return Ob1Pml()


def make_bfo_pml() -> Pml:
    """Plain round-robin bfo, for the ob1-vs-bfo overhead ablation."""
    return BfoPml()


def make_job(
    combo: Combination,
    fabric: Fabric,
    num_nodes: int,
    seed: int = 0,
    pool: list[int] | None = None,
) -> Job:
    """Place a job according to the combination's allocation policy."""
    nodes = placement(
        combo.placement,
        pool if pool is not None else fabric.net.terminals,
        num_nodes,
        seed=derive_seed(seed, "placement", combo.key),
    )
    return Job(fabric, nodes, pml=make_pml(combo))
