"""Experiment harness: the paper's five configurations and both
evaluation modes (capability scaling runs and the 3-hour capacity mix).

Sweeps over many (combination, benchmark, scale) cells are the job of
:mod:`repro.campaign`, which consumes the :class:`RunSpec` cells defined
here.
"""

from repro.experiments.configs import (
    BASELINE,
    THE_FIVE,
    Combination,
    build_fabric,
    clear_fabric_cache,
    fabric_cache_key,
    fabric_cache_stats,
    get_combination,
    make_engine,
    make_job,
    make_pml,
    reset_fabric_cache_stats,
    set_fabric_cache_dir,
)
from repro.experiments.resilience import (
    ResilienceCell,
    ResilienceResult,
    run_resilience,
)
from repro.experiments.metrics import (
    WhiskerStats,
    relative_gain,
    whisker_stats,
)
from repro.experiments.runner import (
    CapabilityResult,
    RunSpec,
    preflight_fabric,
    run_capability,
)
from repro.experiments.capacity import (
    CAPACITY_APPS,
    CapacityResult,
    run_capacity,
)
from repro.experiments import reporting

__all__ = [
    "Combination",
    "THE_FIVE",
    "BASELINE",
    "get_combination",
    "build_fabric",
    "clear_fabric_cache",
    "fabric_cache_key",
    "fabric_cache_stats",
    "reset_fabric_cache_stats",
    "set_fabric_cache_dir",
    "make_engine",
    "make_job",
    "make_pml",
    "ResilienceCell",
    "ResilienceResult",
    "run_resilience",
    "relative_gain",
    "whisker_stats",
    "WhiskerStats",
    "RunSpec",
    "CapabilityResult",
    "preflight_fabric",
    "run_capability",
    "CAPACITY_APPS",
    "CapacityResult",
    "run_capacity",
    "reporting",
]
