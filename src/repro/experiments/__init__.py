"""Experiment harness: the paper's five configurations and both
evaluation modes (capability scaling runs and the 3-hour capacity mix).
"""

from repro.experiments.configs import (
    Combination,
    THE_FIVE,
    BASELINE,
    get_combination,
    build_fabric,
    make_job,
    make_pml,
)
from repro.experiments.metrics import (
    relative_gain,
    whisker_stats,
    WhiskerStats,
)
from repro.experiments.runner import CapabilityResult, run_capability
from repro.experiments.capacity import (
    CAPACITY_APPS,
    CapacityResult,
    run_capacity,
)
from repro.experiments import reporting

__all__ = [
    "Combination",
    "THE_FIVE",
    "BASELINE",
    "get_combination",
    "build_fabric",
    "make_job",
    "make_pml",
    "relative_gain",
    "whisker_stats",
    "WhiskerStats",
    "CapabilityResult",
    "run_capability",
    "CAPACITY_APPS",
    "CapacityResult",
    "run_capacity",
    "reporting",
]
