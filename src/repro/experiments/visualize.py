"""ASCII visualisation: lattices, heatmaps and utilisation overlays.

Terminal-friendly renderings of the structures the paper draws:

* :func:`render_heatmap` — Figure 1-style bandwidth matrices,
* :func:`render_hyperx_utilization` — the 2-D lattice with per-switch
  congestion (what the paper's port-error-counter sweeps visualised),
* :func:`render_whiskers` — the Figure 5b/6 whisker plots as rows.

Everything returns plain strings, so reports stay grep-able and the
library needs no plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.errors import ConfigurationError
from repro.experiments.metrics import WhiskerStats
from repro.topology.hyperx import hyperx_shape_of
from repro.topology.network import Network

#: Ten-step intensity ramp (dark = high), like the paper's colour scale.
RAMP = " .:-=+*#%@"


def _ramp(v: float, vmax: float) -> str:
    if vmax <= 0:
        return RAMP[0]
    idx = int(min(1.0, max(0.0, v / vmax)) * (len(RAMP) - 1))
    return RAMP[idx]


def render_heatmap(
    matrix: np.ndarray,
    vmax: float | None = None,
    title: str = "",
) -> str:
    """A matrix as a character heatmap (Figure 1's panels)."""
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ConfigurationError("heatmaps need a 2-D matrix")
    peak = float(m.max()) if vmax is None else vmax
    rows = ["".join(_ramp(v, peak) for v in row) for row in m]
    header = [title] if title else []
    return "\n".join(header + rows)


def render_hyperx_utilization(
    net: Network,
    link_util: Mapping[int, float],
    title: str = "",
) -> str:
    """The 2-D lattice with each switch shaded by the utilisation of its
    hottest attached switch-to-switch link."""
    shape = hyperx_shape_of(net)
    if len(shape) != 2:
        raise ConfigurationError("lattice rendering supports 2-D HyperX only")
    sx, sy = shape
    per_switch: dict[tuple[int, int], float] = {}
    for sw in net.switches:
        coord = tuple(net.node_meta(sw)["coord"])
        worst = 0.0
        for link in net.out_links(sw):
            if net.is_switch(link.dst):
                worst = max(worst, link_util.get(link.id, 0.0))
        per_switch[coord] = worst
    rows = []
    for y in range(sy):
        rows.append(
            " ".join(_ramp(per_switch.get((x, y), 0.0), 1.0) for x in range(sx))
        )
    legend = f"('{RAMP[0]}' idle ... '{RAMP[-1]}' saturated)"
    header = [title] if title else []
    return "\n".join(header + rows + [legend])


def render_whiskers(
    stats: Mapping[str, WhiskerStats],
    width: int = 40,
    title: str = "",
) -> str:
    """Whisker plots as ASCII rows: ``|--[==M==]--|`` per entry.

    ``|`` min/max, ``[ ]`` quartiles, ``M`` the median — the same five
    numbers the paper's Figures 5b-6 draw.
    """
    if not stats:
        raise ConfigurationError("nothing to render")
    lo = min(s.minimum for s in stats.values())
    hi = max(s.maximum for s in stats.values())
    span = hi - lo or 1.0

    def col(v: float) -> int:
        return int((v - lo) / span * (width - 1))

    label_w = max(len(k) for k in stats)
    lines = [title] if title else []
    for name, s in stats.items():
        row = [" "] * width
        for x in range(col(s.minimum), col(s.maximum) + 1):
            row[x] = "-"
        row[col(s.minimum)] = "|"
        row[col(s.maximum)] = "|"
        for x in range(col(s.q1), col(s.q3) + 1):
            row[x] = "="
        row[col(s.q1)] = "["
        row[col(s.q3)] = "]"
        row[col(s.median)] = "M"
        lines.append(f"{name:>{label_w}} {''.join(row)}")
    lines.append(f"{'':>{label_w}} {lo:.3g}{'':>{width - 10}}{hi:.3g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend: scaling curves in a commit message."""
    if not values:
        return ""
    peak = max(values) or 1.0
    return "".join(_ramp(v, peak) for v in values)
