"""Plain-text renderers for the paper's tables and figure data.

Benchmarks print these so the regenerated rows/series can be compared
against the published figures side by side (EXPERIMENTS.md records the
comparison).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.units import MIB, format_bytes, format_rate, format_time


def gain_grid(
    title: str,
    row_labels: Sequence[float],
    col_labels: Sequence[int],
    gains: Mapping[tuple[float, int], float],
    row_name: str = "msg size",
    col_name: str = "nodes",
) -> str:
    """Render a Figure 4-style grid: rows = message sizes, columns =
    node counts, cells = relative gain over the baseline (+/-)."""
    width = 8
    lines = [title]
    header = f"{row_name:>12} |" + "".join(
        f"{c:>{width}}" for c in col_labels
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in row_labels:
        cells = []
        for c in col_labels:
            g = gains.get((r, c))
            cells.append(f"{g:+{width - 1}.2f} " if g is not None else " " * width)
        label = format_bytes(r) if r >= 1 else f"{r:g}"
        lines.append(f"{label:>12} |" + "".join(cells))
    return "\n".join(lines)


def series_table(
    title: str,
    col_labels: Sequence[int],
    rows: Mapping[str, Sequence[float]],
    formatter=format_time,
    col_name: str = "nodes",
) -> str:
    """Render a Figure 5/6-style series: one row per configuration."""
    width = 12
    lines = [title]
    header = f"{col_name:>28} |" + "".join(f"{c:>{width}}" for c in col_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows.items():
        cells = "".join(
            f"{formatter(v):>{width}}" if v is not None else " " * width
            for v in values
        )
        lines.append(f"{label:>28} |" + cells)
    return "\n".join(lines)


def capacity_table(
    title: str,
    runs_by_combo: Mapping[str, Mapping[str, int]],
    app_order: Sequence[str],
) -> str:
    """Render Figure 7: completed runs per app per combination."""
    width = 7
    lines = [title]
    header = f"{'combination':>28} |" + "".join(
        f"{a:>{width}}" for a in app_order
    ) + f"{'total':>{width + 1}}"
    lines.append(header)
    lines.append("-" * len(header))
    for combo, runs in runs_by_combo.items():
        cells = "".join(f"{runs.get(a, 0):>{width}}" for a in app_order)
        total = sum(runs.values())
        lines.append(f"{combo:>28} |" + cells + f"{total:>{width + 1}}")
    return "\n".join(lines)


def heatmap_summary(title: str, avg_bandwidth: float) -> str:
    """One Figure 1 panel reduced to its quoted average bandwidth."""
    return f"{title}: average node-pair bandwidth {format_rate(avg_bandwidth)}"


def resilience_table(result) -> str:
    """Render a :class:`~repro.experiments.resilience.ResilienceResult`:
    one row per (combination, fault level) with the reroute counters."""
    mode = getattr(result, "failure_mode", "random")
    lines = [
        f"resilience sweep (scale {result.scale}, seed {result.seed}, "
        f"levels {list(result.levels)}, {mode} failures): "
        f"{result.total_unreachable} unreachable pair(s)"
    ]
    header = (
        f"{'combination':>22} {'level':>6} {'faults':>7} | {'time':>10} "
        f"{'slowdn':>7} {'events':>7} {'rerouted':>9} {'moved':>7} "
        f"{'unreach':>8} {'midrun rank':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for c in result.cells:
        rank = (
            f"{c.midrun_rank}/{c.midrun_of}"
            if getattr(c, "midrun_rank", None) is not None
            else "-"
        )
        lines.append(
            f"{c.combo_key:>22} {c.level:>6.2f} {c.faults_injected:>7} | "
            f"{format_time(c.time):>10} {c.slowdown:>7.3f} "
            f"{c.events_applied:>7} {c.messages_rerouted:>9} "
            f"{c.paths_changed:>7} "
            f"{c.unreachable_pairs + c.resweep_unreachable:>8} "
            f"{rank:>12}"
        )
    return "\n".join(lines)


def fault_sweep_table(results, msg_bytes: float = MIB) -> str:
    """Pivot resilience sweeps into throughput vs. failed cables.

    ``results`` is one or more
    :class:`~repro.experiments.resilience.ResilienceResult` (typically
    one per failure mode); rows are combinations, columns are
    ``mode@faults`` pairs (the injected-cable count at each level), and
    cells are the sustained all-to-all throughput — the aggregate
    ``n*(n-1)*msg_bytes`` payload over the measured run time — so
    engines racing at the same scale compare directly.
    """
    if not isinstance(results, (list, tuple)):
        results = [results]
    cols: list[tuple[str, float, int]] = []   # (mode, level, faults)
    rows: dict[str, dict[tuple[str, float], float]] = {}
    for result in results:
        mode = getattr(result, "failure_mode", "random")
        for c in result.cells:
            col = (mode, c.level, c.faults_injected)
            if col not in cols:
                cols.append(col)
            payload = c.num_nodes * (c.num_nodes - 1) * msg_bytes
            rows.setdefault(c.combo_key, {})[(mode, c.level)] = (
                payload / c.time if c.time > 0 else 0.0
            )
    width = 14
    lines = ["all-to-all throughput vs. failed cables"]
    header = f"{'combination':>22} |" + "".join(
        f"{f'{mode[:3]}@{faults}':>{width}}" for mode, _, faults in cols
    )
    lines.append(header)
    lines.append("-" * len(header))
    for combo_key, by_col in rows.items():
        cells = "".join(
            f"{format_rate(v):>{width}}" if v is not None else " " * width
            for v in (
                by_col.get((mode, level)) for mode, level, _ in cols
            )
        )
        lines.append(f"{combo_key:>22} |" + cells)
    return "\n".join(lines)


def campaign_table(status) -> str:
    """Render a :class:`~repro.campaign.ledger.CampaignStatus`: one row
    per cell (state, attempts, duration, fabric-cache source, value) and
    a summary footer with the throughput and cache counters."""
    lines = [
        f"campaign {status.name!r}: "
        f"{status.completed}/{status.total_cells} completed, "
        f"{status.failed} failed, {status.pending} pending "
        f"({status.attempts} attempts)"
    ]
    header = (
        f"{'cell':>44} | {'status':>9} {'att':>3} {'time':>10} "
        f"{'fabric':>8} {'best':>12}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cell in status.cells:
        dur = cell.get("duration_s")
        fc = cell.get("fabric_cache") or {}
        if fc.get("memory_hits"):
            source = "memory"
        elif fc.get("disk_hits"):
            source = "disk"
        elif fc.get("routed"):
            source = "routed"
        else:
            source = "-"
        best = cell.get("best")
        lines.append(
            f"{cell['cell_id']:>44} | {cell['status']:>9} "
            f"{cell.get('attempt') or '-':>3} "
            f"{format_time(dur) if dur is not None else '-':>10} "
            f"{source:>8} "
            f"{f'{best:.6g}' if best is not None else '-':>12}"
        )
        err = cell.get("error")
        if err:
            lines.append(f"{'':>44} | error: {err['type']}: {err['message']}")
    lines.append(
        f"cell time {format_time(status.cell_seconds)} "
        f"(wall {format_time(status.wall_seconds)}, "
        f"{status.cells_per_second:.2f} cells/s); "
        f"fabrics routed {status.fabric_routed}, memory hits "
        f"{status.fabric_memory_hits}, disk hits {status.fabric_disk_hits}"
    )
    return "\n".join(lines)
