"""Plain-text renderers for the paper's tables and figure data.

Benchmarks print these so the regenerated rows/series can be compared
against the published figures side by side (EXPERIMENTS.md records the
comparison).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.units import format_bytes, format_rate, format_time


def gain_grid(
    title: str,
    row_labels: Sequence[float],
    col_labels: Sequence[int],
    gains: Mapping[tuple[float, int], float],
    row_name: str = "msg size",
    col_name: str = "nodes",
) -> str:
    """Render a Figure 4-style grid: rows = message sizes, columns =
    node counts, cells = relative gain over the baseline (+/-)."""
    width = 8
    lines = [title]
    header = f"{row_name:>12} |" + "".join(
        f"{c:>{width}}" for c in col_labels
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in row_labels:
        cells = []
        for c in col_labels:
            g = gains.get((r, c))
            cells.append(f"{g:+{width - 1}.2f} " if g is not None else " " * width)
        label = format_bytes(r) if r >= 1 else f"{r:g}"
        lines.append(f"{label:>12} |" + "".join(cells))
    return "\n".join(lines)


def series_table(
    title: str,
    col_labels: Sequence[int],
    rows: Mapping[str, Sequence[float]],
    formatter=format_time,
    col_name: str = "nodes",
) -> str:
    """Render a Figure 5/6-style series: one row per configuration."""
    width = 12
    lines = [title]
    header = f"{col_name:>28} |" + "".join(f"{c:>{width}}" for c in col_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows.items():
        cells = "".join(
            f"{formatter(v):>{width}}" if v is not None else " " * width
            for v in values
        )
        lines.append(f"{label:>28} |" + cells)
    return "\n".join(lines)


def capacity_table(
    title: str,
    runs_by_combo: Mapping[str, Mapping[str, int]],
    app_order: Sequence[str],
) -> str:
    """Render Figure 7: completed runs per app per combination."""
    width = 7
    lines = [title]
    header = f"{'combination':>28} |" + "".join(
        f"{a:>{width}}" for a in app_order
    ) + f"{'total':>{width + 1}}"
    lines.append(header)
    lines.append("-" * len(header))
    for combo, runs in runs_by_combo.items():
        cells = "".join(f"{runs.get(a, 0):>{width}}" for a in app_order)
        total = sum(runs.values())
        lines.append(f"{combo:>28} |" + cells + f"{total:>{width + 1}}")
    return "\n".join(lines)


def heatmap_summary(title: str, avg_bandwidth: float) -> str:
    """One Figure 1 panel reduced to its quoted average bandwidth."""
    return f"{title}: average node-pair bandwidth {format_rate(avg_bandwidth)}"
