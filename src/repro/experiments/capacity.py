"""Capacity / system-throughput evaluation (paper §4.4.2 and Figure 7).

Fourteen applications run concurrently for three hours, each on a
dedicated allocation (32 or 56 nodes, 664 of 672 nodes busy); the
reported number is how many runs each application completes.  Jobs
interfere only through the network — which is exactly what the flow
model captures.

Simulating three wall-clock hours message-by-message is unnecessary:
every application repeats the same program, so its completion rate is
its single-run time *under the steady background load of the other
thirteen*.  The model:

1. run every app standalone on its allocation -> per-link average
   byte rates (its steady-state footprint) and solo runtime,
2. for each app, shrink link capacities by the other apps' summed
   footprints (floored at 5% — credit flow control never truly
   starves a flow) and re-simulate -> interfered runtime,
3. completed runs = floor(3 h / (interfered runtime + startup cost)).

This is the quantitative version of the paper's qualitative comparison
(their §5.3 explicitly recommends simulation for the quantitative
question).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError
from repro.core.rng import derive_seed
from repro.core.units import MIB
from repro.experiments.configs import Combination, build_fabric, make_pml
from repro.mpi.job import Job
from repro.mpi.profiler import merge_demands
from repro.placement import placement
from repro.sim.engine import FlowSimulator
from repro.sim.flows import Program
from repro.workloads.proxyapps import PROXY_APPS
from repro.workloads.x500 import X500_APPS

#: The fourteen concurrent applications of Figure 7 with their node
#: counts: the power-of-two-scaling codes (and MuPP) use 32 nodes, the
#: rest 56 — 9 x 56 + 5 x 32 = 664 nodes, 98.8% of the machine.
CAPACITY_APPS: tuple[tuple[str, int], ...] = (
    ("AMG", 56),
    ("CoMD", 56),
    ("FFVC", 32),
    ("GraD", 32),
    ("HPCG", 56),
    ("HPL", 56),
    ("MILC", 32),
    ("MiFE", 56),
    ("mVMC", 56),
    ("NTCh", 56),
    ("Qbox", 56),
    ("FFT", 32),
    ("MuPP", 32),
    ("EmDL", 56),
)

#: Experiment duration (3 hours) and per-run launch overhead (mpirun,
#: wire-up, I/O) in seconds.
WINDOW_SECONDS = 3 * 3600.0
STARTUP_SECONDS = 15.0


@dataclass(frozen=True)
class CapacityTuning:
    """Per-app capacity-run calibration.

    The capability experiments (Figure 6) size their inputs for 1-5 min
    runs at *varying* scale; the capacity mix re-tunes each app for its
    fixed 32/56-node allocation so that single-run durations land in
    the band the paper's Figure 7 counts imply (e.g. AMG ~140 s/run,
    MuPP ~53 s/run for the baseline).  ``iterations`` overrides the
    app's solver-iteration count; ``extra_overhead`` adds per-run pre-/
    post-processing the kernel metric excludes but wallclock pays
    (graph construction + validation for Graph500, input I/O, etc.).
    """

    iterations: int | None = None
    extra_overhead: float = 0.0


#: Calibration per capacity app (see :class:`CapacityTuning`).
CAPACITY_TUNING: dict[str, CapacityTuning] = {
    "AMG": CapacityTuning(iterations=18),
    "CoMD": CapacityTuning(iterations=25),
    "FFVC": CapacityTuning(iterations=45),
    "GraD": CapacityTuning(extra_overhead=30.0),  # construct + validate
    "HPCG": CapacityTuning(iterations=700),
    "HPL": CapacityTuning(),
    "MILC": CapacityTuning(iterations=45),
    "MiFE": CapacityTuning(iterations=65),
    "mVMC": CapacityTuning(iterations=50),
    "NTCh": CapacityTuning(extra_overhead=60.0),  # taxol integral I/O
    "Qbox": CapacityTuning(iterations=16),
    "FFT": CapacityTuning(iterations=25),
    "MuPP": CapacityTuning(extra_overhead=30.0),  # full IMB suite setup
    "EmDL": CapacityTuning(iterations=1500),
}

#: Interference floor: a link never drops below this capacity share.
MIN_CAPACITY_FRACTION = 0.05


@dataclass
class CapacityResult:
    """Completed-run counts of one combination (one Figure 7 panel)."""

    combo_key: str
    runs: dict[str, int] = field(default_factory=dict)
    solo_seconds: dict[str, float] = field(default_factory=dict)
    interfered_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_runs(self) -> int:
        return sum(self.runs.values())


def _app_single_run(
    name: str, job: Job, sim: FlowSimulator
) -> tuple[Program, float, int, float, int]:
    """One run of a capacity app: (one-comm-round program, compute gap,
    iteration count, per-run overhead, comm rounds per iteration).
    Total runtime = iters x (rounds x sim(program) + gap) + overhead."""
    tune = CAPACITY_TUNING.get(name, CapacityTuning())
    p = job.num_ranks
    if name in PROXY_APPS or name in X500_APPS:
        app = PROXY_APPS.get(name) or X500_APPS[name]
        program = job.materialize(app.rank_phases(p), label=name)
        iters = tune.iterations or app.iterations
        return (program, app.compute_time(p), iters, tune.extra_overhead,
                app.comm_rounds)
    if name == "MuPP":
        # A full IMB Multi-PingPong size sweep: pairs (i, i+P/2) ping-
        # pong 100 rounds per message size, 1 KiB .. 4 MiB.
        half = p // 2
        phases = []
        for exp in range(10, 23):  # 1 KiB .. 4 MiB
            size = float(2**exp)
            ping = [(i, i + half, size) for i in range(half)]
            pong = [(i + half, i, size) for i in range(half)]
            phases.extend([ping, pong] * 100)
        program = job.materialize(phases, label="mupp")
        return program, 0.0, tune.iterations or 1, tune.extra_overhead, 1
    if name == "EmDL":
        # Deep-learning emulation: 100 MiB ring allreduce + 0.1 s
        # compute per training step (paper footnote 12).
        program = job.allreduce(100 * MIB, algorithm="ring")
        return program, 0.1, tune.iterations or 120, tune.extra_overhead, 1
    raise ConfigurationError(f"unknown capacity app {name!r}")


def run_capacity(
    combo: Combination,
    scale: int = 1,
    seed: int = 0,
    apps: tuple[tuple[str, int], ...] = CAPACITY_APPS,
    window_seconds: float = WINDOW_SECONDS,
    sim_mode: str = "static",
) -> CapacityResult:
    """Figure 7 for one combination: runs completed per app in 3 hours."""
    fabric = build_fabric(combo, scale=scale, seed=seed)
    net = fabric.net
    pool = list(net.terminals)
    scale_nodes = max(4, len(pool) // 672)

    # Carve the machine into per-app allocations using the combination's
    # placement policy over the remaining pool.
    allocations: dict[str, list[int]] = {}
    jobs: dict[str, Job] = {}
    profiler_demands = []
    for i, (name, nodes_full) in enumerate(apps):
        n = max(2, nodes_full * len(pool) // 672)
        n -= n % 2  # MuPP and power-of-two codes want even counts
        alloc = placement(
            combo.placement, pool, n,
            seed=derive_seed(seed, "capacity", combo.key, i),
        )
        allocations[name] = alloc
        pool = [x for x in pool if x not in set(alloc)]

    # PARX re-routes once against the merged demand files of all apps
    # (the paper's "one (or more) application" re-routing interface).
    # Each app's program is profiled at node granularity directly — our
    # programs already carry resolved node pairs and byte counts.
    if combo.uses_parx:
        for name, alloc in allocations.items():
            dummy_job = Job(fabric, alloc, pml=make_pml(combo))
            program, _, _, _, _ = _app_single_run(name, dummy_job, FlowSimulator(net))
            totals: dict[tuple[int, int], float] = {}
            for ph in program:
                for m in ph:
                    if m.size > 0:
                        key = (m.src, m.dst)
                        totals[key] = totals.get(key, 0.0) + m.size
            d: dict[int, dict[int, int]] = {}
            if totals:
                peak = max(totals.values())
                for (src, dst), b in totals.items():
                    level = max(1, math.ceil(255 * b / peak))
                    d.setdefault(src, {})[dst] = min(255, level)
            profiler_demands.append(d)
        merged = merge_demands(*profiler_demands)
        fabric = build_fabric(combo, scale=scale, seed=seed, demands=merged)
        net = fabric.net

    for name, alloc in allocations.items():
        jobs[name] = Job(fabric, alloc, pml=make_pml(combo))

    # Pass 1: standalone runtimes and per-link steady-state footprints.
    result = CapacityResult(combo.key)
    sim = FlowSimulator(net, mode=sim_mode)
    footprints: dict[str, dict[int, float]] = {}
    programs: dict[str, tuple[Program, float, int]] = {}
    for name, job in jobs.items():
        program, gap, iters, overhead, rounds = _app_single_run(name, job, sim)
        programs[name] = (program, gap, iters, overhead, rounds)
        res = sim.run(program)
        solo = iters * (rounds * res.total_time + gap) + overhead
        result.solo_seconds[name] = solo
        # Steady-state bytes/second on each link while the app runs;
        # the program's bytes repeat every (round time + gap share).
        per_iter = res.total_time + gap / max(1, rounds)
        loads: dict[int, float] = {}
        if per_iter > 0:
            for phase in program:
                for m in phase:
                    if m.size <= 0:
                        continue
                    for l in m.path:
                        loads[l] = loads.get(l, 0.0) + m.size / per_iter
        footprints[name] = loads

    # Pass 2: re-simulate each app against the other apps' background.
    base_caps = [l.capacity for l in net.links]
    for name, job in jobs.items():
        program, gap, iters, overhead, rounds = programs[name]
        background: dict[int, float] = {}
        for other, loads in footprints.items():
            if other == name:
                continue
            for l, v in loads.items():
                background[l] = background.get(l, 0.0) + v
        for lid, v in background.items():
            floor = MIN_CAPACITY_FRACTION * base_caps[lid]
            net.links[lid].capacity = max(floor, base_caps[lid] - v)
        res = FlowSimulator(net, mode=sim_mode).run(program)
        interfered = iters * (rounds * res.total_time + gap) + overhead
        result.interfered_seconds[name] = interfered
        result.runs[name] = int(window_seconds // (interfered + STARTUP_SECONDS))
        # Restore capacities for the next app.
        for lid in background:
            net.links[lid].capacity = base_caps[lid]
    return result
