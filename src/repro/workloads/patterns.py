"""Generic rank-level traffic patterns.

Building blocks for the proxy applications: n-dimensional halo
exchanges (stencil codes), data transposes (FFTs), shift permutations
(mpiGraph, pairwise phases), bisection pairings (Netgauge eBB) and
random pairs.  Everything returns the same ``list[RankPhase]`` shape
the collectives use, so :class:`~repro.mpi.job.Job` materialises them
identically.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.rng import make_rng
from repro.mpi.collectives import RankPhase


def rank_phase_arrays(
    rank_phase: RankPhase,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One rank-level phase as ``(src_ranks, dst_ranks, sizes)`` arrays.

    The rank-space mirror of the simulator's flat-array message batches
    (:mod:`repro.sim.batch`): pattern generators stay list-of-tuples for
    composability, and this converts a phase once into parallel numpy
    arrays for traffic-matrix math and the batch-equivalence tests —
    instead of every consumer re-walking the tuples.
    """
    n = len(rank_phase)
    src = np.fromiter((s for s, _, _ in rank_phase), dtype=np.int64, count=n)
    dst = np.fromiter((d for _, d, _ in rank_phase), dtype=np.int64, count=n)
    sizes = np.fromiter((z for _, _, z in rank_phase), dtype=float, count=n)
    return src, dst, sizes


def rank_grid(p: int, dims: int) -> tuple[int, ...]:
    """Factor ``p`` ranks into a near-cubic ``dims``-dimensional grid.

    Mirrors ``MPI_Dims_create``: repeatedly peel the largest factor onto
    the currently smallest dimension, yielding e.g. ``rank_grid(12, 3)
    == (3, 2, 2)``.
    """
    if p < 1 or dims < 1:
        raise ConfigurationError(f"invalid grid request p={p}, dims={dims}")
    shape = [1] * dims
    remaining = p
    factors: list[int] = []
    d = 2
    while remaining > 1:
        while remaining % d == 0:
            factors.append(d)
            remaining //= d
        d += 1
    for f in sorted(factors, reverse=True):
        shape[int(np.argmin(shape))] *= f
    return tuple(sorted(shape, reverse=True))


def nd_halo_exchange(
    p: int,
    face_bytes: float,
    dims: int = 3,
    corners: bool = False,
    corner_bytes: float = 0.0,
    periodic: bool = True,
) -> list[RankPhase]:
    """One halo-exchange step on a ``dims``-D rank grid.

    Each rank swaps ``face_bytes`` with its 2*dims face neighbours; with
    ``corners`` every other neighbour in the 3^dims - 1 stencil (edges
    and corners — the 27-point stencil of AMG's problem 1) additionally
    exchanges ``corner_bytes``.  One phase per direction so the sends of
    a direction are a clean permutation, as real stencil codes post them.
    """
    if face_bytes < 0 or corner_bytes < 0:
        raise ConfigurationError("negative halo sizes")
    shape = rank_grid(p, dims)
    coords = list(itertools.product(*(range(s) for s in shape)))
    rank_of = {c: i for i, c in enumerate(coords)}

    def neighbor(c: tuple[int, ...], delta: tuple[int, ...]) -> int | None:
        out = []
        for x, d, s in zip(c, delta, shape):
            nx = x + d
            if periodic:
                nx %= s
            elif not 0 <= nx < s:
                return None
            out.append(nx)
        n = rank_of[tuple(out)]
        return None if n == rank_of[c] else n

    phases: list[RankPhase] = []
    deltas = [d for d in itertools.product((-1, 0, 1), repeat=dims) if any(d)]
    for delta in deltas:
        order = sum(abs(x) for x in delta)
        if order == 1:
            size = face_bytes
        elif corners:
            size = corner_bytes
        else:
            continue
        if size <= 0:
            continue
        phase: RankPhase = []
        for c in coords:
            n = neighbor(c, delta)
            if n is not None:
                phase.append((rank_of[c], n, size))
        if phase:
            phases.append(phase)
    return phases


def transpose_alltoall(
    group: list[int], total_bytes_per_rank: float
) -> RankPhase:
    """One data transpose within a sub-communicator (FFT pencil swap).

    Every rank of ``group`` scatters its local volume evenly over the
    group — an all-to-all where each pair moves ``total/|group|`` bytes.
    """
    g = len(group)
    if g < 2:
        return []
    chunk = total_bytes_per_rank / g
    return [
        (a, b, chunk)
        for a in group
        for b in group
        if a != b
    ]


def shift_pattern(p: int, size: float, shift: int) -> RankPhase:
    """The shift permutation: rank ``i`` sends to ``(i + shift) mod p``.

    mpiGraph's measurement pattern and the building block of pairwise
    exchanges; shift permutations are the Fat-Tree's best case under
    d-mod-k (Zahavi) and the HyperX's worst case under minimal routing.
    """
    if shift % p == 0:
        raise ConfigurationError(f"shift {shift} is a self-send for p={p}")
    return [(i, (i + shift) % p, size) for i in range(p)]


def bisection_pairs(
    p: int, size: float, seed: int | None | np.random.Generator = 0
) -> RankPhase:
    """A random bisecting matching: Netgauge eBB's sample pattern.

    Ranks are split into two random halves and matched one-to-one; each
    pair exchanges ``size`` bytes in both directions simultaneously.
    """
    if p < 2:
        raise ConfigurationError("bisection needs at least two ranks")
    rng = make_rng(seed)
    perm = rng.permutation(p)
    half = p // 2
    phase: RankPhase = []
    for a, b in zip(perm[:half], perm[half : 2 * half]):
        phase.append((int(a), int(b), size))
        phase.append((int(b), int(a), size))
    return phase


def incast(p: int, size: float, root: int = 0) -> RankPhase:
    """Everyone sends to one root at once (the admissibility counter-
    example of section 2.1 — no topology saves an incast)."""
    return [(i, root, size) for i in range(p) if i != root]


def uniform_random_pairs(
    p: int,
    size: float,
    num_messages: int,
    seed: int | None | np.random.Generator = 0,
) -> RankPhase:
    """Uniform-random traffic — the load HyperX is provisioned for."""
    rng = make_rng(seed)
    phase: RankPhase = []
    while len(phase) < num_messages:
        a, b = rng.integers(0, p, 2)
        if a != b:
            phase.append((int(a), int(b), size))
    return phase
