"""Workload generators: the paper's benchmark suite as traffic patterns.

* :mod:`~repro.workloads.patterns` — generic rank-level generators
  (n-D halo exchange, transpose, shifts, incast, random pairs),
* :mod:`~repro.workloads.proxyapps` — the nine scientific proxy apps of
  section 4.2 (AMG, CoMD, MiniFE, SWFFT, FFVC, mVMC, NTChem, MILC,
  Qbox) with the paper's weak/strong-scaling rules and a calibrated
  compute-time model,
* :mod:`~repro.workloads.x500` — HPL, HPCG and Graph500 (section 4.3),
* :mod:`~repro.workloads.netbench` — the pure network benchmarks of
  section 4.1 (IMB collectives, Netgauge eBB, Baidu DeepBench
  Allreduce, mpiGraph, Multi-PingPong, EmDL).
"""

from repro.workloads.patterns import (
    nd_halo_exchange,
    transpose_alltoall,
    shift_pattern,
    bisection_pairs,
    incast,
    uniform_random_pairs,
    rank_grid,
)
from repro.workloads.proxyapps import PROXY_APPS, ProxyApp, get_app
from repro.workloads.x500 import X500_APPS, Hpcg, Hpl, Graph500
from repro.workloads.netbench import (
    imb_collective,
    IMB_COLLECTIVES,
    mpigraph,
    effective_bisection_bandwidth,
    baidu_allreduce,
    multi_pingpong,
    emdl,
)

__all__ = [
    "nd_halo_exchange",
    "transpose_alltoall",
    "shift_pattern",
    "bisection_pairs",
    "incast",
    "uniform_random_pairs",
    "rank_grid",
    "PROXY_APPS",
    "ProxyApp",
    "get_app",
    "X500_APPS",
    "Hpl",
    "Hpcg",
    "Graph500",
    "imb_collective",
    "IMB_COLLECTIVES",
    "mpigraph",
    "effective_bisection_bandwidth",
    "baidu_allreduce",
    "multi_pingpong",
    "emdl",
]
