"""The nine scientific proxy applications of paper section 4.2.

Each app is a :class:`ProxyApp` describing one *solver iteration* of
communication (as rank phases) plus an analytic compute-time model; the
kernel runtime the paper reports (Figures 6a-6i) is
``iterations x (compute + simulated communication)``.

The communication patterns follow each code's documented structure and
the MPI-function inventory of the paper's Table 2; message sizes derive
from the paper's stated inputs (e.g. AMG's 256^3 cube per process with
a 27-point stencil exchanges 256^2 x 8 B = 512 KiB faces).  Compute
times are calibrated so that communication is a realistic minority
share (the paper cites ~20% average communication time across proxy
apps [42]) and absolute kernel runtimes land in each figure's axis
range on the 2.7 Pflop/s-class machine.  Exact flop rates of the 2010
Westmere nodes are *not* modelled — the reproduction targets the
network comparison, where only the communication term differs between
configurations.

Weak/strong scaling and the paper's mid-experiment input reductions
(FFVC's cuboid shrink above 64 nodes, qb@ll's 16-atom input at 672
nodes — section 5.2) are encoded per app.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.units import KIB, MIB
from repro.mpi.collectives import (
    RankPhase,
    binomial_bcast,
    recursive_doubling_allreduce,
)
from repro.mpi.job import Job
from repro.sim.engine import FlowSimulator
from repro.workloads.patterns import (
    nd_halo_exchange,
    rank_grid,
    shift_pattern,
    transpose_alltoall,
)

DOUBLE = 8  # bytes


class ProxyApp(ABC):
    """One proxy application: per-iteration traffic + compute model."""

    #: Short name used in figures (matches the paper's abbreviations).
    name: str = "app"
    #: "weak" or "strong" (paper Table 2).
    scaling: str = "weak"
    #: Solver iterations contributing to the reported kernel runtime.
    iterations: int = 10
    #: Inner communication rounds per outer iteration.  Iterative codes
    #: re-exchange their pattern at every CG/SCF/V-cycle sub-step — MILC
    #: runs hundreds of CG steps per trajectory, qb@ll thousands of FFT
    #: transposes per SCF step.  ``rank_phases`` describes ONE round;
    #: the round count is calibrated so each code's communication-time
    #: share on the baseline system matches published proxy-app
    #: profiling (Klenk & Froening, the paper's [42]: ~20 % on average,
    #: far higher for the network-bound members).
    comm_rounds: int = 1

    @abstractmethod
    def rank_phases(self, p: int) -> list[RankPhase]:
        """Communication of ONE round (of ``comm_rounds``) on ``p`` ranks."""

    @abstractmethod
    def compute_time(self, p: int) -> float:
        """Pure compute seconds of one iteration on ``p`` ranks."""

    def comm_time(self, job: Job, sim: FlowSimulator) -> float:
        """Simulated communication seconds of one outer iteration."""
        round_time = sim.run(
            job.materialize(self.rank_phases(job.num_ranks), label=self.name)
        ).total_time
        return self.comm_rounds * round_time

    def kernel_runtime(self, job: Job, sim: FlowSimulator) -> float:
        """The paper's metric for Figures 6a-6i: solver wallclock."""
        return self.iterations * (
            self.compute_time(job.num_ranks) + self.comm_time(job, sim)
        )

    def metric(self, p: int, runtime: float) -> float:
        """Figure value; proxy apps report runtime itself (lower=better)."""
        return runtime

    #: Whether larger metric values are better (False for runtimes).
    higher_is_better = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class Amg(ProxyApp):
    """hypre's algebraic multigrid, problem 1: 27-point stencil on a
    256^3 cube per process (weak).  Faces 512 KiB, edges 2 KiB, corners
    8 B, plus CG-style inner products (tiny allreduces)."""

    name = "AMG"
    scaling = "weak"
    iterations = 60
    comm_rounds = 220  # V-cycle level sweeps + CG polish per solve
    FACE = 256 * 256 * DOUBLE
    EDGE = 256 * DOUBLE

    def rank_phases(self, p: int) -> list[RankPhase]:
        phases = nd_halo_exchange(
            p, self.FACE, dims=3, corners=True, corner_bytes=self.EDGE
        )
        phases += recursive_doubling_allreduce(p, DOUBLE)
        return phases

    def compute_time(self, p: int) -> float:
        return 6.5


class Comd(ProxyApp):
    """ExMatEx's molecular dynamics: 64^3 atoms per process (weak).
    Six-direction ghost-atom exchange (Sendrecv), force allreduce,
    parameter bcast."""

    name = "CoMD"
    scaling = "weak"
    iterations = 100
    comm_rounds = 190  # velocity-Verlet force halo per timestep group
    FACE = 64 * 64 * 40  # ~40 B per boundary atom record

    def rank_phases(self, p: int) -> list[RankPhase]:
        phases = nd_halo_exchange(p, self.FACE, dims=3)
        phases += recursive_doubling_allreduce(p, DOUBLE)
        phases += binomial_bcast(p, DOUBLE)
        return phases

    def compute_time(self, p: int) -> float:
        return 2.2


class MiniFe(ProxyApp):
    """Implicit finite elements, 100^3 local grid (weak): CG loop with
    one face exchange and two dot-product allreduces per iteration."""

    name = "MiFE"
    scaling = "weak"
    iterations = 200
    comm_rounds = 490  # CG matvec halos + dot products
    FACE = 100 * 100 * DOUBLE

    def rank_phases(self, p: int) -> list[RankPhase]:
        phases = nd_halo_exchange(p, self.FACE, dims=3)
        phases += recursive_doubling_allreduce(p, DOUBLE)
        phases += recursive_doubling_allreduce(p, DOUBLE)
        return phases

    def compute_time(self, p: int) -> float:
        return 2.0


class Swfft(ProxyApp):
    """HACC's 3-D FFT kernel, 16 repetitions (weak): pencil transposes
    = all-to-alls within row/column sub-communicators moving the local
    32 MiB volume (128^3 complex doubles) each time."""

    name = "FFT"
    scaling = "weak"
    iterations = 16
    comm_rounds = 70  # pencil transposes across the repetitions
    LOCAL_BYTES = 128 * 128 * 128 * 16  # complex doubles

    def rank_phases(self, p: int) -> list[RankPhase]:
        pr, pc = rank_grid(p, 2)
        ranks = list(range(p))
        rows = [ranks[i * pc : (i + 1) * pc] for i in range(pr)]
        cols = [ranks[i::pc] for i in range(pc)]
        phases: list[RankPhase] = []
        for groups in (rows, cols):  # forward transform: two transposes
            phase: RankPhase = []
            for g in groups:
                phase.extend(transpose_alltoall(g, self.LOCAL_BYTES))
            if phase:
                phases.append(phase)
        return phases

    def compute_time(self, p: int) -> float:
        return 4.0


class Ffvc(ProxyApp):
    """Frontflow/violet Cartesian thermo-fluid: 128^3 cuboid per
    process, reduced to 64^3 above 64 nodes to fit the walltime limit
    (paper section 5.2) — the visible runtime drop from 64 to 128 nodes
    is reproduced by this rule."""

    name = "FFVC"
    scaling = "weak*"
    iterations = 60
    comm_rounds = 650  # pressure-Poisson sweeps per timestep

    def cuboid(self, p: int) -> int:
        return 128 if p <= 64 else 64

    def rank_phases(self, p: int) -> list[RankPhase]:
        face = self.cuboid(p) ** 2 * DOUBLE
        phases = nd_halo_exchange(p, face, dims=3)
        phases += recursive_doubling_allreduce(p, DOUBLE)
        return phases

    def compute_time(self, p: int) -> float:
        return 6.0 * (self.cuboid(p) / 128) ** 3


class Mvmc(ProxyApp):
    """many-variable variational Monte Carlo (job_middle, weak): walker
    exchange around a ring, parameter allreduce, occasional scatter."""

    name = "mVMC"
    scaling = "weak"
    iterations = 50
    comm_rounds = 230  # Monte-Carlo parameter-update exchanges
    WALKER = 1 * MIB
    PARAMS = 512 * KIB

    def rank_phases(self, p: int) -> list[RankPhase]:
        phases: list[RankPhase] = []
        if p > 1:
            phases.append(shift_pattern(p, self.WALKER, 1))
        phases += recursive_doubling_allreduce(p, self.PARAMS)
        phases += binomial_bcast(p, 8 * KIB)
        return phases

    def compute_time(self, p: int) -> float:
        return 5.0


class Ntchem(ProxyApp):
    """NTChem's MP2 solver on taxol — the suite's only strong-scaling
    input: fixed total work divided over ranks, allreduce-dominated."""

    name = "NTCh"
    scaling = "strong"
    iterations = 30
    comm_rounds = 36  # MP2 integral-batch reductions
    TOTAL_WORK = 2800.0  # node-seconds of compute for the taxol case

    def rank_phases(self, p: int) -> list[RankPhase]:
        phases = recursive_doubling_allreduce(p, 4 * MIB)
        phases += binomial_bcast(p, 1 * MIB)
        return phases

    def compute_time(self, p: int) -> float:
        return self.TOTAL_WORK / self.iterations / p


class Milc(ProxyApp):
    """MIMD lattice QCD (NERSC benchmark_n8, weak): 4-D halo exchange
    of small SU(3) faces plus frequent tiny allreduces — the suite's
    latency-sensitive member, repeatedly the outlier in the paper's
    placement studies (sections 5.2-5.3)."""

    name = "MILC"
    scaling = "weak"
    iterations = 120
    comm_rounds = 1150  # CG iterations per trajectory (QCD is CG-bound)
    FACE = 8 * 8 * 8 * 72 * 2  # 8^3 sites x SU(3) matrix x fwd/bwd

    def rank_phases(self, p: int) -> list[RankPhase]:
        phases: list[RankPhase] = []
        for _ in range(3):  # CG sub-iterations per solver step
            phases += nd_halo_exchange(p, self.FACE, dims=4)
            phases += recursive_doubling_allreduce(p, DOUBLE)
        return phases

    def compute_time(self, p: int) -> float:
        return 2.5


class Qbox(ProxyApp):
    """qb@ll first-principles MD (gold input, weak): dense-linear-algebra
    row transposes (Alltoallv) plus large reductions.  At 672 nodes the
    paper halves the input to 16 atoms — modelled as halved volume."""

    name = "Qbox"
    scaling = "weak*"
    iterations = 30
    comm_rounds = 220  # per-SCF-step FFT/rotation transposes
    ROW_BYTES = 8 * MIB

    def _volume_factor(self, p: int) -> float:
        return 0.5 if p >= 672 else 1.0

    def rank_phases(self, p: int) -> list[RankPhase]:
        f = self._volume_factor(p)
        pr, pc = rank_grid(p, 2)
        ranks = list(range(p))
        rows = [ranks[i * pc : (i + 1) * pc] for i in range(pr)]
        phase: RankPhase = []
        for g in rows:
            phase.extend(transpose_alltoall(g, f * self.ROW_BYTES))
        phases = [phase] if phase else []
        phases += recursive_doubling_allreduce(p, f * 2 * MIB)
        phases += binomial_bcast(p, f * 2 * MIB)
        return phases

    def compute_time(self, p: int) -> float:
        return 9.0 * self._volume_factor(p)


#: Registry in the paper's listing order (section 4.2).
PROXY_APPS: dict[str, ProxyApp] = {
    app.name: app
    for app in (
        Amg(), Comd(), MiniFe(), Swfft(), Ffvc(), Mvmc(), Ntchem(), Milc(),
        Qbox(),
    )
}


def get_app(name: str) -> ProxyApp:
    """Look up a proxy app (or x500 benchmark) by its paper abbreviation."""
    if name in PROXY_APPS:
        return PROXY_APPS[name]
    from repro.workloads.x500 import X500_APPS

    if name in X500_APPS:
        return X500_APPS[name]
    raise KeyError(
        f"unknown app {name!r}; available: "
        f"{sorted(PROXY_APPS) + sorted(X500_APPS)}"
    )
