"""The x500 ranking benchmarks (paper section 4.3): HPL, HPCG, Graph500.

These reuse the :class:`~repro.workloads.proxyapps.ProxyApp` interface
but report throughput metrics instead of runtime (Figures 6j-6l,
higher is better): double-precision flop/s for HPL, flop/s for HPCG,
and traversed edges per second for Graph500.

Input sizing follows the paper: HPL's matrix occupies ~1 GiB per
process (shrunk to 0.25 GiB at 224 nodes and beyond to fit the
walltime limit), HPCG uses a 192^3 local domain, Graph500 a ~1 GiB
per-process graph with 16 BFS repetitions.  The compute model uses an
effective per-node rate for each benchmark class (HPL near-peak dense
math, HPCG memory-bound sparse math, Graph500 memory-bound traversal)
on the GPU-less Westmere nodes.
"""

from __future__ import annotations

import math

from repro.core.units import GIB, MIB
from repro.mpi.collectives import (
    RankPhase,
    binomial_bcast,
    recursive_doubling_allreduce,
)
from repro.workloads.patterns import (
    nd_halo_exchange,
    rank_grid,
    shift_pattern,
    transpose_alltoall,
)
from repro.workloads.proxyapps import DOUBLE, ProxyApp


class Hpl(ProxyApp):
    """High Performance Linpack: LU factorisation of a dense matrix.

    Modelled as ``iterations`` panel steps, each broadcasting a panel
    along process rows and exchanging pivot rows along columns, with
    compute = ``2/3 N^3`` flops at an effective per-node rate.  The
    paper's weak* rule shrinks the per-process share from 1 GiB to
    0.25 GiB at 224 nodes and beyond.
    """

    name = "HPL"
    scaling = "weak*"
    iterations = 24
    comm_rounds = 280  # panel factorisation steps per modelled block
    #: Effective HPL rate of one GPU-less Westmere node, flop/s.
    NODE_FLOPS = 55e9
    higher_is_better = True

    def matrix_bytes_per_process(self, p: int) -> float:
        return 0.25 * GIB if p >= 224 else 1.0 * GIB

    def matrix_order(self, p: int) -> int:
        """Global N such that each process holds its share of A."""
        total = self.matrix_bytes_per_process(p) * p / DOUBLE
        return int(math.sqrt(total))

    def total_flops(self, p: int) -> float:
        n = self.matrix_order(p)
        return 2.0 / 3.0 * n**3 + 1.5 * n**2

    def rank_phases(self, p: int) -> list[RankPhase]:
        pr, pc = rank_grid(p, 2)
        ranks = list(range(p))
        rows = [ranks[i * pc : (i + 1) * pc] for i in range(pr)]
        # Panel bcast within each process row (one binomial round system
        # compressed into a phase sequence over the first row's shape).
        panel = 2 * MIB * (self.matrix_bytes_per_process(p) / GIB)
        phases: list[RankPhase] = []
        if pc > 1:
            bcast_rounds = binomial_bcast(pc, panel)
            for rnd in bcast_rounds:
                phase: RankPhase = []
                for row in rows:
                    for s, d, sz in rnd:
                        phase.append((row[s], row[d], sz))
                phases.append(phase)
        if p > 1:
            phases.append(shift_pattern(p, 1 * MIB, pc if pc < p else 1))
        return phases

    def compute_time(self, p: int) -> float:
        return self.total_flops(p) / (p * self.NODE_FLOPS) / self.iterations

    def metric(self, p: int, runtime: float) -> float:
        """Gflop/s, as Figure 6j reports."""
        return self.total_flops(p) / runtime / 1e9


class Hpcg(ProxyApp):
    """High Performance Conjugate Gradients: 192^3 local domain (weak).

    Per iteration: one fine-level halo exchange, two dot-product
    allreduces, and the multigrid V-cycle's coarser halos (96^2, 48^2,
    24^2 faces).  Compute is memory-bound: a small fraction of peak.
    """

    name = "HPCG"
    scaling = "weak"
    iterations = 50
    comm_rounds = 48  # symgs sweeps across the V-cycle
    N_LOCAL = 192
    #: Effective HPCG rate per node (memory-bound), flop/s.
    NODE_FLOPS = 1.6e9
    #: Flops per grid point per CG iteration (SpMV 27-pt + vector ops).
    FLOPS_PER_POINT = 70.0
    higher_is_better = True

    def total_flops(self, p: int) -> float:
        return p * self.N_LOCAL**3 * self.FLOPS_PER_POINT * self.iterations

    def rank_phases(self, p: int) -> list[RankPhase]:
        phases: list[RankPhase] = []
        for level in range(4):  # fine + 3 multigrid levels
            n = self.N_LOCAL >> level
            phases += nd_halo_exchange(p, n * n * DOUBLE, dims=3)
        phases += recursive_doubling_allreduce(p, DOUBLE)
        phases += recursive_doubling_allreduce(p, DOUBLE)
        return phases

    def compute_time(self, p: int) -> float:
        return self.N_LOCAL**3 * self.FLOPS_PER_POINT / self.NODE_FLOPS

    def metric(self, p: int, runtime: float) -> float:
        """Gflop/s, as Figure 6k reports."""
        return self.total_flops(p) / runtime / 1e9


class Graph500(ProxyApp):
    """Graph500 BFS (weak, ~1 GiB of graph per process, 16 searches).

    Each BFS expands over ~6 frontier levels; every level is a sparse
    all-to-all pushing the frontier's edge targets to their owners.
    The metric is traversed edges per second (GTEPS, Figure 6l).
    """

    name = "GraD"
    scaling = "weak"
    iterations = 16  # 16 BFS repetitions
    comm_rounds = 4  # frontier + bitmap + pred-list exchanges per level set
    EDGE_BYTES = 16
    BYTES_PER_PROCESS = 1 * GIB
    LEVELS = 6
    #: Effective local traversal rate, edges/s per node (optimised code).
    NODE_TEPS = 3.0e8
    higher_is_better = True

    def edges_per_process(self) -> float:
        return self.BYTES_PER_PROCESS / self.EDGE_BYTES

    def rank_phases(self, p: int) -> list[RankPhase]:
        # Per BFS level the frontier's remote edges scatter uniformly;
        # most work happens in 2 heavy middle levels.
        phases: list[RankPhase] = []
        per_level = self.edges_per_process() * 8 / self.LEVELS  # 8B ids
        weights = [0.02, 0.18, 0.40, 0.30, 0.08, 0.02]
        ranks = list(range(p))
        for w in weights:
            phase = transpose_alltoall(ranks, per_level * w)
            if phase:
                phases.append(phase)
        phases += recursive_doubling_allreduce(p, DOUBLE)  # level sync
        return phases

    def compute_time(self, p: int) -> float:
        return self.edges_per_process() / self.NODE_TEPS

    def metric(self, p: int, runtime: float) -> float:
        """Median GTEPS over the 16 searches (uniform model: the mean)."""
        total_edges = self.edges_per_process() * p * self.iterations
        return total_edges / runtime / 1e9


#: Registry keyed by the paper's abbreviations.
X500_APPS: dict[str, ProxyApp] = {
    app.name: app for app in (Hpl(), Hpcg(), Graph500())
}
