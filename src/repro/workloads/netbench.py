"""Pure network benchmarks (paper section 4.1, plus the capacity pair).

* :func:`imb_collective` — Intel MPI Benchmarks single-mode collectives
  (Bcast, Gather, Scatter, Reduce, Allreduce, Alltoall, Barrier): the
  minimum latency over repetitions for a message-size sweep (Fig. 4/5b),
* :func:`mpigraph` — the all-shifts bandwidth matrix of Figure 1,
* :func:`effective_bisection_bandwidth` — Netgauge's eBB: random
  bisect-and-match patterns at 1 MiB (Fig. 5c),
* :func:`baidu_allreduce` — DeepBench's ring allreduce latency sweep
  (Fig. 5a),
* :func:`multi_pingpong` — IMB Multi-PingPong between node halves (the
  capacity benchmark MuPP, and the 512 B threshold calibration of
  section 3.2.4),
* :func:`emdl` — the paper's modified Allreduce alternating a 0.1 s
  compute phase with communication, mimicking deep-learning training.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.rng import make_rng
from repro.core.units import MIB
from repro.mpi.job import Job
from repro.sim.engine import FlowSimulator
from repro.sim.flows import Phase, Program
from repro.workloads.patterns import bisection_pairs, shift_pattern

#: IMB collective name -> Job method builder (the paper's "single-mode
#: MPI-1 collectives (non-v version), meaning Barrier, Bcast, ...,
#: Alltoall").
IMB_COLLECTIVES = (
    "Bcast",
    "Gather",
    "Scatter",
    "Reduce",
    "Allreduce",
    "Reduce_scatter",
    "Allgather",
    "Alltoall",
    "Barrier",
)

#: IMB's default message-size sweep: powers of two, 1 B .. 4 MiB.
IMB_MESSAGE_SIZES = tuple(2**i for i in range(23))


def imb_collective(job: Job, op: str, size: float) -> Program:
    """Build one IMB collective as a program (latency measured by the
    caller via the simulator)."""
    if op == "Bcast":
        return job.bcast(size)
    if op == "Gather":
        return job.gather(size)
    if op == "Scatter":
        return job.scatter(size)
    if op == "Reduce":
        return job.reduce(size)
    if op == "Allreduce":
        return job.allreduce(size)
    if op == "Reduce_scatter":
        return job.reduce_scatter(size)
    if op == "Allgather":
        return job.allgather(size)
    if op == "Alltoall":
        return job.alltoall(size)
    if op == "Barrier":
        return job.barrier()
    raise ConfigurationError(f"unknown IMB collective {op!r}")


def imb_latency(
    job: Job, sim: FlowSimulator, op: str, size: float
) -> float:
    """One IMB data point: the operation's completion time in seconds.

    (IMB reports t_min over repetitions; the flow model is deterministic
    per configuration, so one run IS the minimum — run-to-run noise is
    added at the experiment-runner level.)
    """
    return sim.run(imb_collective(job, op, size)).total_time


def mpigraph(
    job: Job, sim: FlowSimulator, size: float = 1 * MIB
) -> np.ndarray:
    """The Figure 1 bandwidth heatmap: ``bw[src, dst]`` in bytes/second.

    mpiGraph measures one shift permutation at a time: for every shift
    ``k`` all pairs ``(i, i+k mod P)`` stream concurrently and each
    pair's observable bandwidth is recorded.  The diagonal stays 0.
    """
    p = job.num_ranks
    bw = np.zeros((p, p))
    node_rank = {n: r for r, n in enumerate(job.nodes)}
    for k in range(1, p):
        program = job.materialize([shift_pattern(p, size, k)], label=f"shift{k}")
        for msg, b in sim.pair_bandwidths(program.phases[0]):
            bw[node_rank[msg.src], node_rank[msg.dst]] = b
    return bw


def mpigraph_average(bw: np.ndarray) -> float:
    """Average off-diagonal bandwidth — the number the paper quotes for
    Figure 1 (2.26 / 0.84 / 1.39 GiB/s)."""
    p = bw.shape[0]
    off = bw[~np.eye(p, dtype=bool)]
    return float(off.mean())


def effective_bisection_bandwidth(
    job: Job,
    sim: FlowSimulator,
    samples: int = 100,
    size: float = 1 * MIB,
    seed: int = 0,
) -> float:
    """Netgauge eBB: mean per-pair bandwidth over random bisections.

    Each sample splits the ranks into random halves, matches them
    one-to-one, and streams ``size`` bytes both ways concurrently; the
    sample's value is the mean observable pair bandwidth.  The paper
    uses 1,000 samples of 1 MiB; benchmarks default to fewer for
    wallclock reasons (configurable).
    """
    p = job.num_ranks
    if p < 2:
        raise ConfigurationError("eBB needs at least two ranks")
    rng = make_rng(seed)
    values = []
    for _ in range(samples):
        phase_ranks = bisection_pairs(p, size, seed=rng)
        program = job.materialize([phase_ranks], label="ebb")
        bws = [b for _, b in sim.pair_bandwidths(program.phases[0])]
        values.append(float(np.mean(bws)))
    return float(np.mean(values))


def baidu_allreduce(
    job: Job, sim: FlowSimulator, num_floats: int
) -> float:
    """DeepBench ring-allreduce latency for an array of 4-byte floats.

    Figure 5a sweeps array lengths 0 .. 536M; the ring algorithm is the
    one Baidu's code implements (section 4.1).
    """
    size = float(num_floats) * 4.0
    if num_floats == 0:
        return sim.run(job.barrier()).total_time  # sync only
    return sim.run(job.allreduce(size, algorithm="ring")).total_time


def multi_pingpong(
    job: Job, sim: FlowSimulator, size: float, rounds: int = 1
) -> float:
    """IMB Multi-PingPong: concurrent pairs (i, i + P/2) ping-ponging.

    Returns the per-round round-trip completion time.  This is the
    benchmark the paper used to calibrate the 512-byte threshold: with
    several node pairs per switch pair the single inter-switch cable
    congests once messages carry real payload.
    """
    p = job.num_ranks
    if p < 2 or p % 2:
        raise ConfigurationError("Multi-PingPong needs an even rank count")
    half = p // 2
    ping = [(i, i + half, size) for i in range(half)]
    pong = [(i + half, i, size) for i in range(half)]
    program = job.materialize([ping, pong] * rounds, label="mupp")
    return sim.run(program).total_time / rounds


def emdl(
    job: Job,
    sim: FlowSimulator,
    size: float,
    steps: int = 4,
    compute_seconds: float = 0.1,
) -> float:
    """EmDL: Allreduce alternating with an 0.1 s compute phase.

    The paper's stand-in for data-parallel deep learning (footnote 12:
    "a modified IMB Allreduce ... alternating between communication and
    an 0.1 s compute phase simulated via usleep").
    """
    program = Program(label="emdl", compute_between_phases=0.0)
    one = job.allreduce(size, algorithm="ring")
    for step in range(steps):
        for ph in one.phases:
            program.phases.append(Phase(list(ph.messages), label=f"emdl{step}"))
    t = sim.run(program).total_time
    return t + steps * compute_seconds
