"""Deployment-cost model: the paper's economic argument, quantified.

Section 1 motivates the whole study with cost structure: "today's
Fat-Trees force the extensive use of active optical cables which
carries a prohibitive cost-structure at scale", while a HyperX "can fit
to any physical packaging scheme" so most of its links stay electrical
(Figure 2c's brown rack-internal copper).  Ahn et al. and the follow-up
studies the paper cites ([6, 40, 56]) all argue in these terms.

This module prices a built :class:`~repro.topology.network.Network`:

* every switch costs ``switch_cost`` per port (radix pricing),
* every cable is priced by its *physical span*: links within a rack use
  passive copper (DAC), links between racks need active optical cables
  (AOC) priced per metre.

Rack positions come from a packaging model: the caller supplies a
``rack_of`` function (or uses :func:`hyperx_packaging` /
:func:`fattree_packaging`, which mirror the paper's machine: four
HyperX switches or two Fat-Tree edge switches per 28-node rack, and
central director racks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.errors import TopologyError
from repro.topology.network import Network

#: Default price book (2019-era list prices, USD; sources: the cost
#: discussions in Besta & Hoefler's Slim Fly and Ahn et al.'s HyperX
#: papers — only the *ratios* matter for the comparison).
DEFAULT_PRICES = {
    "switch_port": 90.0,   # per switch port (chassis amortised)
    "dac_cable": 45.0,     # passive copper, intra-rack
    "aoc_base": 180.0,     # active optics, transceivers included
    "aoc_per_meter": 7.0,  # fibre cost per metre of span
    "hca": 450.0,          # one adapter per terminal
}

#: Physical layout constants: racks in a machine-room row, metres.
RACK_PITCH_M = 1.2
ROW_PITCH_M = 3.0
RACKS_PER_ROW = 12


@dataclass(frozen=True)
class CostBreakdown:
    """Itemised deployment cost of one network plane."""

    switch_ports: int
    dac_cables: int
    aoc_cables: int
    aoc_metres: float
    hcas: int
    total: float

    def per_terminal(self, num_terminals: int) -> float:
        return self.total / max(1, num_terminals)


def rack_distance_m(rack_a: int, rack_b: int) -> float:
    """Cable span between two rack positions (row-major layout).

    Manhattan routing through the cable trays: along the row, then
    across rows, plus 2 m of vertical slack per end.
    """
    row_a, col_a = divmod(rack_a, RACKS_PER_ROW)
    row_b, col_b = divmod(rack_b, RACKS_PER_ROW)
    horizontal = abs(col_a - col_b) * RACK_PITCH_M
    vertical = abs(row_a - row_b) * ROW_PITCH_M
    return horizontal + vertical + 4.0


def plane_cost(
    net: Network,
    rack_of: Callable[[int], int],
    prices: dict[str, float] | None = None,
) -> CostBreakdown:
    """Price a network plane under a packaging model.

    ``rack_of(switch_id)`` maps every switch to its rack index; a cable
    between same-rack switches is copper, anything else is optical and
    priced by span.  Terminal links are copper (nodes sit beside their
    switch, as in both of the paper's planes).
    """
    p = dict(DEFAULT_PRICES)
    if prices:
        p.update(prices)

    ports = sum(net.degree(sw) for sw in net.switches)
    dac = 0
    aoc = 0
    metres = 0.0
    for link in net.iter_links():
        if link.reverse_id < link.id:
            continue  # price each cable once
        if net.is_terminal(link.src) or net.is_terminal(link.dst):
            dac += 1
            continue
        ra, rb = rack_of(link.src), rack_of(link.dst)
        if ra == rb:
            dac += 1
        else:
            aoc += 1
            metres += rack_distance_m(ra, rb)

    total = (
        ports * p["switch_port"]
        + dac * p["dac_cable"]
        + aoc * p["aoc_base"]
        + metres * p["aoc_per_meter"]
        + net.num_terminals * p["hca"]
    )
    return CostBreakdown(
        switch_ports=ports,
        dac_cables=dac,
        aoc_cables=aoc,
        aoc_metres=metres,
        hcas=net.num_terminals,
        total=total,
    )


def hyperx_packaging(net: Network, switches_per_rack: int = 4) -> Callable[[int], int]:
    """The paper's HyperX packaging: four switches (28 nodes) per rack.

    Switches are racked in creation order, which for the row-major
    HyperX generator groups lattice-adjacent switches — the property
    that makes many dimension-1 links rack-internal copper (Fig. 2c).
    """
    index = {sw: i for i, sw in enumerate(net.switches)}

    def rack_of(sw: int) -> int:
        if sw not in index:
            raise TopologyError(f"node {sw} is not a switch")
        return index[sw] // switches_per_rack

    return rack_of


def fattree_packaging(
    net: Network, edges_per_rack: int = 2
) -> Callable[[int], int]:
    """The paper's Fat-Tree packaging: two edge switches per compute
    rack; director innards (line/spine chips) live in dedicated director
    racks placed after the compute rows — every edge-to-director cable
    is optical, the cost pain the paper's introduction describes."""
    edges = [sw for sw in net.switches if net.node_meta(sw).get("role") == "edge"]
    edge_index = {sw: i for i, sw in enumerate(edges)}
    num_compute_racks = -(-len(edges) // edges_per_rack)

    def rack_of(sw: int) -> int:
        meta = net.node_meta(sw)
        if meta.get("role") == "edge":
            return edge_index[sw] // edges_per_rack
        if "director" in meta:
            return num_compute_racks + int(meta["director"])
        raise TopologyError(f"switch {sw} has no Fat-Tree packaging role")

    return rack_of


def compare_planes(
    hyperx_net: Network,
    fattree_net: Network,
    prices: dict[str, float] | None = None,
) -> dict[str, CostBreakdown]:
    """Cost both planes of a dual-plane machine under their packaging."""
    return {
        "hyperx": plane_cost(hyperx_net, hyperx_packaging(hyperx_net), prices),
        "fattree": plane_cost(fattree_net, fattree_packaging(fattree_net), prices),
    }
