"""Capacitated network graph: switches, terminals and directed links.

The :class:`Network` is the single graph representation shared by every
routing engine and the flow simulator.  Design choices:

* **Single integer id space** for switches and terminals; ``kind(u)``
  distinguishes them.  Routing tables, flows and LID maps all key on
  these small integers, which keeps the hot loops allocation-free.
* **Directed links.**  A physical cable is two directed links that
  reference each other via :attr:`Link.reverse_id`; fault injection
  disables both at once (a broken AOC kills both directions).
* **Disabling, not deleting.**  Link ids stay stable across fault
  injection so cached routings can be diffed; every traversal helper
  skips disabled links.
* **Terminals are single-homed** within one network plane, mirroring the
  paper's one-HCA-port-per-plane wiring (both planes attach to CPU0).
"""

from __future__ import annotations

from typing import Any, Collection, Iterable, Iterator

import numpy as np

from repro.core.errors import TopologyError
from repro.core.units import QDR_LINK_BANDWIDTH

SWITCH = "switch"
TERMINAL = "terminal"

#: Masked-subview cache entries kept per :class:`SwitchGraph` (PARX uses
#: four masks, N-D PARX ``2N``; the cap only guards against pathological
#: callers streaming unique masks).
_MASK_CACHE_LIMIT = 32


class SwitchGraph:
    """CSR view of the enabled switch-to-switch subgraph of a network.

    The routing sweep runs one Dijkstra per destination LID; on the full
    12x8 plane that used to mean millions of :class:`Link` attribute
    reads and per-node list allocations through :meth:`Network.in_links`.
    This view flattens the *in*-link adjacency (the direction destination
    trees relax) into three parallel arrays — source switch (dense
    index), link id (which doubles as the weight index), and a CSR
    ``indptr`` — built once per :attr:`Network.version` and shared by
    every engine via :meth:`Network.switch_graph`.

    Switches are addressed by *dense index* (position in
    :attr:`Network.switches` order); :attr:`index` maps node ids to dense
    indices (-1 for terminals).  The flat lists (``in_ptr_list`` etc.)
    mirror the numpy arrays for the pure-Python Dijkstra hot loop, where
    list indexing beats numpy scalar extraction.
    """

    __slots__ = (
        "version", "num_switches", "switches", "index",
        "in_ptr", "in_src", "in_link",
        "in_ptr_list", "in_src_list", "in_link_list", "link_dst_list",
        "link_dst_index", "link_dst_node", "link_src_node", "link_enabled",
        "host_index", "hosts_mask", "attached_counts", "host_switches",
        "_masked_cache",
    )

    def __init__(self, net: "Network") -> None:
        self.version = net.version
        switches = net._switches
        self.num_switches = len(switches)
        self.switches = list(switches)
        index = np.full(len(net._kind), -1, dtype=np.int64)
        index[switches] = np.arange(self.num_switches, dtype=np.int64)
        self.index = index

        per_dst: list[list[tuple[int, int]]] = [[] for _ in switches]
        n_links = len(net.links)
        link_dst_index = np.full(n_links, -1, dtype=np.int64)
        link_dst_node = np.empty(n_links, dtype=np.int64)
        link_src_node = np.empty(n_links, dtype=np.int64)
        link_enabled = np.zeros(n_links, dtype=bool)
        for link in net.links:
            link_dst_node[link.id] = link.dst
            link_src_node[link.id] = link.src
            link_enabled[link.id] = link.enabled
            di = index[link.dst]
            if di >= 0:
                link_dst_index[link.id] = di
                si = index[link.src]
                if link.enabled and si >= 0:
                    per_dst[di].append((int(si), link.id))
        self.link_dst_index = link_dst_index
        self.link_dst_node = link_dst_node
        self.link_src_node = link_src_node
        self.link_enabled = link_enabled
        self.link_dst_list = link_dst_node.tolist()

        in_ptr = [0]
        in_src: list[int] = []
        in_link: list[int] = []
        for rows in per_dst:
            for si, lid in rows:
                in_src.append(si)
                in_link.append(lid)
            in_ptr.append(len(in_src))
        self.in_ptr_list = in_ptr
        self.in_src_list = in_src
        self.in_link_list = in_link
        self.in_ptr = np.asarray(in_ptr, dtype=np.int64)
        self.in_src = np.asarray(in_src, dtype=np.int64)
        self.in_link = np.asarray(in_link, dtype=np.int64)

        # Terminal attachment, dense: host_index[node] is the dense index
        # of the switch an enabled terminal hangs off (-1 for switches
        # and detached terminals); hosts_mask marks switches that host at
        # least one enabled terminal (the reachability set every engine's
        # coverage check consults).
        host_index = np.full(len(net._kind), -1, dtype=np.int64)
        attached_counts = np.zeros(self.num_switches, dtype=np.float64)
        for t in net._terminals:
            for lid in net._out[t]:
                link = net.links[lid]
                if link.enabled and index[link.dst] >= 0:
                    host_index[t] = index[link.dst]
                    attached_counts[index[link.dst]] += 1.0
                    break
        self.host_index = host_index
        self.attached_counts = attached_counts
        self.hosts_mask = attached_counts > 0
        self.host_switches = np.flatnonzero(self.hosts_mask)
        self._masked_cache: dict[frozenset[int], "MaskedSwitchGraph"] = {}

    def masked(self, masked_links: Collection[int]) -> "SwitchGraph | MaskedSwitchGraph":
        """This view with ``masked_links`` filtered out of the CSR.

        Memoised per frozenset so PARX's per-rule masks are filtered once
        per fabric version, not once per destination.
        """
        if not masked_links:
            return self
        key = (
            masked_links
            if isinstance(masked_links, frozenset)
            else frozenset(masked_links)
        )
        view = self._masked_cache.get(key)
        if view is None:
            if len(self._masked_cache) >= _MASK_CACHE_LIMIT:
                self._masked_cache.clear()
            view = MaskedSwitchGraph(self, key)
            self._masked_cache[key] = view
        return view


class MaskedSwitchGraph:
    """A :class:`SwitchGraph` with some link ids virtually removed.

    Shares the parent's dense switch indexing; only the in-link CSR is
    re-filtered.  PARX's rules R1-R4 route against these subviews.
    """

    __slots__ = (
        "version", "num_switches", "switches", "index",
        "in_ptr", "in_src", "in_link",
        "in_ptr_list", "in_src_list", "in_link_list",
        "hosts_mask", "host_switches",
    )

    def __init__(self, graph: SwitchGraph, masked: frozenset[int]) -> None:
        self.version = graph.version
        self.num_switches = graph.num_switches
        self.switches = graph.switches
        self.index = graph.index
        self.hosts_mask = graph.hosts_mask
        self.host_switches = graph.host_switches
        in_ptr = [0]
        in_src: list[int] = []
        in_link: list[int] = []
        src, lnk, ptr = graph.in_src_list, graph.in_link_list, graph.in_ptr_list
        for u in range(graph.num_switches):
            for k in range(ptr[u], ptr[u + 1]):
                if lnk[k] not in masked:
                    in_src.append(src[k])
                    in_link.append(lnk[k])
            in_ptr.append(len(in_src))
        self.in_ptr_list = in_ptr
        self.in_src_list = in_src
        self.in_link_list = in_link
        # Numpy mirrors for the batched multi-destination kernel
        # (tree_core_batch), matching SwitchGraph's layout.
        self.in_ptr = np.asarray(in_ptr, dtype=np.int64)
        self.in_src = np.asarray(in_src, dtype=np.int64)
        self.in_link = np.asarray(in_link, dtype=np.int64)


class Link:
    """One directed link of the fabric.

    Attributes
    ----------
    id:
        Dense index into :attr:`Network.links`.
    src, dst:
        Endpoint node ids.
    capacity:
        Bytes per second in the ``src -> dst`` direction.
    reverse_id:
        Id of the opposite direction of the same cable, or ``-1`` for a
        simplex link (not used by any generator, but supported).
    enabled:
        ``False`` once fault injection removed the cable.
    meta:
        Free-form annotations, e.g. ``{"dim": 0}`` on HyperX links or
        ``{"tier": "up"}`` on tree links; routing engines use these.

    ``capacity`` and ``enabled`` are properties whose setters bump the
    owning :attr:`Network.version` — a direct field write
    (``link.capacity = x``) is therefore just as visible to versioned
    views (:class:`~repro.topology.state.FabricState`, the switch-graph
    cache, path memos) as going through ``Network.set_capacity``.
    Before this, direct writes bypassed the counter and consumers had
    to force-refresh defensively every phase.
    """

    __slots__ = (
        "id", "src", "dst", "reverse_id", "meta",
        "_capacity", "_enabled", "_net",
    )

    def __init__(
        self,
        id: int,
        src: int,
        dst: int,
        capacity: float,
        reverse_id: int = -1,
        enabled: bool = True,
        meta: dict[str, Any] | None = None,
    ) -> None:
        self.id = id
        self.src = src
        self.dst = dst
        self.reverse_id = reverse_id
        self.meta = {} if meta is None else meta
        self._capacity = capacity
        self._enabled = enabled
        #: Owning network, set by :meth:`Network.add_link`; ``None`` only
        #: for free-standing links (tests), where there is no version to
        #: bump.
        self._net: "Network | None" = None

    @property
    def capacity(self) -> float:
        return self._capacity

    @capacity.setter
    def capacity(self, value: float) -> None:
        self._capacity = value
        if self._net is not None:
            self._net.version += 1

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = value
        if self._net is not None:
            self._net.version += 1

    def __repr__(self) -> str:
        return (
            f"Link(id={self.id}, src={self.src}, dst={self.dst}, "
            f"capacity={self._capacity}, reverse_id={self.reverse_id}, "
            f"enabled={self._enabled})"
        )


class Network:
    """Mutable multigraph of switches, terminals and directed links."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self.links: list[Link] = []
        #: Monotonic fabric-state counter: bumped by every structural or
        #: capacity mutation that goes through the Network API, so live
        #: views (:class:`~repro.topology.state.FabricState`) can cache
        #: derived arrays and invalidate them cheaply.
        self.version = 0
        self._kind: list[str] = []
        self._meta: list[dict[str, Any]] = []
        self._out: list[list[int]] = []
        self._in: list[list[int]] = []
        self._switches: list[int] = []
        self._terminals: list[int] = []
        self._graph_cache: SwitchGraph | None = None

    # --- construction -----------------------------------------------------
    def _add_node(self, kind: str, meta: dict[str, Any]) -> int:
        node = len(self._kind)
        self._kind.append(kind)
        self._meta.append(meta)
        self._out.append([])
        self._in.append([])
        (self._switches if kind == SWITCH else self._terminals).append(node)
        return node

    def add_switch(self, **meta: Any) -> int:
        """Create a switch and return its node id."""
        return self._add_node(SWITCH, meta)

    def add_terminal(self, **meta: Any) -> int:
        """Create a terminal (compute node / HCA port) and return its id."""
        return self._add_node(TERMINAL, meta)

    def add_link(
        self,
        u: int,
        v: int,
        capacity: float = QDR_LINK_BANDWIDTH,
        **meta: Any,
    ) -> tuple[int, int]:
        """Add a full-duplex cable between ``u`` and ``v``.

        Returns the ids of the two directed links ``(u->v, v->u)``.  Both
        carry a shallow copy of ``meta``.
        """
        if u == v:
            raise TopologyError(f"self-loop on node {u}")
        self._check_node(u)
        self._check_node(v)
        if self._kind[u] == TERMINAL and self._kind[v] == TERMINAL:
            raise TopologyError(f"terminal-terminal cable {u}-{v} is not allowed")
        for t in (u, v):
            if self._kind[t] == TERMINAL and self._out[t]:
                raise TopologyError(
                    f"terminal {t} is already attached; terminals are single-homed"
                )
        fwd = Link(len(self.links), u, v, capacity, meta=dict(meta))
        self.links.append(fwd)
        rev = Link(len(self.links), v, u, capacity, meta=dict(meta))
        self.links.append(rev)
        fwd.reverse_id = rev.id
        rev.reverse_id = fwd.id
        fwd._net = rev._net = self
        self._out[u].append(fwd.id)
        self._in[v].append(fwd.id)
        self._out[v].append(rev.id)
        self._in[u].append(rev.id)
        self.version += 1
        return fwd.id, rev.id

    def _check_node(self, u: int) -> None:
        if not 0 <= u < len(self._kind):
            raise TopologyError(f"unknown node id {u}")

    # --- node queries -------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._kind)

    @property
    def num_switches(self) -> int:
        return len(self._switches)

    @property
    def num_terminals(self) -> int:
        return len(self._terminals)

    @property
    def switches(self) -> list[int]:
        """Switch node ids in creation order."""
        return list(self._switches)

    @property
    def terminals(self) -> list[int]:
        """Terminal node ids in creation order."""
        return list(self._terminals)

    def kind(self, u: int) -> str:
        self._check_node(u)
        return self._kind[u]

    def is_switch(self, u: int) -> bool:
        return self.kind(u) == SWITCH

    def is_terminal(self, u: int) -> bool:
        return self.kind(u) == TERMINAL

    def node_meta(self, u: int) -> dict[str, Any]:
        self._check_node(u)
        return self._meta[u]

    # --- link queries -------------------------------------------------------
    def link(self, link_id: int) -> Link:
        return self.links[link_id]

    def out_links(self, u: int) -> list[Link]:
        """Enabled links leaving ``u``."""
        return [self.links[i] for i in self._out[u] if self.links[i].enabled]

    def in_links(self, u: int) -> list[Link]:
        """Enabled links arriving at ``u``."""
        return [self.links[i] for i in self._in[u] if self.links[i].enabled]

    def all_out_links(self, u: int) -> list[Link]:
        """All links leaving ``u``, including disabled ones."""
        return [self.links[i] for i in self._out[u]]

    def links_between(self, u: int, v: int) -> list[Link]:
        """Enabled directed links ``u -> v`` (may be several: trunking)."""
        return [
            self.links[i]
            for i in self._out[u]
            if self.links[i].enabled and self.links[i].dst == v
        ]

    def neighbors(self, u: int) -> list[int]:
        """Distinct neighbours of ``u`` over enabled links."""
        seen: dict[int, None] = {}
        for link in self.out_links(u):
            seen.setdefault(link.dst)
        return list(seen)

    def iter_links(self, enabled_only: bool = True) -> Iterator[Link]:
        for link in self.links:
            if link.enabled or not enabled_only:
                yield link

    def degree(self, u: int) -> int:
        """Number of enabled links leaving ``u`` (the used port count)."""
        return len(self.out_links(u))

    # --- terminal attachment -------------------------------------------------
    def attached_switch(self, terminal: int) -> int:
        """The switch a terminal hangs off.  Raises if detached."""
        if not self.is_terminal(terminal):
            raise TopologyError(f"node {terminal} is not a terminal")
        for link in self.out_links(terminal):
            if self.is_switch(link.dst):
                return link.dst
        raise TopologyError(f"terminal {terminal} has no enabled switch link")

    def attached_terminals(self, switch: int) -> list[int]:
        """Terminals hanging off a switch, in port order."""
        if not self.is_switch(switch):
            raise TopologyError(f"node {switch} is not a switch")
        return [
            link.dst for link in self.out_links(switch) if self.is_terminal(link.dst)
        ]

    def terminal_uplink(self, terminal: int) -> Link:
        """The (single) enabled terminal -> switch link."""
        for link in self.out_links(terminal):
            if self.is_switch(link.dst):
                return link
        raise TopologyError(f"terminal {terminal} has no enabled switch link")

    # --- fault handling -------------------------------------------------------
    def disable_cable(self, link_id: int) -> None:
        """Disable both directions of the cable containing ``link_id``."""
        link = self.links[link_id]
        # Raw writes + one explicit bump: the property setters would bump
        # once per direction.
        link._enabled = False
        if link.reverse_id >= 0:
            self.links[link.reverse_id]._enabled = False
        self.version += 1

    def enable_cable(self, link_id: int) -> None:
        """Re-enable both directions of the cable containing ``link_id``."""
        link = self.links[link_id]
        link._enabled = True
        if link.reverse_id >= 0:
            self.links[link.reverse_id]._enabled = True
        self.version += 1

    def set_capacity(
        self, link_id: int, capacity: float, both_directions: bool = True
    ) -> None:
        """Change a link's capacity through the versioned API.

        A capacity of 0 models a cable that is present but carries
        nothing (the ">10,000 symbol errors" end state before the cable
        is pulled); the simulator refuses flows over such links instead
        of letting them finish instantly.  Negative capacities are
        rejected.
        """
        if capacity < 0:
            raise TopologyError(
                f"link {link_id} capacity must be >= 0, got {capacity}"
            )
        link = self.links[link_id]
        link._capacity = float(capacity)
        if both_directions and link.reverse_id >= 0:
            self.links[link.reverse_id]._capacity = float(capacity)
        self.version += 1

    def switch_graph(self) -> SwitchGraph:
        """The CSR switch-graph view, cached per :attr:`version`.

        Any mutation through the Network API bumps :attr:`version` and
        implicitly invalidates the cached view; callers must not hold a
        view across mutations.
        """
        g = self._graph_cache
        if g is None or g.version != self.version:
            g = SwitchGraph(self)
            self._graph_cache = g
        return g

    def switch_cables(self) -> list[Link]:
        """One representative direction per enabled switch-to-switch cable."""
        return [
            link
            for link in self.links
            if link.enabled
            and link.id < link.reverse_id
            and self.is_switch(link.src)
            and self.is_switch(link.dst)
        ]

    # --- path helpers -----------------------------------------------------------
    def path_nodes(self, path: Iterable[int]) -> list[int]:
        """Expand a link-id path into the node sequence it visits."""
        nodes: list[int] = []
        for link_id in path:
            link = self.links[link_id]
            if not nodes:
                nodes.append(link.src)
            elif nodes[-1] != link.src:
                raise TopologyError(
                    f"discontinuous path: link {link_id} starts at {link.src}, "
                    f"previous hop ended at {nodes[-1]}"
                )
            nodes.append(link.dst)
        return nodes

    def path_hops(self, path: Iterable[int]) -> int:
        """Number of switch-to-switch hops on a link-id path."""
        hops = 0
        for link_id in path:
            link = self.links[link_id]
            if self.is_switch(link.src) and self.is_switch(link.dst):
                hops += 1
        return hops

    # --- validation / export -----------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`."""
        for t in self._terminals:
            links = self.out_links(t)
            if len(links) != 1:
                raise TopologyError(
                    f"terminal {t} has {len(links)} enabled links, expected 1"
                )
        for link in self.links:
            rev = self.links[link.reverse_id] if link.reverse_id >= 0 else None
            if rev is not None and (rev.src, rev.dst) != (link.dst, link.src):
                raise TopologyError(f"link {link.id} reverse pointer is inconsistent")
            if link.capacity <= 0:
                raise TopologyError(f"link {link.id} has non-positive capacity")

    def to_networkx(self, switches_only: bool = False):
        """Export the enabled subgraph as a :class:`networkx.MultiDiGraph`."""
        import networkx as nx

        g = nx.MultiDiGraph(name=self.name)
        for u in range(self.num_nodes):
            if switches_only and not self.is_switch(u):
                continue
            g.add_node(u, kind=self._kind[u], **self._meta[u])
        for link in self.iter_links():
            if switches_only and not (
                self.is_switch(link.src) and self.is_switch(link.dst)
            ):
                continue
            g.add_edge(link.src, link.dst, key=link.id, capacity=link.capacity)
        return g

    def __repr__(self) -> str:
        enabled = sum(1 for _ in self.iter_links())
        return (
            f"Network({self.name!r}, switches={self.num_switches}, "
            f"terminals={self.num_terminals}, directed_links={enabled})"
        )
