"""Capacitated network graph: switches, terminals and directed links.

The :class:`Network` is the single graph representation shared by every
routing engine and the flow simulator.  Design choices:

* **Single integer id space** for switches and terminals; ``kind(u)``
  distinguishes them.  Routing tables, flows and LID maps all key on
  these small integers, which keeps the hot loops allocation-free.
* **Directed links.**  A physical cable is two directed links that
  reference each other via :attr:`Link.reverse_id`; fault injection
  disables both at once (a broken AOC kills both directions).
* **Disabling, not deleting.**  Link ids stay stable across fault
  injection so cached routings can be diffed; every traversal helper
  skips disabled links.
* **Terminals are single-homed** within one network plane, mirroring the
  paper's one-HCA-port-per-plane wiring (both planes attach to CPU0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.core.errors import TopologyError
from repro.core.units import QDR_LINK_BANDWIDTH

SWITCH = "switch"
TERMINAL = "terminal"


@dataclass(slots=True)
class Link:
    """One directed link of the fabric.

    Attributes
    ----------
    id:
        Dense index into :attr:`Network.links`.
    src, dst:
        Endpoint node ids.
    capacity:
        Bytes per second in the ``src -> dst`` direction.
    reverse_id:
        Id of the opposite direction of the same cable, or ``-1`` for a
        simplex link (not used by any generator, but supported).
    enabled:
        ``False`` once fault injection removed the cable.
    meta:
        Free-form annotations, e.g. ``{"dim": 0}`` on HyperX links or
        ``{"tier": "up"}`` on tree links; routing engines use these.
    """

    id: int
    src: int
    dst: int
    capacity: float
    reverse_id: int = -1
    enabled: bool = True
    meta: dict[str, Any] = field(default_factory=dict)


class Network:
    """Mutable multigraph of switches, terminals and directed links."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self.links: list[Link] = []
        #: Monotonic fabric-state counter: bumped by every structural or
        #: capacity mutation that goes through the Network API, so live
        #: views (:class:`~repro.topology.state.FabricState`) can cache
        #: derived arrays and invalidate them cheaply.
        self.version = 0
        self._kind: list[str] = []
        self._meta: list[dict[str, Any]] = []
        self._out: list[list[int]] = []
        self._in: list[list[int]] = []
        self._switches: list[int] = []
        self._terminals: list[int] = []

    # --- construction -----------------------------------------------------
    def _add_node(self, kind: str, meta: dict[str, Any]) -> int:
        node = len(self._kind)
        self._kind.append(kind)
        self._meta.append(meta)
        self._out.append([])
        self._in.append([])
        (self._switches if kind == SWITCH else self._terminals).append(node)
        return node

    def add_switch(self, **meta: Any) -> int:
        """Create a switch and return its node id."""
        return self._add_node(SWITCH, meta)

    def add_terminal(self, **meta: Any) -> int:
        """Create a terminal (compute node / HCA port) and return its id."""
        return self._add_node(TERMINAL, meta)

    def add_link(
        self,
        u: int,
        v: int,
        capacity: float = QDR_LINK_BANDWIDTH,
        **meta: Any,
    ) -> tuple[int, int]:
        """Add a full-duplex cable between ``u`` and ``v``.

        Returns the ids of the two directed links ``(u->v, v->u)``.  Both
        carry a shallow copy of ``meta``.
        """
        if u == v:
            raise TopologyError(f"self-loop on node {u}")
        self._check_node(u)
        self._check_node(v)
        if self._kind[u] == TERMINAL and self._kind[v] == TERMINAL:
            raise TopologyError(f"terminal-terminal cable {u}-{v} is not allowed")
        for t in (u, v):
            if self._kind[t] == TERMINAL and self._out[t]:
                raise TopologyError(
                    f"terminal {t} is already attached; terminals are single-homed"
                )
        fwd = Link(len(self.links), u, v, capacity, meta=dict(meta))
        self.links.append(fwd)
        rev = Link(len(self.links), v, u, capacity, meta=dict(meta))
        self.links.append(rev)
        fwd.reverse_id = rev.id
        rev.reverse_id = fwd.id
        self._out[u].append(fwd.id)
        self._in[v].append(fwd.id)
        self._out[v].append(rev.id)
        self._in[u].append(rev.id)
        self.version += 1
        return fwd.id, rev.id

    def _check_node(self, u: int) -> None:
        if not 0 <= u < len(self._kind):
            raise TopologyError(f"unknown node id {u}")

    # --- node queries -------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._kind)

    @property
    def num_switches(self) -> int:
        return len(self._switches)

    @property
    def num_terminals(self) -> int:
        return len(self._terminals)

    @property
    def switches(self) -> list[int]:
        """Switch node ids in creation order."""
        return list(self._switches)

    @property
    def terminals(self) -> list[int]:
        """Terminal node ids in creation order."""
        return list(self._terminals)

    def kind(self, u: int) -> str:
        self._check_node(u)
        return self._kind[u]

    def is_switch(self, u: int) -> bool:
        return self.kind(u) == SWITCH

    def is_terminal(self, u: int) -> bool:
        return self.kind(u) == TERMINAL

    def node_meta(self, u: int) -> dict[str, Any]:
        self._check_node(u)
        return self._meta[u]

    # --- link queries -------------------------------------------------------
    def link(self, link_id: int) -> Link:
        return self.links[link_id]

    def out_links(self, u: int) -> list[Link]:
        """Enabled links leaving ``u``."""
        return [self.links[i] for i in self._out[u] if self.links[i].enabled]

    def in_links(self, u: int) -> list[Link]:
        """Enabled links arriving at ``u``."""
        return [self.links[i] for i in self._in[u] if self.links[i].enabled]

    def all_out_links(self, u: int) -> list[Link]:
        """All links leaving ``u``, including disabled ones."""
        return [self.links[i] for i in self._out[u]]

    def links_between(self, u: int, v: int) -> list[Link]:
        """Enabled directed links ``u -> v`` (may be several: trunking)."""
        return [
            self.links[i]
            for i in self._out[u]
            if self.links[i].enabled and self.links[i].dst == v
        ]

    def neighbors(self, u: int) -> list[int]:
        """Distinct neighbours of ``u`` over enabled links."""
        seen: dict[int, None] = {}
        for link in self.out_links(u):
            seen.setdefault(link.dst)
        return list(seen)

    def iter_links(self, enabled_only: bool = True) -> Iterator[Link]:
        for link in self.links:
            if link.enabled or not enabled_only:
                yield link

    def degree(self, u: int) -> int:
        """Number of enabled links leaving ``u`` (the used port count)."""
        return len(self.out_links(u))

    # --- terminal attachment -------------------------------------------------
    def attached_switch(self, terminal: int) -> int:
        """The switch a terminal hangs off.  Raises if detached."""
        if not self.is_terminal(terminal):
            raise TopologyError(f"node {terminal} is not a terminal")
        for link in self.out_links(terminal):
            if self.is_switch(link.dst):
                return link.dst
        raise TopologyError(f"terminal {terminal} has no enabled switch link")

    def attached_terminals(self, switch: int) -> list[int]:
        """Terminals hanging off a switch, in port order."""
        if not self.is_switch(switch):
            raise TopologyError(f"node {switch} is not a switch")
        return [
            link.dst for link in self.out_links(switch) if self.is_terminal(link.dst)
        ]

    def terminal_uplink(self, terminal: int) -> Link:
        """The (single) enabled terminal -> switch link."""
        for link in self.out_links(terminal):
            if self.is_switch(link.dst):
                return link
        raise TopologyError(f"terminal {terminal} has no enabled switch link")

    # --- fault handling -------------------------------------------------------
    def disable_cable(self, link_id: int) -> None:
        """Disable both directions of the cable containing ``link_id``."""
        link = self.links[link_id]
        link.enabled = False
        if link.reverse_id >= 0:
            self.links[link.reverse_id].enabled = False
        self.version += 1

    def enable_cable(self, link_id: int) -> None:
        """Re-enable both directions of the cable containing ``link_id``."""
        link = self.links[link_id]
        link.enabled = True
        if link.reverse_id >= 0:
            self.links[link.reverse_id].enabled = True
        self.version += 1

    def set_capacity(
        self, link_id: int, capacity: float, both_directions: bool = True
    ) -> None:
        """Change a link's capacity through the versioned API.

        A capacity of 0 models a cable that is present but carries
        nothing (the ">10,000 symbol errors" end state before the cable
        is pulled); the simulator refuses flows over such links instead
        of letting them finish instantly.  Negative capacities are
        rejected.
        """
        if capacity < 0:
            raise TopologyError(
                f"link {link_id} capacity must be >= 0, got {capacity}"
            )
        link = self.links[link_id]
        link.capacity = float(capacity)
        if both_directions and link.reverse_id >= 0:
            self.links[link.reverse_id].capacity = float(capacity)
        self.version += 1

    def switch_cables(self) -> list[Link]:
        """One representative direction per enabled switch-to-switch cable."""
        return [
            link
            for link in self.links
            if link.enabled
            and link.id < link.reverse_id
            and self.is_switch(link.src)
            and self.is_switch(link.dst)
        ]

    # --- path helpers -----------------------------------------------------------
    def path_nodes(self, path: Iterable[int]) -> list[int]:
        """Expand a link-id path into the node sequence it visits."""
        nodes: list[int] = []
        for link_id in path:
            link = self.links[link_id]
            if not nodes:
                nodes.append(link.src)
            elif nodes[-1] != link.src:
                raise TopologyError(
                    f"discontinuous path: link {link_id} starts at {link.src}, "
                    f"previous hop ended at {nodes[-1]}"
                )
            nodes.append(link.dst)
        return nodes

    def path_hops(self, path: Iterable[int]) -> int:
        """Number of switch-to-switch hops on a link-id path."""
        hops = 0
        for link_id in path:
            link = self.links[link_id]
            if self.is_switch(link.src) and self.is_switch(link.dst):
                hops += 1
        return hops

    # --- validation / export -----------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`."""
        for t in self._terminals:
            links = self.out_links(t)
            if len(links) != 1:
                raise TopologyError(
                    f"terminal {t} has {len(links)} enabled links, expected 1"
                )
        for link in self.links:
            rev = self.links[link.reverse_id] if link.reverse_id >= 0 else None
            if rev is not None and (rev.src, rev.dst) != (link.dst, link.src):
                raise TopologyError(f"link {link.id} reverse pointer is inconsistent")
            if link.capacity <= 0:
                raise TopologyError(f"link {link.id} has non-positive capacity")

    def to_networkx(self, switches_only: bool = False):
        """Export the enabled subgraph as a :class:`networkx.MultiDiGraph`."""
        import networkx as nx

        g = nx.MultiDiGraph(name=self.name)
        for u in range(self.num_nodes):
            if switches_only and not self.is_switch(u):
                continue
            g.add_node(u, kind=self._kind[u], **self._meta[u])
        for link in self.iter_links():
            if switches_only and not (
                self.is_switch(link.src) and self.is_switch(link.dst)
            ):
                continue
            g.add_edge(link.src, link.dst, key=link.id, capacity=link.capacity)
        return g

    def __repr__(self) -> str:
        enabled = sum(1 for _ in self.iter_links())
        return (
            f"Network({self.name!r}, switches={self.num_switches}, "
            f"terminals={self.num_terminals}, directed_links={enabled})"
        )
