"""Generalised HyperX topology generator (Ahn et al., SC '09).

A HyperX is an L-dimensional integer lattice of switches where every
dimension is *fully connected*: two switches are cabled iff their
coordinate vectors differ in exactly one position.  Each switch hosts
``T`` terminals, and dimension ``d`` may trunk ``K[d]`` parallel cables
between each switch pair.  HyperCube (S=2 everywhere) and Flattened
Butterfly are special cases.

The paper's instance is ``hyperx(shape=(12, 8), terminals_per_switch=7)``
— 96 switches, 672 compute nodes, 57.1% relative bisection bandwidth.

Coordinates are stored in each switch's ``meta["coord"]`` and the
dimension of each switch-to-switch link in ``meta["dim"]``; PARX's
quadrant rules and the DAL baseline both rely on these annotations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.errors import TopologyError
from repro.core.units import QDR_LINK_BANDWIDTH
from repro.topology.network import Network


@dataclass(frozen=True)
class HyperXSpec:
    """Construction parameters of a HyperX network.

    Attributes
    ----------
    shape:
        Switches per dimension, ``S = (s_1, ..., s_L)``.
    terminals_per_switch:
        ``T`` in Ahn et al.'s notation.
    trunking:
        Cables per switch pair in each dimension, ``K = (k_1, ..., k_L)``;
        defaults to 1 everywhere.
    link_bandwidth:
        Capacity of one cable, bytes/second.
    """

    shape: tuple[int, ...]
    terminals_per_switch: int
    trunking: tuple[int, ...] | None = None
    link_bandwidth: float = QDR_LINK_BANDWIDTH

    def __post_init__(self) -> None:
        if not self.shape:
            raise TopologyError("HyperX needs at least one dimension")
        if any(s < 2 for s in self.shape):
            raise TopologyError(f"each HyperX dimension needs >= 2 switches: {self.shape}")
        if self.terminals_per_switch < 0:
            raise TopologyError("terminals_per_switch must be non-negative")
        if self.trunking is not None and len(self.trunking) != len(self.shape):
            raise TopologyError("trunking must have one entry per dimension")
        if self.trunking is not None and any(k < 1 for k in self.trunking):
            raise TopologyError(f"trunking factors must be >= 1: {self.trunking}")

    @property
    def num_switches(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def num_terminals(self) -> int:
        return self.num_switches * self.terminals_per_switch

    @property
    def switch_radix(self) -> int:
        """Ports used per switch: intra-dimension links plus terminals."""
        k = self.trunking or (1,) * len(self.shape)
        return sum((s - 1) * kk for s, kk in zip(self.shape, k)) + self.terminals_per_switch


def hyperx(
    shape: tuple[int, ...] | list[int],
    terminals_per_switch: int,
    trunking: tuple[int, ...] | None = None,
    link_bandwidth: float = QDR_LINK_BANDWIDTH,
    name: str | None = None,
) -> Network:
    """Build a HyperX :class:`~repro.topology.network.Network`.

    Switch meta carries ``coord`` (lattice coordinate tuple) and
    ``index`` (row-major linear index); terminal meta carries ``switch``
    (host switch id) and ``slot`` (0..T-1 within the switch).  Links
    between switches carry ``dim`` — the single differing dimension.
    """
    spec = HyperXSpec(tuple(shape), terminals_per_switch, trunking, link_bandwidth)
    trunk = spec.trunking or (1,) * len(spec.shape)
    label = name or "hyperx-" + "x".join(map(str, spec.shape))
    net = Network(name=label)

    coords = list(itertools.product(*(range(s) for s in spec.shape)))
    switch_of: dict[tuple[int, ...], int] = {}
    for index, coord in enumerate(coords):
        switch_of[coord] = net.add_switch(coord=coord, index=index)

    # Fully connect each dimension.  Iterate pairs (a < b) along one axis
    # with all other coordinates fixed; ``add_link`` creates both
    # directions, so each unordered pair is visited once.
    for dim, size in enumerate(spec.shape):
        for coord in coords:
            if coord[dim] != 0:
                continue  # enumerate each "row" once, from its 0 entry
            row = [
                switch_of[coord[:dim] + (i,) + coord[dim + 1 :]] for i in range(size)
            ]
            for a, b in itertools.combinations(row, 2):
                for _ in range(trunk[dim]):
                    net.add_link(a, b, capacity=link_bandwidth, dim=dim)

    for coord in coords:
        sw = switch_of[coord]
        for slot in range(spec.terminals_per_switch):
            t = net.add_terminal(switch=sw, slot=slot, coord=coord)
            net.add_link(t, sw, capacity=link_bandwidth)

    return net


def hyperx_shape_of(net: Network) -> tuple[int, ...]:
    """Recover the lattice shape from a network built by :func:`hyperx`."""
    best: tuple[int, ...] | None = None
    for sw in net.switches:
        coord = net.node_meta(sw).get("coord")
        if coord is None:
            raise TopologyError(f"switch {sw} lacks a HyperX coordinate")
        if best is None:
            best = tuple(c + 1 for c in coord)
        else:
            best = tuple(max(b, c + 1) for b, c in zip(best, coord))
    if best is None:
        raise TopologyError("network has no switches")
    return best


def hyperx_quadrant(coord: tuple[int, ...], shape: tuple[int, ...]) -> int:
    """Quadrant (Q0..Q3) of a 2-D HyperX switch coordinate (paper Fig. 3).

    The paper splits both (even) dimensions at their midpoint.  The
    orientation is pinned down by requiring Table 1 to satisfy routing
    criteria (1) and (2) — small-message LID choices must preserve a
    minimal path while large-message choices must force a detour for
    same/adjacent-quadrant pairs.  That yields: Q0 = top-left,
    Q1 = bottom-left, Q2 = bottom-right, Q3 = top-right, where
    dimension 0 is "x" (0 = left) and dimension 1 is "y" (0 = top).
    """
    if len(coord) != 2 or len(shape) != 2:
        raise TopologyError("quadrants are defined for 2-D HyperX only")
    sx, sy = shape
    if sx % 2 or sy % 2:
        raise TopologyError(
            f"PARX quadrants need even dimensions, got shape {shape}"
        )
    x, y = coord
    left = x < sx // 2
    top = y < sy // 2
    if left and top:
        return 0
    if left and not top:
        return 1
    if not left and not top:
        return 2
    return 3


def quadrant_halves() -> dict[str, set[int]]:
    """Map each half name to the quadrant ids it contains.

    Used by PARX rules R1-R4: ``left`` = {Q0, Q1}, ``right`` = {Q2, Q3},
    ``top`` = {Q0, Q3}, ``bottom`` = {Q1, Q2}.
    """
    return {
        "left": {0, 1},
        "right": {2, 3},
        "top": {0, 3},
        "bottom": {1, 2},
    }


def coord_in_half(coord: tuple[int, int], shape: tuple[int, int], half: str) -> bool:
    """Whether a 2-D coordinate lies in the named half of the lattice."""
    sx, sy = shape
    x, y = coord
    if half == "left":
        return x < sx // 2
    if half == "right":
        return x >= sx // 2
    if half == "top":
        return y < sy // 2
    if half == "bottom":
        return y >= sy // 2
    raise TopologyError(f"unknown half {half!r}")
