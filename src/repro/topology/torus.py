"""HyperX relatives: mesh/torus, hypercube, flattened butterfly.

These generators exist because the HyperX paper positions the topology
as "a generalisation of all flat integer-lattice networks where
dimensions are fully connected" (section 2.2): a hypercube is a HyperX
with two switches per dimension, and the flattened butterfly is the
full-bisection special case.  Tori are the contrasting lattice family
(*ring*-connected dimensions) used in tests and in the topology-explorer
example to reproduce the cost/diameter discussion of section 1.
"""

from __future__ import annotations

import itertools

from repro.core.errors import TopologyError
from repro.core.units import QDR_LINK_BANDWIDTH
from repro.topology.hyperx import hyperx
from repro.topology.network import Network


def torus(
    shape: tuple[int, ...] | list[int],
    terminals_per_switch: int = 1,
    wrap: bool = True,
    link_bandwidth: float = QDR_LINK_BANDWIDTH,
    name: str | None = None,
) -> Network:
    """Build a k-ary n-cube (torus) or mesh (``wrap=False``).

    Each dimension is ring-connected (or line-connected for a mesh), the
    canonical contrast to HyperX's fully connected dimensions.
    """
    shape = tuple(shape)
    if not shape or any(s < 2 for s in shape):
        raise TopologyError(f"torus dimensions must all be >= 2: {shape}")
    label = name or ("torus-" if wrap else "mesh-") + "x".join(map(str, shape))
    net = Network(name=label)

    coords = list(itertools.product(*(range(s) for s in shape)))
    switch_of = {
        coord: net.add_switch(coord=coord, index=i) for i, coord in enumerate(coords)
    }

    for dim, size in enumerate(shape):
        for coord in coords:
            nxt = coord[dim] + 1
            if nxt == size:
                if not wrap or size == 2:
                    continue  # size-2 rings would duplicate the single cable
                nxt = 0
            neighbor = coord[:dim] + (nxt,) + coord[dim + 1 :]
            net.add_link(
                switch_of[coord], switch_of[neighbor],
                capacity=link_bandwidth, dim=dim,
            )

    for coord in coords:
        sw = switch_of[coord]
        for slot in range(terminals_per_switch):
            t = net.add_terminal(switch=sw, slot=slot, coord=coord)
            net.add_link(t, sw, capacity=link_bandwidth)

    return net


def hypercube(
    dimensions: int,
    terminals_per_switch: int = 1,
    link_bandwidth: float = QDR_LINK_BANDWIDTH,
) -> Network:
    """An n-dimensional hypercube — exactly ``hyperx((2,)*n, T)``.

    Provided as a named constructor because the paper calls out the
    HyperCube as a HyperX special case.
    """
    if dimensions < 1:
        raise TopologyError("hypercube needs at least one dimension")
    return hyperx(
        (2,) * dimensions,
        terminals_per_switch,
        link_bandwidth=link_bandwidth,
        name=f"hypercube-{dimensions}d",
    )


def flattened_butterfly(
    radix: int,
    dimensions: int,
    link_bandwidth: float = QDR_LINK_BANDWIDTH,
) -> Network:
    """A flattened butterfly: HyperX with T equal to the dimension size.

    Flattening a k-ary n-fly yields a HyperX with ``shape=(k,)*(n-1)``
    and ``k`` terminals per switch (full bisection per dimension).
    """
    if radix < 2 or dimensions < 2:
        raise TopologyError("flattened butterfly needs radix >= 2, dimensions >= 2")
    return hyperx(
        (radix,) * (dimensions - 1),
        radix,
        link_bandwidth=link_bandwidth,
        name=f"flat-butterfly-{radix}ary-{dimensions}fly",
    )
