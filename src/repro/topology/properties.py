"""Structural topology metrics: diameter, path lengths, bisection.

These back the paper's architecture discussion (section 2): Fat-Trees
pay growing hop counts as levels increase, HyperX buys diameter L at the
price of reduced worst-case throughput; the 12x8 T=7 instance has 57.1%
relative bisection bandwidth.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.errors import TopologyError
from repro.core.rng import make_rng
from repro.topology.network import Network


def _switch_adjacency(net: Network) -> dict[int, list[int]]:
    adj: dict[int, list[int]] = {sw: [] for sw in net.switches}
    for link in net.iter_links():
        if net.is_switch(link.src) and net.is_switch(link.dst):
            adj[link.src].append(link.dst)
    return adj


def _bfs_depths(adj: dict[int, list[int]], source: int) -> dict[int, int]:
    depth = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if v not in depth:
                depth[v] = depth[u] + 1
                queue.append(v)
    return depth


def diameter(net: Network) -> int:
    """Hop-count diameter of the switch-to-switch graph.

    Raises :class:`TopologyError` if the switch graph is disconnected
    (a disconnected fabric has no meaningful diameter).
    """
    adj = _switch_adjacency(net)
    if not adj:
        raise TopologyError("network has no switches")
    worst = 0
    n = len(adj)
    for source in adj:
        depth = _bfs_depths(adj, source)
        if len(depth) != n:
            raise TopologyError("switch graph is disconnected")
        worst = max(worst, max(depth.values()))
    return worst


def average_shortest_path(net: Network, sample: int | None = None, seed: int = 0) -> float:
    """Mean switch-to-switch shortest-path length.

    For big fabrics pass ``sample`` to BFS from a random subset of source
    switches instead of all of them.
    """
    adj = _switch_adjacency(net)
    if len(adj) < 2:
        return 0.0
    sources = list(adj)
    if sample is not None and sample < len(sources):
        rng = make_rng(seed)
        sources = [sources[i] for i in rng.choice(len(sources), sample, replace=False)]
    total = 0
    count = 0
    n = len(adj)
    for source in sources:
        depth = _bfs_depths(adj, source)
        if len(depth) != n:
            raise TopologyError("switch graph is disconnected")
        total += sum(depth.values())
        count += n - 1
    return total / count if count else 0.0


def hyperx_bisection_fraction(
    shape: tuple[int, ...],
    terminals_per_switch: int,
    trunking: tuple[int, ...] | None = None,
) -> float:
    """Closed-form relative bisection bandwidth of a HyperX.

    Bisect the lattice across dimension ``d``: the cut crosses
    ``ceil(s_d/2) * floor(s_d/2) * K_d * prod(other dims)`` cables, and a
    full-bisection network would need ``T * prod(S) / 2`` terminal
    bandwidths across the cut (each of the N/2 terminals on one side
    driving a flow to the other side).  The network's relative bisection
    is the minimum over dimensions.  For the paper's 12x8 T=7:
    min(6*6*8, 4*4*12) / (7*96/2) = 192/336 = 0.5714.
    """
    if terminals_per_switch <= 0:
        raise TopologyError("terminals_per_switch must be positive")
    trunk = trunking or (1,) * len(shape)
    total_switches = int(np.prod(shape))
    demand = terminals_per_switch * total_switches / 2
    best = float("inf")
    for d, s in enumerate(shape):
        crossing = (s // 2) * ((s + 1) // 2) * trunk[d] * (total_switches // s)
        best = min(best, crossing / demand)
    return best


def bisection_fraction(
    net: Network,
    samples: int = 200,
    seed: int = 0,
) -> float:
    """Estimated relative bisection bandwidth of an arbitrary network.

    Evaluates the min-cut capacity between the two sides of candidate
    balanced bipartitions — ``samples`` random ones plus, when switches
    carry lattice ``coord`` annotations, every axis-aligned split (the
    adversarial cuts for HyperX/torus-family networks, which random
    bipartitions essentially never find) — and reports the smallest,
    normalised by the demand ``(#terminals / 2) * terminal_bandwidth``.
    An upper bound on the true (NP-hard) min bisection; exact for
    HyperX, where an axis split is optimal (Ahn et al.).
    """
    import networkx as nx

    terminals = net.terminals
    if len(terminals) < 2:
        raise TopologyError("need at least two terminals for a bisection")
    rng = make_rng(seed)
    g = nx.DiGraph()
    for link in net.iter_links():
        cap = link.capacity
        if g.has_edge(link.src, link.dst):
            g[link.src][link.dst]["capacity"] += cap
        else:
            g.add_edge(link.src, link.dst, capacity=cap)
    term_bw = net.terminal_uplink(terminals[0]).capacity
    demand = (len(terminals) // 2) * term_bw

    def cut_value(side_a, side_b) -> float:
        g.add_node("S")
        g.add_node("T")
        for t in side_a:
            g.add_edge("S", int(t), capacity=float("inf"))
        for t in side_b:
            g.add_edge(int(t), "T", capacity=float("inf"))
        cut, _ = nx.minimum_cut(g, "S", "T")
        g.remove_node("S")
        g.remove_node("T")
        return cut / demand

    best = float("inf")
    half = len(terminals) // 2
    terminals_arr = np.asarray(terminals)

    # Structured candidates: axis-aligned lattice splits (the HyperX
    # worst case) whenever coordinates are available.
    coords = {
        t: net.node_meta(net.attached_switch(t)).get("coord")
        for t in terminals
    }
    if all(c is not None for c in coords.values()):
        dims = len(next(iter(coords.values())))
        for d in range(dims):
            ordered = sorted(terminals, key=lambda t: (coords[t][d], t))
            best = min(best, cut_value(ordered[:half], ordered[half:]))

    for _ in range(samples):
        perm = rng.permutation(len(terminals_arr))
        best = min(
            best,
            cut_value(terminals_arr[perm[:half]], terminals_arr[perm[half:]]),
        )
    return best


def link_count(net: Network) -> int:
    """Number of enabled directed links."""
    return sum(1 for _ in net.iter_links())


def cable_count(net: Network, switches_only: bool = False) -> int:
    """Number of enabled full-duplex cables (pairs of directed links)."""
    if switches_only:
        return len(net.switch_cables())
    return sum(
        1 for link in net.iter_links() if link.reverse_id > link.id
    )
