"""The paper's rewired TSUBAME2 system ("T2HX"): both network planes.

Section 2.3: the dual-plane machine has 672 compute nodes.  Plane 1 is
the original QDR InfiniBand 3-level Fat-Tree (48 edge switches hosting
14 nodes each, 18 uplinks into 12 director switches); plane 2 was
re-cabled into a 12x8 2-D HyperX with 7 nodes per switch (96 edge
switches, 57.1% relative bisection).  Both planes were imperfect: 15 of
684 AOCs missing from the HyperX, 197 of 2662 links missing from the
Fat-Tree.

The builders here return either pristine or faithfully degraded planes;
every experiment in :mod:`repro.experiments` uses them.  Scaled-down
variants keep the same shape ratios so tests and benches can run small.
"""

from __future__ import annotations

from repro.core.rng import derive_seed
from repro.topology.fattree import three_level_fattree
from repro.topology.faults import inject_cable_faults
from repro.topology.hyperx import hyperx
from repro.topology.network import Network

#: Compute nodes in the rewired system.
T2HX_NUM_NODES = 672
#: HyperX lattice shape of plane 2.
T2HX_HYPERX_SHAPE = (12, 8)
#: Compute nodes per HyperX switch.
T2HX_NODES_PER_SWITCH = 7
#: AOCs absent from the full 12x8 HyperX (section 2.3).
T2HX_HYPERX_MISSING_CABLES = 15
#: Links missing from the Fat-Tree plane (section 2.3).
T2HX_FATTREE_MISSING_CABLES = 197


def t2hx_hyperx(
    with_faults: bool = False,
    seed: int = 0,
    scale: float = 1,
) -> Network:
    """Build the 12x8 HyperX plane (optionally with the 15 missing AOCs).

    ``scale`` > 1 shrinks both dimensions by roughly that factor while
    keeping them even (PARX requires even dimensions), for quick tests:
    scale=2 gives a 6x4 HyperX with 7 nodes per switch (168 nodes).
    Fractional scales grow the plane the same way — scale=0.25 gives a
    48x32 HyperX (1536 switches, 10752 endpoints) for scale benches.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    sx = max(2, _even(int(T2HX_HYPERX_SHAPE[0] // scale)))
    sy = max(2, _even(int(T2HX_HYPERX_SHAPE[1] // scale)))
    net = hyperx(
        (sx, sy),
        T2HX_NODES_PER_SWITCH,
        name=f"t2hx-hyperx-{sx}x{sy}",
    )
    if with_faults:
        # The paper is missing 15 of the full plane's 864 switch cables
        # (the 684 figure counts only the optical inter-rack subset);
        # keep that ratio under scaling so a scale-1 build loses 15.
        faults = paper_fault_count("hyperx", net)
        inject_cable_faults(net, faults, seed=derive_seed(seed, "hyperx-faults"))
    return net


def t2hx_fattree(
    with_faults: bool = False,
    seed: int = 0,
    scale: float = 1,
) -> Network:
    """Build the 3-level Fat-Tree plane (optionally with the 197 faults).

    ``scale`` > 1 shrinks the edge-switch count (and directors
    proportionally); node count tracks the HyperX scaling so both planes
    keep hosting the same machine.  Fractional scales grow it instead.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    num_edges = max(2, int(48 // (scale * scale)))
    num_directors = max(1, int(12 // (scale * scale)))
    net = three_level_fattree(
        num_edge_switches=num_edges,
        terminals_per_edge=14,
        uplinks_per_edge=18,
        num_directors=num_directors,
        name=f"t2hx-fattree-{num_edges}edges",
    )
    if with_faults:
        # 197 of the paper's 2662 Fat-Tree links were dead; apply the
        # same fault fraction to our (smaller) director-internal model.
        faults = paper_fault_count("fattree", net)
        inject_cable_faults(net, faults, seed=derive_seed(seed, "fattree-faults"))
    return net


def paper_fault_count(topology: str, net: Network) -> int:
    """The paper's missing-cable count scaled to ``net``'s size.

    Section 2.3's degradation levels — 15 of the HyperX plane's 864
    switch cables, 197 of the Fat-Tree's 2662 links — expressed as the
    equivalent count on a (possibly scaled-down) plane; the resilience
    sweep multiplies this to explore above- and below-paper fault
    levels.
    """
    total = len(net.switch_cables())
    if topology == "hyperx":
        return max(1, round(T2HX_HYPERX_MISSING_CABLES * total / 864))
    if topology == "fattree":
        return max(1, round(T2HX_FATTREE_MISSING_CABLES * total / 2662))
    raise ValueError(f"unknown topology {topology!r}")


def t2hx_planes(
    with_faults: bool = False,
    seed: int = 0,
    scale: float = 1,
) -> tuple[Network, Network]:
    """Both planes of the dual-plane machine: ``(fat_tree, hyperx)``.

    Terminal ``i`` of the Fat-Tree plane and terminal ``i`` of the
    HyperX plane are the two HCA ports of the same physical compute
    node; experiments address compute nodes by that shared index.
    """
    ft = t2hx_fattree(with_faults=with_faults, seed=seed, scale=scale)
    hx = t2hx_hyperx(with_faults=with_faults, seed=seed, scale=scale)
    n = min(ft.num_terminals, hx.num_terminals)
    if ft.num_terminals != hx.num_terminals:
        # Scaled planes can disagree slightly; trim bookkeeping to the
        # common node count (experiments only use the first n terminals).
        ft.node_meta(0)["usable_nodes"] = n
        hx.node_meta(0)["usable_nodes"] = n
    return ft, hx


def usable_nodes(ft: Network, hx: Network) -> int:
    """Number of compute nodes present in both planes."""
    return min(ft.num_terminals, hx.num_terminals)


def _even(x: int) -> int:
    return x if x % 2 == 0 else x - 1
