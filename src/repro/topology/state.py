"""Live fabric state: a versioned view of link capacities and health.

Every consumer that needs "the capacity of link *l* right now" — the
flow simulator, the linter's load estimator, resilience sweeps — used to
take a private snapshot of ``net.links`` and drift out of date the
moment fault injection ran.  :class:`FabricState` replaces those
snapshots with a single cached view keyed on :attr:`Network.version`:
reads are O(1) numpy lookups, and any mutation that goes through the
Network API (``disable_cable``, ``enable_cable``, ``set_capacity``,
``add_link``) invalidates the cache automatically.

Direct attribute writes (``link.capacity = x``) are versioned too:
:class:`~repro.topology.network.Link` exposes ``capacity``/``enabled``
as properties whose setters bump the owning network's counter, so the
cheap version check suffices everywhere and nobody needs a defensive
``force=True`` refresh per phase.  ``force=True`` survives for tests
and for exotic callers that mutate private ``Link`` fields.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.topology.network import Network

__all__ = ["FabricState"]


class FabricState:
    """Cached, auto-refreshing view of a :class:`Network`'s link state.

    Attributes are recomputed lazily whenever the network's version
    counter moves, so holding a ``FabricState`` across fault injection
    is safe — the next read sees the degraded fabric.
    """

    def __init__(self, net: Network) -> None:
        self.net = net
        self._version = -1  # sentinel: refresh on first read
        self._capacities: np.ndarray = np.empty(0)
        self._disabled_mask: np.ndarray = np.empty(0, dtype=bool)
        self._nonpositive_mask: np.ndarray = np.empty(0, dtype=bool)
        self._disabled: frozenset[int] = frozenset()
        self._nonpositive: frozenset[int] = frozenset()

    # --- cache maintenance ------------------------------------------------
    def refresh(self, force: bool = False) -> bool:
        """Recompute derived arrays if the network changed.

        Returns ``True`` when a recompute happened.  ``force=True``
        recomputes unconditionally, catching mutations that bypassed the
        versioned Network API.
        """
        net = self.net
        if not force and self._version == net.version:
            return False
        n = len(net.links)
        caps = np.fromiter(
            (link.capacity for link in net.links), dtype=float, count=n
        )
        enabled = np.fromiter(
            (link.enabled for link in net.links), dtype=bool, count=n
        )
        self._capacities = caps
        self._disabled_mask = ~enabled
        self._nonpositive_mask = caps <= 0
        self._disabled = frozenset(np.flatnonzero(~enabled).tolist())
        self._nonpositive = frozenset(
            np.flatnonzero(self._nonpositive_mask).tolist()
        )
        self._version = net.version
        return True

    # --- reads ------------------------------------------------------------
    @property
    def capacities(self) -> np.ndarray:
        """Per-link capacity array, indexed by link id (live)."""
        self.refresh()
        return self._capacities

    @property
    def disabled(self) -> frozenset[int]:
        """Ids of currently disabled links."""
        self.refresh()
        return self._disabled

    @property
    def nonpositive(self) -> frozenset[int]:
        """Ids of enabled-but-dead links (capacity <= 0)."""
        self.refresh()
        return self._nonpositive

    @property
    def disabled_mask(self) -> np.ndarray:
        """Boolean per-link-id "is disabled" array (live)."""
        self.refresh()
        return self._disabled_mask

    @property
    def nonpositive_mask(self) -> np.ndarray:
        """Boolean per-link-id "capacity <= 0" array (live)."""
        self.refresh()
        return self._nonpositive_mask

    def disabled_on(self, path: Iterable[int]) -> list[int]:
        """Link ids on ``path`` that are disabled."""
        self.refresh()
        return [lid for lid in path if lid in self._disabled]

    def nonpositive_on(self, path: Iterable[int]) -> list[int]:
        """Link ids on ``path`` that are enabled but carry nothing."""
        self.refresh()
        return [
            lid
            for lid in path
            if lid not in self._disabled and lid in self._nonpositive
        ]

    def __repr__(self) -> str:
        self.refresh()
        return (
            f"FabricState(links={len(self._capacities)}, "
            f"disabled={len(self._disabled)}, version={self._version})"
        )
