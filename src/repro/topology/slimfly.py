"""Slim Fly topology (Besta & Hoefler, SC '14) — the paper's cited [9].

Section 1 groups Slim Fly with the low-diameter alternatives motivating
this study; section 6 lists it among the "proposed, but only studied
theoretically" topologies.  Slim Fly builds diameter-2 networks
approaching the Moore bound from McKay-Miller-Siran (MMS) graphs over a
Galois field GF(q):

* switches are two families of q^2 nodes each, labelled ``(0, x, y)``
  and ``(1, m, c)`` with ``x, y, m, c`` in GF(q);
* with ``xi`` a primitive element, build the generator sets
  ``X  = {1, xi^2, xi^4, ...}`` (even powers) and
  ``X' = {xi, xi^3, ...}`` (odd powers);
* intra-family cables: ``(0,x,y) ~ (0,x,y')``  iff ``y - y'  in X`` and
  ``(1,m,c) ~ (1,m,c')`` iff ``c - c' in X'``;
* inter-family cables: ``(0,x,y) ~ (1,m,c)`` iff ``y = m*x + c``.

For prime ``q = 4k + 1`` (5, 13, 17, 29, ...) this yields the canonical
diameter-2 Slim Fly with network radix ``(3q - 1) / 2``.  The paper's
comparison set in `examples/topology_explorer.py` and the extension
benches use it as the third low-diameter design point next to HyperX
and Dragonfly.

Only prime ``q`` is implemented (GF(q) is plain modular arithmetic);
prime powers would need polynomial field arithmetic for little extra
insight.
"""

from __future__ import annotations

from repro.core.errors import TopologyError
from repro.core.units import QDR_LINK_BANDWIDTH
from repro.topology.network import Network


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    f = 2
    while f * f <= n:
        if n % f == 0:
            return False
        f += 1
    return True


def _primitive_element(q: int) -> int:
    """Smallest primitive root of GF(q), q prime."""
    order = q - 1
    factors = set()
    n = order
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.add(f)
            n //= f
        f += 1
    if n > 1:
        factors.add(n)
    for g in range(2, q):
        if all(pow(g, order // p, q) != 1 for p in factors):
            return g
    raise TopologyError(f"no primitive element found for q={q}")


def slimfly_generator_sets(q: int) -> tuple[set[int], set[int]]:
    """The MMS generator sets ``(X, X')`` for prime ``q = 4k + 1``."""
    if not _is_prime(q):
        raise TopologyError(f"slimfly needs prime q, got {q}")
    if q % 4 != 1:
        raise TopologyError(
            f"this construction needs q = 4k + 1 (5, 13, 17, ...); got {q}"
        )
    xi = _primitive_element(q)
    x_set = {pow(xi, 2 * i, q) for i in range((q - 1) // 2)}
    xp_set = {pow(xi, 2 * i + 1, q) for i in range((q - 1) // 2)}
    return x_set, xp_set


def slimfly(
    q: int,
    terminals_per_switch: int | None = None,
    link_bandwidth: float = QDR_LINK_BANDWIDTH,
) -> Network:
    """Build the MMS Slim Fly for prime ``q = 4k + 1``.

    ``terminals_per_switch`` defaults to the load-balanced choice
    ``ceil(network_radix / 2)`` from the Slim Fly paper.  Switch meta
    carries ``family``, ``coord`` (the 2-D GF(q) label) for the
    explorer; cables carry ``scope`` ("intra" or "inter").
    """
    x_set, xp_set = slimfly_generator_sets(q)
    radix = (3 * q - 1) // 2
    t = terminals_per_switch
    if t is None:
        t = -(-radix // 2)  # ceil(radix / 2)
    if t < 0:
        raise TopologyError("terminals_per_switch must be non-negative")

    net = Network(name=f"slimfly-q{q}")
    switch_of: dict[tuple[int, int, int], int] = {}
    for fam in (0, 1):
        for a in range(q):
            for b in range(q):
                switch_of[(fam, a, b)] = net.add_switch(
                    family=fam, coord=(a, b)
                )

    # Intra-family: rows connected by the generator sets.
    for fam, gens in ((0, x_set), (1, xp_set)):
        for a in range(q):
            for b1 in range(q):
                for b2 in range(b1 + 1, q):
                    if (b1 - b2) % q in gens or (b2 - b1) % q in gens:
                        net.add_link(
                            switch_of[(fam, a, b1)],
                            switch_of[(fam, a, b2)],
                            capacity=link_bandwidth, scope="intra",
                        )

    # Inter-family: (0, x, y) ~ (1, m, c) iff y = m*x + c (mod q).
    for x in range(q):
        for m in range(q):
            for c in range(q):
                y = (m * x + c) % q
                net.add_link(
                    switch_of[(0, x, y)], switch_of[(1, m, c)],
                    capacity=link_bandwidth, scope="inter",
                )

    for key, sw in switch_of.items():
        for slot in range(t):
            term = net.add_terminal(switch=sw, slot=slot)
            net.add_link(term, sw, capacity=link_bandwidth)
    return net
