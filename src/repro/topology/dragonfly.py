"""Dragonfly topology (Kim et al., ISCA '08) — related-work comparator.

Section 1 of the paper motivates HyperX against the "flies"; the
topology-explorer example and the extension benchmarks compare diameter,
cable counts and throughput of Dragonfly against HyperX and Fat-Tree on
equal terminal counts.  We implement the canonical fully provisioned
dragonfly: groups of ``a`` switches, each switch with ``p`` terminals
and ``h`` global links, groups fully connected internally and one global
cable between every pair of groups per (balanced) assignment.
"""

from __future__ import annotations

import itertools

from repro.core.errors import TopologyError
from repro.core.units import QDR_LINK_BANDWIDTH
from repro.topology.network import Network


def dragonfly(
    switches_per_group: int,
    terminals_per_switch: int,
    global_links_per_switch: int,
    num_groups: int | None = None,
    link_bandwidth: float = QDR_LINK_BANDWIDTH,
    name: str | None = None,
) -> Network:
    """Build a dragonfly ``(a, p, h)`` network.

    ``num_groups`` defaults to the balanced maximum ``a*h + 1``.  Global
    cables are distributed in the standard *palmtree* arrangement: the
    ``j``-th global port of switch ``s`` in group ``g`` connects toward
    group ``(g + s*h + j + 1) mod G``, which spreads the ``a*h`` global
    cables of a group over all other groups as evenly as possible.
    """
    a, p, h = switches_per_group, terminals_per_switch, global_links_per_switch
    if a < 1 or p < 0 or h < 0:
        raise TopologyError(f"invalid dragonfly parameters a={a}, p={p}, h={h}")
    groups = a * h + 1 if num_groups is None else num_groups
    if groups < 1:
        raise TopologyError(f"num_groups must be >= 1, got {groups}")
    if groups > a * h + 1:
        raise TopologyError(
            f"num_groups={groups} exceeds the balanced maximum {a * h + 1}"
        )
    label = name or f"dragonfly-a{a}p{p}h{h}g{groups}"
    net = Network(name=label)

    switch_of: dict[tuple[int, int], int] = {}
    for g, s in itertools.product(range(groups), range(a)):
        switch_of[(g, s)] = net.add_switch(group=g, index=s, coord=(g, s))

    # Intra-group: full mesh over the a switches of each group.
    for g in range(groups):
        for s1, s2 in itertools.combinations(range(a), 2):
            net.add_link(
                switch_of[(g, s1)], switch_of[(g, s2)],
                capacity=link_bandwidth, scope="local",
            )

    # Global cables, one direction of bookkeeping per unordered pair.
    seen: set[tuple[int, int, int, int]] = set()
    for g, s, j in itertools.product(range(groups), range(a), range(h)):
        target_group = (g + s * h + j + 1) % groups
        if target_group == g:
            continue
        # The peer switch/port is the one whose own offset maps back to g.
        back = (g - target_group) % groups - 1
        peer_s, peer_j = divmod(back, h)
        if peer_s >= a:
            continue  # unbalanced configuration: no matching port
        key = tuple(sorted([(g, s, j), (target_group, peer_s, peer_j)]))  # type: ignore[assignment]
        flat = (key[0][0], key[0][1] * h + key[0][2], key[1][0], key[1][1] * h + key[1][2])
        if flat in seen:
            continue
        seen.add(flat)
        net.add_link(
            switch_of[(g, s)], switch_of[(target_group, peer_s)],
            capacity=link_bandwidth, scope="global",
        )

    for g, s in itertools.product(range(groups), range(a)):
        sw = switch_of[(g, s)]
        for slot in range(p):
            t = net.add_terminal(switch=sw, slot=slot, group=g)
            net.add_link(t, sw, capacity=link_bandwidth)

    return net
