"""Folded-Clos / Fat-Tree generators (Petrini & Vanneschi k-ary n-trees).

Two builders cover the paper's needs:

* :func:`k_ary_n_tree` — the textbook construction of Figure 2a: ``n``
  levels of ``k^(n-1)`` radix-``2k`` switches, ``k^n`` terminals.
* :func:`three_level_fattree` — the paper's physical plane: 36-port edge
  switches hosting 14 compute nodes with 18 uplinks into director
  switches, each director modelled as its internal 2-level Clos of
  36-port chips (line + spine cards).  This is a genuine 3-level tree:
  a worst-case route is edge -> line -> spine -> line -> edge.

Switch meta carries ``level`` (0 = edge/leaf, increasing upward) and a
structural ``word`` / ``role``; link meta carries ``tier`` ("up" as seen
from the lower endpoint).  The ftree and Up*/Down* routing engines key
off these annotations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.errors import TopologyError
from repro.core.units import QDR_LINK_BANDWIDTH
from repro.topology.network import Network


@dataclass(frozen=True)
class FatTreeSpec:
    """Construction parameters of a k-ary n-tree."""

    arity: int
    levels: int
    terminals_per_leaf: int | None = None
    num_leaves: int | None = None
    link_bandwidth: float = QDR_LINK_BANDWIDTH

    def __post_init__(self) -> None:
        if self.arity < 2:
            raise TopologyError(f"arity must be >= 2, got {self.arity}")
        if self.levels < 1:
            raise TopologyError(f"levels must be >= 1, got {self.levels}")
        tpl = self.terminals_per_leaf
        if tpl is not None and not 0 <= tpl <= self.arity:
            raise TopologyError(
                f"terminals_per_leaf must be in [0, {self.arity}], got {tpl}"
            )

    @property
    def switches_per_level(self) -> int:
        return self.arity ** (self.levels - 1)


def k_ary_n_tree(
    k: int,
    n: int,
    terminals_per_leaf: int | None = None,
    num_leaves: int | None = None,
    link_bandwidth: float = QDR_LINK_BANDWIDTH,
    name: str | None = None,
) -> Network:
    """Build a k-ary n-tree, optionally pruned/undersubscribed.

    The standard construction has ``n`` levels of ``k^(n-1)`` switches.
    A switch at level ``l`` (0 = leaf) with word ``w`` (a length ``n-1``
    digit string) connects upward to the ``k`` level ``l+1`` switches
    whose words agree with ``w`` everywhere except digit ``l``.

    ``terminals_per_leaf`` (default ``k``) undersubscribes the leaves —
    the paper's original tree had 15 of 18 leaf ports populated, the
    rewired system 14.  ``num_leaves`` keeps only the first that many
    leaf switches (and prunes upper switches that lose all children),
    which models partially populated deployments.
    """
    spec = FatTreeSpec(k, n, terminals_per_leaf, num_leaves, link_bandwidth)
    tpl = k if terminals_per_leaf is None else terminals_per_leaf
    label = name or f"{k}-ary-{n}-tree"
    net = Network(name=label)

    words = list(itertools.product(*(range(k) for _ in range(n - 1))))
    keep_leaves = words if num_leaves is None else words[:num_leaves]
    if num_leaves is not None and num_leaves > len(words):
        raise TopologyError(
            f"num_leaves={num_leaves} exceeds {len(words)} available leaves"
        )

    # Determine which switch words are live at each level: a level l+1
    # switch survives iff at least one live level-l switch connects to it.
    live: list[set[tuple[int, ...]]] = [set(keep_leaves)]
    for level in range(n - 1):
        parents: set[tuple[int, ...]] = set()
        for w in live[level]:
            for digit in range(k):
                parents.add(w[:level] + (digit,) + w[level + 1 :])
        live.append(parents)

    switch_of: dict[tuple[int, tuple[int, ...]], int] = {}
    for level in range(n):
        for w in sorted(live[level]):
            switch_of[(level, w)] = net.add_switch(level=level, word=w, role="tree")

    for level in range(n - 1):
        for w in sorted(live[level]):
            lower = switch_of[(level, w)]
            for digit in range(k):
                upper_word = w[:level] + (digit,) + w[level + 1 :]
                upper = switch_of[(level + 1, upper_word)]
                net.add_link(lower, upper, capacity=link_bandwidth, tier="up")

    for w in sorted(live[0]):
        leaf = switch_of[(0, w)]
        for slot in range(tpl):
            t = net.add_terminal(switch=leaf, slot=slot, leaf_word=w)
            net.add_link(t, leaf, capacity=link_bandwidth)

    return net


def three_level_fattree(
    num_edge_switches: int = 48,
    terminals_per_edge: int = 14,
    uplinks_per_edge: int = 18,
    num_directors: int = 12,
    director_chip_radix: int = 36,
    link_bandwidth: float = QDR_LINK_BANDWIDTH,
    name: str = "t2-fattree",
) -> Network:
    """Build the paper's director-based 3-level Fat-Tree plane.

    ``num_edge_switches`` 36-port edge switches each host
    ``terminals_per_edge`` compute nodes and send ``uplinks_per_edge``
    active optical cables round-robin into ``num_directors`` director
    switches.  Each director is expanded into its internal folded Clos:
    line chips (half their radix down to edges, half up) and spine chips.
    The defaults give the rewired TSUBAME2 plane: 48 edges x 14 nodes =
    672 terminals.

    Levels: 0 = edge, 1 = director line chip, 2 = director spine chip.
    """
    if uplinks_per_edge < 1 or num_directors < 1:
        raise TopologyError("need at least one uplink and one director")
    if terminals_per_edge < 0:
        raise TopologyError("terminals_per_edge must be non-negative")
    if director_chip_radix < 2 or director_chip_radix % 2:
        raise TopologyError("director chips need an even radix >= 2")

    net = Network(name=name)
    edges = [
        net.add_switch(level=0, role="edge", index=i)
        for i in range(num_edge_switches)
    ]

    # Distribute edge uplinks round-robin over directors, so director d
    # receives cables from (edge, uplink) pairs with (e*U + j) % D == d.
    director_ports: list[list[int]] = [[] for _ in range(num_directors)]
    for e in range(num_edge_switches):
        for j in range(uplinks_per_edge):
            director_ports[(e * uplinks_per_edge + j) % num_directors].append(edges[e])

    half = director_chip_radix // 2
    for d in range(num_directors):
        down_ports = director_ports[d]
        if not down_ports:
            continue
        num_lines = -(-len(down_ports) // half)  # ceil division
        lines = [
            net.add_switch(level=1, role="line", director=d, index=i)
            for i in range(num_lines)
        ]
        # Spines: enough chips so each line's `half` uplinks fit; a spine
        # accepts one cable from each line chip, possibly several.
        num_spines = max(1, -(-num_lines * half // director_chip_radix))
        spines = [
            net.add_switch(level=2, role="spine", director=d, index=i)
            for i in range(num_spines)
        ]
        for i, edge in enumerate(down_ports):
            net.add_link(edge, lines[i % num_lines], capacity=link_bandwidth, tier="up")
        for i, line in enumerate(lines):
            for j in range(half):
                net.add_link(
                    line, spines[(i * half + j) % num_spines],
                    capacity=link_bandwidth, tier="up",
                )

    for e, edge in enumerate(edges):
        for slot in range(terminals_per_edge):
            t = net.add_terminal(switch=edge, slot=slot, edge=e)
            net.add_link(t, edge, capacity=link_bandwidth)

    return net


def tree_level(net: Network, switch: int) -> int:
    """Tree level of a switch (0 = leaf/edge).  Raises for non-trees."""
    meta = net.node_meta(switch)
    if "level" not in meta:
        raise TopologyError(f"switch {switch} carries no tree level annotation")
    return int(meta["level"])
