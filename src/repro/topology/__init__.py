"""Topology substrate: capacitated network graphs and generators.

The module provides the :class:`~repro.topology.network.Network` container
(switches, terminals, directed capacitated links) plus generators for
every topology the paper touches:

* :func:`~repro.topology.hyperx.hyperx` — generalised HyperX (Ahn et al.),
  including the paper's 12x8, 7 nodes/switch instance,
* :func:`~repro.topology.fattree.k_ary_n_tree` and
  :func:`~repro.topology.fattree.three_level_fattree` — Folded-Clos family,
  including the paper's director-switch based 3-level tree,
* :func:`~repro.topology.torus.torus` / :func:`~repro.topology.torus.hypercube`
  — HyperX relatives used in tests and ablations,
* :func:`~repro.topology.dragonfly.dragonfly` — the related-work comparator,
* :mod:`~repro.topology.faults` — seeded cable-failure injection,
* :mod:`~repro.topology.properties` — diameter / bisection analysis,
* :mod:`~repro.topology.t2hx` — the paper's rewired TSUBAME2 system.
"""

from repro.topology.network import Link, Network
from repro.topology.state import FabricState
from repro.topology.hyperx import (
    HyperXSpec,
    hyperx,
    hyperx_quadrant,
    quadrant_halves,
    coord_in_half,
)
from repro.topology.fattree import (
    FatTreeSpec,
    k_ary_n_tree,
    three_level_fattree,
)
from repro.topology.torus import torus, hypercube, flattened_butterfly
from repro.topology.dragonfly import dragonfly
from repro.topology.slimfly import slimfly, slimfly_generator_sets
from repro.topology.faults import (
    FabricEvent,
    FaultTimeline,
    inject_cable_faults,
    degrade_links,
)
from repro.topology.properties import (
    diameter,
    average_shortest_path,
    bisection_fraction,
    hyperx_bisection_fraction,
    link_count,
    cable_count,
)
from repro.topology.cost import (
    CostBreakdown,
    plane_cost,
    compare_planes,
    hyperx_packaging,
    fattree_packaging,
)
from repro.topology.t2hx import (
    t2hx_hyperx,
    t2hx_fattree,
    T2HX_NUM_NODES,
    T2HX_HYPERX_SHAPE,
)

__all__ = [
    "Link",
    "Network",
    "FabricState",
    "FabricEvent",
    "FaultTimeline",
    "HyperXSpec",
    "hyperx",
    "hyperx_quadrant",
    "quadrant_halves",
    "coord_in_half",
    "FatTreeSpec",
    "k_ary_n_tree",
    "three_level_fattree",
    "torus",
    "hypercube",
    "flattened_butterfly",
    "dragonfly",
    "slimfly",
    "slimfly_generator_sets",
    "inject_cable_faults",
    "degrade_links",
    "diameter",
    "average_shortest_path",
    "bisection_fraction",
    "hyperx_bisection_fraction",
    "link_count",
    "cable_count",
    "CostBreakdown",
    "plane_cost",
    "compare_planes",
    "hyperx_packaging",
    "fattree_packaging",
    "t2hx_hyperx",
    "t2hx_fattree",
    "T2HX_NUM_NODES",
    "T2HX_HYPERX_SHAPE",
]
