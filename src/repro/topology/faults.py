"""Seeded cable-fault injection.

Section 2.3 of the paper: after the rewiring, 15 of 684 AOCs were absent
from the full 12x8 HyperX and 197 of 2662 links were missing from the
Fat-Tree (broken cables exceeded spares).  Both routings therefore had
to be fault-tolerant, and the deadlock-freedom requirement (criterion 4
of section 3.2) "became essential after initial tests with SSSP".

:func:`inject_cable_faults` disables a deterministic random subset of
switch-to-switch cables; :func:`degrade_links` lowers capacities instead
(the paper's ">10,000 symbol errors" filter criterion identified both
dead and degraded cables).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import TopologyError
from repro.core.rng import make_rng
from repro.topology.network import Link, Network


def inject_cable_faults(
    net: Network,
    num_faults: int,
    seed: int | None | np.random.Generator = 0,
    keep_connected: bool = True,
) -> list[Link]:
    """Disable ``num_faults`` random switch-to-switch cables in place.

    Terminal uplinks are never chosen — a node with a dead HCA cable is
    simply not part of the machine, which the paper handles by swapping
    the node, not by routing around it.

    With ``keep_connected`` (default) a candidate whose removal would
    disconnect the switch graph is skipped and another is drawn, so the
    fabric stays routable; the paper's machine stayed connected too.
    Returns the representative (lower-id) directed link of each disabled
    cable.
    """
    rng = make_rng(seed)
    candidates = net.switch_cables()
    if num_faults > len(candidates):
        raise TopologyError(
            f"cannot fail {num_faults} cables, only {len(candidates)} exist"
        )
    order = rng.permutation(len(candidates))
    failed: list[Link] = []
    for idx in order:
        if len(failed) == num_faults:
            break
        cable = candidates[idx]
        net.disable_cable(cable.id)
        if keep_connected and not _switch_graph_connected(net):
            net.enable_cable(cable.id)
            continue
        failed.append(cable)
    if len(failed) < num_faults:
        # Re-arm everything we disabled; partial injection would silently
        # change the experiment.
        for cable in failed:
            net.enable_cable(cable.id)
        raise TopologyError(
            f"could only fail {len(failed)} of {num_faults} cables while "
            "keeping the switch graph connected"
        )
    return failed


def degrade_links(
    net: Network,
    fraction: float,
    capacity_factor: float = 0.5,
    seed: int | None | np.random.Generator = 0,
) -> list[Link]:
    """Reduce capacity of a random ``fraction`` of switch cables in place.

    Models cables with high symbol-error rates that retrain to a lower
    speed instead of dying.  Both directions are degraded.  Returns the
    representative links touched.
    """
    if not 0.0 <= fraction <= 1.0:
        raise TopologyError(f"fraction must be in [0, 1], got {fraction}")
    if capacity_factor <= 0:
        raise TopologyError("capacity_factor must be positive")
    rng = make_rng(seed)
    candidates = net.switch_cables()
    count = int(round(fraction * len(candidates)))
    chosen = rng.choice(len(candidates), size=count, replace=False) if count else []
    touched: list[Link] = []
    for idx in chosen:
        cable = candidates[int(idx)]
        cable.capacity *= capacity_factor
        net.link(cable.reverse_id).capacity *= capacity_factor
        touched.append(cable)
    return touched


def _switch_graph_connected(net: Network) -> bool:
    """BFS connectivity over enabled switch-to-switch links."""
    switches = net.switches
    if not switches:
        return True
    seen = {switches[0]}
    frontier = [switches[0]]
    while frontier:
        u = frontier.pop()
        for link in net.out_links(u):
            v = link.dst
            if net.is_switch(v) and v not in seen:
                seen.add(v)
                frontier.append(v)
    return len(seen) == len(switches)
