"""Seeded cable-fault injection.

Section 2.3 of the paper: after the rewiring, 15 of 684 AOCs were absent
from the full 12x8 HyperX and 197 of 2662 links were missing from the
Fat-Tree (broken cables exceeded spares).  Both routings therefore had
to be fault-tolerant, and the deadlock-freedom requirement (criterion 4
of section 3.2) "became essential after initial tests with SSSP".

:func:`inject_cable_faults` disables a deterministic random subset of
switch-to-switch cables; :func:`degrade_links` lowers capacities instead
(the paper's ">10,000 symbol errors" filter criterion identified both
dead and degraded cables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.core.errors import TopologyError
from repro.core.rng import derive_seed, make_rng
from repro.topology.network import Link, Network

#: Actions a :class:`FabricEvent` can take against a cable.
FABRIC_EVENT_ACTIONS = ("fail_cable", "degrade_cable", "restore_cable")


def inject_cable_faults(
    net: Network,
    num_faults: int,
    seed: int | None | np.random.Generator = 0,
    keep_connected: bool = True,
) -> list[Link]:
    """Disable ``num_faults`` random switch-to-switch cables in place.

    Terminal uplinks are never chosen — a node with a dead HCA cable is
    simply not part of the machine, which the paper handles by swapping
    the node, not by routing around it.

    With ``keep_connected`` (default) a candidate whose removal would
    disconnect the switch graph is skipped and another is drawn, so the
    fabric stays routable; the paper's machine stayed connected too.
    Returns the representative (lower-id) directed link of each disabled
    cable.
    """
    rng = make_rng(seed)
    candidates = net.switch_cables()
    if num_faults > len(candidates):
        raise TopologyError(
            f"cannot fail {num_faults} cables, only {len(candidates)} exist"
        )
    order = rng.permutation(len(candidates))
    failed: list[Link] = []
    for idx in order:
        if len(failed) == num_faults:
            break
        cable = candidates[idx]
        net.disable_cable(cable.id)
        if keep_connected and not _switch_graph_connected(net):
            net.enable_cable(cable.id)
            continue
        failed.append(cable)
    if len(failed) < num_faults:
        # Re-arm everything we disabled; partial injection would silently
        # change the experiment.
        for cable in failed:
            net.enable_cable(cable.id)
        raise TopologyError(
            f"could only fail {len(failed)} of {num_faults} cables while "
            "keeping the switch graph connected"
        )
    return failed


def degrade_links(
    net: Network,
    fraction: float,
    capacity_factor: float = 0.5,
    seed: int | None | np.random.Generator = 0,
) -> list[Link]:
    """Reduce capacity of a random ``fraction`` of switch cables in place.

    Models cables with high symbol-error rates that retrain to a lower
    speed instead of dying.  Both directions are degraded.  Returns the
    representative links touched.
    """
    if not 0.0 <= fraction <= 1.0:
        raise TopologyError(f"fraction must be in [0, 1], got {fraction}")
    if capacity_factor <= 0:
        raise TopologyError("capacity_factor must be positive")
    rng = make_rng(seed)
    candidates = net.switch_cables()
    count = int(round(fraction * len(candidates)))
    chosen = rng.choice(len(candidates), size=count, replace=False) if count else []
    touched: list[Link] = []
    for idx in chosen:
        cable = candidates[int(idx)]
        net.set_capacity(cable.id, cable.capacity * capacity_factor)
        touched.append(cable)
    return touched


@dataclass(frozen=True, slots=True)
class FabricEvent:
    """One scheduled change to the fabric, pinned to a program phase.

    ``phase`` is the index of the communication phase *before* which the
    event fires; the simulator applies all events for phase ``i`` just
    before simulating phase ``i``.  ``cable`` is the representative link
    id of the cable to touch, or ``None`` to let :meth:`resolve_cable`
    pick a deterministic keep-connected candidate from ``seed``.
    ``capacity_factor`` only applies to ``degrade_cable``.  Note that
    ``restore_cable`` re-enables a failed cable but does **not** undo a
    degrade — a retrained cable stays slow until replaced.
    """

    action: str
    phase: int
    cable: int | None = None
    capacity_factor: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.action not in FABRIC_EVENT_ACTIONS:
            raise TopologyError(
                f"unknown fabric event action {self.action!r}; "
                f"expected one of {FABRIC_EVENT_ACTIONS}"
            )
        if self.phase < 0:
            raise TopologyError(f"event phase must be >= 0, got {self.phase}")
        if self.capacity_factor <= 0:
            raise TopologyError("capacity_factor must be positive")

    def resolve_cable(self, net: Network) -> Link:
        """The cable this event targets on ``net``.

        With an explicit ``cable`` id, that link; otherwise a seeded
        keep-connected pick (same machinery as
        :func:`inject_cable_faults`, so the choice is reproducible and
        never disconnects the switch graph).
        """
        if self.cable is not None:
            return net.link(self.cable)
        pick_seed = derive_seed(self.seed, "fabric-event", self.action, self.phase)
        picked = inject_cable_faults(net, 1, seed=pick_seed, keep_connected=True)
        cable = picked[0]
        net.enable_cable(cable.id)  # the pick was a dry run; apply() decides
        return cable

    def apply(self, net: Network) -> Link:
        """Mutate ``net`` in place; returns the representative link."""
        cable = self.resolve_cable(net)
        if self.action == "fail_cable":
            net.disable_cable(cable.id)
        elif self.action == "degrade_cable":
            net.set_capacity(cable.id, cable.capacity * self.capacity_factor)
        else:  # restore_cable
            net.enable_cable(cable.id)
        return cable

    def to_dict(self) -> dict[str, Any]:
        return {
            "action": self.action,
            "phase": self.phase,
            "cable": self.cable,
            "capacity_factor": self.capacity_factor,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FabricEvent":
        known = {"action", "phase", "cable", "capacity_factor", "seed"}
        unknown = set(payload) - known
        if unknown:
            raise TopologyError(f"unknown FabricEvent fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True, slots=True)
class FaultTimeline:
    """An ordered set of :class:`FabricEvent`\\ s for one simulation run."""

    events: tuple[FabricEvent, ...] = ()

    def events_at(self, phase: int) -> tuple[FabricEvent, ...]:
        """Events that fire just before communication phase ``phase``."""
        return tuple(e for e in self.events if e.phase == phase)

    def to_list(self) -> list[dict[str, Any]]:
        return [e.to_dict() for e in self.events]

    @classmethod
    def from_list(cls, payload: list[dict[str, Any]]) -> "FaultTimeline":
        return cls(tuple(FabricEvent.from_dict(p) for p in payload))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FabricEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)


def _switch_graph_connected(net: Network) -> bool:
    """BFS connectivity over enabled switch-to-switch links."""
    switches = net.switches
    if not switches:
        return True
    seen = {switches[0]}
    frontier = [switches[0]]
    while frontier:
        u = frontier.pop()
        for link in net.out_links(u):
            v = link.dst
            if net.is_switch(v) and v not in seen:
                seen.add(v)
                frontier.append(v)
    return len(seen) == len(switches)
