"""Command-line interface: ``python -m repro <command>``.

Six commands cover the everyday questions a user asks the library:

* ``info``      — structural facts of a topology (switches, cables,
                  diameter, bisection),
* ``engines``   — the registered routing-engine catalogue (names,
                  capability flags, SM settings) as Markdown or JSON,
* ``route``     — route a plane with an engine and audit the result
                  (reachability, minimality, virtual lanes, deadlocks),
* ``lint``      — statically verify a routed plane: black holes,
                  forwarding loops, credit loops, LID conflicts,
                  topology invariants, predicted hot links (add
                  ``--what-if`` for the fault-certification rules),
* ``whatif``    — exhaustive single-cable what-if audit: rank every
                  cable by the static damage its failure would do
                  (affected pairs, black holes, credit-loop exposure,
                  load shift, re-sweep blast radius),
* ``race``      — time one MPI operation across the paper's five
                  configurations,
* ``capacity``  — the Figure 7 multi-application throughput panel,
* ``campaign``  — run/status/resume parallel, cached, resumable
                  experiment sweeps (grids of RunSpec cells),
* ``resilience`` — sweep cable-fault levels (multiples of the paper's
                  §2.3 missing-cable counts) across the five
                  combinations, with a mid-run cable failure and SM
                  re-sweep per cell.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

from repro.analysis import lint_fabric
from repro.core.units import format_time
from repro.experiments import THE_FIVE, build_fabric, make_job
from repro.experiments.capacity import CAPACITY_APPS
from repro.experiments.reporting import (
    campaign_table,
    capacity_table,
    resilience_table,
)
from repro.ib.subnet_manager import OpenSM
from repro.routing import audit_fabric, create_engine, engine_names
from repro.sim import FlowSimulator
from repro.topology import (
    average_shortest_path,
    cable_count,
    diameter,
    hyperx,
    hyperx_bisection_fraction,
    t2hx_fattree,
    t2hx_hyperx,
)


def _build_topology(name: str, scale: int):
    if name == "hyperx":
        return t2hx_hyperx(scale=scale)
    if name == "fattree":
        return t2hx_fattree(scale=scale)
    if name.startswith("hyperx:"):
        try:
            dims = tuple(int(x) for x in name.split(":")[1].split("x"))
        except ValueError:
            raise SystemExit(
                f"bad shape in {name!r}: expected hyperx:AxB with integers"
            ) from None
        return hyperx(dims, 7)
    raise SystemExit(f"unknown topology {name!r} (hyperx | fattree | hyperx:AxB)")


def cmd_info(args: argparse.Namespace) -> int:
    net = _build_topology(args.topology, args.scale)
    print(net)
    print(f"  switch cables:     {cable_count(net, switches_only=True)}")
    print(f"  diameter:          {diameter(net)}")
    print(f"  avg switch dist:   {average_shortest_path(net):.2f}")
    if args.topology == "hyperx":
        print(
            f"  bisection:         "
            f"{hyperx_bisection_fraction((12, 8), 7):.1%} (12x8, T=7)"
        )
    return 0


def cmd_engines(args: argparse.Namespace) -> int:
    from repro.routing import catalogue_markdown, engine_catalogue

    if args.format == "json":
        print(json.dumps(engine_catalogue(), indent=2))
    else:
        print(catalogue_markdown())
    return 0


def _route_plane(topology: str, engine: str, scale: int, faults: int, seed: int):
    net = _build_topology(topology, scale)
    if faults:
        from repro.topology.faults import inject_cable_faults

        inject_cable_faults(net, faults, seed=seed)
    # The registry is the single source of engine construction; the
    # subnet manager resolves lmc/lid_policy from the engine's own
    # declared sm_defaults.
    return OpenSM(net).run(create_engine(engine))


def cmd_route(args: argparse.Namespace) -> int:
    fabric = _route_plane(args.topology, args.engine, args.scale, 0, 0)
    audit = audit_fabric(fabric, sample_pairs=args.sample_pairs)
    if args.format == "json":
        payload = {
            "fabric": {
                "network": fabric.net.name,
                "engine": fabric.engine_name,
                "lmc": fabric.lidmap.lmc,
                "num_vls": fabric.num_vls,
                "notes": list(fabric.notes),
            },
            "audit": audit.to_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0 if audit.clean else 1
    print(fabric)
    print(f"  pairs checked:     {audit.pairs_checked}")
    print(f"  unreachable/loops: {audit.unreachable}/{audit.loops}")
    print(
        f"  minimal paths:     {audit.minimal_pairs} "
        f"(+{audit.non_minimal_pairs} detours, max stretch {audit.max_stretch})"
    )
    print(f"  virtual lanes:     {fabric.num_vls}, deadlock-free: "
          f"{audit.deadlock_free}")
    if fabric.notes:
        print(f"  engine notes:      {len(fabric.notes)} (fallbacks etc.)")
    return 0 if audit.clean else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """Static verification; exit 0 clean, 1 on errors (or warnings with
    ``--strict``)."""
    from repro.analysis import ALL_RULES, WHATIF_RULES

    fabric = _route_plane(
        args.topology, args.engine, args.scale, args.faults, args.seed
    )
    rules = ALL_RULES | WHATIF_RULES if args.what_if else None
    report = lint_fabric(
        fabric, rules,
        hot_threshold=args.hot_threshold,
        blast_threshold=args.blast_threshold,
    )
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text())
    if report.errors:
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    """Exhaustive what-if cable audit; exit 1 when any single cable
    failure disconnects terminal pairs (a FAB014 single point of
    failure), 0 otherwise."""
    from repro.analysis import audit_whatif

    fabric = _route_plane(
        args.topology, args.engine, args.scale, args.faults, args.seed
    )
    report = audit_whatif(
        fabric,
        k2_samples=args.k2_samples,
        seed=args.seed,
        hot_threshold=args.hot_threshold,
        blast_threshold=args.blast_threshold,
    )
    if args.format == "json":
        print(report.to_json())
        return 1 if report.bridges else 0

    print(
        f"what-if audit of {report.network} / {report.engine}: "
        f"{len(report.cables)} cables, {report.pairs_total} pairs, "
        f"{report.dests_total} destinations "
        f"({report.elapsed_seconds:.2f}s)"
    )
    print(
        f"  single points of failure: {len(report.bridges)}, "
        f"credit-loop exposed: "
        f"{sum(1 for v in report.cables if v.credit_loop_exposed)}, "
        f"mean cable load: {report.load_mean}"
    )
    header = (
        f"{'rank':>5} {'cable':>6} {'link':>13} | {'pairs':>7} "
        f"{'dests':>6} {'cut':>7} {'load':>7} {'shift<=':>8} "
        f"{'blast':>6} {'flags':>6}"
    )
    print(header)
    print("-" * len(header))
    for v in report.cables[: args.top]:
        flags = "".join((
            "B" if v.is_bridge else "-",
            "C" if v.credit_loop_exposed else "-",
        ))
        print(
            f"{v.rank:>5} {v.cable:>6} "
            f"{f'{v.src}<->{v.dst}':>13} | {v.affected_pairs:>7} "
            f"{v.dests_affected:>6} {v.pairs_disconnected:>7} "
            f"{v.load:>7} {v.load_shift_bound:>8} "
            f"{v.blast_fraction:>6.2f} {flags:>6}"
        )
    if len(report.cables) > args.top:
        print(f"  ... {len(report.cables) - args.top} more (use --top)")
    for s in report.k2_samples:
        print(
            f"  k=2 sample cables {s.cables}: dests {s.dests_affected}, "
            f"disconnects {s.disconnects} "
            f"({s.pairs_disconnected} pairs)"
        )
    return 1 if report.bridges else 0


def cmd_race(args: argparse.Namespace) -> int:
    print(
        f"{args.operation} of {args.size_kib} KiB on {args.nodes} nodes "
        f"(scale 1/{args.scale}):"
    )
    baseline = None
    for combo in THE_FIVE:
        fabric = build_fabric(combo, scale=args.scale)
        job = make_job(combo, fabric, args.nodes, seed=args.seed)
        sim = FlowSimulator(fabric.net, mode="static")
        from repro.workloads.netbench import imb_latency

        t = imb_latency(job, sim, args.operation, args.size_kib * 1024)
        baseline = baseline or t
        print(
            f"  {combo.label:32s} {format_time(t):>12s} "
            f"({baseline / t - 1:+.0%})"
        )
    return 0


def cmd_capacity(args: argparse.Namespace) -> int:
    """The Figure 7 sweep as a campaign: one capacity cell per
    combination, fanned out over ``--workers`` and resumable when
    ``--dir`` names a persistent campaign directory."""
    from repro.campaign import (
        CampaignSpec,
        Ledger,
        campaign_paths,
        capacity_sweep,
        run_campaign,
    )

    campaign_dir = args.dir or tempfile.mkdtemp(prefix="repro-capacity-")
    spec = CampaignSpec(
        "capacity",
        capacity_sweep([c.key for c in THE_FIVE], scale=args.scale),
    )
    status = run_campaign(spec, campaign_dir, workers=args.workers)
    latest = Ledger(campaign_paths(campaign_dir)["ledger"]).latest()
    runs = {}
    for combo in THE_FIVE:
        rec = latest.get(f"{combo.key}/capacity/n0/s{args.scale}", {})
        runs[combo.label] = rec.get("capacity", {}).get("runs", {})
    print(
        capacity_table(
            "Completed runs per application in 3 h",
            runs, [a for a, _ in CAPACITY_APPS],
        )
    )
    return 0 if status.all_completed else 1


def cmd_resilience(args: argparse.Namespace) -> int:
    """Fault-level sweep; exit 0 iff every pair stays reachable."""
    from repro.experiments import run_resilience

    combos = (
        None if args.combos == "all" else _parse_csv(args.combos)
    )
    result = run_resilience(
        combo_keys=combos,
        levels=tuple(float(x) for x in _parse_csv(args.levels)),
        scale=args.scale,
        seed=args.seed,
        num_nodes=args.nodes,
        sim_mode=args.sim_mode,
        msg_bytes=args.size_kib * 1024,
        midrun_failure=not args.no_midrun_failure,
        failure_mode=args.failure_mode,
    )
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(resilience_table(result))
    return 0 if result.total_unreachable == 0 else 1


def _parse_csv(text: str) -> list[str]:
    return [x.strip() for x in text.split(",") if x.strip()]


def _campaign_progress(record: dict) -> None:
    status = record["status"]
    err = record.get("error")
    detail = f" ({err['type']}: {err['message']})" if err else ""
    print(
        f"  [{status:>9}] {record['cell_id']} "
        f"attempt {record.get('attempt')} "
        f"{format_time(record.get('duration_s', 0.0))}{detail}",
        flush=True,
    )


def _campaign_finish(status, fmt: str) -> int:
    if fmt == "json":
        print(json.dumps(status.to_dict(), indent=2))
    else:
        print(campaign_table(status))
    if status.failed:
        return 1
    if not status.all_completed:
        return 2  # pending cells remain (e.g. --limit); resume to finish
    return 0


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignSpec,
        campaign_paths,
        capability_grid,
        capacity_sweep,
        run_campaign,
    )

    paths = campaign_paths(args.dir)
    if paths["spec"].exists():
        if not args.resume:
            print(
                f"campaign spec already exists at {paths['spec']}; "
                "use `repro campaign resume` (or run --resume) to continue",
                file=sys.stderr,
            )
            return 1
        spec = CampaignSpec.load(args.dir)
    else:
        combos = (
            [c.key for c in THE_FIVE]
            if args.combos == "all"
            else _parse_csv(args.combos)
        )
        benchmarks = _parse_csv(args.benchmarks)
        timeline = ()
        if args.fail_cable_at is not None:
            from repro.topology.faults import FabricEvent

            timeline = (
                FabricEvent(
                    "fail_cable", phase=args.fail_cable_at,
                    cable=None, seed=args.seed,
                ),
            )
        cells = ()
        if "capacity" in benchmarks:
            benchmarks.remove("capacity")
            if timeline:
                print(
                    "--fail-cable-at applies to capability cells only; "
                    "capacity cells run without a fault timeline",
                    file=sys.stderr,
                )
            cells += capacity_sweep(combos, scale=args.scale, seed=args.seed)
        if benchmarks:
            cells += capability_grid(
                combos,
                benchmarks,
                [int(n) for n in _parse_csv(args.nodes)],
                reps=args.reps,
                scale=args.scale,
                seed=args.seed,
                sim_mode=args.sim_mode,
                faults=not args.no_faults,
                preflight=not args.no_preflight,
                fault_timeline=timeline,
            )
        if not cells:
            print("campaign has no cells; give --benchmarks", file=sys.stderr)
            return 1
        spec = CampaignSpec(args.name, cells, max_attempts=args.max_attempts)

    progress = None if args.format == "json" else _campaign_progress
    if args.format != "json":
        print(
            f"campaign {spec.name!r}: {len(spec.cells)} cells, "
            f"{args.workers} workers -> {args.dir}"
        )
    status = run_campaign(
        spec, args.dir,
        workers=args.workers,
        limit=args.limit,
        progress=progress,
    )
    return _campaign_finish(status, args.format)


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec.load(args.dir)
    progress = None if args.format == "json" else _campaign_progress
    status = run_campaign(
        spec, args.dir,
        workers=args.workers,
        limit=args.limit,
        progress=progress,
    )
    return _campaign_finish(status, args.format)


def cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec, Ledger, campaign_paths, summarize

    spec = CampaignSpec.load(args.dir)
    ledger = Ledger(campaign_paths(args.dir)["ledger"])
    status = summarize(spec, ledger)
    if args.format == "json":
        print(json.dumps(status.to_dict(), indent=2))
    else:
        print(campaign_table(status))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="topology facts")
    p.add_argument("topology", choices=["hyperx", "fattree"])
    p.add_argument("--scale", type=int, default=1)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser(
        "engines", help="the registered routing-engine catalogue"
    )
    p.add_argument("--format", choices=["md", "json"], default="md")
    p.set_defaults(fn=cmd_engines)

    p = sub.add_parser("route", help="route a plane and audit it")
    p.add_argument("topology", choices=["hyperx", "fattree"])
    p.add_argument("engine", choices=engine_names())
    p.add_argument("--scale", type=int, default=2)
    p.add_argument("--sample-pairs", type=int, default=1000)
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.set_defaults(fn=cmd_route)

    p = sub.add_parser(
        "lint", help="statically verify a routed plane (FAB rule codes)"
    )
    p.add_argument("topology", help="hyperx | fattree | hyperx:AxB")
    p.add_argument("engine", choices=engine_names())
    p.add_argument("--scale", type=int, default=2)
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--faults", type=int, default=0,
                   help="inject N random cable faults before routing")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--hot-threshold", type=float, default=3.0,
                   help="FAB011 fires above this multiple of mean load")
    p.add_argument("--what-if", action="store_true",
                   help="add the FAB014-FAB017 what-if fault "
                        "certification rules (exhaustive single-cable "
                        "audit)")
    p.add_argument("--blast-threshold", type=float, default=0.5,
                   help="FAB017 fires when one cable failure "
                        "invalidates more than this fraction of "
                        "destinations")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on warnings too")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "whatif",
        help="rank every cable by static what-if failure damage",
    )
    p.add_argument("topology", help="hyperx | fattree | hyperx:AxB")
    p.add_argument("engine", choices=engine_names())
    p.add_argument("--scale", type=int, default=2)
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--faults", type=int, default=0,
                   help="inject N random cable faults before routing")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for fault injection and k=2 sampling")
    p.add_argument("--k2-samples", type=int, default=0,
                   help="draw N seeded two-cable joint-failure samples "
                        "on top of the exhaustive single-cable audit")
    p.add_argument("--top", type=int, default=10,
                   help="show the N most critical cables (text output)")
    p.add_argument("--hot-threshold", type=float, default=3.0)
    p.add_argument("--blast-threshold", type=float, default=0.5)
    p.set_defaults(fn=cmd_whatif)

    p = sub.add_parser("race", help="one MPI op across the five configs")
    p.add_argument("--operation", default="Alltoall",
                   choices=["Bcast", "Gather", "Scatter", "Reduce",
                            "Allreduce", "Alltoall", "Barrier"])
    p.add_argument("--nodes", type=int, default=28)
    p.add_argument("--size-kib", type=float, default=1024.0)
    p.add_argument("--scale", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_race)

    p = sub.add_parser("capacity", help="the Figure 7 panel")
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--workers", type=int, default=1,
                   help="parallel capacity panels (one per combination)")
    p.add_argument("--dir", default=None,
                   help="persistent campaign directory (resumable); "
                        "a temp dir when omitted")
    p.set_defaults(fn=cmd_capacity)

    p = sub.add_parser(
        "campaign",
        help="parallel, cached, resumable experiment sweeps",
    )
    csub = p.add_subparsers(dest="campaign_command", required=True)

    c = csub.add_parser("run", help="start (or --resume) a campaign")
    c.add_argument("--dir", required=True,
                   help="campaign directory (spec, ledger, fabric cache)")
    c.add_argument("--name", default="campaign")
    c.add_argument("--combos", default="all",
                   help="comma-separated combination keys, or 'all'")
    c.add_argument("--benchmarks", default="",
                   help="comma-separated: app names (CoMD, HPL, ...), "
                        "imb:<Op>[:<bytes>], or 'capacity'")
    c.add_argument("--nodes", default="7,14,28",
                   help="comma-separated node counts per benchmark")
    c.add_argument("--reps", type=int, default=3)
    c.add_argument("--scale", type=int, default=2)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--sim-mode", choices=["static", "dynamic"],
                   default="static")
    c.add_argument("--no-faults", action="store_true")
    c.add_argument("--no-preflight", action="store_true")
    c.add_argument("--fail-cable-at", type=int, default=None,
                   metavar="PHASE",
                   help="fail one random cable at this phase index in "
                        "every capability cell; the SM re-sweeps and "
                        "reroute counters land in the ledger")
    c.add_argument("--workers", type=int, default=1)
    c.add_argument("--max-attempts", type=int, default=2)
    c.add_argument("--limit", type=int, default=None,
                   help="process at most N pending cells, then stop "
                        "(exit code 2; resume finishes the rest)")
    c.add_argument("--resume", action="store_true",
                   help="continue an existing campaign in --dir")
    c.add_argument("--format", choices=["text", "json"], default="text")
    c.set_defaults(fn=cmd_campaign_run)

    c = csub.add_parser("resume", help="continue a killed/limited campaign")
    c.add_argument("--dir", required=True)
    c.add_argument("--workers", type=int, default=1)
    c.add_argument("--limit", type=int, default=None)
    c.add_argument("--format", choices=["text", "json"], default="text")
    c.set_defaults(fn=cmd_campaign_resume)

    c = csub.add_parser("status", help="ledger summary of a campaign")
    c.add_argument("--dir", required=True)
    c.add_argument("--format", choices=["text", "json"], default="text")
    c.set_defaults(fn=cmd_campaign_status)

    p = sub.add_parser(
        "resilience",
        help="fault-level sweep with mid-run failure and SM re-sweep",
    )
    p.add_argument("--combos", default="all",
                   help="comma-separated combination keys, or 'all'")
    p.add_argument("--levels", default="0,1,2",
                   help="comma-separated multiples of the paper's "
                        "missing-cable count (0 = pristine, 1 = as-built)")
    p.add_argument("--scale", type=int, default=2)
    p.add_argument("--nodes", type=int, default=None,
                   help="nodes in the all-to-all (default min(16, plane))")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sim-mode", choices=["static", "dynamic"],
                   default="static")
    p.add_argument("--size-kib", type=float, default=1024.0)
    p.add_argument("--no-midrun-failure", action="store_true",
                   help="skip the extra mid-run cable failure per cell")
    p.add_argument("--failure-mode", choices=["random", "adversarial"],
                   default="random",
                   help="random: seeded keep-connected picks; "
                        "adversarial: fail the statically worst-ranked "
                        "cables from the what-if audit")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.set_defaults(fn=cmd_resilience)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
