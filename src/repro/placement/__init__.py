"""Rank-placement strategies (paper sections 3.1 and 4.4.3).

Three allocation policies map MPI ranks onto compute nodes: the
scheduler-default *linear* block, the fragmentation-realistic
*clustered* geometric-stride draw, and the paper's bottleneck-mitigating
*random* spread.  All are seeded and deterministic.
"""

from repro.placement.strategies import (
    linear_placement,
    clustered_placement,
    random_placement,
    placement,
)

__all__ = [
    "linear_placement",
    "clustered_placement",
    "random_placement",
    "placement",
]
