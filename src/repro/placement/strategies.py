"""Application-to-node placements.

The paper evaluates three allocations (sections 3.1, 4.4.3):

* **linear** — rank ``i`` on node ``n_i``; the common scheduler default
  that isolates small jobs into network subpartitions,
* **clustered** — the realistic fragmented machine: strides between
  consecutive allocated nodes drawn from a geometric distribution with
  80% success probability,
* **random** — the HyperX bottleneck-mitigation strategy of section 3.1
  (spread ranks so node-adjacent switches are not saturated pairwise).

All functions take the ordered pool of candidate nodes and return the
chosen allocation (rank order = list order).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.rng import make_rng

#: Geometric success probability for the clustered stride (paper 4.4.3:
#: "an (arbitrarily chosen) 80% probability").
CLUSTERED_P = 0.8


def linear_placement(pool: Sequence[int], p: int) -> list[int]:
    """First ``p`` nodes of the pool, in order."""
    _check(pool, p)
    return list(pool[:p])


def clustered_placement(
    pool: Sequence[int],
    p: int,
    seed: int | None | np.random.Generator = 0,
) -> list[int]:
    """Geometric-stride allocation simulating machine fragmentation.

    ``j := i + delta`` with ``delta ~ Geometric(0.8)``; when the pool
    runs out before ``p`` nodes are placed, the walk restarts at the
    earliest still-free node (the scheduler backfills fragments).
    """
    _check(pool, p)
    rng = make_rng(seed)
    used: set[int] = set()
    taken: list[int] = []
    idx = 0
    while len(taken) < p:
        if idx >= len(pool):
            # wrap: restart from the earliest still-free slot
            idx = next(i for i in range(len(pool)) if i not in used)
        if idx in used:
            idx += 1
            continue
        used.add(idx)
        taken.append(idx)
        idx += int(rng.geometric(CLUSTERED_P))
    return [pool[i] for i in taken]


def random_placement(
    pool: Sequence[int],
    p: int,
    seed: int | None | np.random.Generator = 0,
) -> list[int]:
    """Uniform random allocation without replacement (section 3.1)."""
    _check(pool, p)
    rng = make_rng(seed)
    chosen = rng.choice(len(pool), size=p, replace=False)
    return [pool[int(i)] for i in chosen]


def placement(
    kind: str,
    pool: Sequence[int],
    p: int,
    seed: int | None | np.random.Generator = 0,
) -> list[int]:
    """Dispatch by name: 'linear' | 'clustered' | 'random'."""
    if kind == "linear":
        return linear_placement(pool, p)
    if kind == "clustered":
        return clustered_placement(pool, p, seed)
    if kind == "random":
        return random_placement(pool, p, seed)
    raise ConfigurationError(f"unknown placement {kind!r}")


def _check(pool: Sequence[int], p: int) -> None:
    if p < 1:
        raise ConfigurationError(f"need at least one rank, got {p}")
    if p > len(pool):
        raise ConfigurationError(
            f"cannot place {p} ranks on {len(pool)} nodes"
        )
    if len(set(pool)) != len(pool):
        raise ConfigurationError("node pool contains duplicates")
