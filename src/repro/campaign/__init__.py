"""Campaign engine: parallel, cached, resumable experiment sweeps.

The paper's results grid (Figures 4-7) is a combination x benchmark x
node-count sweep; this package executes such sweeps as *campaigns*:

* :mod:`repro.campaign.spec` — the declarative campaign specification
  (cells are :class:`~repro.experiments.runner.RunSpec` values) and the
  grid builders,
* :mod:`repro.campaign.ledger` — the append-only JSONL run ledger that
  makes kill-and-resume safe,
* :mod:`repro.campaign.engine` — the process-pool executor with
  deterministic per-cell seeding, bounded retries, and the shared
  on-disk fabric cache.

Driven by ``repro campaign run | status | resume`` on the command line.
"""

from repro.campaign.engine import (
    execute_cell,
    resolve_measure,
    run_campaign,
)
from repro.campaign.ledger import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    CampaignStatus,
    Ledger,
    summarize,
)
from repro.campaign.spec import (
    FABRIC_CACHE_DIRNAME,
    LEDGER_FILENAME,
    SPEC_FILENAME,
    CampaignSpec,
    campaign_paths,
    capability_grid,
    engine_race_grid,
    capacity_sweep,
)

__all__ = [
    "CampaignSpec",
    "CampaignStatus",
    "Ledger",
    "STATUS_COMPLETED",
    "STATUS_FAILED",
    "SPEC_FILENAME",
    "LEDGER_FILENAME",
    "FABRIC_CACHE_DIRNAME",
    "campaign_paths",
    "capability_grid",
    "engine_race_grid",
    "capacity_sweep",
    "execute_cell",
    "resolve_measure",
    "run_campaign",
    "summarize",
]
