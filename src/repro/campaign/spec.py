"""Declarative campaign specifications: a named grid of RunSpec cells.

A campaign is the unit the paper's results grid is made of: the
Figures 4-7 sweeps are combination x benchmark x node-count grids, and
related design-space studies (multi-plane HyperX configuration spaces,
fault-scenario sweeps) are the same shape at larger extents.  A
:class:`CampaignSpec` captures such a grid declaratively — cells are
:class:`~repro.experiments.runner.RunSpec` values, JSON-round-trippable
so the spec can be written next to its run ledger and reloaded by
``repro campaign resume``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.core.errors import ConfigurationError
from repro.experiments.configs import get_combination
from repro.experiments.runner import RunSpec
from repro.topology.faults import FabricEvent

#: Name of the spec file inside a campaign directory.
SPEC_FILENAME = "campaign.json"
#: Name of the run ledger inside a campaign directory.
LEDGER_FILENAME = "ledger.jsonl"
#: Name of the persistent fabric cache inside a campaign directory.
FABRIC_CACHE_DIRNAME = "fabric-cache"


@dataclass(frozen=True)
class CampaignSpec:
    """One sweep: a name, its cells, and the retry budget.

    ``cells`` are executed in order when serial and fanned out when
    parallel; either way each cell's numbers depend only on its own
    RunSpec (seeds are derived per cell content), so worker count and
    completion order never change results.
    """

    name: str
    cells: tuple[RunSpec, ...]
    max_attempts: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        seen: set[str] = set()
        for cell in self.cells:
            if cell.cell_id in seen:
                raise ConfigurationError(
                    f"duplicate campaign cell {cell.cell_id!r}"
                )
            seen.add(cell.cell_id)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "max_attempts": self.max_attempts,
            "cells": [c.to_dict() for c in self.cells],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignSpec":
        return cls(
            name=data["name"],
            cells=tuple(RunSpec.from_dict(c) for c in data["cells"]),
            max_attempts=data.get("max_attempts", 2),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def save(self, campaign_dir: str | Path) -> Path:
        """Write the spec into ``campaign_dir`` (created if missing)."""
        d = Path(campaign_dir)
        d.mkdir(parents=True, exist_ok=True)
        path = d / SPEC_FILENAME
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, campaign_dir: str | Path) -> "CampaignSpec":
        """Read the spec written by :meth:`save`."""
        path = Path(campaign_dir) / SPEC_FILENAME
        if not path.exists():
            raise ConfigurationError(
                f"no campaign spec at {path}; run `repro campaign run` first"
            )
        return cls.from_json(path.read_text())


def capability_grid(
    combo_keys: Sequence[str],
    benchmarks: Sequence[str],
    node_counts: Iterable[int],
    reps: int = 3,
    scale: int = 1,
    seed: int = 0,
    sim_mode: str = "static",
    faults: bool = True,
    preflight: bool = True,
    fault_timeline: Sequence[FabricEvent] = (),
) -> tuple[RunSpec, ...]:
    """The paper's results-grid shape: combination x benchmark x scale.

    Validates combination keys eagerly (a typo should fail at spec
    build, not inside a worker three hours in).  A non-empty
    ``fault_timeline`` is attached to every cell: the sweep then runs on
    a fabric that degrades mid-run and recovers through SM re-sweeps,
    with reroute counters recorded per cell in the ledger.
    """
    for key in combo_keys:
        get_combination(key)
    return tuple(
        RunSpec(
            combo_key=key,
            benchmark=benchmark,
            num_nodes=n,
            reps=reps,
            scale=scale,
            seed=seed,
            sim_mode=sim_mode,
            faults=faults,
            preflight=preflight,
            fault_timeline=tuple(fault_timeline),
        )
        for key in combo_keys
        for benchmark in benchmarks
        for n in node_counts
    )


def engine_race_grid(
    engines: Sequence[str],
    benchmarks: Sequence[str],
    node_counts: Iterable[int],
    topology: str = "hyperx",
    placement: str = "linear",
    reps: int = 3,
    scale: int = 1,
    seed: int = 0,
    sim_mode: str = "static",
    faults: bool = True,
    preflight: bool = True,
    fault_timeline: Sequence[FabricEvent] = (),
) -> tuple[RunSpec, ...]:
    """A head-to-head engine race on one topology/placement.

    Convenience over :func:`capability_grid`: engine names (any
    registered in :mod:`repro.routing.registry`) become dynamic
    combination keys ``{ft|hx}-{engine}-{placement}``, validated
    eagerly — an unknown engine or an engine/topology mismatch fails at
    spec build with the registry's own diagnostic.
    """
    prefix = {"fattree": "ft", "hyperx": "hx"}.get(topology)
    if prefix is None:
        raise ConfigurationError(
            f"unknown topology {topology!r}; expected 'fattree' or 'hyperx'"
        )
    keys = [f"{prefix}-{engine}-{placement}" for engine in engines]
    return capability_grid(
        keys, benchmarks, node_counts, reps=reps, scale=scale, seed=seed,
        sim_mode=sim_mode, faults=faults, preflight=preflight,
        fault_timeline=fault_timeline,
    )


def capacity_sweep(
    combo_keys: Sequence[str],
    scale: int = 1,
    seed: int = 0,
    sim_mode: str = "static",
) -> tuple[RunSpec, ...]:
    """The Figure 7 sweep as campaign cells: one capacity panel per
    combination (``benchmark="capacity"``, the whole machine, so
    ``num_nodes`` is 0)."""
    for key in combo_keys:
        get_combination(key)
    return tuple(
        RunSpec(
            combo_key=key,
            benchmark="capacity",
            num_nodes=0,
            reps=1,
            scale=scale,
            seed=seed,
            sim_mode=sim_mode,
        )
        for key in combo_keys
    )


def campaign_paths(campaign_dir: str | Path) -> dict[str, Path]:
    """The canonical file layout inside a campaign directory."""
    d = Path(campaign_dir)
    return {
        "dir": d,
        "spec": d / SPEC_FILENAME,
        "ledger": d / LEDGER_FILENAME,
        "fabric_cache": d / FABRIC_CACHE_DIRNAME,
    }
