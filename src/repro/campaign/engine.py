"""The campaign execution engine: parallel, cached, resumable sweeps.

Cells fan out across a :class:`~concurrent.futures.ProcessPoolExecutor`;
every attempt is appended to the JSONL run ledger the moment it
finishes, so a killed campaign resumes exactly where it stopped
(completed cells are skipped, failed cells are retried up to the spec's
``max_attempts`` with structured error records — never silently
dropped).  Workers share a persistent on-disk fabric cache inside the
campaign directory: the first worker to touch a configuration pays the
OpenSM + routing-engine cost, everyone else deserializes the routed
plane (the per-cell ``fabric_cache`` counters in the ledger make the
warm path auditable).

Results are bit-identical between serial and parallel execution: every
stochastic stream inside a cell is derived from the cell's own RunSpec
content (:func:`repro.core.rng.derive_seed`), never from worker
identity or completion order.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Callable

from repro.campaign.ledger import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    CampaignStatus,
    Ledger,
    summarize,
)
from repro.campaign.spec import CampaignSpec, campaign_paths
from repro.core.errors import ConfigurationError
from repro.core.parallel import (
    get_sweep_workers,
    parallel_stats,
    reset_parallel_stats,
    set_sweep_workers,
)
from repro.core.units import MIB
from repro.experiments.capacity import run_capacity
from repro.experiments.configs import (
    fabric_cache_key,
    fabric_cache_stats,
    get_fabric_cache_dir,
    get_fabric_cache_mmap,
    reset_fabric_cache_stats,
    set_fabric_cache_dir,
    set_fabric_cache_mmap,
)
from repro.experiments.runner import RunSpec, run_capability

#: Default payload of ``imb:<Op>`` cells without an explicit size.
DEFAULT_IMB_BYTES = 1.0 * MIB

ProgressFn = Callable[[dict[str, Any]], None]


def _init_worker(
    cache_dir: str | None,
    use_mmap: bool = True,
    sweep_workers: int | None = None,
) -> None:
    """Executor initializer: point the worker at the shared fabric cache.

    With ``use_mmap`` the worker attaches to cached forwarding tables
    copy-on-write (``np.load(..., mmap_mode="c")``) instead of
    deserialising its own copy — N workers over the same combination
    share one set of page-cache pages for the dense rows.

    ``sweep_workers`` pins the routing sweep pool size inside this
    worker (:mod:`repro.core.parallel`).  The parallel campaign path
    passes 1: campaign cells are already one-process-per-cell, and a
    nested sweep pool per cell would oversubscribe the machine without
    speeding anything up.  ``None`` leaves the ambient configuration
    (env / caller) alone — the serial in-process path uses that, so a
    single-worker campaign still benefits from parallel sweeps.
    """
    set_fabric_cache_dir(cache_dir)
    set_fabric_cache_mmap(use_mmap)
    if sweep_workers is not None:
        set_sweep_workers(sweep_workers)


def _imb_profile(op: str, num_nodes: int, size: float):
    """The rank-phase profile PARX re-routes with for an IMB operation
    (mirrors the Figure 4/5 benchmarks)."""
    from repro.mpi.collectives import (
        binomial_bcast,
        binomial_gather,
        binomial_reduce,
        binomial_scatter,
        pairwise_alltoall,
        recursive_doubling_allreduce,
    )

    builders = {
        "Bcast": binomial_bcast,
        "Gather": binomial_gather,
        "Scatter": binomial_scatter,
        "Reduce": binomial_reduce,
        "Allreduce": recursive_doubling_allreduce,
        "Alltoall": pairwise_alltoall,
    }
    builder = builders.get(op)
    return builder(num_nodes, size) if builder is not None else None


def resolve_measure(spec: RunSpec):
    """Resolve a cell's benchmark name to ``(measure, profile, hib)``.

    The measure callable cannot ride in the (serializable) RunSpec, so
    workers resolve it from the benchmark name:

    * a proxy/x500 app abbreviation (``CoMD``, ``HPL``, ...) — the
      app's kernel runtime, profiled for PARX re-routing;
    * ``imb:<Op>`` or ``imb:<Op>:<bytes>`` — one IMB data point
      (operation latency), e.g. ``imb:Alltoall:4194304``;
    * ``capacity`` is handled by :func:`execute_cell` directly.
    """
    if spec.benchmark.startswith("imb:"):
        parts = spec.benchmark.split(":")
        if len(parts) not in (2, 3) or not parts[1]:
            raise ConfigurationError(
                f"bad IMB benchmark {spec.benchmark!r}; expected "
                "imb:<Op> or imb:<Op>:<bytes>"
            )
        op = parts[1]
        size = float(parts[2]) if len(parts) == 3 else DEFAULT_IMB_BYTES
        from repro.workloads.netbench import IMB_COLLECTIVES, imb_latency

        if op not in IMB_COLLECTIVES:
            raise ConfigurationError(
                f"unknown IMB operation {op!r}; available: {IMB_COLLECTIVES}"
            )

        def measure(job, sim, op=op, size=size):
            return imb_latency(job, sim, op, size)

        return measure, _imb_profile(op, spec.num_nodes, size), False

    from repro.workloads.proxyapps import get_app

    app = get_app(spec.benchmark)

    def measure(job, sim, app=app):
        return app.kernel_runtime(job, sim)

    return measure, app.rank_phases(spec.num_nodes), app.higher_is_better


def execute_cell(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one cell in this process; always returns a ledger record.

    Exceptions never propagate: a failure becomes a structured error
    record (type, message, traceback) so the engine can retry and the
    ledger keeps the evidence.
    """
    spec = RunSpec.from_dict(payload["spec"])
    base_key = fabric_cache_key(
        spec.combo, scale=spec.scale, with_faults=spec.faults, seed=spec.seed
    )
    record: dict[str, Any] = {
        "cell_id": spec.cell_id,
        "spec": spec.to_dict(),
        "worker_pid": os.getpid(),
    }
    reset_fabric_cache_stats()
    reset_parallel_stats()
    t0 = time.perf_counter()
    try:
        if spec.benchmark == "capacity":
            if spec.fault_timeline:
                raise ConfigurationError(
                    "capacity cells do not support a fault timeline; the "
                    "capacity scheduler owns its own simulators"
                )
            res = run_capacity(
                spec.combo, scale=spec.scale, seed=spec.seed,
                sim_mode=spec.sim_mode,
            )
            record["status"] = STATUS_COMPLETED
            record["values"] = [float(res.total_runs)]
            record["best"] = float(res.total_runs)
            record["higher_is_better"] = True
            record["capacity"] = {
                "runs": res.runs,
                "solo_seconds": res.solo_seconds,
                "interfered_seconds": res.interfered_seconds,
            }
        else:
            measure, profile, higher_is_better = resolve_measure(spec)
            res = run_capability(
                spec, measure,
                rank_phases_for_profile=profile,
                higher_is_better=higher_is_better,
            )
            record["status"] = STATUS_COMPLETED
            record["values"] = list(res.values)
            record["best"] = float(res.best)
            record["higher_is_better"] = higher_is_better
            if spec.fault_timeline:
                record["reroutes"] = {
                    "events_applied": res.events_applied,
                    "messages_rerouted": res.messages_rerouted,
                    "paths_changed": res.paths_changed,
                    "unreachable_pairs": res.unreachable_pairs,
                    "reports": res.reroutes,
                }
    except Exception as exc:  # noqa: BLE001 - every failure must land in the ledger
        record["status"] = STATUS_FAILED
        record["error"] = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
    stats = fabric_cache_stats()
    stats["cache_key"] = base_key
    stats["preflighted"] = spec.preflight
    record["fabric_cache"] = stats
    par = parallel_stats()
    record["sweep"] = {
        "workers": get_sweep_workers(),
        "parallel_sweeps": par["parallel_sweeps"],
    }
    record["duration_s"] = time.perf_counter() - t0
    return record


def _interleave_by_fabric(cells: list[RunSpec]) -> list[RunSpec]:
    """Round-robin cells across their fabric cache keys.

    Workers pick cells in submission order; if the first ``N`` cells all
    need the same fabric, every worker routes it concurrently before any
    of them can populate the cache (a thundering herd).  Interleaving
    groups puts each worker on a *different* fabric first, so later
    cells of a group hit the in-memory or on-disk cache instead.
    Deterministic — it only permutes submission order, never results.
    """
    groups: dict[str, list[RunSpec]] = {}
    for cell in cells:
        key = fabric_cache_key(
            cell.combo, scale=cell.scale, with_faults=cell.faults,
            seed=cell.seed,
        )
        groups.setdefault(key, []).append(cell)
    out: list[RunSpec] = []
    queues = list(groups.values())
    while queues:
        queues = [q for q in queues if q]
        for q in queues:
            if q:
                out.append(q.pop(0))
    return out


def run_campaign(
    spec: CampaignSpec,
    campaign_dir: str | Path,
    workers: int = 1,
    limit: int | None = None,
    fabric_cache: bool = True,
    progress: ProgressFn | None = None,
) -> CampaignStatus:
    """Execute (or continue) a campaign; returns its final status.

    Cells already completed in the ledger are skipped, which is all
    resume is: re-invoke with the same spec and directory.  ``limit``
    caps how many pending cells this invocation processes (the CI smoke
    test uses it to stop a campaign mid-flight deterministically before
    resuming it).  ``workers <= 1`` runs inline — same code path as a
    worker, no pool — which parallel runs are bit-identical to.
    """
    paths = campaign_paths(campaign_dir)
    paths["dir"].mkdir(parents=True, exist_ok=True)
    spec.save(paths["dir"])
    ledger = Ledger(paths["ledger"])
    attempts = ledger.attempt_counts()
    completed = ledger.completed_ids()
    pending = [c for c in spec.cells if c.cell_id not in completed]
    if workers > 1:
        # Interleave before applying the limit, so a limited batch also
        # spans fabrics breadth-first: concurrent workers start on
        # different planes, and the next resume finds them cached.
        pending = _interleave_by_fabric(pending)
    if limit is not None:
        pending = pending[:limit]
    cache_dir = str(paths["fabric_cache"]) if fabric_cache else None

    def book(cell: RunSpec, record: dict[str, Any]) -> int:
        """Append one attempt; returns this cell's attempt count."""
        n = attempts.get(cell.cell_id, 0) + 1
        attempts[cell.cell_id] = n
        record["attempt"] = n
        ledger.append(record)
        if progress is not None:
            progress(record)
        return n

    t0 = time.perf_counter()
    if workers <= 1:
        previous_dir = get_fabric_cache_dir()
        previous_mmap = get_fabric_cache_mmap()
        _init_worker(cache_dir)
        try:
            for cell in pending:
                while True:
                    record = execute_cell({"spec": cell.to_dict()})
                    n = book(cell, record)
                    if (record["status"] == STATUS_COMPLETED
                            or n >= spec.max_attempts):
                        break
        finally:
            set_fabric_cache_dir(previous_dir)
            set_fabric_cache_mmap(previous_mmap)
    else:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            # sweep_workers=1: one process per cell already saturates the
            # machine; nested sweep pools would only oversubscribe it.
            initargs=(cache_dir, True, 1),
        ) as pool:
            futures = {
                pool.submit(execute_cell, {"spec": c.to_dict()}): c
                for c in pending
            }
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for fut in done:
                    cell = futures.pop(fut)
                    try:
                        record = fut.result()
                    except Exception as exc:  # worker died (OOM, signal)
                        record = {
                            "cell_id": cell.cell_id,
                            "spec": cell.to_dict(),
                            "status": STATUS_FAILED,
                            "duration_s": 0.0,
                            "error": {
                                "type": type(exc).__name__,
                                "message": str(exc),
                                "traceback": traceback.format_exc(),
                            },
                        }
                    n = book(cell, record)
                    if (record["status"] == STATUS_FAILED
                            and n < spec.max_attempts):
                        futures[
                            pool.submit(execute_cell, {"spec": cell.to_dict()})
                        ] = cell
    return summarize(spec, ledger, wall_seconds=time.perf_counter() - t0)
