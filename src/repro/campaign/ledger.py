"""The append-only JSONL run ledger of a campaign.

One line per cell *attempt*: status, attempt number, duration, values,
fabric-cache counters, and — for failures — a structured error record.
Appends are flushed per line, so a campaign killed mid-run loses at most
the line being written; :meth:`Ledger.records` skips a torn trailing
line instead of refusing to load, which is what makes kill-and-resume
safe.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Terminal cell states recorded in the ledger.
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"


class Ledger:
    """Append/replay access to one campaign's ``ledger.jsonl``."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, record: dict[str, Any]) -> None:
        """Write one attempt record durably (flush + fsync per line)."""
        record = dict(record)
        record.setdefault("finished_at", time.time())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a+b") as fh:
            # A campaign killed mid-write leaves a torn line without a
            # trailing newline; terminate it so this record is not glued
            # onto (and lost with) the torn one.
            if fh.tell() > 0:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    fh.write(b"\n")
            fh.write(json.dumps(record, sort_keys=True).encode("utf-8") + b"\n")
            fh.flush()
            os.fsync(fh.fileno())

    def records(self) -> list[dict[str, Any]]:
        """All attempt records, oldest first; torn lines are skipped."""
        if not self.path.exists():
            return []
        out: list[dict[str, Any]] = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed campaign
            if isinstance(rec, dict) and "cell_id" in rec:
                out.append(rec)
        return out

    def latest(self) -> dict[str, dict[str, Any]]:
        """The most recent record per cell."""
        latest: dict[str, dict[str, Any]] = {}
        for rec in self.records():
            latest[rec["cell_id"]] = rec
        return latest

    def completed_ids(self) -> set[str]:
        """Cells whose latest record is a success (resume skips these)."""
        return {
            cid for cid, rec in self.latest().items()
            if rec.get("status") == STATUS_COMPLETED
        }

    def attempt_counts(self) -> dict[str, int]:
        """Attempts recorded so far per cell."""
        counts: dict[str, int] = {}
        for rec in self.records():
            counts[rec["cell_id"]] = counts.get(rec["cell_id"], 0) + 1
        return counts


@dataclass
class CampaignStatus:
    """Aggregate view of a campaign's ledger against its spec."""

    name: str
    total_cells: int
    completed: int
    failed: int
    pending: int
    attempts: int
    wall_seconds: float
    cell_seconds: float
    fabric_routed: int
    fabric_memory_hits: int
    fabric_disk_hits: int
    fabric_disk_stores: int
    #: Disk hits that attached the dense rows zero-copy via mmap.
    fabric_mmap_attaches: int = 0
    #: Largest sweep-pool size any cell ran with (1 = serial sweeps).
    sweep_workers: int = 0
    #: Total parallel routing sweeps executed across all attempts.
    parallel_sweeps: int = 0
    cells: list[dict[str, Any]] = field(default_factory=list)
    #: Fault-timeline totals over the latest record of each cell.
    reroute_events: int = 0
    reroute_messages: int = 0
    reroute_paths_changed: int = 0
    reroute_unreachable: int = 0

    @property
    def all_completed(self) -> bool:
        return self.completed == self.total_cells

    @property
    def cells_per_second(self) -> float:
        """Completed-cell throughput against summed cell time."""
        return self.completed / self.cell_seconds if self.cell_seconds > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "total_cells": self.total_cells,
            "completed": self.completed,
            "failed": self.failed,
            "pending": self.pending,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
            "cell_seconds": self.cell_seconds,
            "cells_per_second": self.cells_per_second,
            "fabric_cache": {
                "routed": self.fabric_routed,
                "memory_hits": self.fabric_memory_hits,
                "disk_hits": self.fabric_disk_hits,
                "disk_stores": self.fabric_disk_stores,
                "mmap_attaches": self.fabric_mmap_attaches,
            },
            "sweep": {
                "workers": self.sweep_workers,
                "parallel_sweeps": self.parallel_sweeps,
            },
            "reroutes": {
                "events_applied": self.reroute_events,
                "messages_rerouted": self.reroute_messages,
                "paths_changed": self.reroute_paths_changed,
                "unreachable_pairs": self.reroute_unreachable,
            },
            "cells": self.cells,
        }


def summarize(spec, ledger: Ledger, wall_seconds: float = 0.0) -> CampaignStatus:
    """Fold a ledger into a :class:`CampaignStatus` for ``spec``.

    ``pending`` counts spec cells with no successful record — including
    failed-out cells' grid points, which a later resume (or a raised
    retry budget) may still complete; ``failed`` counts cells whose
    *latest* record is a failure, so nothing is ever silently dropped.
    """
    latest = ledger.latest()
    spec_ids = [c.cell_id for c in spec.cells]
    completed = sum(
        1 for cid in spec_ids
        if latest.get(cid, {}).get("status") == STATUS_COMPLETED
    )
    failed = sum(
        1 for cid in spec_ids
        if latest.get(cid, {}).get("status") == STATUS_FAILED
    )
    records = [r for r in ledger.records() if r["cell_id"] in set(spec_ids)]
    cache_totals = {"routed": 0, "memory_hits": 0, "disk_hits": 0,
                    "disk_stores": 0, "mmap_attaches": 0}
    cell_seconds = 0.0
    sweep_workers = 0
    parallel_sweeps = 0
    for rec in records:
        cell_seconds += float(rec.get("duration_s", 0.0))
        fc = rec.get("fabric_cache", {})
        for k in cache_totals:
            cache_totals[k] += int(fc.get(k, 0))
        sw = rec.get("sweep", {})
        sweep_workers = max(sweep_workers, int(sw.get("workers", 0)))
        parallel_sweeps += int(sw.get("parallel_sweeps", 0))
    cells = []
    reroute_totals = {"events_applied": 0, "messages_rerouted": 0,
                      "paths_changed": 0, "unreachable_pairs": 0}
    for cid in spec_ids:
        rec = latest.get(cid)
        if rec is None:
            cells.append({"cell_id": cid, "status": "pending"})
            continue
        cell: dict[str, Any] = {
            "cell_id": cid,
            "status": rec.get("status"),
            "attempt": rec.get("attempt"),
            "duration_s": rec.get("duration_s"),
            "best": rec.get("best"),
            "fabric_cache": rec.get("fabric_cache", {}),
            "sweep": rec.get("sweep", {}),
            "error": rec.get("error"),
        }
        rr = rec.get("reroutes")
        if rr:
            cell["reroutes"] = rr
            for k in reroute_totals:
                reroute_totals[k] += int(rr.get(k, 0))
        cells.append(cell)
    return CampaignStatus(
        name=spec.name,
        total_cells=len(spec_ids),
        completed=completed,
        failed=failed,
        pending=len(spec_ids) - completed,
        attempts=len(records),
        wall_seconds=wall_seconds,
        cell_seconds=cell_seconds,
        fabric_routed=cache_totals["routed"],
        fabric_memory_hits=cache_totals["memory_hits"],
        fabric_disk_hits=cache_totals["disk_hits"],
        fabric_disk_stores=cache_totals["disk_stores"],
        fabric_mmap_attaches=cache_totals["mmap_attaches"],
        sweep_workers=sweep_workers,
        parallel_sweeps=parallel_sweeps,
        cells=cells,
        reroute_events=reroute_totals["events_applied"],
        reroute_messages=reroute_totals["messages_rerouted"],
        reroute_paths_changed=reroute_totals["paths_changed"],
        reroute_unreachable=reroute_totals["unreachable_pairs"],
    )
