"""Point-to-point benchmark patterns (IMB's MPI-1 point-to-point mode).

The collective expansions live in :mod:`repro.mpi.collectives`; this
module holds the two-sided micro-patterns the paper's tooling uses:

* :func:`ping_pong` — the canonical latency/bandwidth probe (the basis
  of the 512 B threshold calibration, together with Multi-PingPong),
* :func:`ping_ping` — both directions simultaneously (full-duplex
  check),
* :func:`exchange` — every rank swaps with both neighbours (IMB's
  Exchange, the 1-D halo archetype),
* :func:`uni_band` / :func:`bi_band` — windowed streaming in one/both
  directions (IMB's uniband/biband message-rate probes).
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.mpi.collectives import RankPhase


def ping_pong(size: float, rounds: int = 1) -> list[RankPhase]:
    """Rank 0 sends to rank 1, rank 1 answers; ``rounds`` round trips."""
    _check_size(size)
    phases: list[RankPhase] = []
    for _ in range(rounds):
        phases.append([(0, 1, size)])
        phases.append([(1, 0, size)])
    return phases


def ping_ping(size: float, rounds: int = 1) -> list[RankPhase]:
    """Both ranks send simultaneously (full duplex), ``rounds`` times."""
    _check_size(size)
    return [[(0, 1, size), (1, 0, size)] for _ in range(rounds)]


def exchange(p: int, size: float) -> list[RankPhase]:
    """IMB Exchange: every rank swaps with left and right neighbours."""
    if p < 2:
        raise ConfigurationError("exchange needs at least two ranks")
    _check_size(size)
    right: RankPhase = [(i, (i + 1) % p, size) for i in range(p)]
    left: RankPhase = [(i, (i - 1) % p, size) for i in range(p)]
    return [right, left]


def uni_band(size: float, window: int = 64) -> list[RankPhase]:
    """Unidirectional streaming: ``window`` back-to-back sends 0 -> 1.

    All messages of the window are in flight together (one phase), the
    message-rate regime where NIC/link bandwidth, not latency, binds.
    """
    _check_size(size)
    if window < 1:
        raise ConfigurationError("window must be >= 1")
    return [[(0, 1, size) for _ in range(window)]]


def bi_band(size: float, window: int = 64) -> list[RankPhase]:
    """Bidirectional streaming: ``window`` sends each way, concurrently."""
    _check_size(size)
    if window < 1:
        raise ConfigurationError("window must be >= 1")
    phase: RankPhase = [(0, 1, size) for _ in range(window)]
    phase += [(1, 0, size) for _ in range(window)]
    return [phase]


def _check_size(size: float) -> None:
    if size < 0:
        raise ConfigurationError(f"negative message size {size}")
