"""Point-to-point messaging layers: the LID choice per message.

With LMC > 0 a destination HCA owns several LIDs, each potentially
routed differently; Open MPI's PML decides which one a given message
addresses.  The paper (section 3.2.4) contrasts three behaviours:

* :class:`Ob1Pml` — the default layer: always the base LID (multi-LID
  only as failover, which the flow model never needs),
* :class:`BfoPml` — the multi-path layer: round-robins over all LIDs of
  a connection per message/segment,
* :class:`ParxBfoPml` — the paper's modification: pick the LID from
  Table 1 based on the (source quadrant, destination quadrant) pair and
  whether the message clears the 512-byte large-message threshold;
  where Table 1 offers two choices, pick randomly.

bfo is "less tuned compared to the ob1 default" (section 5.1, the
2.8x-6.9x Barrier regression) — modelled as the additive per-message
``BFO_PML_OVERHEAD``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.errors import ConfigurationError
from repro.core.rng import make_rng
from repro.core.units import BFO_PML_OVERHEAD, PARX_SIZE_THRESHOLD
from repro.ib.addressing import quadrant_of_lid
from repro.ib.fabric import Fabric


class Pml(ABC):
    """A messaging layer: chooses a destination LID index per message."""

    name: str = "abstract"
    #: Additional software latency per message relative to ob1.
    overhead: float = 0.0

    @abstractmethod
    def lid_index(self, fabric: Fabric, src: int, dst: int, size: float) -> int:
        """Destination LID index (0..2**lmc-1) for one message."""

    def reset(self) -> None:
        """Clear per-connection state (between independent runs)."""


class Ob1Pml(Pml):
    """Open MPI's default PML: single path via the base LID."""

    name = "ob1"
    overhead = 0.0

    def lid_index(self, fabric: Fabric, src: int, dst: int, size: float) -> int:
        return 0


class BfoPml(Pml):
    """The multi-path PML: LIDs round-robin per connection.

    "The bfo PML iterates through the 2**LMC LIDs in a round-robin
    fashion.  After transferring a message ... the layer increments x or
    resets to 0."  State is per (src, dst) connection, like the real
    per-BTL counters.
    """

    name = "bfo"
    overhead = BFO_PML_OVERHEAD

    def __init__(self) -> None:
        self._counter: dict[tuple[int, int], int] = {}

    def lid_index(self, fabric: Fabric, src: int, dst: int, size: float) -> int:
        n = fabric.lidmap.lids_per_port
        key = (src, dst)
        x = self._counter.get(key, 0)
        self._counter[key] = (x + 1) % n
        return x

    def reset(self) -> None:
        self._counter.clear()


class ParxBfoPml(Pml):
    """The paper's modified bfo: Table 1 selection by quadrant and size.

    Requires the fabric to use the quadrant LID policy (so quadrants are
    recoverable as ``lid // 1000``) and LMC = 2.  Messages of
    ``threshold`` bytes or more are "large" and take the detour LIDs of
    Table 1b; smaller ones take the minimal LIDs of Table 1a.  Where the
    table lists two alternatives one is chosen randomly (seeded).
    """

    name = "parx-bfo"
    overhead = BFO_PML_OVERHEAD

    def __init__(self, threshold: int = PARX_SIZE_THRESHOLD, seed: int = 0) -> None:
        self.threshold = threshold
        self._seed = seed
        self._rng = make_rng(seed)

    def lid_index(self, fabric: Fabric, src: int, dst: int, size: float) -> int:
        from repro.routing.parx import lid_choices

        if fabric.lidmap.lids_per_port != 4:
            raise ConfigurationError(
                "the PARX PML needs LMC=2 (four LIDs per port)"
            )
        sq = quadrant_of_lid(fabric.lidmap.base[src])
        dq = quadrant_of_lid(fabric.lidmap.base[dst])
        choices = lid_choices(sq, dq, large=size >= self.threshold)
        if len(choices) == 1:
            return choices[0]
        return int(choices[self._rng.integers(len(choices))])

    def reset(self) -> None:
        self._rng = make_rng(self._seed)
